//! The optimized uniformization solver (workspace reuse, recurrent
//! Poisson log-weights, gather-form mat-vec over the cached transpose)
//! must agree with a line-by-line naive reference implementation —
//! per-term `poisson_ln_pmf`, fresh allocations, scatter-form `v·P` —
//! to within 1e-12 relative on the paper's actual figure grids.

use rsmem::units::{SeuRate, Time, TimeGrid};
use rsmem::{CodeParams, DuplexModel, FaultRates, Scrubbing, SimplexModel};
use rsmem_ctmc::poisson::poisson_ln_pmf;
use rsmem_ctmc::uniformization::{transient_grid, UniformizationOptions};
use rsmem_ctmc::{MarkovModel, StateSpace};

/// Direct transcription of the uniformization series with none of the
/// production solver's optimizations: every term re-evaluates the Poisson
/// weight through the log-gamma pmf, allocates its work vectors fresh,
/// and applies `v·P` in scatter (left-multiply) form on the untransposed
/// rate matrix.
fn naive_transient_grid<S>(
    space: &StateSpace<S>,
    times: &[f64],
    opts: &UniformizationOptions,
) -> Vec<Vec<f64>>
where
    S: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let p0 = space.initial_distribution();
    let n_states = space.len();
    let lambda = space.max_exit_rate();
    if lambda == 0.0 || times.iter().all(|&t| t == 0.0) {
        return times.iter().map(|_| p0.clone()).collect();
    }

    let means: Vec<f64> = times.iter().map(|&t| lambda * t).collect();
    let max_mean = means.iter().cloned().fold(0.0f64, f64::max);
    let n_min = (max_mean.ceil() as usize).max(n_states.min(10_000));

    let mut v = p0.clone();
    let mut acc: Vec<Vec<f64>> = means
        .iter()
        .map(|&m| {
            if m == 0.0 {
                p0.clone()
            } else {
                vec![0.0; n_states]
            }
        })
        .collect();
    let mut converged: Vec<bool> = means.iter().map(|&m| m == 0.0).collect();
    let mut streak = vec![0u32; times.len()];

    for n in 0..opts.max_terms {
        let mut all_done = true;
        for k in 0..times.len() {
            if converged[k] {
                continue;
            }
            all_done = false;
            let w = poisson_ln_pmf(n as u64, means[k]).exp();
            let mut small = true;
            if w > 0.0 {
                for j in 0..n_states {
                    let delta = w * v[j];
                    acc[k][j] += delta;
                    if delta > opts.rel_tol * acc[k][j] {
                        small = false;
                    }
                }
            }
            if n >= n_min && (n as f64) > means[k] {
                if small {
                    streak[k] += 1;
                    if streak[k] >= 3 {
                        converged[k] = true;
                    }
                } else {
                    streak[k] = 0;
                }
            }
        }
        if all_done {
            return acc;
        }
        // v ← v·P, scatter form: fresh buffer, row-wise left multiply.
        let mut next = vec![0.0; n_states];
        for (j, slot) in next.iter_mut().enumerate() {
            *slot = v[j] * (1.0 - space.exit_rate(j) / lambda);
        }
        for (i, &vi) in v.iter().enumerate() {
            for (j, r) in space.rates().row(i) {
                next[j] += vi * r / lambda;
            }
        }
        v = next;
    }
    panic!("naive reference solver did not converge");
}

fn assert_grids_match(fast: &[Vec<f64>], reference: &[Vec<f64>], label: &str) {
    assert_eq!(fast.len(), reference.len());
    for (k, (f, r)) in fast.iter().zip(reference).enumerate() {
        assert_eq!(f.len(), r.len());
        for (j, (&a, &b)) in f.iter().zip(r).enumerate() {
            let scale = a.abs().max(b.abs());
            let tol = 1e-12 * scale.max(f64::MIN_POSITIVE);
            assert!(
                (a - b).abs() <= tol,
                "{label}: t[{k}] state {j}: optimized {a:e} vs naive {b:e}"
            );
        }
    }
}

fn check_model<M: MarkovModel>(model: &M, times_days: &[f64], label: &str)
where
    M::State: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let space = StateSpace::explore(model).unwrap();
    let opts = UniformizationOptions::default();
    let fast = transient_grid(&space, times_days, &opts).unwrap();
    let reference = naive_transient_grid(&space, times_days, &opts);
    assert_grids_match(&fast, &reference, label);
}

fn grid_days(hours: f64, points: usize) -> Vec<f64> {
    TimeGrid::linspace(Time::zero(), Time::from_hours(hours), points)
        .points()
        .iter()
        .map(|t| t.as_days())
        .collect()
}

#[test]
fn fig5_simplex_grids_match_naive_reference() {
    // Fig. 5: simplex RS(18,16), the paper's three SEU rates, 48 h grid.
    let times = grid_days(48.0, 25);
    for &rate in &[7.3e-7, 3.6e-6, 1.7e-5] {
        let rates = FaultRates {
            seu: SeuRate::per_bit_day(rate),
            ..FaultRates::default()
        };
        let model = SimplexModel::new(CodeParams::rs18_16(), rates, Scrubbing::None);
        check_model(&model, &times, &format!("fig5 λ={rate:e}"));
    }
}

#[test]
fn fig7_duplex_scrubbed_grids_match_naive_reference() {
    // Fig. 7: duplex RS(18,16), worst-case SEU rate, four scrub periods.
    // Scrubbing makes the chain cyclic — the hardest case for the
    // convergence bookkeeping.
    let times = grid_days(48.0, 25);
    let rates = FaultRates {
        seu: SeuRate::per_bit_day(1.7e-5),
        ..FaultRates::default()
    };
    for &period_s in &[900.0, 1200.0, 1800.0, 3600.0] {
        let model = DuplexModel::new(
            CodeParams::rs18_16(),
            rates,
            Scrubbing::every_seconds(period_s),
        );
        check_model(&model, &times, &format!("fig7 Tsc={period_s}"));
    }
}
