//! The whole-memory extension, both ways: the analytic binomial
//! composition (`rsmem_models::memory_array`) against the physical array
//! simulator (`rsmem_sim::array`) — plus the MBU blind-spot demonstration
//! at the integration level.

use rsmem::array::{run_simplex_array, ArrayConfig};
use rsmem::memory_array::{word_fail_probability, MemoryArray};
use rsmem::units::{SeuRate, Time};
use rsmem::{CodeParams, FaultRates, Scrubbing, SimConfig, SimplexModel};

fn sim_config(seu: f64, mbu: u32, depth: usize, words: usize) -> ArrayConfig {
    ArrayConfig {
        base: SimConfig {
            seu_per_bit_day: seu,
            erasure_per_symbol_day: 0.0,
            scrub: None,
            store_days: 2.0,
            ..SimConfig::rs18_16_baseline()
        },
        words,
        mbu_width_bits: mbu,
        interleave_depth: depth,
    }
}

fn analytic_word_p(seu: f64) -> f64 {
    let model = SimplexModel::new(
        CodeParams::rs18_16(),
        FaultRates::transient_only(SeuRate::per_bit_day(seu)),
        Scrubbing::None,
    );
    word_fail_probability(&model, Time::from_days(2.0)).expect("solve")
}

#[test]
fn simulated_word_fraction_matches_analytic_composition() {
    let seu = 4e-3;
    let report = run_simplex_array(&sim_config(seu, 1, 1, 64), 60, 5).expect("sim");
    let p = analytic_word_p(seu);
    let (lo, hi) = report.wilson_95;
    assert!(
        p >= lo - 0.005 && p <= hi + 0.005,
        "analytic {p:.4} outside simulated CI [{lo:.4}, {hi:.4}]"
    );
}

#[test]
fn any_word_failure_composition_is_consistent_with_simulation() {
    // P(at least one of W words fails) from the model vs the empirical
    // fraction of trials with ≥1 failed word. We don't get the latter
    // directly from the report, so compare expected failed words instead:
    // E[failed] = trials · W · p.
    let seu = 4e-3;
    let words = 64usize;
    let trials = 60usize;
    let report = run_simplex_array(&sim_config(seu, 1, 1, words), trials, 6).expect("sim");
    let model = SimplexModel::new(
        CodeParams::rs18_16(),
        FaultRates::transient_only(SeuRate::per_bit_day(seu)),
        Scrubbing::None,
    );
    let arr = MemoryArray::new(words as u64).expect("nonzero");
    let expected_per_trial = arr
        .expected_failed_words(&model, Time::from_days(2.0))
        .expect("solve");
    let expected_total = expected_per_trial * trials as f64;
    let got = report.failed_words as f64;
    // Binomial σ ≈ √(N·p); allow 4σ.
    let sigma = (trials as f64 * words as f64 * analytic_word_p(seu)).sqrt();
    assert!(
        (got - expected_total).abs() < 4.0 * sigma + 2.0,
        "observed {got} vs expected {expected_total} (σ = {sigma:.1})"
    );
}

#[test]
fn mbu_breaks_the_model_and_interleaving_restores_it() {
    // The per-word Markov model assumes single-symbol SEUs. With 4-bit
    // MBUs the simulated failure fraction leaves the model's CI upward;
    // with matching interleaving it comes back to within a modest band.
    let seu = 1e-3;
    let p_model = analytic_word_p(seu);

    let mbu = run_simplex_array(&sim_config(seu, 4, 1, 64), 60, 7).expect("sim");
    assert!(
        mbu.word_failure_fraction > 2.0 * p_model,
        "MBU fraction {} should clearly exceed the model {p_model}",
        mbu.word_failure_fraction
    );

    let healed = run_simplex_array(&sim_config(seu, 4, 4, 64), 60, 7).expect("sim");
    assert!(
        healed.word_failure_fraction < mbu.word_failure_fraction,
        "interleaving must reduce the MBU failure fraction"
    );
}

#[test]
fn ber_estimates_are_prefactor_scaled_fractions() {
    let report = run_simplex_array(&sim_config(5e-3, 1, 1, 16), 30, 8).expect("sim");
    // RS(18,16), m = 8 → prefactor 1.
    assert!((report.ber_estimate - report.word_failure_fraction).abs() < 1e-15);
}
