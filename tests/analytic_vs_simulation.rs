//! Workspace-spanning validation: the Markov models (rsmem-models +
//! rsmem-ctmc) against the Monte-Carlo simulator (rsmem-sim + rsmem-code)
//! at accelerated fault rates.
//!
//! The simulator shares *no* code with the analytic pipeline beyond the
//! GF tables, so agreement here exercises every layer end-to-end.

use rsmem::units::{ErasureRate, SeuRate, Time};
use rsmem::{CodeParams, MemorySystem, ScrubTiming, Scrubbing};

/// Widened acceptance band: analytic value inside the Monte-Carlo 95% CI
/// stretched by `slack` (absolute probability) to absorb rare-tail noise.
fn assert_agrees(system: &MemorySystem, store: Time, trials: usize, seed: u64, slack: f64) {
    let analytic = system
        .ber_curve(&[store])
        .expect("analytic solve")
        .fail_probability[0];
    let mc = system
        .monte_carlo(store, trials, seed, ScrubTiming::Exponential)
        .expect("simulation");
    let (lo, hi) = mc.wilson_95;
    assert!(
        analytic >= lo - slack && analytic <= hi + slack,
        "analytic {analytic:.5} outside simulated CI [{lo:.5}, {hi:.5}] \
         (fraction {:.5}, {} trials)",
        mc.failure_fraction,
        mc.trials
    );
}

#[test]
fn simplex_transient_faults_agree() {
    // λ = 5e-3/bit/day over 2 days: P_fail ≈ 2% — measurable in 3000 trials.
    let system =
        MemorySystem::simplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(5e-3));
    assert_agrees(&system, Time::from_days(2.0), 3000, 11, 0.005);
}

#[test]
fn simplex_permanent_faults_agree() {
    let system = MemorySystem::simplex(CodeParams::rs18_16())
        .with_erasure_rate(ErasureRate::per_symbol_day(2e-2));
    assert_agrees(&system, Time::from_days(2.0), 3000, 12, 0.005);
}

#[test]
fn simplex_mixed_faults_agree() {
    let system = MemorySystem::simplex(CodeParams::rs18_16())
        .with_seu_rate(SeuRate::per_bit_day(2e-3))
        .with_erasure_rate(ErasureRate::per_symbol_day(1e-2));
    assert_agrees(&system, Time::from_days(2.0), 3000, 13, 0.005);
}

#[test]
fn simplex_with_exponential_scrubbing_agrees() {
    // Scrubbing modelled exponentially in BOTH worlds: the Markov chain's
    // own assumption, so the agreement must be tight.
    let system = MemorySystem::simplex(CodeParams::rs18_16())
        .with_seu_rate(SeuRate::per_bit_day(8e-3))
        .with_scrubbing(Scrubbing::Periodic {
            period: Time::from_days(0.25),
        });
    assert_agrees(&system, Time::from_days(2.0), 3000, 14, 0.01);
}

#[test]
fn duplex_permanent_faults_agree_under_per_module_convention() {
    // With λ = 0 the two duplex fail criteria coincide (e1 = e2 = 0), and
    // the simulator's arbiter failure condition matches the model: the
    // system dies when X (double-erasure pairs) exceeds n − k.
    //
    // The simulator injects faults per *module*, so a clean pair is
    // exposed at 2λe — the `erasures_per_module` convention. The paper's
    // verbatim Fig. 4 rate (λe per pair) is checked below to
    // *underestimate* the physical system (DESIGN.md note 3).
    use rsmem::DuplexOptions;
    let base = MemorySystem::duplex(CodeParams::rs18_16())
        .with_erasure_rate(ErasureRate::per_symbol_day(5e-2));
    let per_module = base.with_duplex_options(DuplexOptions {
        erasures_per_module: true,
        ..Default::default()
    });
    assert_agrees(&per_module, Time::from_days(2.0), 3000, 15, 0.001);

    let store = Time::from_days(2.0);
    let verbatim = base.ber_curve(&[store]).unwrap().fail_probability[0];
    let physical = per_module.ber_curve(&[store]).unwrap().fail_probability[0];
    // Double-erasure X pairs need two arrivals: the per-module convention
    // runs the first stage twice as fast ⇒ roughly a 2^k factor overall.
    assert!(
        physical > 3.0 * verbatim,
        "per-module {physical:e} should clearly exceed per-pair {verbatim:e}"
    );
}

#[test]
fn wide_simplex_agrees() {
    let system = MemorySystem::simplex(CodeParams::rs36_16())
        .with_erasure_rate(ErasureRate::per_symbol_day(8e-2));
    assert_agrees(&system, Time::from_days(2.0), 2000, 16, 0.01);
}

#[test]
fn duplex_transient_sim_is_bracketed_by_the_two_criteria() {
    // The real arbiter recovers one-sided overloads (EitherWord-like) but
    // the paper models BothWords; the simulated failure fraction must fall
    // between the two analytic curves (with CI slack).
    use rsmem::{DuplexFailCriterion, DuplexOptions};
    let store = Time::from_days(2.0);
    let base =
        MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(8e-3));
    let both = base.ber_curve(&[store]).unwrap().fail_probability[0];
    let either = base
        .with_duplex_options(DuplexOptions {
            fail_criterion: DuplexFailCriterion::EitherWord,
            ..Default::default()
        })
        .ber_curve(&[store])
        .unwrap()
        .fail_probability[0];
    assert!(either < both);
    let mc = base
        .monte_carlo(store, 3000, 17, ScrubTiming::Exponential)
        .unwrap();
    let f = mc.failure_fraction;
    assert!(
        f <= both + 0.01,
        "simulated {f:.4} should not exceed the conservative model {both:.4}"
    );
    assert!(
        f >= either - 0.01,
        "simulated {f:.4} should not beat the optimistic model {either:.4}"
    );
}

#[test]
fn deterministic_scrubbing_beats_exponential_slightly() {
    // Deterministic periods leave no long gaps, so the real scheduler is
    // at least as good as the memoryless approximation (within noise).
    let system = MemorySystem::simplex(CodeParams::rs18_16())
        .with_seu_rate(SeuRate::per_bit_day(2e-2))
        .with_scrubbing(Scrubbing::Periodic {
            period: Time::from_days(0.25),
        });
    let det = system
        .monte_carlo(Time::from_days(2.0), 3000, 18, ScrubTiming::Periodic)
        .unwrap();
    let exp = system
        .monte_carlo(Time::from_days(2.0), 3000, 18, ScrubTiming::Exponential)
        .unwrap();
    assert!(
        det.failure_fraction <= exp.failure_fraction + 0.01,
        "deterministic {det} vs exponential {exp}",
        det = det.failure_fraction,
        exp = exp.failure_fraction
    );
}

#[test]
fn silent_corruption_is_rare_relative_to_detected_failures() {
    // Beyond-capability corruption usually *detects*; mis-correction that
    // also fools the arbiter is the rare tail. Sanity-check the ordering.
    let system =
        MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(2e-2));
    let mc = system
        .monte_carlo(Time::from_days(2.0), 3000, 19, ScrubTiming::Exponential)
        .unwrap();
    assert!(
        mc.silent <= mc.detected,
        "silent {} should not dominate detected {}",
        mc.silent,
        mc.detected
    );
}
