//! Public-API contract tests: the façade exposes everything a downstream
//! user needs, types are well-behaved, and misuse fails with typed errors.

use rsmem::units::{ErasureRate, SeuRate, Time, TimeGrid};
use rsmem::{
    Arrangement, CodeParams, DecodeOutcome, Error, MemorySystem, RsCode, ScrubTiming, Scrubbing,
};

#[test]
fn facade_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MemorySystem>();
    assert_send_sync::<RsCode>();
    assert_send_sync::<CodeParams>();
    assert_send_sync::<Error>();
    assert_send_sync::<rsmem::BerCurve>();
    assert_send_sync::<rsmem::MonteCarloReport>();
}

#[test]
fn errors_implement_std_error_with_sources() {
    let sys =
        MemorySystem::simplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(f64::NAN));
    let err = sys.ber_curve(&[Time::zero()]).unwrap_err();
    let msg = err.to_string();
    assert!(!msg.is_empty());
    // Error chains down to the models layer.
    let dyn_err: &dyn std::error::Error = &err;
    assert!(dyn_err.source().is_some());
}

#[test]
fn codec_roundtrip_via_facade_reexports() {
    let code = RsCode::new(18, 16, 8).expect("paper code");
    let data: Vec<u16> = (0..16).collect();
    let mut word = code.encode(&data).expect("encode");
    word[3] ^= 0x80;
    match code.decode(&word, &[]).expect("decode") {
        DecodeOutcome::Corrected { data: d, .. } => assert_eq!(d, data),
        other => panic!("expected correction, got {other:?}"),
    }
}

#[test]
fn arrangement_accessors_report_configuration() {
    let s = MemorySystem::simplex(CodeParams::rs36_16());
    assert!(matches!(s.arrangement(), Arrangement::Simplex));
    assert_eq!(s.code().n(), 36);
    let d =
        MemorySystem::duplex(CodeParams::rs18_16()).with_scrubbing(Scrubbing::every_seconds(900.0));
    assert!(matches!(d.arrangement(), Arrangement::Duplex(_)));
    assert!((d.scrubbing().rate_per_day() - 96.0).abs() < 1e-9);
}

#[test]
fn ber_curve_zero_point_is_exact() {
    let sys =
        MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(1.7e-5));
    let curve = sys.ber_curve(&[Time::zero()]).expect("solve");
    assert_eq!(curve.ber, vec![0.0]);
    assert_eq!(curve.fail_probability, vec![0.0]);
    assert_eq!(curve.len(), 1);
    assert!(!curve.is_empty());
}

#[test]
fn time_grid_composes_with_ber_curve() {
    let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 5);
    let sys =
        MemorySystem::simplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(1e-5));
    let curve = sys.ber_curve(grid.points()).expect("solve");
    assert_eq!(curve.len(), 5);
    let series = curve.as_hours_series();
    assert_eq!(series.len(), 5);
    assert!((series[4].0 - 48.0).abs() < 1e-12);
}

#[test]
fn monte_carlo_is_reproducible_through_facade() {
    let sys =
        MemorySystem::simplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(1e-2));
    let a = sys
        .monte_carlo(Time::from_days(1.0), 200, 5, ScrubTiming::Periodic)
        .expect("mc");
    let b = sys
        .monte_carlo(Time::from_days(1.0), 200, 5, ScrubTiming::Periodic)
        .expect("mc");
    assert_eq!(a, b);
}

#[test]
fn fail_bounds_require_acyclic_models() {
    let scrubbed = MemorySystem::simplex(CodeParams::rs18_16())
        .with_seu_rate(SeuRate::per_bit_day(1e-5))
        .with_scrubbing(Scrubbing::every_seconds(900.0));
    assert!(scrubbed.fail_bounds(Time::from_hours(48.0)).is_err());
    let unscrubbed = scrubbed.with_scrubbing(Scrubbing::None);
    let bounds = unscrubbed
        .fail_bounds(Time::from_hours(48.0))
        .expect("acyclic");
    assert!(bounds.ln_upper.is_finite());
}

#[test]
fn zero_trials_is_a_typed_error() {
    let sys = MemorySystem::simplex(CodeParams::rs18_16());
    let err = sys
        .monte_carlo(Time::from_days(1.0), 0, 0, ScrubTiming::Periodic)
        .unwrap_err();
    assert!(matches!(err, Error::Sim(_)));
}

#[test]
fn mixed_fault_environment_end_to_end() {
    // Transients + permanents + scrubbing, analytic and simulated, through
    // the single façade type.
    let sys = MemorySystem::duplex(CodeParams::rs18_16())
        .with_seu_rate(SeuRate::per_bit_day(1e-2))
        .with_erasure_rate(ErasureRate::per_symbol_day(1e-3))
        .with_scrubbing(Scrubbing::Periodic {
            period: Time::from_days(0.5),
        });
    let curve = sys.ber_curve(&[Time::from_days(2.0)]).expect("analytic");
    assert!(curve.ber[0] > 0.0);
    let mc = sys
        .monte_carlo(Time::from_days(2.0), 100, 1, ScrubTiming::Exponential)
        .expect("simulated");
    assert_eq!(mc.trials, 100);
}

#[test]
fn decoder_complexity_via_facade() {
    let sys = MemorySystem::duplex(CodeParams::rs18_16());
    assert_eq!(sys.decode_cycles(), 74);
    assert_eq!(sys.decoder_area_units(), 2 * 8 * 2);
    let wide = MemorySystem::simplex(CodeParams::rs36_16());
    assert_eq!(wide.decode_cycles(), 308);
    assert_eq!(wide.decoder_area_units(), 8 * 20);
}
