//! End-to-end assertions on the regenerated figures: the qualitative
//! claims of the paper's Section 6 must hold in our reproduction —
//! who wins, by roughly what factor, and where the knees sit.

use rsmem::experiments::{
    run, ExperimentId, Figure, GRID_POINTS, PERMANENT_RATES_PER_SYMBOL_DAY, SCRUB_PERIODS_S,
    SEU_RATES_PER_BIT_DAY,
};

fn figure(id: ExperimentId) -> Figure {
    run(id)
        .expect("experiment runs")
        .figure()
        .expect("figure output")
        .clone()
}

fn final_value(fig: &Figure, series: usize) -> f64 {
    fig.series[series].points.last().expect("points").1
}

#[test]
fn all_figures_have_paper_shape() {
    for id in [
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig10,
    ] {
        let fig = figure(id);
        let expected_series = match id {
            ExperimentId::Fig5 | ExperimentId::Fig6 => SEU_RATES_PER_BIT_DAY.len(),
            ExperimentId::Fig7 => SCRUB_PERIODS_S.len(),
            _ => PERMANENT_RATES_PER_SYMBOL_DAY.len(),
        };
        assert_eq!(fig.series.len(), expected_series, "{id}");
        for s in &fig.series {
            assert_eq!(s.points.len(), GRID_POINTS, "{id}/{}", s.label);
            assert_eq!(s.points[0].1, 0.0, "{id}: BER(0) must be 0");
            // Without repair the fail state is absorbing → monotone BER.
            if id != ExperimentId::Fig7 {
                for w in s.points.windows(2) {
                    assert!(w[1].1 >= w[0].1, "{id}/{}: BER not monotone", s.label);
                }
            }
        }
    }
}

#[test]
fn fig5_vs_fig6_same_range_claim() {
    // Paper: simplex and duplex BERs are "in the same range" under
    // transient faults.
    let s = figure(ExperimentId::Fig5);
    let d = figure(ExperimentId::Fig6);
    for i in 0..SEU_RATES_PER_BIT_DAY.len() {
        let ratio = final_value(&d, i) / final_value(&s, i);
        assert!(
            (0.3..=3.4).contains(&ratio),
            "series {i}: duplex/simplex = {ratio}"
        );
    }
}

#[test]
fn fig5_scales_quadratically_with_seu_rate() {
    // Two SEUs kill the t=1 code, so BER ∝ λ² at fixed t.
    let s = figure(ExperimentId::Fig5);
    let r01 = SEU_RATES_PER_BIT_DAY[1] / SEU_RATES_PER_BIT_DAY[0];
    let b01 = final_value(&s, 1) / final_value(&s, 0);
    let predicted = r01 * r01;
    assert!(
        (b01 / predicted - 1.0).abs() < 0.15,
        "BER ratio {b01:.2} vs λ² prediction {predicted:.2}"
    );
}

#[test]
fn fig7_hourly_scrubbing_meets_1e6_target() {
    let fig = figure(ExperimentId::Fig7);
    for s in &fig.series {
        let max = s.points.iter().map(|&(_, b)| b).fold(0.0, f64::max);
        assert!(max < 1e-6, "Tsc = {}: max BER {max:e}", s.label);
    }
}

#[test]
fn fig7_curves_reach_constant_hazard() {
    // With scrubbing the chain reaches quasi-equilibrium within a few
    // scrub periods; after that the absorbing Fail state accumulates at a
    // constant hazard, i.e. BER grows linearly: consecutive late slopes
    // agree to a fraction of a percent.
    let fig = figure(ExperimentId::Fig7);
    for s in &fig.series {
        let s1 = s.points[GRID_POINTS - 2].1 - s.points[GRID_POINTS - 3].1;
        let s2 = s.points[GRID_POINTS - 1].1 - s.points[GRID_POINTS - 2].1;
        assert!(s1 > 0.0 && s2 > 0.0, "Tsc = {}: hazard vanished", s.label);
        let rel = (s2 - s1).abs() / s1;
        assert!(
            rel < 5e-3,
            "Tsc = {}: hazard not constant (slopes {s1:e} vs {s2:e})",
            s.label
        );
    }
}

#[test]
fn permanent_fault_hierarchy_simplex18_duplex_simplex36() {
    // The paper's headline permanent-fault result, Figs. 8–10:
    //   simplex RS(18,16)  ≪  duplex RS(18,16)  ≪  simplex RS(36,16)
    // (in reliability; reversed in BER). Check at the top rate where all
    // three values are comfortably representable.
    let s18 = figure(ExperimentId::Fig8);
    let dup = figure(ExperimentId::Fig9);
    let s36 = figure(ExperimentId::Fig10);
    let (a, b, c) = (
        final_value(&s18, 0),
        final_value(&dup, 0),
        final_value(&s36, 0),
    );
    assert!(a > b, "simplex RS(18,16) {a:e} must be worst, duplex {b:e}");
    assert!(b > c, "duplex {b:e} must lose to simplex RS(36,16) {c:e}");
}

#[test]
fn fig8_low_rate_curves_are_tiny_but_nonzero() {
    let fig = figure(ExperimentId::Fig8);
    let lowest = final_value(&fig, PERMANENT_RATES_PER_SYMBOL_DAY.len() - 1);
    assert!(lowest > 0.0);
    assert!(
        lowest < 1e-15,
        "λe = 1e-10 should give a tiny BER, got {lowest:e}"
    );
}

#[test]
fn fig9_exponent_roughly_doubles_fig8() {
    // Duplex failure needs double-erasure pairs: at a fixed small rate the
    // failure probability exponent is about twice the simplex one
    // (paper: 1e-30 → 1e-60 territory at the low-rate end).
    let s = figure(ExperimentId::Fig8);
    let d = figure(ExperimentId::Fig9);
    for i in 3..PERMANENT_RATES_PER_SYMBOL_DAY.len() {
        let (ls, ld) = (final_value(&s, i).log10(), final_value(&d, i).log10());
        assert!(
            ld / ls > 1.4 && ld / ls < 2.6,
            "series {i}: simplex 1e{ls:.1}, duplex 1e{ld:.1} (ratio {:.2})",
            ld / ls
        );
    }
}

#[test]
fn fig10_reaches_far_below_fig8() {
    // Paper Fig. 10's y-axis reaches 1e-200 where Fig. 8 stops at 1e-30.
    let s18 = figure(ExperimentId::Fig8);
    let s36 = figure(ExperimentId::Fig10);
    let i = PERMANENT_RATES_PER_SYMBOL_DAY.len() - 1;
    let (b18, b36) = (final_value(&s18, i), final_value(&s36, i));
    assert!(b18 > 1e-25, "RS(18,16) low-rate BER {b18:e}");
    assert!(
        b36 < 1e-100,
        "RS(36,16) must be vanishingly small, got {b36:e}"
    );
}

#[test]
fn complexity_table_matches_figure_economics() {
    // Decode latency: duplex wins >4x; area: the wide decoder pays more
    // than two narrow ones; redundancy: duplex == wide simplex.
    let rows = run(ExperimentId::Complexity)
        .expect("runs")
        .table()
        .expect("table")
        .to_vec();
    assert_eq!(rows[1].redundant_symbols, rows[2].redundant_symbols);
    assert!(rows[2].decode_cycles as f64 / rows[1].decode_cycles as f64 > 4.0);
    assert!(rows[2].area_units > rows[1].area_units / 2 * 2);
}
