//! Cross-checks the three transient solvers (uniformization, adaptive
//! ODE, SURE-style path bounds) on the *paper's* Markov models — not toy
//! chains — so a regression in any solver or model shows up here.

use rsmem::units::{ErasureRate, SeuRate, Time};
use rsmem::{CodeParams, DuplexModel, FaultRates, MemoryModel, Scrubbing, SimplexModel};
use rsmem_ctmc::ode::{rkf45, Rkf45Options};
use rsmem_ctmc::paths::{absorption_bounds, PathOptions};
use rsmem_ctmc::uniformization::{transient, UniformizationOptions};
use rsmem_ctmc::StateSpace;

fn rates(seu: f64, erasure: f64) -> FaultRates {
    FaultRates {
        seu: SeuRate::per_bit_day(seu),
        erasure: ErasureRate::per_symbol_day(erasure),
    }
}

#[test]
fn simplex_uniformization_vs_rkf45() {
    // Accelerated rates so the ODE solver's absolute tolerance is not the
    // limiting factor.
    let model = SimplexModel::new(CodeParams::rs18_16(), rates(1e-3, 1e-4), Scrubbing::None);
    let space = StateSpace::explore(&model).expect("explore");
    let t = 2.0;
    let a = transient(&space, t, &UniformizationOptions::default()).expect("uniformization");
    let b = rkf45(&space, t, &Rkf45Options::default()).expect("rkf45");
    for j in 0..space.len() {
        assert!(
            (a[j] - b[j]).abs() < 1e-8,
            "state {j}: {} vs {}",
            a[j],
            b[j]
        );
    }
}

#[test]
fn duplex_uniformization_vs_rkf45_with_scrubbing() {
    let model = DuplexModel::new(
        CodeParams::rs18_16(),
        rates(5e-3, 1e-4),
        Scrubbing::Periodic {
            period: Time::from_days(0.2),
        },
    );
    let space = StateSpace::explore(&model).expect("explore");
    let t = 2.0;
    let a = transient(&space, t, &UniformizationOptions::default()).expect("uniformization");
    let b = rkf45(&space, t, &Rkf45Options::default()).expect("rkf45");
    let fail = space.index_of(&model.fail_state()).expect("fail reachable");
    assert!(
        (a[fail] - b[fail]).abs() < 1e-7,
        "fail prob: {} vs {}",
        a[fail],
        b[fail]
    );
}

#[test]
fn path_bounds_bracket_uniformization_on_paper_models() {
    for (label, seu, erasure) in [
        ("transient", 1e-6, 0.0),
        ("permanent", 0.0, 1e-7),
        ("mixed", 1e-6, 1e-7),
    ] {
        let model = SimplexModel::new(CodeParams::rs18_16(), rates(seu, erasure), Scrubbing::None);
        let space = StateSpace::explore(&model).expect("explore");
        let Some(fail) = space.index_of(&model.fail_state()) else {
            continue;
        };
        let t = 2.0;
        let p = transient(&space, t, &UniformizationOptions::default()).expect("solve")[fail];
        let b = absorption_bounds(&space, fail, t, &PathOptions::default()).expect("bounds");
        assert!(p > 0.0, "{label}");
        assert!(
            b.contains_ln(p.ln(), 1e-6),
            "{label}: p = {p:e} outside [{:e}, {:e}]",
            b.lower(),
            b.upper()
        );
        // Highly-reliable regime ⇒ bounds within a fraction of a percent.
        assert!(b.ln_width() < 0.01, "{label}: width {}", b.ln_width());
    }
}

#[test]
fn duplex_path_bounds_track_the_tiny_tail() {
    // The Fig. 9 low-rate regime: probabilities around 1e-60.
    let model = DuplexModel::new(CodeParams::rs18_16(), rates(0.0, 1e-9), Scrubbing::None);
    let space = StateSpace::explore(&model).expect("explore");
    let fail = space.index_of(&model.fail_state()).expect("reachable");
    let t = 730.0; // 24 months in days
    let p = transient(&space, t, &UniformizationOptions::default()).expect("solve")[fail];
    let b = absorption_bounds(&space, fail, t, &PathOptions::default()).expect("bounds");
    assert!(p > 0.0 && p < 1e-30, "p = {p:e}");
    assert!(
        b.contains_ln(p.ln(), 1e-3),
        "p = {p:e}, ln p = {}, bounds [{}, {}]",
        p.ln(),
        b.ln_lower,
        b.ln_upper
    );
}

#[test]
fn steady_state_of_scrubbed_chain_is_all_fail() {
    // With an absorbing Fail state, the long-run distribution must be a
    // point mass on Fail regardless of scrubbing.
    let model = SimplexModel::new(
        CodeParams::rs18_16(),
        rates(1e-3, 1e-4),
        Scrubbing::Periodic {
            period: Time::from_days(0.1),
        },
    );
    let space = StateSpace::explore(&model).expect("explore");
    let pi = rsmem_ctmc::steady::steady_state(&space).expect("steady state");
    let fail = space.index_of(&model.fail_state()).expect("reachable");
    assert!((pi[fail] - 1.0).abs() < 1e-8);
}

#[test]
fn mean_time_to_failure_scales_with_scrubbing() {
    // MTTF (an extension beyond the paper) must increase monotonically as
    // scrubbing gets faster.
    let mut last = 0.0;
    for period_days in [1.0, 0.5, 0.1, 0.02] {
        let model = SimplexModel::new(
            CodeParams::rs18_16(),
            rates(1e-3, 0.0),
            Scrubbing::Periodic {
                period: Time::from_days(period_days),
            },
        );
        let space = StateSpace::explore(&model).expect("explore");
        let mttf = rsmem_ctmc::steady::mean_time_to_absorption(&space).expect("mttf");
        assert!(
            mttf > last,
            "period {period_days}: MTTF {mttf} not increasing past {last}"
        );
        last = mttf;
    }
}
