//! Cached global-registry handles for the Monte-Carlo runner and the
//! duplex arbiter.
//!
//! Shard workers batch outcome counts locally and publish them with one
//! atomic add per counter per shard, so instrumentation adds a handful
//! of relaxed atomics per 256-trial shard — invisible next to the
//! encode/decode work a shard performs.

use rsmem_obs::metrics::{global, Counter};
use std::sync::OnceLock;

/// Monte-Carlo campaign counters.
pub(crate) struct McMetrics {
    /// Completed shards.
    pub shards: Counter,
    /// Completed trials.
    pub trials: Counter,
    /// Per-outcome trial counts.
    pub correct: Counter,
    pub silent: Counter,
    pub detected: Counter,
}

pub(crate) fn mc_metrics() -> &'static McMetrics {
    static METRICS: OnceLock<McMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        let by_outcome = |o: &str| r.counter("rsmem_solver_mc_outcomes_total", &[("outcome", o)]);
        McMetrics {
            shards: r.counter("rsmem_solver_mc_shards_total", &[]),
            trials: r.counter("rsmem_solver_mc_trials_total", &[]),
            correct: by_outcome("correct"),
            silent: by_outcome("silent"),
            detected: by_outcome("detected"),
        }
    })
}

/// Arbiter decision counters, one per [`crate::ArbiterVerdict`] shape.
pub(crate) struct ArbiterMetrics {
    pub no_flags: Counter,
    pub equal_flagged: Counter,
    pub unflagged_wins: Counter,
    pub single_survivor: Counter,
    pub no_output: Counter,
}

pub(crate) fn arbiter_metrics() -> &'static ArbiterMetrics {
    static METRICS: OnceLock<ArbiterMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        let by_decision = |d: &str| r.counter("rsmem_arbiter_decisions_total", &[("decision", d)]);
        ArbiterMetrics {
            no_flags: by_decision("no_flags"),
            equal_flagged: by_decision("equal_flagged"),
            unflagged_wins: by_decision("unflagged_wins"),
            single_survivor: by_decision("single_survivor"),
            no_output: by_decision("no_output"),
        }
    })
}

/// Eagerly registers the Monte-Carlo and arbiter metric families (all
/// label variants) in the global registry.
pub fn register_metrics() {
    let _ = mc_metrics();
    let _ = arbiter_metrics();
}
