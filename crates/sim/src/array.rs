//! Whole-memory array simulation with multi-bit upsets and interleaving.
//!
//! The paper models a single word and notes that "the extension by
//! considering the whole memory is straightforward". This module builds
//! that extension — an array of `words` simplex codewords in one physical
//! symbol sequence — and adds two effects the per-word Markov model
//! cannot see:
//!
//! * **multi-bit upsets (MBUs)**: an SEU flips `mbu_width_bits`
//!   physically adjacent bits. When the burst crosses a symbol boundary
//!   it corrupts *two* symbols of the same word — violating the model's
//!   single-symbol-per-event assumption and degrading real reliability;
//! * **interleaving** ([`rsmem_code::Interleaver`]): with depth > 1,
//!   physically adjacent symbols belong to different codewords, so an
//!   MBU splits into independent single-symbol errors and the model's
//!   assumption is restored.
//!
//! The `ablation_mbu` bench and integration tests quantify both.

use crate::arbiter::{combine, mask, verdict_of_batch, ArbiterOutput};
use crate::events::sample_exponential;
use crate::memory::MemoryModule;
use crate::runner::wilson_interval;
use crate::{ScrubTiming, SimConfig, SimError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsmem_code::{BatchDecoder, BatchOutcome, DecodeOpts, Interleaver, RsCode, Symbol};

/// Configuration of a whole-memory array simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrayConfig {
    /// Per-word configuration (code, rates, scrubbing, horizon).
    pub base: SimConfig,
    /// Number of codewords in the array.
    pub words: usize,
    /// Bits flipped per SEU event (1 = the paper's single-bit model;
    /// ≥ 2 = MBU). The burst is physically contiguous and clamped at the
    /// array end.
    pub mbu_width_bits: u32,
    /// Interleaving depth (1 = none). Must divide `words`.
    pub interleave_depth: usize,
}

impl ArrayConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] on zero words/width/depth or a
    /// depth that does not divide the word count; plus base-config
    /// errors.
    pub fn validate(&self) -> Result<(), SimError> {
        self.base.validate()?;
        if self.words == 0 {
            return Err(SimError::InvalidParameter {
                name: "words",
                value: 0.0,
            });
        }
        if self.mbu_width_bits == 0 {
            return Err(SimError::InvalidParameter {
                name: "mbu_width_bits",
                value: 0.0,
            });
        }
        if self.interleave_depth == 0 || !self.words.is_multiple_of(self.interleave_depth) {
            return Err(SimError::InvalidParameter {
                name: "interleave_depth",
                value: self.interleave_depth as f64,
            });
        }
        Ok(())
    }
}

/// Results of an array campaign.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrayReport {
    /// Trials run.
    pub trials: usize,
    /// Words per trial.
    pub words: usize,
    /// Words that failed to deliver correct data, summed over trials.
    pub failed_words: usize,
    /// ... of which silently corrupted (wrong data, no indication).
    pub silent_words: usize,
    /// Per-word failure fraction.
    pub word_failure_fraction: f64,
    /// 95% Wilson interval on the word failure fraction.
    pub wilson_95: (f64, f64),
    /// Eq.-(1)-style BER estimate, `m(n−k)/k ×` failure fraction.
    pub ber_estimate: f64,
}

/// The physical memory: an interleaved array of simplex codewords.
struct Array {
    modules: Vec<MemoryModule>,
    interleaver: Interleaver,
    n: usize,
    m_bits: u32,
}

impl Array {
    /// Total physical symbols.
    fn symbols(&self) -> usize {
        self.modules.len() * self.n
    }

    /// Total physical bits.
    fn bits(&self) -> u64 {
        self.symbols() as u64 * self.m_bits as u64
    }

    /// Maps a physical symbol index to `(module, symbol)`.
    fn locate(&self, physical_symbol: usize) -> (usize, usize) {
        let depth = self.interleaver.depth();
        let group_len = self.n * depth;
        let group = physical_symbol / group_len;
        let within = physical_symbol % group_len;
        let (word_in_group, sym) = self.interleaver.locate(within);
        (group * depth + word_in_group, sym)
    }

    /// Flips one physical bit.
    fn flip_physical_bit(&mut self, physical_bit: u64) {
        let symbol = (physical_bit / self.m_bits as u64) as usize;
        let bit = (physical_bit % self.m_bits as u64) as u32;
        let (module, sym) = self.locate(symbol);
        self.modules[module].flip_bit(sym, bit);
    }
}

/// Runs `trials` independent stores of a whole simplex array.
///
/// # Errors
///
/// [`SimError`] on invalid configuration or zero trials.
pub fn run_simplex_array(
    config: &ArrayConfig,
    trials: usize,
    seed: u64,
) -> Result<ArrayReport, SimError> {
    config.validate()?;
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let code = RsCode::new(config.base.n, config.base.k, config.base.m)?;
    let interleaver = Interleaver::new(config.interleave_depth)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut decoder = BatchDecoder::new();
    let mut failed_words = 0usize;
    let mut silent_words = 0usize;

    for _ in 0..trials {
        let (f, s) = run_one_trial(&code, config, interleaver, &mut rng, &mut decoder);
        failed_words += f;
        silent_words += s;
    }

    let total_words = trials * config.words;
    let word_failure_fraction = failed_words as f64 / total_words as f64;
    let prefactor =
        config.base.m as f64 * (config.base.n - config.base.k) as f64 / config.base.k as f64;
    Ok(ArrayReport {
        trials,
        words: config.words,
        failed_words,
        silent_words,
        word_failure_fraction,
        wilson_95: wilson_interval(failed_words, total_words),
        ber_estimate: prefactor * word_failure_fraction,
    })
}

/// Runs `trials` independent stores of a whole **duplex** array: two
/// physical module arrays, each independently interleaved and fault-
/// injected, read back word-pair-by-word-pair through the Section-3
/// arbiter.
///
/// # Errors
///
/// [`SimError`] on invalid configuration or zero trials.
pub fn run_duplex_array(
    config: &ArrayConfig,
    trials: usize,
    seed: u64,
) -> Result<ArrayReport, SimError> {
    config.validate()?;
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let code = RsCode::new(config.base.n, config.base.k, config.base.m)?;
    let interleaver = Interleaver::new(config.interleave_depth)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut decoder = BatchDecoder::new();
    let mut failed_words = 0usize;
    let mut silent_words = 0usize;

    for _ in 0..trials {
        let (f, s) = run_one_duplex_trial(&code, config, interleaver, &mut rng, &mut decoder);
        failed_words += f;
        silent_words += s;
    }

    let total_words = trials * config.words;
    let word_failure_fraction = failed_words as f64 / total_words as f64;
    let prefactor =
        config.base.m as f64 * (config.base.n - config.base.k) as f64 / config.base.k as f64;
    Ok(ArrayReport {
        trials,
        words: config.words,
        failed_words,
        silent_words,
        word_failure_fraction,
        wilson_95: wilson_interval(failed_words, total_words),
        ber_estimate: prefactor * word_failure_fraction,
    })
}

fn run_one_duplex_trial(
    code: &RsCode,
    config: &ArrayConfig,
    interleaver: Interleaver,
    rng: &mut StdRng,
    decoder: &mut BatchDecoder,
) -> (usize, usize) {
    let originals: Vec<Vec<Symbol>> = (0..config.words)
        .map(|_| {
            (0..code.k())
                .map(|_| rng.gen_range(0..code.field().size()) as Symbol)
                .collect()
        })
        .collect();
    let mut replicas: Vec<Array> = (0..2)
        .map(|_| Array {
            modules: originals
                .iter()
                .map(|d| MemoryModule::new(code.encode(d).expect("valid"), config.base.m))
                .collect(),
            interleaver,
            n: code.n(),
            m_bits: config.base.m,
        })
        .collect();

    let per_array_bits = replicas[0].bits() as f64;
    let per_array_symbols = replicas[0].symbols() as f64;
    let seu_rate = config.base.seu_per_bit_day * per_array_bits;
    let perm_rate = config.base.erasure_per_symbol_day * per_array_symbols;
    let horizon = config.base.store_days;

    let mut t_seu = [
        sample_exponential(rng, seu_rate),
        sample_exponential(rng, seu_rate),
    ];
    let mut t_perm = [
        sample_exponential(rng, perm_rate),
        sample_exponential(rng, perm_rate),
    ];
    let mut t_scrub = match config.base.scrub {
        None => f64::INFINITY,
        Some((period, _)) => period,
    };

    loop {
        let mut best = f64::INFINITY;
        for r in 0..2 {
            best = best.min(t_seu[r]).min(t_perm[r]);
        }
        best = best.min(t_scrub);
        if best >= horizon {
            break;
        }
        if best == t_scrub {
            scrub_duplex_arrays(code, &mut replicas, decoder);
            t_scrub += match config.base.scrub {
                None => f64::INFINITY,
                Some((period, ScrubTiming::Periodic)) => period,
                Some((period, ScrubTiming::Exponential)) => sample_exponential(rng, 1.0 / period),
            };
            continue;
        }
        for r in 0..2 {
            if best == t_seu[r] {
                let start = rng.gen_range(0..replicas[r].bits());
                for offset in 0..config.mbu_width_bits as u64 {
                    let b = start + offset;
                    if b >= replicas[r].bits() {
                        break;
                    }
                    replicas[r].flip_physical_bit(b);
                }
                t_seu[r] += sample_exponential(rng, seu_rate);
                break;
            }
            if best == t_perm[r] {
                let symbol = rng.gen_range(0..replicas[r].symbols());
                let (module, sym) = replicas[r].locate(symbol);
                let value = rng.gen_range(0..code.field().size()) as Symbol;
                replicas[r].modules[module].stick(sym, value);
                t_perm[r] += sample_exponential(rng, perm_rate);
                break;
            }
        }
    }

    // Final read: mask every word-pair (arbiter step 1), batch-decode
    // all 2·words masked words at once, then run the flag comparison
    // per pair — the same pipeline as the arbiter, restructured around
    // one `BatchDecoder` pass.
    let mut words = Vec::with_capacity(2 * originals.len());
    let mut erasures = Vec::with_capacity(2 * originals.len());
    for w in 0..originals.len() {
        let (m1, m2) = (&replicas[0].modules[w], &replicas[1].modules[w]);
        let (w1, w2, common) = mask(code, m1.read(), &m1.erasures(), m2.read(), &m2.erasures())
            .expect("well-formed stored words");
        words.push(w1);
        words.push(w2);
        erasures.push(common.clone());
        erasures.push(common);
    }
    let mut outcomes = Vec::with_capacity(words.len());
    decoder
        .decode_batch(
            code,
            &mut words,
            &erasures,
            &DecodeOpts::default(),
            &mut outcomes,
        )
        .expect("well-formed stored words");
    let mut failed = 0usize;
    let mut silent = 0usize;
    for (w, original) in originals.iter().enumerate() {
        let v1 = verdict_of_batch(code, &words[2 * w], &outcomes[2 * w]);
        let v2 = verdict_of_batch(code, &words[2 * w + 1], &outcomes[2 * w + 1]);
        match combine(v1, v2) {
            ArbiterOutput::NoOutput => failed += 1,
            ArbiterOutput::Data { data, .. } => {
                if data != *original {
                    failed += 1;
                    silent += 1;
                }
            }
        }
    }
    (failed, silent)
}

/// Per-word-pair joint scrub across the two replica arrays (the same
/// masking + decode + rewrite the single-pair `DuplexSim` performs),
/// with all 2·words decodes pushed through one batch pass.
fn scrub_duplex_arrays(code: &RsCode, replicas: &mut [Array], decoder: &mut BatchDecoder) {
    let word_count = replicas[0].modules.len();
    let mut words = Vec::with_capacity(2 * word_count);
    let mut erasures = Vec::with_capacity(2 * word_count);
    for w in 0..word_count {
        let (m1, m2) = (&replicas[0].modules[w], &replicas[1].modules[w]);
        let (w1, w2, common) = mask(code, m1.read(), &m1.erasures(), m2.read(), &m2.erasures())
            .expect("well-formed stored words");
        words.push(w1);
        words.push(w2);
        erasures.push(common.clone());
        erasures.push(common);
    }
    let mut outcomes = Vec::with_capacity(words.len());
    decoder
        .decode_batch(
            code,
            &mut words,
            &erasures,
            &DecodeOpts::default(),
            &mut outcomes,
        )
        .expect("well-formed stored words");
    for w in 0..word_count {
        for r in 0..2 {
            // A decodable word (Clean after masking, or Corrected in
            // place) is rewritten; an undecodable one is left alone.
            if !matches!(outcomes[2 * w + r], BatchOutcome::Failure(_)) {
                replicas[r].modules[w].write(&words[2 * w + r]);
            }
        }
    }
}

fn run_one_trial(
    code: &RsCode,
    config: &ArrayConfig,
    interleaver: Interleaver,
    rng: &mut StdRng,
    decoder: &mut BatchDecoder,
) -> (usize, usize) {
    // Store one random dataword per module.
    let originals: Vec<Vec<Symbol>> = (0..config.words)
        .map(|_| {
            let data: Vec<Symbol> = (0..code.k())
                .map(|_| rng.gen_range(0..code.field().size()) as Symbol)
                .collect();
            data
        })
        .collect();
    let mut array = Array {
        modules: originals
            .iter()
            .map(|d| MemoryModule::new(code.encode(d).expect("valid"), config.base.m))
            .collect(),
        interleaver,
        n: code.n(),
        m_bits: config.base.m,
    };

    let total_bits = array.bits() as f64;
    let total_symbols = array.symbols() as f64;
    let seu_rate = config.base.seu_per_bit_day * total_bits;
    let perm_rate = config.base.erasure_per_symbol_day * total_symbols;
    let horizon = config.base.store_days;

    let mut t_seu = sample_exponential(rng, seu_rate);
    let mut t_perm = sample_exponential(rng, perm_rate);
    let mut t_scrub = match config.base.scrub {
        None => f64::INFINITY,
        Some((period, _)) => period,
    };

    loop {
        let next = t_seu.min(t_perm).min(t_scrub);
        if next >= horizon {
            break;
        }
        if next == t_seu {
            // One SEU event: flip a contiguous physical burst.
            let start = rng.gen_range(0..array.bits());
            for offset in 0..config.mbu_width_bits as u64 {
                let b = start + offset;
                if b >= array.bits() {
                    break;
                }
                array.flip_physical_bit(b);
            }
            t_seu += sample_exponential(rng, seu_rate);
        } else if next == t_perm {
            let symbol = rng.gen_range(0..array.symbols());
            let (module, sym) = array.locate(symbol);
            let value = rng.gen_range(0..code.field().size()) as Symbol;
            array.modules[module].stick(sym, value);
            t_perm += sample_exponential(rng, perm_rate);
        } else {
            // Scrub every word: one batch decode over the whole array,
            // rewriting only the words the decoder actually corrected.
            let mut words: Vec<Vec<Symbol>> =
                array.modules.iter().map(|m| m.read().to_vec()).collect();
            let erasures: Vec<Vec<usize>> = array.modules.iter().map(|m| m.erasures()).collect();
            let mut outcomes = Vec::with_capacity(words.len());
            decoder
                .decode_batch(
                    code,
                    &mut words,
                    &erasures,
                    &DecodeOpts::default(),
                    &mut outcomes,
                )
                .expect("well-formed stored words");
            for (i, outcome) in outcomes.iter().enumerate() {
                if matches!(outcome, BatchOutcome::Corrected { .. }) {
                    array.modules[i].write(&words[i]);
                }
            }
            t_scrub += match config.base.scrub {
                None => f64::INFINITY,
                Some((period, ScrubTiming::Periodic)) => period,
                Some((period, ScrubTiming::Exponential)) => sample_exponential(rng, 1.0 / period),
            };
        }
    }

    // Final read of every word, decoded in one batch.
    let mut words: Vec<Vec<Symbol>> = array.modules.iter().map(|m| m.read().to_vec()).collect();
    let erasures: Vec<Vec<usize>> = array.modules.iter().map(|m| m.erasures()).collect();
    let mut outcomes = Vec::with_capacity(words.len());
    decoder
        .decode_batch(
            code,
            &mut words,
            &erasures,
            &DecodeOpts::default(),
            &mut outcomes,
        )
        .expect("well-formed stored words");
    let mut failed = 0usize;
    let mut silent = 0usize;
    for ((outcome, word), original) in outcomes.iter().zip(&words).zip(&originals) {
        match outcome {
            BatchOutcome::Failure(_) => failed += 1,
            _ => {
                if code.data_of(word).expect("word has length n") != &original[..] {
                    failed += 1;
                    silent += 1;
                }
            }
        }
    }
    (failed, silent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(seu: f64) -> SimConfig {
        SimConfig {
            seu_per_bit_day: seu,
            ..SimConfig::rs18_16_baseline()
        }
    }

    fn config(seu: f64, mbu: u32, depth: usize) -> ArrayConfig {
        ArrayConfig {
            base: base(seu),
            words: 16,
            mbu_width_bits: mbu,
            interleave_depth: depth,
        }
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(config(0.0, 1, 1).validate().is_ok());
        assert!(config(0.0, 0, 1).validate().is_err());
        assert!(config(0.0, 1, 0).validate().is_err());
        assert!(config(0.0, 1, 5).validate().is_err()); // 5 ∤ 16
        let mut c = config(0.0, 1, 1);
        c.words = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_free_array_never_fails() {
        let report = run_simplex_array(&config(0.0, 1, 1), 5, 3).unwrap();
        assert_eq!(report.failed_words, 0);
        assert_eq!(report.word_failure_fraction, 0.0);
    }

    #[test]
    fn single_bit_array_matches_single_word_rate() {
        // With mbu = 1 and no interleaving, each word is an independent
        // copy of the single-word simulator: the per-word failure fraction
        // must agree with runner::run_simplex within CI noise.
        let seu = 5e-3;
        let array = run_simplex_array(&config(seu, 1, 1), 120, 9).unwrap();
        let single = crate::runner::run_simplex(&base(seu), 1920, 9).unwrap();
        let diff = (array.word_failure_fraction - single.failure_fraction).abs();
        assert!(
            diff < 0.02,
            "array {} vs single-word {}",
            array.word_failure_fraction,
            single.failure_fraction
        );
    }

    #[test]
    fn mbu_hurts_and_interleaving_heals() {
        // Low enough rate that multi-event accumulation is secondary and
        // the boundary-crossing instant kill dominates the MBU effect.
        let seu = 1e-3;
        let trials = 200;
        let plain = run_simplex_array(&config(seu, 1, 1), trials, 21).unwrap();
        let mbu = run_simplex_array(&config(seu, 4, 1), trials, 21).unwrap();
        let healed = run_simplex_array(&config(seu, 4, 4), trials, 21).unwrap();
        // A 4-bit burst crosses a byte boundary with probability 3/8 and
        // then kills the t=1 word instantly: failures must rise clearly.
        assert!(
            mbu.word_failure_fraction > 2.0 * plain.word_failure_fraction,
            "mbu {} vs plain {}",
            mbu.word_failure_fraction,
            plain.word_failure_fraction
        );
        // Interleaving turns the burst into single-symbol errors spread
        // over different words. Those extra errors still accumulate, so
        // the fraction does not return to baseline — but the instant-kill
        // component must disappear, cutting failures substantially.
        assert!(
            healed.word_failure_fraction < 0.65 * mbu.word_failure_fraction,
            "healed {} vs mbu {}",
            healed.word_failure_fraction,
            mbu.word_failure_fraction
        );
        assert!(
            healed.word_failure_fraction >= plain.word_failure_fraction,
            "interleaving cannot beat the single-bit baseline: {} vs {}",
            healed.word_failure_fraction,
            plain.word_failure_fraction
        );
    }

    #[test]
    fn scrubbed_array_outperforms_unscrubbed() {
        let mut with = config(8e-3, 1, 1);
        with.base.scrub = Some((0.02, ScrubTiming::Periodic));
        let unscrubbed = run_simplex_array(&config(8e-3, 1, 1), 60, 31).unwrap();
        let scrubbed = run_simplex_array(&with, 60, 31).unwrap();
        assert!(scrubbed.word_failure_fraction < unscrubbed.word_failure_fraction);
    }

    #[test]
    fn reports_are_reproducible() {
        let a = run_simplex_array(&config(5e-3, 2, 2), 20, 77).unwrap();
        let b = run_simplex_array(&config(5e-3, 2, 2), 20, 77).unwrap();
        assert_eq!(a, b);
        let c = run_duplex_array(&config(5e-3, 2, 2), 10, 77).unwrap();
        let d = run_duplex_array(&config(5e-3, 2, 2), 10, 77).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn fault_free_duplex_array_never_fails() {
        let report = run_duplex_array(&config(0.0, 1, 1), 5, 3).unwrap();
        assert_eq!(report.failed_words, 0);
    }

    #[test]
    fn duplex_array_recovers_scattered_permanent_faults() {
        // Each replica accumulates stuck symbols independently; the
        // erasure-masking arbiter repairs every single-sided fault.
        let mut cfg = config(0.0, 1, 1);
        cfg.base.erasure_per_symbol_day = 5e-3; // ~0.18 faults/word/replica
        let report = run_duplex_array(&cfg, 40, 9).unwrap();
        assert_eq!(
            report.failed_words, 0,
            "single-sided permanent faults must all be masked"
        );
    }

    #[test]
    fn duplex_array_beats_simplex_array_under_mixed_faults() {
        let mut cfg = config(2e-3, 1, 1);
        cfg.base.erasure_per_symbol_day = 5e-3;
        let trials = 60;
        let s = run_simplex_array(&cfg, trials, 13).unwrap();
        let d = run_duplex_array(&cfg, trials, 13).unwrap();
        assert!(
            d.word_failure_fraction < s.word_failure_fraction,
            "duplex {} vs simplex {}",
            d.word_failure_fraction,
            s.word_failure_fraction
        );
    }

    #[test]
    fn duplex_array_scrubbing_helps() {
        let mut with = config(8e-3, 1, 1);
        with.base.scrub = Some((0.02, ScrubTiming::Periodic));
        let unscrubbed = run_duplex_array(&config(8e-3, 1, 1), 40, 17).unwrap();
        let scrubbed = run_duplex_array(&with, 40, 17).unwrap();
        assert!(scrubbed.word_failure_fraction <= unscrubbed.word_failure_fraction);
    }
}
