//! Time-ordered event queue and Poisson event streams.

use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduled<E> {
    /// Absolute event time in days.
    pub time: f64,
    /// The event payload.
    pub event: E,
}

impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order so the BinaryHeap pops the *earliest* event.
        // Event times are always finite by construction.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
    }
}

/// A min-heap event queue keyed by event time.
///
/// # Examples
///
/// ```
/// use rsmem_sim::events::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop().map(|s| s.event), Some("early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<Scheduled<E>>,
}

impl<E: PartialEq> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules `event` at absolute `time` (days).
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Scheduled { time, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Samples an exponential inter-arrival time with the given rate
/// (events per day). Returns `f64::INFINITY` for rate 0.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate_per_day: f64) -> f64 {
    debug_assert!(rate_per_day >= 0.0);
    if rate_per_day == 0.0 {
        return f64::INFINITY;
    }
    // Inverse-CDF with u in (0, 1]: −ln(u)/rate. gen::<f64>() ∈ [0,1);
    // use 1−u to exclude ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate_per_day
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 1u8);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, ());
    }

    #[test]
    fn exponential_sample_mean_is_reciprocal_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 0.25).abs() < 0.01,
            "sample mean {mean} far from 0.25"
        );
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(sample_exponential(&mut rng, 0.0), f64::INFINITY);
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..1000 {
            let s = sample_exponential(&mut rng, 100.0);
            assert!(s > 0.0 && s.is_finite());
        }
    }
}
