//! The duplex arbiter of the paper's Section 3, built on the real
//! Reed–Solomon decoder.
//!
//! The arbiter operates in three steps:
//!
//! 1. **Erasure recovery** — for every symbol position erased in exactly
//!    one module, the homologous symbol from the other module is
//!    substituted (masking). Positions erased in *both* modules remain
//!    erasures for both decoders.
//! 2. **Independent decoding** — each (masked) word is decoded by the
//!    word's [`MemoryCode`] (the paper's RS decoder, or any other
//!    family); a per-word *flag* is set iff a correction was performed.
//! 3. **Comparison** —
//!    * no flag set → output either word;
//!    * words equal, ≥1 flag → output (the correction was right);
//!    * words differ, exactly one flag → output the *unflagged* word
//!      (the flagged one mis-corrected);
//!    * words differ, both flags → **no output** (indistinguishable).
//!
//! A detected decode failure on one word is treated like a set flag with
//! no usable output for that word: if the other word decodes, it is
//! output; if both fail, there is no output.

use rsmem_code::{BatchOutcome, CodeError, DecodeOutcome, Symbol};
use rsmem_codes::MemoryCode;
use rsmem_obs::recorder;
use std::borrow::Cow;

/// The arbiter's verdict for one read access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArbiterOutput {
    /// A dataword was produced.
    Data {
        /// The `k` decoded data symbols.
        data: Vec<Symbol>,
        /// Which decision-rule branch produced the output (for
        /// diagnostics and tests).
        branch: ArbiterBranch,
    },
    /// The arbiter refused to output (both words flagged and different,
    /// or both undecodable).
    NoOutput,
}

impl ArbiterOutput {
    /// The decoded data, if an output was produced.
    pub fn data(&self) -> Option<&[Symbol]> {
        match self {
            ArbiterOutput::Data { data, .. } => Some(data),
            ArbiterOutput::NoOutput => None,
        }
    }
}

/// Which Section-3 decision branch fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterBranch {
    /// Neither word needed correction.
    NoFlags,
    /// Words equal with at least one flag set.
    EqualFlagged,
    /// Words differed; the unflagged word won.
    UnflaggedWins,
    /// One word failed to decode; the surviving word was output.
    SingleSurvivor,
}

/// Validates one module's inputs *before* the masking step touches them:
/// the word must have exactly `n` symbols and every erasure position must
/// be in range and unique. (Symbol-range checks are left to the decoder,
/// which sees every masked symbol anyway.)
fn validate_module<C: MemoryCode + ?Sized>(
    code: &C,
    word: &[Symbol],
    erasures: &[usize],
) -> Result<(), CodeError> {
    let result = validate_module_inner(code, word, erasures);
    if let Err(error) = &result {
        // A malformed module is a service incident, not a decode event:
        // freeze exactly what the caller handed us.
        if recorder::enabled() {
            recorder::record_exemplar_with("arbiter-reject", || recorder::Exemplar {
                code: format!(
                    "{}:{},{},{}",
                    code.params().family().name(),
                    code.n(),
                    code.k(),
                    code.symbol_bits()
                ),
                word: word.iter().map(|&s| u32::from(s)).collect(),
                erasures: erasures.iter().map(|&p| p as u32).collect(),
                detail: error.to_string(),
                ..recorder::Exemplar::default()
            });
        }
    }
    result
}

fn validate_module_inner<C: MemoryCode + ?Sized>(
    code: &C,
    word: &[Symbol],
    erasures: &[usize],
) -> Result<(), CodeError> {
    if word.len() != code.n() {
        return Err(CodeError::CodewordLength {
            got: word.len(),
            expected: code.n(),
        });
    }
    let mut seen = vec![false; code.n()];
    for &position in erasures {
        if position >= code.n() || seen[position] {
            return Err(CodeError::BadErasure {
                position,
                n: code.n(),
            });
        }
        seen[position] = true;
    }
    Ok(())
}

/// Both masked module words plus the positions erased in *both*
/// modules (the paper's common-erasure set X).
pub(crate) type MaskedPair = (Vec<Symbol>, Vec<Symbol>, Vec<usize>);

/// Step 1 of the arbiter, factored out so the batched Monte-Carlo path
/// can mask word-pairs up front and push all decodes through
/// [`rsmem_code::BatchDecoder`]: validates both modules, substitutes
/// every single-sided erasure from the sibling module, and returns the
/// two masked words plus the positions erased in *both* modules (which
/// stay erasures for both decoders).
///
/// # Errors
///
/// [`CodeError`] for malformed inputs, exactly like [`arbitrate`].
pub(crate) fn mask<C: MemoryCode + ?Sized>(
    code: &C,
    word1: &[Symbol],
    erasures1: &[usize],
    word2: &[Symbol],
    erasures2: &[usize],
) -> Result<MaskedPair, CodeError> {
    // Malformed inputs must surface as typed errors before the masking
    // step indexes into the words (found by rsmem-stress: out-of-range
    // erasure positions and short words used to panic here).
    validate_module(code, word1, erasures1)?;
    validate_module(code, word2, erasures2)?;

    let mut w1 = word1.to_vec();
    let mut w2 = word2.to_vec();
    let mut common_erasures = Vec::new();
    let in2 = |p: &usize| erasures2.contains(p);
    for &p in erasures1 {
        if in2(&p) {
            common_erasures.push(p);
        } else {
            // Module 2's symbol is trusted hardware-wise; substitute it.
            w1[p] = w2[p];
        }
    }
    for &p in erasures2 {
        if !erasures1.contains(&p) {
            w2[p] = word1[p];
        }
    }
    Ok((w1, w2, common_erasures))
}

/// One decoded word as the comparison step sees it: either a detected
/// failure, or data with the per-word correction flag.
#[derive(Debug, Clone)]
pub(crate) enum WordVerdict<'a> {
    /// The decoder detected an uncorrectable word.
    Failed,
    /// The decoder produced data; `flagged` iff it corrected anything.
    Decoded {
        /// The `k` decoded data symbols — borrowed from the word for
        /// systematic layouts, owned where extraction rebuilds them.
        data: Cow<'a, [Symbol]>,
        /// The Section-3 flag (a correction was performed).
        flagged: bool,
    },
}

/// The comparison view of a full scalar [`DecodeOutcome`].
pub(crate) fn verdict_of(outcome: &DecodeOutcome) -> WordVerdict<'_> {
    match outcome {
        DecodeOutcome::Failure(_) => WordVerdict::Failed,
        _ => WordVerdict::Decoded {
            data: Cow::Borrowed(outcome.data().expect("non-failure produces data")),
            flagged: outcome.is_flagged(),
        },
    }
}

/// The comparison view of a compact [`BatchOutcome`] whose word was
/// corrected in place by the batch decoder.
pub(crate) fn verdict_of_batch<'a, C: MemoryCode + ?Sized>(
    code: &C,
    word: &'a [Symbol],
    outcome: &BatchOutcome,
) -> WordVerdict<'a> {
    match outcome {
        BatchOutcome::Failure(_) => WordVerdict::Failed,
        BatchOutcome::Clean => WordVerdict::Decoded {
            data: code.data_of(word).expect("word has length n"),
            flagged: false,
        },
        BatchOutcome::Corrected { .. } => WordVerdict::Decoded {
            data: code.data_of(word).expect("word has length n"),
            flagged: true,
        },
    }
}

/// Steps 2½–3 of the arbiter: the flag-based comparison over the two
/// per-word verdicts, shared verbatim by the scalar [`arbitrate`] and
/// the batched campaign path (so the decision rule and its metrics
/// cannot drift apart).
pub(crate) fn combine(v1: WordVerdict<'_>, v2: WordVerdict<'_>) -> ArbiterOutput {
    let verdict = match (v1, v2) {
        (WordVerdict::Failed, WordVerdict::Failed) => ArbiterOutput::NoOutput,
        (WordVerdict::Failed, WordVerdict::Decoded { data, .. })
        | (WordVerdict::Decoded { data, .. }, WordVerdict::Failed) => ArbiterOutput::Data {
            data: data.into_owned(),
            branch: ArbiterBranch::SingleSurvivor,
        },
        (
            WordVerdict::Decoded {
                data: d1,
                flagged: f1,
            },
            WordVerdict::Decoded {
                data: d2,
                flagged: f2,
            },
        ) => {
            if !f1 && !f2 {
                ArbiterOutput::Data {
                    data: d1.into_owned(),
                    branch: ArbiterBranch::NoFlags,
                }
            } else if d1 == d2 {
                ArbiterOutput::Data {
                    data: d1.into_owned(),
                    branch: ArbiterBranch::EqualFlagged,
                }
            } else if f1 != f2 {
                // Exactly one flag: the unflagged word is correct.
                let winner = if f1 { d2 } else { d1 };
                ArbiterOutput::Data {
                    data: winner.into_owned(),
                    branch: ArbiterBranch::UnflaggedWins,
                }
            } else {
                // Both flagged and different: cannot discriminate.
                ArbiterOutput::NoOutput
            }
        }
    };
    let metrics = crate::metrics::arbiter_metrics();
    match &verdict {
        ArbiterOutput::NoOutput => metrics.no_output.inc(),
        ArbiterOutput::Data { branch, .. } => match branch {
            ArbiterBranch::NoFlags => metrics.no_flags.inc(),
            ArbiterBranch::EqualFlagged => metrics.equal_flagged.inc(),
            ArbiterBranch::UnflaggedWins => metrics.unflagged_wins.inc(),
            ArbiterBranch::SingleSurvivor => metrics.single_survivor.inc(),
        },
    }
    if recorder::enabled() {
        // `a` encodes the branch (0 = no output), `b` whether data came
        // out — the decisions a post-incident timeline replays.
        let (name, a) = match &verdict {
            ArbiterOutput::NoOutput => ("no_output", 0),
            ArbiterOutput::Data { branch, .. } => match branch {
                ArbiterBranch::NoFlags => ("no_flags", 1),
                ArbiterBranch::EqualFlagged => ("equal_flagged", 2),
                ArbiterBranch::UnflaggedWins => ("unflagged_wins", 3),
                ArbiterBranch::SingleSurvivor => ("single_survivor", 4),
            },
        };
        recorder::record_event(
            recorder::RecordKind::Arbiter,
            "sim.arbiter",
            name,
            a,
            u64::from(verdict.data().is_some()),
        );
    }
    verdict
}

/// Runs the Section-3 arbiter over the two module words.
///
/// `word1`/`word2` are the raw stored words; `erasures1`/`erasures2` the
/// located permanent-fault positions per module.
///
/// # Tie-break policy
///
/// When both words are flagged (each decoder performed a correction) and
/// the decoded datawords still differ, the arbiter emits **no output** —
/// even though one of the two words may in fact be correct. This is the
/// paper's rule, and it is the only sound one at this level: the flags
/// are symmetric and the arbiter has no third copy to break the tie with,
/// so any choice would convert a detectable event into a potential silent
/// corruption half of the time. The cost is availability (a detected,
/// uncorrected access), never integrity.
///
/// # Errors
///
/// Only [`CodeError`] for malformed inputs (wrong word length,
/// out-of-range or duplicate erasure positions) — uncorrectable
/// corruption is a [`ArbiterOutput::NoOutput`], not an error.
pub fn arbitrate<C: MemoryCode + ?Sized>(
    code: &C,
    word1: &[Symbol],
    erasures1: &[usize],
    word2: &[Symbol],
    erasures2: &[usize],
) -> Result<ArbiterOutput, CodeError> {
    // Step 1: validation + erasure recovery (masking).
    let (w1, w2, common_erasures) = mask(code, word1, erasures1, word2, erasures2)?;

    // Step 2: independent decoding with the common (unmaskable) erasures.
    let out1 = code.decode(&w1, &common_erasures)?;
    let out2 = code.decode(&w2, &common_erasures)?;

    // Step 3: flag-based comparison.
    Ok(combine(verdict_of(&out1), verdict_of(&out2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsmem_code::RsCode;

    fn code() -> RsCode {
        RsCode::new(18, 16, 8).unwrap()
    }

    fn data() -> Vec<Symbol> {
        (40..56).collect()
    }

    #[test]
    fn clean_pair_outputs_without_flags() {
        let code = code();
        let w = code.encode(&data()).unwrap();
        let out = arbitrate(&code, &w, &[], &w, &[]).unwrap();
        assert_eq!(
            out,
            ArbiterOutput::Data {
                data: data(),
                branch: ArbiterBranch::NoFlags
            }
        );
    }

    #[test]
    fn single_module_erasure_is_masked_for_free() {
        let code = code();
        let clean = code.encode(&data()).unwrap();
        let mut w1 = clean.clone();
        w1[4] = 0x00; // stuck symbol, located
                      // Masking replaces it with module 2's good symbol: no correction.
        let out = arbitrate(&code, &w1, &[4], &clean, &[]).unwrap();
        assert_eq!(out.data(), Some(&data()[..]));
        if let ArbiterOutput::Data { branch, .. } = out {
            assert_eq!(branch, ArbiterBranch::NoFlags);
        }
    }

    #[test]
    fn common_erasures_are_decoded_not_masked() {
        let code = code();
        let clean = code.encode(&data()).unwrap();
        let mut w1 = clean.clone();
        let mut w2 = clean.clone();
        w1[7] = 0x11;
        w2[7] = 0x22; // both modules stuck at position 7 (an X pair)
        let out = arbitrate(&code, &w1, &[7], &w2, &[7]).unwrap();
        assert_eq!(out.data(), Some(&data()[..]));
    }

    #[test]
    fn masked_erasure_onto_errored_symbol_still_corrects() {
        // A `b` pair: module 1 position erased, module 2 same position has
        // a random error. The mask imports the error; the decoder then
        // fixes it (1 random error ≤ t).
        let code = code();
        let clean = code.encode(&data()).unwrap();
        let mut w1 = clean.clone();
        let mut w2 = clean.clone();
        w1[3] = 0x7f; // stuck
        w2[3] ^= 0x04; // SEU on the homologous symbol
        let out = arbitrate(&code, &w1, &[3], &w2, &[]).unwrap();
        assert_eq!(out.data(), Some(&data()[..]));
    }

    #[test]
    fn unflagged_word_wins_on_disagreement() {
        // Word 1 suffers 2 SEUs (beyond t=1): it either fails (single
        // survivor) or mis-corrects (flagged, differs) — in both cases the
        // arbiter must emit word 2's data.
        let code = code();
        let clean = code.encode(&data()).unwrap();
        let mut w1 = clean.clone();
        w1[0] ^= 0x40;
        w1[9] ^= 0x02;
        let out = arbitrate(&code, &w1, &[], &clean, &[]).unwrap();
        assert_eq!(out.data(), Some(&data()[..]));
        if let ArbiterOutput::Data { branch, .. } = &out {
            assert!(
                matches!(
                    branch,
                    ArbiterBranch::UnflaggedWins | ArbiterBranch::SingleSurvivor
                ),
                "branch {branch:?}"
            );
        }
    }

    #[test]
    fn equal_corrections_are_trusted() {
        // The same single SEU position/value in both words (an `ec` pair):
        // both decoders correct identically → EqualFlagged.
        let code = code();
        let clean = code.encode(&data()).unwrap();
        let mut w1 = clean.clone();
        let mut w2 = clean.clone();
        w1[5] ^= 0x08;
        w2[5] ^= 0x08;
        let out = arbitrate(&code, &w1, &[], &w2, &[]).unwrap();
        assert_eq!(out.data(), Some(&data()[..]));
        if let ArbiterOutput::Data { branch, .. } = out {
            assert_eq!(branch, ArbiterBranch::EqualFlagged);
        }
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        // found by rsmem-stress: the masking step used to index into the
        // words before any validation, so these inputs panicked.
        let code = RsCode::new(15, 9, 4).unwrap();
        let w = code.encode(&[0; 9]).unwrap();
        // Out-of-range erasure position (either module).
        assert!(arbitrate(&code, &w, &[99], &w, &[]).is_err());
        assert!(arbitrate(&code, &w, &[], &w, &[15]).is_err());
        // Duplicate erasure position.
        assert!(arbitrate(&code, &w, &[3, 3], &w, &[]).is_err());
        // Short and long words (either module).
        assert!(arbitrate(&code, &w[..10], &[12], &w, &[]).is_err());
        let long: Vec<Symbol> = w.iter().copied().chain([0]).collect();
        assert!(arbitrate(&code, &w, &[], &long, &[]).is_err());
    }

    #[test]
    fn both_flagged_disagreeing_withholds_output_even_when_one_is_right() {
        // Word 2 has a single SEU: its decoder corrects it (flag set,
        // data RIGHT). Word 1 has 2 SEUs chosen so that its decoder
        // mis-corrects (flag set, data WRONG). Both flagged + different
        // → the paper's tie-break refuses to output although word 2 is
        // actually correct: the arbiter cannot know which flag to trust.
        let code = code(); // RS(18,16), t = 1
        let clean = code.encode(&data()).unwrap();

        // Deterministically search a small pattern space for a 2-error
        // word that mis-corrects (GF(256) shortening detects most).
        let mut miscorrecting: Option<Vec<Symbol>> = None;
        'search: for p2 in 1..code.n() {
            for magnitude in 1..=255u16 {
                let mut w = clean.clone();
                w[0] ^= 0x01;
                w[p2] ^= magnitude;
                if let DecodeOutcome::Corrected { data: d, .. } = code.decode(&w, &[]).unwrap() {
                    if d != data() {
                        miscorrecting = Some(w);
                        break 'search;
                    }
                }
            }
        }
        let w1 = miscorrecting.expect("RS(18,16) has 2-error mis-corrections");

        let mut w2 = clean.clone();
        w2[9] ^= 0x08; // single correctable SEU → flagged, correct data
        assert_eq!(
            code.decode(&w2, &[]).unwrap().data(),
            Some(&data()[..]),
            "w2 must decode correctly"
        );

        let out = arbitrate(&code, &w1, &[], &w2, &[]).unwrap();
        assert_eq!(out, ArbiterOutput::NoOutput);
    }

    #[test]
    fn hopeless_corruption_yields_no_output() {
        // Clobber both words heavily at distinct positions so both decoders
        // fail or mis-correct to different words.
        let code = code();
        let clean = code.encode(&data()).unwrap();
        let mut w1 = clean.clone();
        let mut w2 = clean.clone();
        for i in 0..8 {
            w1[i] ^= 0x31 + i as Symbol;
            w2[17 - i] ^= 0x55 + i as Symbol;
        }
        let out = arbitrate(&code, &w1, &[], &w2, &[]).unwrap();
        // With 8 errors per word the overwhelmingly likely outcome is
        // detected failure on both → NoOutput. A mis-correction would
        // surface as Data with wrong content; either way it must not be
        // the original data by luck — assert only the no-silent-success
        // property we rely on elsewhere.
        if let Some(d) = out.data() {
            assert_ne!(d, &data()[..], "8-error words cannot decode correctly");
        }
    }
}
