//! Monte-Carlo campaign runner and statistics.
//!
//! Campaigns are **sharded**: trials are split into fixed-size blocks of
//! [`SHARD_TRIALS`], each with its own RNG seeded deterministically from
//! `(seed, shard_index)`. Shards are independent jobs, so they fan out
//! across `std::thread::scope` workers — and because the shard layout
//! depends only on `(trials, seed)`, never on the worker count, a
//! campaign's report is **bit-identical for every thread count**.
//! Outcome counts are merged by integer addition, which is
//! order-independent.

use crate::arbiter::{combine, verdict_of_batch, ArbiterOutput};
use crate::metrics::mc_metrics;
use crate::system::{DuplexSim, SimplexSim};
use crate::{SimConfig, SimError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsmem_code::{BatchOutcome, Symbol};
use rsmem_codes::MemoryCode;
use rsmem_obs::log::{current_trace_id, trace_scope};
use rsmem_obs::recorder;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Trials per shard. Small enough that modest campaigns still spread
/// across workers, large enough that per-shard overhead (one RNG seed,
/// one task dispatch) stays negligible.
pub const SHARD_TRIALS: usize = 256;

/// The RNG seed of shard `shard` in a campaign seeded with `seed`:
/// a SplitMix64 mix, so neighbouring shards (and neighbouring campaign
/// seeds) get decorrelated streams.
fn shard_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Classification of one storage-period trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrialOutcome {
    /// The read returned the originally stored data.
    Correct,
    /// The read returned *wrong* data without any indication (decoder
    /// mis-correction that slipped past the arbiter).
    SilentCorruption,
    /// The system reported an unrecoverable error (no output).
    Detected,
}

/// Aggregated results of a Monte-Carlo campaign.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonteCarloReport {
    /// Number of trials run.
    pub trials: usize,
    /// Trials that returned correct data.
    pub correct: usize,
    /// Trials with silent data corruption.
    pub silent: usize,
    /// Trials with a detected failure.
    pub detected: usize,
    /// `(silent + detected) / trials` — the empirical analogue of the
    /// Markov models' `P_Fail`.
    pub failure_fraction: f64,
    /// 95% Wilson confidence interval on the failure fraction.
    pub wilson_95: (f64, f64),
    /// `m·(n−k)/k × failure_fraction` — the empirical Eq.-(1) BER.
    pub ber_estimate: f64,
}

impl fmt::Display for MonteCarloReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trials: {} correct, {} silent, {} detected; \
             P_fail = {:.3e} (95% CI [{:.3e}, {:.3e}]), BER ≈ {:.3e}",
            self.trials,
            self.correct,
            self.silent,
            self.detected,
            self.failure_fraction,
            self.wilson_95.0,
            self.wilson_95.1,
            self.ber_estimate
        )
    }
}

/// 95% Wilson score interval for a binomial proportion.
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    assert!(trials > 0, "wilson interval of zero trials");
    let z = 1.959_963_984_540_054_f64; // Φ⁻¹(0.975)
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    // At the boundaries the analytic endpoint is exactly 0 (or 1); pin it
    // so floating-point rounding cannot leak an ulp past the boundary.
    let lo = if successes == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (center + half).min(1.0)
    };
    (lo, hi)
}

/// Outcome counts of a (partial) campaign. Merging is integer addition:
/// associative and commutative, so shard completion order cannot affect
/// the final report.
#[derive(Debug, Clone, Copy, Default)]
struct OutcomeCounts {
    correct: usize,
    silent: usize,
    detected: usize,
}

impl OutcomeCounts {
    fn record(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::Correct => self.correct += 1,
            TrialOutcome::SilentCorruption => self.silent += 1,
            TrialOutcome::Detected => self.detected += 1,
        }
    }

    fn merge(mut self, other: OutcomeCounts) -> OutcomeCounts {
        self.correct += other.correct;
        self.silent += other.silent;
        self.detected += other.detected;
        self
    }
}

fn summarize(counts: OutcomeCounts, n: usize, k: usize, m: u32) -> MonteCarloReport {
    let trials = counts.correct + counts.silent + counts.detected;
    let failures = counts.silent + counts.detected;
    let failure_fraction = failures as f64 / trials as f64;
    let prefactor = m as f64 * (n - k) as f64 / k as f64;
    MonteCarloReport {
        trials,
        correct: counts.correct,
        silent: counts.silent,
        detected: counts.detected,
        failure_fraction,
        wilson_95: wilson_interval(failures, trials),
        ber_estimate: prefactor * failure_fraction,
    }
}

/// Runs the sharded campaign: workers pull shard indices from an atomic
/// cursor, simulate each shard with its own deterministically-seeded RNG,
/// and the per-worker counts merge commutatively.
///
/// `run_shard_trials` receives the shard's RNG and its trial count and
/// returns the shard's outcome counts. Handing the closure the *whole*
/// shard (rather than one trial at a time) lets campaign entry points
/// prepare all trials first and then push the final read-back decodes
/// through one [`BatchDecoder`] pass per shard.
fn run_sharded<F>(trials: usize, seed: u64, threads: usize, run_shard_trials: F) -> OutcomeCounts
where
    F: Fn(&mut StdRng, usize) -> OutcomeCounts + Sync,
{
    let shards = trials.div_ceil(SHARD_TRIALS);
    let metrics = mc_metrics();
    let run_shard = |shard: usize| {
        // Trace level: one span per 256-trial shard is far too chatty
        // for normal logging but exactly the granularity the profiler's
        // latency histogram wants.
        let mut shard_span = rsmem_obs::span_at(rsmem_obs::Level::Trace, "sim.mc", "shard");
        shard_span.record("shard", shard);
        let mut rng = StdRng::seed_from_u64(shard_seed(seed, shard as u64));
        let in_shard = SHARD_TRIALS.min(trials - shard * SHARD_TRIALS);
        let counts = run_shard_trials(&mut rng, in_shard);
        // Publish per shard, not per trial: five relaxed adds per 256
        // trials instead of contended increments inside the trial loop.
        metrics.shards.inc();
        metrics.trials.add(in_shard as u64);
        metrics.correct.add(counts.correct as u64);
        metrics.silent.add(counts.silent as u64);
        metrics.detected.add(counts.detected as u64);
        // Shard completion is also the campaign's time-series sampling
        // point — the freshly-published counters land in the next frame.
        rsmem_obs::timeseries::tick();
        counts
    };

    let workers = threads.max(1).min(shards);
    if workers <= 1 {
        return (0..shards)
            .map(run_shard)
            .fold(OutcomeCounts::default(), OutcomeCounts::merge);
    }
    let cursor = AtomicUsize::new(0);
    // Carry the spawning thread's trace ID and profiler position into
    // the scoped workers so a request's shard-level events stay
    // attributable to it and shard spans nest under the campaign span.
    let trace = current_trace_id();
    let profile_node = rsmem_obs::profile::current_node();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let run_shard = &run_shard;
                scope.spawn(move || {
                    let _trace = trace.map(trace_scope);
                    let _profile = rsmem_obs::profile::attach_scope(profile_node);
                    let mut counts = OutcomeCounts::default();
                    loop {
                        let shard = cursor.fetch_add(1, Ordering::Relaxed);
                        if shard >= shards {
                            break;
                        }
                        counts = counts.merge(run_shard(shard));
                    }
                    counts
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("MC shard worker panicked"))
            .fold(OutcomeCounts::default(), OutcomeCounts::merge)
    })
}

/// Classifies one simplex trial from its compact batch outcome: the
/// exact classification [`SimplexSim::run_trial`] applies to the scalar
/// [`rsmem_code::DecodeOutcome`].
fn classify_simplex<C: MemoryCode + ?Sized>(
    code: &C,
    outcome: &BatchOutcome,
    word: &[Symbol],
    data: &[Symbol],
) -> TrialOutcome {
    match outcome {
        BatchOutcome::Failure(_) => TrialOutcome::Detected,
        // Clean or Corrected: the word was fixed up in place, so its
        // data section is the decoder's output.
        _ => {
            if code.data_of(word).expect("word has length n").as_ref() == data {
                TrialOutcome::Correct
            } else {
                TrialOutcome::SilentCorruption
            }
        }
    }
}

/// The exemplar code spec of a campaign's code.
fn code_spec<C: MemoryCode + ?Sized>(code: &C) -> String {
    format!(
        "{}:{},{},{}",
        code.params().family().name(),
        code.n(),
        code.k(),
        code.symbol_bits()
    )
}

/// Freezes one MC silent-corruption exemplar: the *stored* (pre-decode)
/// word is the exact pattern that slipped through, which is what the
/// batch decoder's in-place repair would otherwise destroy.
fn record_silent_exemplar<C: MemoryCode + ?Sized>(
    code: &C,
    stored: &[Symbol],
    erasures: &[usize],
    verdicts: Vec<String>,
) {
    recorder::record_exemplar_with("mc-silent-corruption", || recorder::Exemplar {
        code: code_spec(code),
        word: stored.iter().map(|&s| u32::from(s)).collect(),
        erasures: erasures.iter().map(|&p| p as u32).collect(),
        verdicts,
        detail: "read returned wrong data with no indication".to_owned(),
        ..recorder::Exemplar::default()
    });
}

/// One simplex shard: play out every trial's fault history, then decode
/// all the final read-backs in a single batch pass.
fn simplex_shard(sim: &SimplexSim, rng: &mut StdRng, in_shard: usize) -> OutcomeCounts {
    let mut datas = Vec::with_capacity(in_shard);
    let mut words = Vec::with_capacity(in_shard);
    let mut erasures = Vec::with_capacity(in_shard);
    for _ in 0..in_shard {
        let trial = sim.prepare_trial(rng);
        datas.push(trial.data);
        words.push(trial.word);
        erasures.push(trial.erasures);
    }
    // Forensics mode: the batch decode repairs words in place, so keep
    // the stored words only while the flight recorder wants exemplars.
    let stored = recorder::enabled().then(|| words.clone());
    let mut outcomes = Vec::with_capacity(in_shard);
    sim.code()
        .decode_batch(&mut words, &erasures, &mut outcomes)
        .expect("well-formed stored words");
    let mut counts = OutcomeCounts::default();
    for (i, ((outcome, word), data)) in outcomes.iter().zip(&words).zip(&datas).enumerate() {
        let class = classify_simplex(sim.code(), outcome, word, data);
        if class == TrialOutcome::SilentCorruption {
            if let Some(stored) = &stored {
                record_silent_exemplar(
                    sim.code(),
                    &stored[i],
                    &erasures[i],
                    vec![format!("simplex: {outcome:?}")],
                );
            }
        }
        counts.record(class);
    }
    counts
}

/// One duplex shard: play out every trial (including the arbiter's
/// masking step), batch-decode all `2 × in_shard` masked words at once,
/// then run the flag comparison per pair.
fn duplex_shard(sim: &DuplexSim, rng: &mut StdRng, in_shard: usize) -> OutcomeCounts {
    let mut datas = Vec::with_capacity(in_shard);
    let mut words = Vec::with_capacity(2 * in_shard);
    let mut erasures = Vec::with_capacity(2 * in_shard);
    for _ in 0..in_shard {
        let trial = sim.prepare_trial(rng);
        datas.push(trial.data);
        words.push(trial.w1);
        words.push(trial.w2);
        erasures.push(trial.common.clone());
        erasures.push(trial.common);
    }
    let stored = recorder::enabled().then(|| words.clone());
    let mut outcomes = Vec::with_capacity(2 * in_shard);
    sim.code()
        .decode_batch(&mut words, &erasures, &mut outcomes)
        .expect("well-formed stored words");
    let mut counts = OutcomeCounts::default();
    for (i, data) in datas.iter().enumerate() {
        let v1 = verdict_of_batch(sim.code(), &words[2 * i], &outcomes[2 * i]);
        let v2 = verdict_of_batch(sim.code(), &words[2 * i + 1], &outcomes[2 * i + 1]);
        let class = match combine(v1, v2) {
            ArbiterOutput::NoOutput => TrialOutcome::Detected,
            ArbiterOutput::Data { data: d, .. } => {
                if d == *data {
                    TrialOutcome::Correct
                } else {
                    TrialOutcome::SilentCorruption
                }
            }
        };
        if class == TrialOutcome::SilentCorruption {
            if let Some(stored) = &stored {
                // Both masked module words, module 2 appended after
                // module 1 (each n symbols), plus both decode verdicts:
                // everything the arbiter saw when it let this through.
                let pair: Vec<Symbol> = stored[2 * i]
                    .iter()
                    .chain(&stored[2 * i + 1])
                    .copied()
                    .collect();
                record_silent_exemplar(
                    sim.code(),
                    &pair,
                    &erasures[2 * i],
                    vec![
                        format!("module1: {:?}", outcomes[2 * i]),
                        format!("module2: {:?}", outcomes[2 * i + 1]),
                    ],
                );
            }
        }
        counts.record(class);
    }
    counts
}

/// Attaches a finished campaign's outcome counts (and the implied
/// trials/second) to its span; a no-op when logging is off.
fn record_campaign(span: &mut rsmem_obs::Span, counts: &OutcomeCounts) {
    if !span.active() {
        return;
    }
    span.record("correct", counts.correct);
    span.record("silent", counts.silent);
    span.record("detected", counts.detected);
    if let Some(us) = span.elapsed_us() {
        if us > 0 {
            let total = (counts.correct + counts.silent + counts.detected) as f64;
            let rate = total / (us as f64 / 1e6);
            span.record("trials_per_sec", (rate * 10.0).round() / 10.0);
        }
    }
}

/// Runs `trials` independent simplex storage periods on one thread.
/// Identical to [`run_simplex_threaded`] with any worker count.
///
/// # Errors
///
/// [`SimError::NoTrials`] for `trials == 0`, or configuration errors.
pub fn run_simplex(
    config: &SimConfig,
    trials: usize,
    seed: u64,
) -> Result<MonteCarloReport, SimError> {
    run_simplex_threaded(config, trials, seed, 1)
}

/// Runs `trials` independent simplex storage periods across up to
/// `threads` workers. The report depends only on `(config, trials,
/// seed)` — see the module docs for why the worker count cannot change
/// it.
///
/// # Errors
///
/// See [`run_simplex`].
pub fn run_simplex_threaded(
    config: &SimConfig,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Result<MonteCarloReport, SimError> {
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let sim = SimplexSim::new(*config)?;
    let mut span = rsmem_obs::span("sim.mc", "simplex_campaign");
    span.record("trials", trials);
    span.record("threads", threads);
    let counts = run_sharded(trials, seed, threads, |rng, in_shard| {
        simplex_shard(&sim, rng, in_shard)
    });
    record_campaign(&mut span, &counts);
    Ok(summarize(counts, config.n, config.k, config.m))
}

/// Runs `trials` independent duplex storage periods on one thread.
/// Identical to [`run_duplex_threaded`] with any worker count.
///
/// # Errors
///
/// See [`run_simplex`].
pub fn run_duplex(
    config: &SimConfig,
    trials: usize,
    seed: u64,
) -> Result<MonteCarloReport, SimError> {
    run_duplex_threaded(config, trials, seed, 1)
}

/// Runs `trials` independent duplex storage periods across up to
/// `threads` workers; the worker count cannot change the report.
///
/// # Errors
///
/// See [`run_simplex`].
pub fn run_duplex_threaded(
    config: &SimConfig,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Result<MonteCarloReport, SimError> {
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let sim = DuplexSim::new(*config)?;
    let mut span = rsmem_obs::span("sim.mc", "duplex_campaign");
    span.record("trials", trials);
    span.record("threads", threads);
    let counts = run_sharded(trials, seed, threads, |rng, in_shard| {
        duplex_shard(&sim, rng, in_shard)
    });
    record_campaign(&mut span, &counts);
    Ok(summarize(counts, config.n, config.k, config.m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_properties() {
        let (lo, hi) = wilson_interval(0, 100);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100);
        assert!(lo > 0.95);
        assert_eq!(hi, 1.0);
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
        assert!(hi - lo < 0.25);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn wilson_needs_trials() {
        let _ = wilson_interval(0, 0);
    }

    #[test]
    fn fault_free_campaign_reports_zero_failures() {
        let report = run_simplex(&SimConfig::rs18_16_baseline(), 25, 7).unwrap();
        assert_eq!(report.correct, 25);
        assert_eq!(report.failure_fraction, 0.0);
        assert_eq!(report.ber_estimate, 0.0);
        assert_eq!(report.wilson_95.0, 0.0);
    }

    #[test]
    fn zero_trials_rejected() {
        assert_eq!(
            run_simplex(&SimConfig::rs18_16_baseline(), 0, 1),
            Err(SimError::NoTrials)
        );
        assert_eq!(
            run_duplex(&SimConfig::rs18_16_baseline(), 0, 1),
            Err(SimError::NoTrials)
        );
    }

    #[test]
    fn reports_are_seed_reproducible() {
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 2e-2;
        let a = run_duplex(&config, 50, 11).unwrap();
        let b = run_duplex(&config, 50, 11).unwrap();
        assert_eq!(a, b);
        let c = run_duplex(&config, 50, 12).unwrap();
        // Different seed: almost surely different counts (not guaranteed,
        // but with 50 stochastic trials collisions are negligible for the
        // purpose of this regression guard).
        let _ = c;
    }

    #[test]
    fn ber_estimate_uses_eq1_prefactor() {
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 0.5;
        let report = run_simplex(&config, 60, 3).unwrap();
        // RS(18,16), m=8: prefactor 1 → BER == failure fraction.
        assert!((report.ber_estimate - report.failure_fraction).abs() < 1e-15);
    }

    #[test]
    fn sharded_report_is_thread_count_invariant() {
        // 600 trials span 3 shards (256 + 256 + 88): the report must be
        // bit-identical for every worker count, including oversubscribed.
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 2e-2;
        let serial = run_duplex_threaded(&config, 600, 42, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                serial,
                run_duplex_threaded(&config, 600, 42, threads).unwrap()
            );
        }
        let simplex_serial = run_simplex_threaded(&config, 600, 42, 1).unwrap();
        assert_eq!(
            simplex_serial,
            run_simplex_threaded(&config, 600, 42, 4).unwrap()
        );
    }

    #[test]
    fn partial_final_shard_counts_every_trial() {
        // Trial count far from a shard multiple: totals must still add up.
        let report = run_simplex(&SimConfig::rs18_16_baseline(), 300, 9).unwrap();
        assert_eq!(report.trials, 300);
        assert_eq!(report.correct + report.silent + report.detected, 300);
    }

    #[test]
    fn batched_campaign_matches_per_trial_decodes() {
        // The campaign entry points batch all of a shard's final decodes
        // through BatchDecoder. Rebuilding the same shard layout with the
        // scalar per-trial `run_trial` must give bit-identical counts —
        // the batch plane is an optimization, never a behavior change.
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 2e-2;
        config.erasure_per_symbol_day = 2e-3;
        let trials = 300usize;
        let seed = 5u64;

        let per_trial = |run: &dyn Fn(&mut StdRng) -> TrialOutcome| {
            let mut counts = OutcomeCounts::default();
            for shard in 0..trials.div_ceil(SHARD_TRIALS) {
                let mut rng = StdRng::seed_from_u64(shard_seed(seed, shard as u64));
                for _ in 0..SHARD_TRIALS.min(trials - shard * SHARD_TRIALS) {
                    counts.record(run(&mut rng));
                }
            }
            counts
        };

        let simplex = SimplexSim::new(config).unwrap();
        let scalar = per_trial(&|rng| simplex.run_trial(rng));
        let batched = run_simplex(&config, trials, seed).unwrap();
        assert_eq!(
            (batched.correct, batched.silent, batched.detected),
            (scalar.correct, scalar.silent, scalar.detected),
            "simplex batch/scalar divergence"
        );

        let duplex = DuplexSim::new(config).unwrap();
        let scalar = per_trial(&|rng| duplex.run_trial(rng));
        let batched = run_duplex(&config, trials, seed).unwrap();
        assert_eq!(
            (batched.correct, batched.silent, batched.detected),
            (scalar.correct, scalar.silent, scalar.detected),
            "duplex batch/scalar divergence"
        );
    }

    #[test]
    fn shard_seeds_are_decorrelated() {
        let a = shard_seed(1, 0);
        let b = shard_seed(1, 1);
        let c = shard_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_is_informative() {
        let report = run_simplex(&SimConfig::rs18_16_baseline(), 5, 1).unwrap();
        let s = report.to_string();
        assert!(s.contains("5 trials"));
        assert!(s.contains("P_fail"));
    }
}
