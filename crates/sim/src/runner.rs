//! Monte-Carlo campaign runner and statistics.

use crate::system::{DuplexSim, SimplexSim};
use crate::{SimConfig, SimError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Classification of one storage-period trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrialOutcome {
    /// The read returned the originally stored data.
    Correct,
    /// The read returned *wrong* data without any indication (decoder
    /// mis-correction that slipped past the arbiter).
    SilentCorruption,
    /// The system reported an unrecoverable error (no output).
    Detected,
}

/// Aggregated results of a Monte-Carlo campaign.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MonteCarloReport {
    /// Number of trials run.
    pub trials: usize,
    /// Trials that returned correct data.
    pub correct: usize,
    /// Trials with silent data corruption.
    pub silent: usize,
    /// Trials with a detected failure.
    pub detected: usize,
    /// `(silent + detected) / trials` — the empirical analogue of the
    /// Markov models' `P_Fail`.
    pub failure_fraction: f64,
    /// 95% Wilson confidence interval on the failure fraction.
    pub wilson_95: (f64, f64),
    /// `m·(n−k)/k × failure_fraction` — the empirical Eq.-(1) BER.
    pub ber_estimate: f64,
}

impl fmt::Display for MonteCarloReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trials: {} correct, {} silent, {} detected; \
             P_fail = {:.3e} (95% CI [{:.3e}, {:.3e}]), BER ≈ {:.3e}",
            self.trials,
            self.correct,
            self.silent,
            self.detected,
            self.failure_fraction,
            self.wilson_95.0,
            self.wilson_95.1,
            self.ber_estimate
        )
    }
}

/// 95% Wilson score interval for a binomial proportion.
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    assert!(trials > 0, "wilson interval of zero trials");
    let z = 1.959_963_984_540_054_f64; // Φ⁻¹(0.975)
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    // At the boundaries the analytic endpoint is exactly 0 (or 1); pin it
    // so floating-point rounding cannot leak an ulp past the boundary.
    let lo = if successes == 0 { 0.0 } else { (center - half).max(0.0) };
    let hi = if successes == trials {
        1.0
    } else {
        (center + half).min(1.0)
    };
    (lo, hi)
}

fn summarize(outcomes: &[TrialOutcome], n: usize, k: usize, m: u32) -> MonteCarloReport {
    let trials = outcomes.len();
    let correct = outcomes
        .iter()
        .filter(|o| **o == TrialOutcome::Correct)
        .count();
    let silent = outcomes
        .iter()
        .filter(|o| **o == TrialOutcome::SilentCorruption)
        .count();
    let detected = trials - correct - silent;
    let failures = silent + detected;
    let failure_fraction = failures as f64 / trials as f64;
    let prefactor = m as f64 * (n - k) as f64 / k as f64;
    MonteCarloReport {
        trials,
        correct,
        silent,
        detected,
        failure_fraction,
        wilson_95: wilson_interval(failures, trials),
        ber_estimate: prefactor * failure_fraction,
    }
}

/// Runs `trials` independent simplex storage periods.
///
/// # Errors
///
/// [`SimError::NoTrials`] for `trials == 0`, or configuration errors.
pub fn run_simplex(config: &SimConfig, trials: usize, seed: u64) -> Result<MonteCarloReport, SimError> {
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let sim = SimplexSim::new(*config)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let outcomes: Vec<TrialOutcome> = (0..trials).map(|_| sim.run_trial(&mut rng)).collect();
    Ok(summarize(&outcomes, config.n, config.k, config.m))
}

/// Runs `trials` independent duplex storage periods.
///
/// # Errors
///
/// See [`run_simplex`].
pub fn run_duplex(config: &SimConfig, trials: usize, seed: u64) -> Result<MonteCarloReport, SimError> {
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    let sim = DuplexSim::new(*config)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let outcomes: Vec<TrialOutcome> = (0..trials).map(|_| sim.run_trial(&mut rng)).collect();
    Ok(summarize(&outcomes, config.n, config.k, config.m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_properties() {
        let (lo, hi) = wilson_interval(0, 100);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100);
        assert!(lo > 0.95);
        assert_eq!(hi, 1.0);
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
        assert!(hi - lo < 0.25);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn wilson_needs_trials() {
        let _ = wilson_interval(0, 0);
    }

    #[test]
    fn fault_free_campaign_reports_zero_failures() {
        let report = run_simplex(&SimConfig::rs18_16_baseline(), 25, 7).unwrap();
        assert_eq!(report.correct, 25);
        assert_eq!(report.failure_fraction, 0.0);
        assert_eq!(report.ber_estimate, 0.0);
        assert_eq!(report.wilson_95.0, 0.0);
    }

    #[test]
    fn zero_trials_rejected() {
        assert_eq!(
            run_simplex(&SimConfig::rs18_16_baseline(), 0, 1),
            Err(SimError::NoTrials)
        );
        assert_eq!(
            run_duplex(&SimConfig::rs18_16_baseline(), 0, 1),
            Err(SimError::NoTrials)
        );
    }

    #[test]
    fn reports_are_seed_reproducible() {
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 2e-2;
        let a = run_duplex(&config, 50, 11).unwrap();
        let b = run_duplex(&config, 50, 11).unwrap();
        assert_eq!(a, b);
        let c = run_duplex(&config, 50, 12).unwrap();
        // Different seed: almost surely different counts (not guaranteed,
        // but with 50 stochastic trials collisions are negligible for the
        // purpose of this regression guard).
        let _ = c;
    }

    #[test]
    fn ber_estimate_uses_eq1_prefactor() {
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 0.5;
        let report = run_simplex(&config, 60, 3).unwrap();
        // RS(18,16), m=8: prefactor 1 → BER == failure fraction.
        assert!((report.ber_estimate - report.failure_fraction).abs() < 1e-15);
    }

    #[test]
    fn display_is_informative() {
        let report = run_simplex(&SimConfig::rs18_16_baseline(), 5, 1).unwrap();
        let s = report.to_string();
        assert!(s.contains("5 trials"));
        assert!(s.contains("P_fail"));
    }
}
