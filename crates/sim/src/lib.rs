//! Discrete-event Monte-Carlo simulation of RS-coded memories.
//!
//! The DATE 2005 paper evaluates its simplex/duplex memory arrangements
//! purely analytically (Markov models solved with SURE). This crate builds
//! the system the models *describe* and runs it:
//!
//! * a [`MemoryModule`] stores an actual RS codeword; SEUs flip real bits
//!   and permanent faults stick real symbols (and are *located*, i.e.
//!   reported as erasures, per the paper's self-checking assumption);
//! * the duplex [`arbiter`] implements Section 3 of the paper verbatim on
//!   top of the real `rsmem_code` decoder: erasure masking, independent
//!   decoding with per-word correction flags, and flag-based comparison;
//! * scrubbing periodically reads, corrects and rewrites the word —
//!   deterministically periodic (the real system) or exponentially timed
//!   (matching the Markov approximation), selectable for validation;
//! * the [`runner`] repeats trials with independent seeds and reports
//!   failure fractions with Wilson confidence intervals.
//!
//! The simulator serves two purposes: it *cross-validates* the Markov
//! models of [`rsmem_models`](https://docs.rs) on their common ground, and
//! it measures effects the counting models abstract away (mis-correction,
//! flag-based arbiter recovery, deterministic-vs-exponential scrubbing).
//!
//! # Examples
//!
//! ```
//! use rsmem_sim::{runner, CodeFamily, SimConfig, ScrubTiming};
//!
//! # fn main() -> Result<(), rsmem_sim::SimError> {
//! let config = SimConfig {
//!     n: 18,
//!     k: 16,
//!     m: 8,
//!     family: CodeFamily::Rs,
//!     depth: 1,
//!     seu_per_bit_day: 1e-2, // accelerated test conditions
//!     erasure_per_symbol_day: 0.0,
//!     scrub: None,
//!     store_days: 2.0,
//! };
//! let report = runner::run_simplex(&config, 200, 42)?;
//! assert_eq!(report.trials, 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod array;
mod config;
mod error;
pub mod events;
mod memory;
pub mod metrics;
pub mod miscorrection;
pub mod runner;
mod system;

pub use array::{ArrayConfig, ArrayReport};
pub use config::{ScrubTiming, SimConfig};
pub use error::SimError;
pub use memory::MemoryModule;
pub use rsmem_models::CodeFamily;
pub use runner::{MonteCarloReport, TrialOutcome};
pub use system::{DuplexSim, SimplexSim};
