//! Event-driven simulation of the simplex and duplex memory systems.

use crate::arbiter::{combine, mask, verdict_of, ArbiterOutput};
use crate::config::{ScrubTiming, SimConfig};
use crate::events::sample_exponential;
use crate::memory::MemoryModule;
use crate::runner::TrialOutcome;
use crate::SimError;
use rand::Rng;
use rsmem_code::{DecodeOutcome, Symbol};
use rsmem_codes::{build, MemoryCode};
use std::sync::Arc;

/// Shared per-trial machinery.
#[derive(Debug)]
struct FaultClock {
    /// Next SEU time (absolute days), per module.
    next_seu: Vec<f64>,
    /// Next permanent-fault time, per module.
    next_perm: Vec<f64>,
    /// Next scrub time.
    next_scrub: f64,
}

fn random_data<R: Rng + ?Sized>(rng: &mut R, k: usize, symbol_values: usize) -> Vec<Symbol> {
    (0..k)
        .map(|_| rng.gen_range(0..symbol_values) as Symbol)
        .collect()
}

fn schedule_scrub<R: Rng + ?Sized>(
    rng: &mut R,
    now: f64,
    scrub: Option<(f64, ScrubTiming)>,
) -> f64 {
    match scrub {
        None => f64::INFINITY,
        Some((period, ScrubTiming::Periodic)) => now + period,
        Some((period, ScrubTiming::Exponential)) => now + sample_exponential(rng, 1.0 / period),
    }
}

impl FaultClock {
    fn new<R: Rng + ?Sized>(rng: &mut R, config: &SimConfig, modules: usize) -> Self {
        let seu_rate = config.seu_per_bit_day * config.m as f64 * config.n as f64;
        let perm_rate = config.erasure_per_symbol_day * config.n as f64;
        FaultClock {
            next_seu: (0..modules)
                .map(|_| sample_exponential(rng, seu_rate))
                .collect(),
            next_perm: (0..modules)
                .map(|_| sample_exponential(rng, perm_rate))
                .collect(),
            next_scrub: schedule_scrub(rng, 0.0, config.scrub),
        }
    }
}

/// What the per-trial event loop asks the caller to do next.
enum Step {
    Seu { module: usize, time: f64 },
    Permanent { module: usize, time: f64 },
    Scrub { time: f64 },
    Done,
}

fn next_step(clock: &FaultClock, horizon: f64) -> Step {
    let mut best = Step::Done;
    let mut best_t = horizon;
    for (i, &t) in clock.next_seu.iter().enumerate() {
        if t < best_t {
            best_t = t;
            best = Step::Seu { module: i, time: t };
        }
    }
    for (i, &t) in clock.next_perm.iter().enumerate() {
        if t < best_t {
            best_t = t;
            best = Step::Permanent { module: i, time: t };
        }
    }
    if clock.next_scrub < best_t {
        best = Step::Scrub {
            time: clock.next_scrub,
        };
    }
    best
}

fn inject_seu<R: Rng + ?Sized>(rng: &mut R, module: &mut MemoryModule, n: usize, bits: u32) {
    let pos = rng.gen_range(0..n);
    let bit = rng.gen_range(0..bits);
    module.flip_bit(pos, bit);
}

fn inject_permanent<R: Rng + ?Sized>(
    rng: &mut R,
    module: &mut MemoryModule,
    n: usize,
    symbol_values: usize,
) {
    let pos = rng.gen_range(0..n);
    let value = rng.gen_range(0..symbol_values) as Symbol;
    module.stick(pos, value);
}

/// A trial whose fault history has been played out but whose final
/// read-back has not yet been decoded. The sharded Monte-Carlo runner
/// prepares every trial of a shard, then pushes all the final decodes
/// through one [`rsmem_code::BatchDecoder`] pass.
#[derive(Debug)]
pub(crate) struct PendingTrial {
    /// The originally stored dataword.
    pub(crate) data: Vec<Symbol>,
    /// The (possibly corrupted) word read back at the stopping time.
    pub(crate) word: Vec<Symbol>,
    /// Located permanent-fault positions at the stopping time.
    pub(crate) erasures: Vec<usize>,
}

/// A duplex trial after fault injection *and* arbiter step 1 (masking):
/// both masked words are ready for independent decoding with the common
/// erasures.
#[derive(Debug)]
pub(crate) struct PendingDuplexTrial {
    /// The originally stored dataword.
    pub(crate) data: Vec<Symbol>,
    /// Module 1's masked word.
    pub(crate) w1: Vec<Symbol>,
    /// Module 2's masked word.
    pub(crate) w2: Vec<Symbol>,
    /// Positions erased in both modules (kept as erasures for both).
    pub(crate) common: Vec<usize>,
}

/// A single simulated simplex memory word.
///
/// Holds the code and configuration; [`SimplexSim::run_trial`] plays one
/// independent storage period: inject Poisson faults, scrub periodically,
/// read back at the stopping time and classify the outcome.
#[derive(Debug, Clone)]
pub struct SimplexSim {
    code: Arc<dyn MemoryCode>,
    config: SimConfig,
}

impl SimplexSim {
    /// Builds the simulator for a configuration.
    ///
    /// # Errors
    ///
    /// [`SimError`] on invalid configuration or code parameters.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        let code: Arc<dyn MemoryCode> = Arc::from(build(config.code_params()?)?);
        Ok(SimplexSim { code, config })
    }

    /// The underlying code.
    pub fn code(&self) -> &dyn MemoryCode {
        self.code.as_ref()
    }

    /// Runs one independent trial.
    pub fn run_trial<R: Rng + ?Sized>(&self, rng: &mut R) -> TrialOutcome {
        let trial = self.prepare_trial(rng);
        match self
            .code
            .decode(&trial.word, &trial.erasures)
            .expect("well-formed stored word")
        {
            DecodeOutcome::Failure(_) => TrialOutcome::Detected,
            out => {
                if out.data() == Some(&trial.data[..]) {
                    TrialOutcome::Correct
                } else {
                    TrialOutcome::SilentCorruption
                }
            }
        }
    }

    /// Plays one trial's fault history (injection + scrubbing) and stops
    /// just short of the final read-back decode, so callers can batch
    /// that decode across many trials. Consumes exactly the same RNG
    /// stream as [`SimplexSim::run_trial`] — the decode draws nothing.
    pub(crate) fn prepare_trial<R: Rng + ?Sized>(&self, rng: &mut R) -> PendingTrial {
        // `1 << m` is the symbol-value count of every family (GF(2^m)
        // size for RS, binary for RM), so the RNG stream is identical to
        // the pre-trait RS-only simulator.
        let symbol_values = 1usize << self.config.m;
        let data = random_data(rng, self.config.k, symbol_values);
        let codeword = self.code.encode(&data).expect("validated parameters");
        let mut module = MemoryModule::new(codeword, self.config.m);
        let mut clock = FaultClock::new(rng, &self.config, 1);
        let horizon = self.config.store_days;

        loop {
            match next_step(&clock, horizon) {
                Step::Done => break,
                Step::Seu { module: _, time } => {
                    inject_seu(rng, &mut module, self.config.n, self.config.m);
                    let rate =
                        self.config.seu_per_bit_day * self.config.m as f64 * self.config.n as f64;
                    clock.next_seu[0] = time + sample_exponential(rng, rate);
                }
                Step::Permanent { module: _, time } => {
                    inject_permanent(rng, &mut module, self.config.n, symbol_values);
                    let rate = self.config.erasure_per_symbol_day * self.config.n as f64;
                    clock.next_perm[0] = time + sample_exponential(rng, rate);
                }
                Step::Scrub { time } => {
                    self.scrub(&mut module);
                    clock.next_scrub = schedule_scrub(rng, time, self.config.scrub);
                }
            }
        }

        let erasures = module.erasures();
        PendingTrial {
            data,
            word: module.read().to_vec(),
            erasures,
        }
    }

    /// One scrub pass: read, decode, rewrite the corrected word.
    /// An undecodable word is left untouched (the scrub simply fails).
    fn scrub(&self, module: &mut MemoryModule) {
        let erasures = module.erasures();
        match self
            .code
            .decode(module.read(), &erasures)
            .expect("well-formed stored word")
        {
            DecodeOutcome::Clean { .. } => {}
            DecodeOutcome::Corrected { codeword, .. } => module.write(&codeword),
            DecodeOutcome::Failure(_) => {}
        }
    }
}

/// A single simulated duplex memory word-pair with the Section-3 arbiter.
#[derive(Debug, Clone)]
pub struct DuplexSim {
    code: Arc<dyn MemoryCode>,
    config: SimConfig,
}

impl DuplexSim {
    /// Builds the simulator for a configuration.
    ///
    /// # Errors
    ///
    /// [`SimError`] on invalid configuration or code parameters.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        let code: Arc<dyn MemoryCode> = Arc::from(build(config.code_params()?)?);
        Ok(DuplexSim { code, config })
    }

    /// The underlying code.
    pub fn code(&self) -> &dyn MemoryCode {
        self.code.as_ref()
    }

    /// Runs one independent trial.
    pub fn run_trial<R: Rng + ?Sized>(&self, rng: &mut R) -> TrialOutcome {
        let trial = self.prepare_trial(rng);
        let out1 = self
            .code
            .decode(&trial.w1, &trial.common)
            .expect("well-formed stored word");
        let out2 = self
            .code
            .decode(&trial.w2, &trial.common)
            .expect("well-formed stored word");
        match combine(verdict_of(&out1), verdict_of(&out2)) {
            ArbiterOutput::NoOutput => TrialOutcome::Detected,
            ArbiterOutput::Data { data: d, .. } => {
                if d == trial.data {
                    TrialOutcome::Correct
                } else {
                    TrialOutcome::SilentCorruption
                }
            }
        }
    }

    /// Plays one trial's fault history and the arbiter's masking step,
    /// stopping just short of the two final decodes so callers can batch
    /// them. Consumes exactly the same RNG stream as
    /// [`DuplexSim::run_trial`] — masking and decoding draw nothing.
    pub(crate) fn prepare_trial<R: Rng + ?Sized>(&self, rng: &mut R) -> PendingDuplexTrial {
        let symbol_values = 1usize << self.config.m;
        let data = random_data(rng, self.config.k, symbol_values);
        let codeword = self.code.encode(&data).expect("validated parameters");
        let mut modules = [
            MemoryModule::new(codeword.clone(), self.config.m),
            MemoryModule::new(codeword, self.config.m),
        ];
        let mut clock = FaultClock::new(rng, &self.config, 2);
        let horizon = self.config.store_days;
        let seu_rate = self.config.seu_per_bit_day * self.config.m as f64 * self.config.n as f64;
        let perm_rate = self.config.erasure_per_symbol_day * self.config.n as f64;

        loop {
            match next_step(&clock, horizon) {
                Step::Done => break,
                Step::Seu { module, time } => {
                    inject_seu(rng, &mut modules[module], self.config.n, self.config.m);
                    clock.next_seu[module] = time + sample_exponential(rng, seu_rate);
                }
                Step::Permanent { module, time } => {
                    inject_permanent(rng, &mut modules[module], self.config.n, symbol_values);
                    clock.next_perm[module] = time + sample_exponential(rng, perm_rate);
                }
                Step::Scrub { time } => {
                    self.scrub(&mut modules);
                    clock.next_scrub = schedule_scrub(rng, time, self.config.scrub);
                }
            }
        }

        let [m1, m2] = &modules;
        let (w1, w2, common) = mask(
            self.code.as_ref(),
            m1.read(),
            &m1.erasures(),
            m2.read(),
            &m2.erasures(),
        )
        .expect("well-formed stored words");
        PendingDuplexTrial {
            data,
            w1,
            w2,
            common,
        }
    }

    /// Joint scrub: erasure-mask each word from its sibling, decode each,
    /// rewrite every module whose word decoded. Undecodable words are
    /// left in place.
    fn scrub(&self, modules: &mut [MemoryModule; 2]) {
        let e1 = modules[0].erasures();
        let e2 = modules[1].erasures();
        let mut w1 = modules[0].read().to_vec();
        let mut w2 = modules[1].read().to_vec();
        let mut common = Vec::new();
        for &p in &e1 {
            if e2.contains(&p) {
                common.push(p);
            } else {
                w1[p] = w2[p];
            }
        }
        for &p in &e2 {
            if !e1.contains(&p) {
                w2[p] = modules[0].read()[p];
            }
        }
        for (idx, word) in [w1, w2].into_iter().enumerate() {
            match self
                .code
                .decode(&word, &common)
                .expect("well-formed stored word")
            {
                DecodeOutcome::Clean { .. } => modules[idx].write(&word),
                DecodeOutcome::Corrected { codeword, .. } => modules[idx].write(&codeword),
                DecodeOutcome::Failure(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fault_free_trials_always_succeed() {
        let config = SimConfig::rs18_16_baseline();
        let simplex = SimplexSim::new(config).unwrap();
        let duplex = DuplexSim::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(simplex.run_trial(&mut rng), TrialOutcome::Correct);
            assert_eq!(duplex.run_trial(&mut rng), TrialOutcome::Correct);
        }
    }

    #[test]
    fn overwhelming_seu_rate_always_fails_simplex() {
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 50.0; // ~14k flips over 2 days
        let simplex = SimplexSim::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let fails = (0..30)
            .filter(|_| simplex.run_trial(&mut rng) != TrialOutcome::Correct)
            .count();
        assert!(fails >= 29, "only {fails}/30 trials failed");
    }

    #[test]
    fn single_permanent_fault_is_always_recovered_by_duplex() {
        // λe high enough for ~one fault per trial but two same-position
        // faults vanishingly unlikely to matter across 30 trials.
        let mut config = SimConfig::rs18_16_baseline();
        config.erasure_per_symbol_day = 0.01; // ~0.36 faults/module over 2 days
        let duplex = DuplexSim::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            assert_eq!(duplex.run_trial(&mut rng), TrialOutcome::Correct);
        }
    }

    #[test]
    fn scrubbing_rescues_high_seu_simplex() {
        let mut config = SimConfig::rs18_16_baseline();
        // ~1.4 flips expected in 2 days (would often kill the t=1 code
        // without repair)...
        config.seu_per_bit_day = 5e-3;
        let no_scrub = SimplexSim::new(config).unwrap();
        // ...but with 200 scrubs/day accumulation is nearly impossible.
        config.scrub = Some((0.005, ScrubTiming::Periodic));
        let scrubbed = SimplexSim::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 120;
        let fail_no: usize = (0..trials)
            .filter(|_| no_scrub.run_trial(&mut rng) != TrialOutcome::Correct)
            .count();
        let fail_scrub: usize = (0..trials)
            .filter(|_| scrubbed.run_trial(&mut rng) != TrialOutcome::Correct)
            .count();
        assert!(
            fail_scrub < fail_no,
            "scrubbing should help: {fail_scrub} vs {fail_no}"
        );
    }

    #[test]
    fn trials_are_seed_deterministic() {
        let mut config = SimConfig::rs18_16_baseline();
        config.seu_per_bit_day = 1e-2;
        config.erasure_per_symbol_day = 1e-3;
        config.scrub = Some((0.25, ScrubTiming::Exponential));
        let sim = DuplexSim::new(config).unwrap();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10).map(|_| sim.run_trial(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
    }
}
