use rsmem_code::CodeError;
use std::error::Error;
use std::fmt;

/// Errors from simulator configuration and setup.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The code parameters were rejected by the codec.
    Code(CodeError),
    /// A rate, period or horizon is negative or non-finite.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Zero trials requested.
    NoTrials,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Code(e) => write!(f, "code error: {e}"),
            SimError::InvalidParameter { name, value } => {
                write!(f, "invalid simulation parameter {name} = {value}")
            }
            SimError::NoTrials => write!(f, "at least one trial is required"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for SimError {
    fn from(e: CodeError) -> Self {
        SimError::Code(e)
    }
}
