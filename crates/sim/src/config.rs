//! Simulation configuration.

use crate::SimError;
use rsmem_code::CodeError;
use rsmem_models::{CodeFamily, CodeParams};

/// How scrub instants are placed in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScrubTiming {
    /// Deterministic period — every `Tsc`, as a real memory controller
    /// schedules it.
    #[default]
    Periodic,
    /// Exponentially distributed gaps with mean `Tsc` — the memoryless
    /// approximation the paper's Markov models make. Selecting this mode
    /// lets the simulator validate the models on exactly their own terms.
    Exponential,
}

/// Full configuration of one simulated memory word (simplex) or word pair
/// (duplex).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Codeword length in symbols.
    pub n: usize,
    /// Dataword length in symbols.
    pub k: usize,
    /// Symbol width in bits.
    pub m: u32,
    /// Code family protecting the word (RS, Reed–Muller or
    /// interleaved RS).
    pub family: CodeFamily,
    /// Interleave depth — meaningful only for [`CodeFamily::Irs`];
    /// use `1` for the other families.
    pub depth: u8,
    /// SEU rate per bit per day (the paper's `λ`).
    pub seu_per_bit_day: f64,
    /// Permanent-fault rate per symbol per day (the paper's `λe`).
    pub erasure_per_symbol_day: f64,
    /// Scrubbing: `(period in days, timing mode)`, or `None` to disable.
    pub scrub: Option<(f64, ScrubTiming)>,
    /// Storage horizon in days (the "stopping time" at which the word is
    /// read back).
    pub store_days: f64,
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for negative/non-finite rates,
    /// period or horizon. Code parameters are validated later by the
    /// codec itself.
    pub fn validate(&self) -> Result<(), SimError> {
        let checks: [(&'static str, f64, bool); 4] = [
            ("seu_per_bit_day", self.seu_per_bit_day, false),
            ("erasure_per_symbol_day", self.erasure_per_symbol_day, false),
            ("store_days", self.store_days, false),
            ("scrub period", self.scrub.map_or(1.0, |(p, _)| p), true),
        ];
        for (name, value, must_be_positive) in checks {
            let ok = value.is_finite() && (value > 0.0 || (!must_be_positive && value >= 0.0));
            if !ok {
                return Err(SimError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Reconstructs the model-layer [`CodeParams`] this configuration
    /// describes, validating that `n`/`k`/`m` are consistent with the
    /// selected family (e.g. `n = 2^r`, `k = r + 1`, `m = 1` for
    /// RM(1,r); `depth | n` and `depth | k` for interleaved RS).
    ///
    /// # Errors
    ///
    /// [`SimError::Code`] when the geometry does not name a
    /// constructible code of the selected family.
    pub fn code_params(&self) -> Result<CodeParams, SimError> {
        let invalid = |reason: &'static str| {
            SimError::Code(CodeError::InvalidParameters {
                n: self.n,
                k: self.k,
                m: self.m,
                reason,
            })
        };
        let params = match self.family {
            CodeFamily::Rs => CodeParams::new(self.n, self.k, self.m)
                .map_err(|_| invalid("invalid RS geometry"))?,
            CodeFamily::Rm => CodeParams::rm1(self.n.trailing_zeros())
                .map_err(|_| invalid("invalid RM(1,r) geometry (n must be 2^r, r in 3..=12)"))?,
            CodeFamily::Irs => {
                let depth = usize::from(self.depth);
                if depth < 2 || !self.n.is_multiple_of(depth) || !self.k.is_multiple_of(depth) {
                    return Err(invalid(
                        "interleaved n and k must be multiples of depth 2..=64",
                    ));
                }
                CodeParams::interleaved(self.n / depth, self.k / depth, self.m, self.depth)
                    .map_err(|_| invalid("invalid interleaved-RS geometry"))?
            }
        };
        if (params.n(), params.k(), params.m()) != (self.n, self.k, self.m) {
            return Err(invalid("n/k/m do not match the selected code family"));
        }
        Ok(params)
    }

    /// The paper's RS(18,16) byte-symbol configuration with no faults —
    /// a baseline to customize.
    pub fn rs18_16_baseline() -> Self {
        SimConfig {
            n: 18,
            k: 16,
            m: 8,
            family: CodeFamily::Rs,
            depth: 1,
            seu_per_bit_day: 0.0,
            erasure_per_symbol_day: 0.0,
            scrub: None,
            store_days: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        assert!(SimConfig::rs18_16_baseline().validate().is_ok());
    }

    #[test]
    fn negative_rate_rejected() {
        let mut c = SimConfig::rs18_16_baseline();
        c.seu_per_bit_day = -1.0;
        assert!(matches!(
            c.validate(),
            Err(SimError::InvalidParameter {
                name: "seu_per_bit_day",
                ..
            })
        ));
    }

    #[test]
    fn zero_scrub_period_rejected() {
        let mut c = SimConfig::rs18_16_baseline();
        c.scrub = Some((0.0, ScrubTiming::Periodic));
        assert!(c.validate().is_err());
    }

    #[test]
    fn nan_horizon_rejected() {
        let mut c = SimConfig::rs18_16_baseline();
        c.store_days = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn code_params_round_trips_every_family() {
        let rs = SimConfig::rs18_16_baseline();
        assert_eq!(rs.code_params().unwrap(), CodeParams::rs18_16());

        let mut rm = SimConfig::rs18_16_baseline();
        (rm.n, rm.k, rm.m, rm.family) = (32, 6, 1, CodeFamily::Rm);
        assert_eq!(rm.code_params().unwrap(), CodeParams::rm1(5).unwrap());

        let mut irs = SimConfig::rs18_16_baseline();
        (irs.n, irs.k, irs.family, irs.depth) = (36, 32, CodeFamily::Irs, 2);
        assert_eq!(
            irs.code_params().unwrap(),
            CodeParams::interleaved(18, 16, 8, 2).unwrap()
        );
    }

    #[test]
    fn inconsistent_family_geometry_rejected() {
        // k does not match r + 1 for n = 2^r.
        let mut rm = SimConfig::rs18_16_baseline();
        (rm.n, rm.k, rm.m, rm.family) = (32, 7, 1, CodeFamily::Rm);
        assert!(rm.code_params().is_err());
        // depth does not divide n.
        let mut irs = SimConfig::rs18_16_baseline();
        (irs.n, irs.k, irs.family, irs.depth) = (36, 32, CodeFamily::Irs, 5);
        assert!(irs.code_params().is_err());
        // depth 1 is not an interleave.
        irs.depth = 1;
        assert!(irs.code_params().is_err());
    }
}
