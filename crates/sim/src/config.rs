//! Simulation configuration.

use crate::SimError;

/// How scrub instants are placed in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScrubTiming {
    /// Deterministic period — every `Tsc`, as a real memory controller
    /// schedules it.
    #[default]
    Periodic,
    /// Exponentially distributed gaps with mean `Tsc` — the memoryless
    /// approximation the paper's Markov models make. Selecting this mode
    /// lets the simulator validate the models on exactly their own terms.
    Exponential,
}

/// Full configuration of one simulated memory word (simplex) or word pair
/// (duplex).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    /// Codeword length in symbols.
    pub n: usize,
    /// Dataword length in symbols.
    pub k: usize,
    /// Symbol width in bits.
    pub m: u32,
    /// SEU rate per bit per day (the paper's `λ`).
    pub seu_per_bit_day: f64,
    /// Permanent-fault rate per symbol per day (the paper's `λe`).
    pub erasure_per_symbol_day: f64,
    /// Scrubbing: `(period in days, timing mode)`, or `None` to disable.
    pub scrub: Option<(f64, ScrubTiming)>,
    /// Storage horizon in days (the "stopping time" at which the word is
    /// read back).
    pub store_days: f64,
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for negative/non-finite rates,
    /// period or horizon. Code parameters are validated later by the
    /// codec itself.
    pub fn validate(&self) -> Result<(), SimError> {
        let checks: [(&'static str, f64, bool); 4] = [
            ("seu_per_bit_day", self.seu_per_bit_day, false),
            ("erasure_per_symbol_day", self.erasure_per_symbol_day, false),
            ("store_days", self.store_days, false),
            ("scrub period", self.scrub.map_or(1.0, |(p, _)| p), true),
        ];
        for (name, value, must_be_positive) in checks {
            let ok = value.is_finite() && (value > 0.0 || (!must_be_positive && value >= 0.0));
            if !ok {
                return Err(SimError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// The paper's RS(18,16) byte-symbol configuration with no faults —
    /// a baseline to customize.
    pub fn rs18_16_baseline() -> Self {
        SimConfig {
            n: 18,
            k: 16,
            m: 8,
            seu_per_bit_day: 0.0,
            erasure_per_symbol_day: 0.0,
            scrub: None,
            store_days: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        assert!(SimConfig::rs18_16_baseline().validate().is_ok());
    }

    #[test]
    fn negative_rate_rejected() {
        let mut c = SimConfig::rs18_16_baseline();
        c.seu_per_bit_day = -1.0;
        assert!(matches!(
            c.validate(),
            Err(SimError::InvalidParameter {
                name: "seu_per_bit_day",
                ..
            })
        ));
    }

    #[test]
    fn zero_scrub_period_rejected() {
        let mut c = SimConfig::rs18_16_baseline();
        c.scrub = Some((0.0, ScrubTiming::Periodic));
        assert!(c.validate().is_err());
    }

    #[test]
    fn nan_horizon_rejected() {
        let mut c = SimConfig::rs18_16_baseline();
        c.store_days = f64::NAN;
        assert!(c.validate().is_err());
    }
}
