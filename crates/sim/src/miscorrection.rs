//! Decoder mis-correction statistics.
//!
//! When the corruption exceeds the code's capability, an RS decoder
//! either *detects* the failure or silently "corrects" to a wrong
//! codeword. The paper's duplex arbiter is motivated precisely by
//! mis-correction ("correcting the erroneous word with yet another
//! erroneous codeword may occur"), yet its models treat the split between
//! detection and mis-correction implicitly. This module measures it:
//! inject `e` random symbol errors, decode, classify.
//!
//! For large fields the classical estimate is
//! `P(mis-correction | e > t errors) ≈ 1/t!` (Q_e ≈ fraction of syndrome
//! space covered by decoding spheres); the tests check the measured rates
//! against that order of magnitude.

use crate::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsmem_code::{DecodeOutcome, RsCode, Symbol};

/// Outcome counts for one `(code, error_weight)` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MiscorrectionStats {
    /// Injected random symbol errors per trial.
    pub error_weight: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials decoded back to the original data (only possible while the
    /// weight is within capability).
    pub corrected: usize,
    /// Trials with a *detected* decoding failure.
    pub detected: usize,
    /// Trials that silently decoded to a *wrong* codeword.
    pub miscorrected: usize,
}

impl MiscorrectionStats {
    /// Fraction of trials that mis-corrected.
    pub fn miscorrection_rate(&self) -> f64 {
        self.miscorrected as f64 / self.trials as f64
    }
}

/// Measures decode outcomes under exactly `error_weight` random symbol
/// errors (distinct positions, uniform non-zero magnitudes), over
/// `trials` random datawords.
///
/// # Errors
///
/// [`SimError::NoTrials`] for zero trials, or
/// [`SimError::InvalidParameter`] when `error_weight > n`.
pub fn measure(
    code: &RsCode,
    error_weight: usize,
    trials: usize,
    seed: u64,
) -> Result<MiscorrectionStats, SimError> {
    if trials == 0 {
        return Err(SimError::NoTrials);
    }
    if error_weight > code.n() {
        return Err(SimError::InvalidParameter {
            name: "error_weight",
            value: error_weight as f64,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let size = code.field().size();
    let mut corrected = 0usize;
    let mut detected = 0usize;
    let mut miscorrected = 0usize;

    for _ in 0..trials {
        let data: Vec<Symbol> = (0..code.k())
            .map(|_| rng.gen_range(0..size) as Symbol)
            .collect();
        let mut word = code.encode(&data).expect("validated code");
        // Choose `error_weight` distinct positions.
        let mut positions: Vec<usize> = Vec::with_capacity(error_weight);
        while positions.len() < error_weight {
            let p = rng.gen_range(0..code.n());
            if !positions.contains(&p) {
                positions.push(p);
            }
        }
        for &p in &positions {
            let magnitude = rng.gen_range(1..size) as Symbol;
            word[p] ^= magnitude;
        }
        match code.decode(&word, &[]).expect("well-formed word") {
            DecodeOutcome::Failure(_) => detected += 1,
            out => {
                if out.data() == Some(&data[..]) {
                    corrected += 1;
                } else {
                    miscorrected += 1;
                }
            }
        }
    }
    Ok(MiscorrectionStats {
        error_weight,
        trials,
        corrected,
        detected,
        miscorrected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_capability_always_corrects() {
        let code = RsCode::new(15, 9, 4).unwrap(); // t = 3
        for e in 0..=3usize {
            let stats = measure(&code, e, 200, 1).unwrap();
            assert_eq!(stats.corrected, 200, "weight {e}");
            assert_eq!(stats.miscorrected, 0);
            assert_eq!(stats.detected, 0);
        }
    }

    #[test]
    fn beyond_capability_never_returns_the_original() {
        // With e = t + 1 errors the original codeword is at distance
        // t + 1 > t from the received word, so "corrected" is impossible.
        let code = RsCode::new(15, 9, 4).unwrap();
        let stats = measure(&code, 4, 300, 2).unwrap();
        assert_eq!(stats.corrected, 0);
        assert_eq!(stats.detected + stats.miscorrected, 300);
        // Most beyond-capability patterns are detected...
        assert!(stats.detected > stats.miscorrected);
        // ...but mis-correction genuinely occurs for this small field.
        assert!(
            stats.miscorrected > 0,
            "expected some mis-corrections in 300 trials of GF(16)"
        );
    }

    #[test]
    fn miscorrection_rate_tracks_inverse_t_factorial() {
        // Classical estimate: P(miscorrect) ≈ 1/t!. For RS(15,9), t = 3:
        // ≈ 1/6 ≈ 0.17. Accept a factor-of-2.5 band.
        let code = RsCode::new(15, 9, 4).unwrap();
        let stats = measure(&code, 5, 2000, 3).unwrap();
        let rate = stats.miscorrection_rate();
        assert!(
            (0.06..0.4).contains(&rate),
            "rate {rate} far from the 1/t! ≈ 0.17 estimate"
        );
    }

    #[test]
    fn narrow_paper_code_is_mostly_detecting() {
        // RS(18,16), t = 1: 1/t! = 1 would suggest frequent mis-correction
        // — but the estimate ignores the dominant shortening: only 18 of
        // 255 locator values are valid positions, so most 2-error
        // syndromes point outside the word and are detected. Measure it.
        let code = RsCode::new(18, 16, 8).unwrap();
        let stats = measure(&code, 2, 2000, 4).unwrap();
        let rate = stats.miscorrection_rate();
        assert!(rate > 0.0, "mis-correction must occur sometimes");
        assert!(
            rate < 0.25,
            "shortening keeps the RS(18,16) mis-correction rate low, got {rate}"
        );
    }

    #[test]
    fn input_validation() {
        let code = RsCode::new(15, 9, 4).unwrap();
        assert!(matches!(measure(&code, 2, 0, 0), Err(SimError::NoTrials)));
        assert!(measure(&code, 16, 10, 0).is_err());
    }
}
