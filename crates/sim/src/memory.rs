//! A simulated memory module holding one RS codeword.

use rsmem_gf::Symbol;

/// One memory module storing an `n`-symbol codeword, with bit-level SEU
/// injection and symbol-level stuck-at (permanent) faults.
///
/// Permanent faults are *located* — the paper assumes self-checking
/// hardware (e.g. Iddq monitoring \[9\]) identifies the faulty symbol, so
/// [`MemoryModule::erasures`] reports every stuck position and the
/// decoder receives them as erasures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryModule {
    stored: Vec<Symbol>,
    stuck: Vec<Option<Symbol>>,
    symbol_bits: u32,
}

impl MemoryModule {
    /// Creates a module holding `codeword`, fault-free.
    pub fn new(codeword: Vec<Symbol>, symbol_bits: u32) -> Self {
        let n = codeword.len();
        MemoryModule {
            stored: codeword,
            stuck: vec![None; n],
            symbol_bits,
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.stored.len()
    }

    /// True for a zero-length module (not produced in practice).
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty()
    }

    /// The currently stored word (faulty symbols read their stuck value).
    pub fn read(&self) -> &[Symbol] {
        &self.stored
    }

    /// Positions currently known-faulty (the erasure set for decoding).
    pub fn erasures(&self) -> Vec<usize> {
        self.stuck
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect()
    }

    /// True if `pos` holds a permanent fault.
    pub fn is_stuck(&self, pos: usize) -> bool {
        self.stuck[pos].is_some()
    }

    /// Injects an SEU: flips bit `bit` of symbol `pos`. A stuck symbol
    /// holds its value — the upset has no effect there.
    ///
    /// # Panics
    ///
    /// Panics if `pos` or `bit` is out of range.
    pub fn flip_bit(&mut self, pos: usize, bit: u32) {
        assert!(bit < self.symbol_bits, "bit index out of symbol width");
        if self.stuck[pos].is_some() {
            return;
        }
        self.stored[pos] ^= 1 << bit;
    }

    /// Injects a permanent fault: symbol `pos` becomes stuck at `value`
    /// and is reported as an erasure from now on. A second fault on the
    /// same symbol re-sticks it at the new value.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn stick(&mut self, pos: usize, value: Symbol) {
        self.stuck[pos] = Some(value);
        self.stored[pos] = value;
    }

    /// Writes a full word back (a scrub rewrite). Stuck symbols keep
    /// their stuck values; healthy symbols take the new data.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != self.len()`.
    pub fn write(&mut self, word: &[Symbol]) {
        assert_eq!(word.len(), self.stored.len());
        for (i, &w) in word.iter().enumerate() {
            if self.stuck[i].is_none() {
                self.stored[i] = w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> MemoryModule {
        MemoryModule::new(vec![0x10, 0x20, 0x30, 0x40], 8)
    }

    #[test]
    fn fresh_module_reads_back_clean() {
        let m = module();
        assert_eq!(m.read(), &[0x10, 0x20, 0x30, 0x40]);
        assert!(m.erasures().is_empty());
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn seu_flips_exactly_one_bit() {
        let mut m = module();
        m.flip_bit(2, 3);
        assert_eq!(m.read()[2], 0x30 ^ 0x08);
        m.flip_bit(2, 3); // flip back
        assert_eq!(m.read()[2], 0x30);
    }

    #[test]
    fn stuck_symbol_ignores_seu_and_writes() {
        let mut m = module();
        m.stick(1, 0xff);
        assert_eq!(m.read()[1], 0xff);
        m.flip_bit(1, 0);
        assert_eq!(m.read()[1], 0xff, "SEU must not move a stuck symbol");
        m.write(&[0, 0, 0, 0]);
        assert_eq!(m.read(), &[0, 0xff, 0, 0]);
    }

    #[test]
    fn erasure_set_tracks_stuck_positions() {
        let mut m = module();
        m.stick(0, 0x01);
        m.stick(3, 0x02);
        assert_eq!(m.erasures(), vec![0, 3]);
        assert!(m.is_stuck(0) && m.is_stuck(3));
        assert!(!m.is_stuck(1));
    }

    #[test]
    fn write_refreshes_healthy_symbols_only() {
        let mut m = module();
        m.stick(2, 0x77);
        m.write(&[1, 2, 3, 4]);
        assert_eq!(m.read(), &[1, 2, 0x77, 4]);
    }

    #[test]
    #[should_panic(expected = "bit index")]
    fn out_of_width_bit_panics() {
        module().flip_bit(0, 8);
    }
}
