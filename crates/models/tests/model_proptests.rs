//! Property-based tests of the paper's Markov models: transition-count
//! bookkeeping, conservation, monotonicity of BER in rates/time, and
//! duplex/simplex consistency relations.

use proptest::prelude::*;
use rsmem_ctmc::{MarkovModel, StateSpace};
use rsmem_models::units::{ErasureRate, SeuRate, Time};
use rsmem_models::{
    ber, CodeParams, DuplexModel, DuplexState, FaultRates, Scrubbing, SimplexModel, SimplexState,
};

fn rates_strategy() -> impl Strategy<Value = FaultRates> {
    (1e-8f64..1e-2, 1e-9f64..1e-3).prop_map(|(seu, erasure)| FaultRates {
        seu: SeuRate::per_bit_day(seu),
        erasure: ErasureRate::per_symbol_day(erasure),
    })
}

fn code_strategy() -> impl Strategy<Value = CodeParams> {
    prop_oneof![
        Just(CodeParams::rs18_16()),
        Just(CodeParams::rs36_16()),
        Just(CodeParams::new(15, 11, 4).unwrap()),
        Just(CodeParams::new(12, 6, 4).unwrap()),
    ]
}

fn scrub_strategy() -> impl Strategy<Value = Scrubbing> {
    prop_oneof![
        Just(Scrubbing::None),
        (0.01f64..2.0).prop_map(|days| Scrubbing::Periodic {
            period: Time::from_days(days)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simplex_transitions_preserve_invariants(
        code in code_strategy(),
        rates in rates_strategy(),
        scrub in scrub_strategy(),
    ) {
        let model = SimplexModel::new(code, rates, scrub);
        let space = StateSpace::explore(&model).expect("explore");
        for s in space.states() {
            if let SimplexState::Up { er, re } = s {
                // Every explored Up state satisfies the boundary condition.
                prop_assert!(code.within_capability(*er as usize, *re as usize));
                prop_assert!((*er as usize + *re as usize) <= code.n());
            }
        }
        // Conservation: each generator row sums to ~0.
        for i in 0..space.len() {
            let mut p = vec![0.0; space.len()];
            p[i] = 1.0;
            let row = space.apply_generator(&p).expect("dims");
            let sum: f64 = row.iter().sum();
            prop_assert!(sum.abs() < 1e-9 * space.exit_rate(i).max(1.0));
        }
    }

    #[test]
    fn duplex_transitions_change_counts_by_one_event(
        code in code_strategy(),
        rates in rates_strategy(),
    ) {
        let model = DuplexModel::new(code, rates, Scrubbing::None);
        let space = StateSpace::explore(&model).expect("explore");
        let mut out = Vec::new();
        for s in space.states() {
            let DuplexState::Up { x, y, b, e1, e2, ec } = *s else { continue };
            out.clear();
            model.transitions(s, &mut out);
            for (target, rate) in &out {
                prop_assert!(*rate > 0.0);
                let DuplexState::Up { x: x2, y: y2, b: b2, e1: f1, e2: f2, ec: c2 } = *target
                else { continue };
                // A single fault event changes the total symbol-pair
                // "touched" count by at most one and individual counters
                // by at most one (scrubbing exempted — it zeroes them).
                let d = |a: u16, b: u16| (a as i32 - b as i32).abs();
                let per_counter_ok = d(x, x2) <= 1 && d(y, y2) <= 1 && d(b, b2) <= 1
                    && d(e1, f1) <= 1 && d(e2, f2) <= 1 && d(ec, c2) <= 1;
                let is_scrub = b2 == 0 && f1 == 0 && f2 == 0 && c2 == 0
                    && y2 == y + b && x2 == x && (b > 0 || e1 > 0 || e2 > 0 || ec > 0);
                prop_assert!(per_counter_ok || is_scrub,
                    "{s:?} -> {target:?} is neither a unit event nor a scrub");
                // Pair-count budget is never exceeded.
                let total = x2 as usize + y2 as usize + b2 as usize
                    + f1 as usize + f2 as usize + c2 as usize;
                prop_assert!(total <= code.n());
            }
        }
    }

    #[test]
    fn ber_is_monotone_in_time_without_scrubbing(
        code in code_strategy(),
        rates in rates_strategy(),
    ) {
        let model = SimplexModel::new(code, rates, Scrubbing::None);
        let times: Vec<Time> = (0..6).map(|i| Time::from_hours(8.0 * i as f64)).collect();
        let curve = ber::ber_curve(&model, &times).expect("solve");
        for w in curve.ber.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-18);
        }
    }

    #[test]
    fn ber_is_monotone_in_seu_rate(
        code in code_strategy(),
        base in 1e-7f64..1e-3,
    ) {
        let t = [Time::from_hours(48.0)];
        let lo = SimplexModel::new(
            code,
            FaultRates::transient_only(SeuRate::per_bit_day(base)),
            Scrubbing::None,
        );
        let hi = SimplexModel::new(
            code,
            FaultRates::transient_only(SeuRate::per_bit_day(base * 3.0)),
            Scrubbing::None,
        );
        let bl = ber::ber_curve(&lo, &t).expect("lo").ber[0];
        let bh = ber::ber_curve(&hi, &t).expect("hi").ber[0];
        prop_assert!(bh >= bl);
    }

    #[test]
    fn scrubbing_never_hurts(
        code in code_strategy(),
        rates in rates_strategy(),
        period_days in 0.01f64..1.0,
    ) {
        let t = [Time::from_hours(48.0)];
        let bare = SimplexModel::new(code, rates, Scrubbing::None);
        let scrubbed = SimplexModel::new(
            code,
            rates,
            Scrubbing::Periodic { period: Time::from_days(period_days) },
        );
        let bb = ber::ber_curve(&bare, &t).expect("bare").ber[0];
        let bs = ber::ber_curve(&scrubbed, &t).expect("scrubbed").ber[0];
        prop_assert!(bs <= bb * (1.0 + 1e-9) + 1e-300);
    }

    #[test]
    fn duplex_fail_probability_bounded_by_twice_simplex(
        rates in rates_strategy(),
    ) {
        // Under the BothWords criterion the duplex fails when either word
        // overloads: a union bound gives P_duplex ≤ 2·P_simplex, and the
        // common-mode (ec, b, X) couplings only reduce it further.
        let code = CodeParams::rs18_16();
        let t = [Time::from_hours(48.0)];
        let s = ber::ber_curve(
            &SimplexModel::new(code, rates, Scrubbing::None), &t).expect("s");
        let d = ber::ber_curve(
            &DuplexModel::new(code, rates, Scrubbing::None), &t).expect("d");
        prop_assert!(
            d.fail_probability[0] <= 2.0 * s.fail_probability[0] + 1e-15,
            "duplex {} vs 2×simplex {}",
            d.fail_probability[0],
            2.0 * s.fail_probability[0]
        );
    }
}
