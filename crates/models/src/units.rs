//! Unit-safe time and rate quantities.
//!
//! The paper mixes units freely: SEU rates in errors/bit/**day**, scrub
//! periods in **seconds**, storage horizons in **hours** (Figs. 5–7) and
//! **months** (Figs. 8–10). Everything in this workspace is normalized to
//! **days** internally; these newtypes make conversions explicit at the
//! API boundary ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Hours per day.
pub const HOURS_PER_DAY: f64 = 24.0;
/// Seconds per day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;
/// Days per month (mean Gregorian month, 365.25/12).
pub const DAYS_PER_MONTH: f64 = 365.25 / 12.0;

/// A point in (or span of) time, stored in days.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time {
    days: f64,
}

impl Time {
    /// Zero time.
    pub fn zero() -> Self {
        Time { days: 0.0 }
    }

    /// From days.
    pub fn from_days(days: f64) -> Self {
        Time { days }
    }

    /// From hours.
    pub fn from_hours(hours: f64) -> Self {
        Time {
            days: hours / HOURS_PER_DAY,
        }
    }

    /// From seconds.
    pub fn from_seconds(seconds: f64) -> Self {
        Time {
            days: seconds / SECONDS_PER_DAY,
        }
    }

    /// From mean months (365.25/12 days).
    pub fn from_months(months: f64) -> Self {
        Time {
            days: months * DAYS_PER_MONTH,
        }
    }

    /// The value in days.
    pub fn as_days(self) -> f64 {
        self.days
    }

    /// The value in hours.
    pub fn as_hours(self) -> f64 {
        self.days * HOURS_PER_DAY
    }

    /// The value in seconds.
    pub fn as_seconds(self) -> f64 {
        self.days * SECONDS_PER_DAY
    }

    /// The value in mean months.
    pub fn as_months(self) -> f64 {
        self.days / DAYS_PER_MONTH
    }

    /// True for a finite, non-negative time.
    pub fn is_valid(self) -> bool {
        self.days.is_finite() && self.days >= 0.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.days >= DAYS_PER_MONTH {
            write!(f, "{:.2} months", self.as_months())
        } else if self.days >= 1.0 {
            write!(f, "{:.2} days", self.days)
        } else if self.days >= 1.0 / HOURS_PER_DAY {
            write!(f, "{:.2} h", self.as_hours())
        } else {
            write!(f, "{:.1} s", self.as_seconds())
        }
    }
}

/// An evenly spaced grid of time points, e.g. the x-axis of a BER figure.
///
/// # Examples
///
/// ```
/// use rsmem_models::units::{Time, TimeGrid};
/// let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 25);
/// assert_eq!(grid.points().len(), 25);
/// assert_eq!(grid.points()[24].as_hours(), 48.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeGrid {
    points: Vec<Time>,
}

impl TimeGrid {
    /// `count` points linearly spaced from `start` to `end` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2` or `end < start`.
    pub fn linspace(start: Time, end: Time, count: usize) -> Self {
        assert!(count >= 2, "need at least two grid points");
        assert!(end.as_days() >= start.as_days(), "end before start");
        let step = (end.as_days() - start.as_days()) / (count - 1) as f64;
        let points = (0..count)
            .map(|i| Time::from_days(start.as_days() + step * i as f64))
            .collect();
        TimeGrid { points }
    }

    /// The grid points.
    pub fn points(&self) -> &[Time] {
        &self.points
    }

    /// The points converted to raw days (solver input).
    pub fn as_days(&self) -> Vec<f64> {
        self.points.iter().map(|t| t.as_days()).collect()
    }
}

/// SEU (transient fault) rate, stored per bit per day — the unit the
/// paper's Section 6 sweeps use (`7.3e-7 … 1.7e-5 errors/bit/day`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeuRate {
    per_bit_day: f64,
}

impl SeuRate {
    /// From errors per bit per day.
    pub fn per_bit_day(rate: f64) -> Self {
        SeuRate { per_bit_day: rate }
    }

    /// From errors per bit per hour.
    pub fn per_bit_hour(rate: f64) -> Self {
        SeuRate {
            per_bit_day: rate * HOURS_PER_DAY,
        }
    }

    /// The value per bit per day.
    pub fn as_per_bit_day(self) -> f64 {
        self.per_bit_day
    }

    /// True for a finite, non-negative rate.
    pub fn is_valid(self) -> bool {
        self.per_bit_day.is_finite() && self.per_bit_day >= 0.0
    }
}

/// Permanent-fault (erasure) exposure rate, stored per symbol per day.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErasureRate {
    per_symbol_day: f64,
}

impl ErasureRate {
    /// From faults per symbol per day.
    pub fn per_symbol_day(rate: f64) -> Self {
        ErasureRate {
            per_symbol_day: rate,
        }
    }

    /// The value per symbol per day.
    pub fn as_per_symbol_day(self) -> f64 {
        self.per_symbol_day
    }

    /// True for a finite, non-negative rate.
    pub fn is_valid(self) -> bool {
        self.per_symbol_day.is_finite() && self.per_symbol_day >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        let t = Time::from_hours(48.0);
        assert!((t.as_days() - 2.0).abs() < 1e-12);
        assert!((t.as_seconds() - 172_800.0).abs() < 1e-6);
        let m = Time::from_months(24.0);
        assert!((m.as_days() - 730.5).abs() < 1e-9);
        assert!((Time::from_seconds(900.0).as_days() - 900.0 / 86_400.0).abs() < 1e-15);
    }

    #[test]
    fn time_display_picks_natural_unit() {
        assert_eq!(Time::from_seconds(900.0).to_string(), "900.0 s");
        assert_eq!(Time::from_hours(5.0).to_string(), "5.00 h");
        assert_eq!(Time::from_days(2.0).to_string(), "2.00 days");
        assert!(Time::from_months(3.0).to_string().contains("months"));
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = TimeGrid::linspace(Time::zero(), Time::from_days(10.0), 11);
        let days = g.as_days();
        assert_eq!(days.len(), 11);
        assert_eq!(days[0], 0.0);
        assert_eq!(days[10], 10.0);
        assert!((days[5] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_needs_two_points() {
        let _ = TimeGrid::linspace(Time::zero(), Time::from_days(1.0), 1);
    }

    #[test]
    fn rate_conversions() {
        let r = SeuRate::per_bit_hour(1.0);
        assert!((r.as_per_bit_day() - 24.0).abs() < 1e-12);
        assert!(SeuRate::per_bit_day(1.7e-5).is_valid());
        assert!(!SeuRate::per_bit_day(f64::NAN).is_valid());
        assert!(!SeuRate::per_bit_day(-1.0).is_valid());
        assert!(ErasureRate::per_symbol_day(1e-6).is_valid());
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(SeuRate::default().as_per_bit_day(), 0.0);
        assert_eq!(ErasureRate::default().as_per_symbol_day(), 0.0);
        assert_eq!(Time::default().as_days(), 0.0);
    }
}
