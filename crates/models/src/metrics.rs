//! Reliability figures of merit beyond the paper's BER: reliability
//! `R(t)`, mean time to failure, and expected operational time.
//!
//! The paper's conclusion calls its models "an accurate and flexible
//! evaluation tool which can be used to assess the viability of SSMMs
//! for long mission time" — these metrics are the quantities a mission
//! planner would actually extract from the same Markov chains.

use crate::ber::MemoryModel;
use crate::units::Time;
use crate::ModelError;
use rsmem_ctmc::rewards::{expected_time_in_states, RewardOptions};
use rsmem_ctmc::steady::mean_time_to_absorption;
use rsmem_ctmc::uniformization::{transient, UniformizationOptions};
use rsmem_ctmc::StateSpace;

/// Reliability `R(t) = 1 − P_Fail(t)`: the probability the word is still
/// readable after storing for `t`.
///
/// # Errors
///
/// Solver errors wrapped in [`ModelError::Ctmc`];
/// [`ModelError::InvalidTime`] on a bad horizon.
pub fn reliability<M>(model: &M, t: Time) -> Result<f64, ModelError>
where
    M: MemoryModel,
{
    if !t.is_valid() {
        return Err(ModelError::InvalidTime);
    }
    let space = StateSpace::explore(model)?;
    let p = transient(&space, t.as_days(), &UniformizationOptions::default())?;
    let fail = space.index_of(&model.fail_state());
    Ok(1.0 - fail.map_or(0.0, |f| p[f]))
}

/// Mean time to failure of the arrangement, in days.
///
/// For an unscrubbed memory this is the expected time until the fault
/// pattern exceeds the code's capability; with scrubbing it grows as the
/// repair rate increases.
///
/// # Errors
///
/// [`ModelError::Ctmc`] wrapping `NoAbsorbingState` when no failure is
/// reachable (all rates zero), or `SingularSystem` if absorption is not
/// certain.
pub fn mttf_days<M>(model: &M) -> Result<f64, ModelError>
where
    M: MemoryModel,
{
    let space = StateSpace::explore(model)?;
    if space.index_of(&model.fail_state()).is_none() {
        // No failure is reachable (all rates zero): the MTTF diverges.
        return Err(ModelError::Ctmc(rsmem_ctmc::CtmcError::NoAbsorbingState));
    }
    Ok(mean_time_to_absorption(&space)?)
}

/// Expected *operational* time (days spent outside the Fail state) during
/// a storage period of `t` — the numerator of mission availability.
///
/// # Errors
///
/// See [`reliability`].
pub fn expected_uptime_days<M>(model: &M, t: Time) -> Result<f64, ModelError>
where
    M: MemoryModel,
{
    if !t.is_valid() {
        return Err(ModelError::InvalidTime);
    }
    let space = StateSpace::explore(model)?;
    let l = expected_time_in_states(&space, t.as_days(), &RewardOptions::default())?;
    let fail = space.index_of(&model.fail_state());
    let downtime = fail.map_or(0.0, |f| l[f]);
    Ok(t.as_days() - downtime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ErasureRate, SeuRate};
    use crate::{CodeParams, DuplexModel, FaultRates, Scrubbing, SimplexModel};

    fn rates(seu: f64, erasure: f64) -> FaultRates {
        FaultRates {
            seu: SeuRate::per_bit_day(seu),
            erasure: ErasureRate::per_symbol_day(erasure),
        }
    }

    #[test]
    fn reliability_complements_ber_fail_probability() {
        let model = SimplexModel::new(CodeParams::rs18_16(), rates(1e-3, 0.0), Scrubbing::None);
        let t = Time::from_days(2.0);
        let r = reliability(&model, t).unwrap();
        let curve = crate::ber::ber_curve(&model, &[t]).unwrap();
        assert!((r - (1.0 - curve.fail_probability[0])).abs() < 1e-12);
        assert!(r < 1.0 && r > 0.9);
    }

    #[test]
    fn mttf_decreases_with_fault_rate() {
        let slow = SimplexModel::new(CodeParams::rs18_16(), rates(1e-4, 0.0), Scrubbing::None);
        let fast = SimplexModel::new(CodeParams::rs18_16(), rates(1e-3, 0.0), Scrubbing::None);
        let (ms, mf) = (mttf_days(&slow).unwrap(), mttf_days(&fast).unwrap());
        assert!(ms > mf, "{ms} vs {mf}");
        // 10× the rate ⇒ roughly 1/10 the MTTF for a 2-event failure...
        // actually MTTF of a 2-stage chain scales as 1/rate: check order.
        assert!((ms / mf - 10.0).abs() < 1.0);
    }

    #[test]
    fn scrubbing_multiplies_mttf() {
        let bare = SimplexModel::new(CodeParams::rs18_16(), rates(1e-3, 0.0), Scrubbing::None);
        let scrubbed = SimplexModel::new(
            CodeParams::rs18_16(),
            rates(1e-3, 0.0),
            Scrubbing::Periodic {
                period: Time::from_days(0.05),
            },
        );
        let (mb, ms) = (mttf_days(&bare).unwrap(), mttf_days(&scrubbed).unwrap());
        assert!(ms > 5.0 * mb, "scrubbing should multiply MTTF: {mb} → {ms}");
    }

    #[test]
    fn duplex_mttf_beats_simplex_under_permanent_faults() {
        let s = SimplexModel::new(CodeParams::rs18_16(), rates(0.0, 1e-3), Scrubbing::None);
        let d = DuplexModel::new(CodeParams::rs18_16(), rates(0.0, 1e-3), Scrubbing::None);
        assert!(mttf_days(&d).unwrap() > 3.0 * mttf_days(&s).unwrap());
    }

    #[test]
    fn uptime_bounded_by_horizon_and_consistent_with_reliability() {
        let model = SimplexModel::new(CodeParams::rs18_16(), rates(5e-3, 0.0), Scrubbing::None);
        let t = Time::from_days(2.0);
        let up = expected_uptime_days(&model, t).unwrap();
        assert!(up > 0.0 && up <= 2.0);
        // Uptime must exceed t·R(t) (failures happen part-way through).
        let r = reliability(&model, t).unwrap();
        assert!(up >= 2.0 * r - 1e-12, "up={up}, t·R={}", 2.0 * r);
    }

    #[test]
    fn fault_free_system_has_no_mttf() {
        let model = SimplexModel::new(CodeParams::rs18_16(), rates(0.0, 0.0), Scrubbing::None);
        assert!(mttf_days(&model).is_err());
        assert_eq!(reliability(&model, Time::from_days(100.0)).unwrap(), 1.0);
    }

    #[test]
    fn invalid_time_rejected() {
        let model = SimplexModel::new(CodeParams::rs18_16(), rates(1e-3, 0.0), Scrubbing::None);
        assert!(reliability(&model, Time::from_days(f64::NAN)).is_err());
        assert!(expected_uptime_days(&model, Time::from_days(-1.0)).is_err());
    }
}
