//! Bit Error Rate evaluation — paper Eq. (1).
//!
//! The paper's figure of merit is
//! `BER(t) = m · (n−k)/k · P_Fail(t)`,
//! where `P_Fail(t)` is the transient probability of the lumped
//! unrecoverable-error state. This module evaluates it over time grids
//! with the uniformization solver (and, for acyclic no-scrubbing models,
//! cross-checks against the SURE-style path bounds).

use crate::duplex::{DuplexModel, DuplexState};
use crate::simplex::{SimplexModel, SimplexState};
use crate::units::Time;
use crate::{CodeParams, ModelError};
use rsmem_ctmc::paths::{absorption_bounds, PathBound, PathOptions};
use rsmem_ctmc::uniformization::{transient_grid, UniformizationOptions};
use rsmem_ctmc::{MarkovModel, StateSpace};

/// A memory-system Markov model with a distinguished Fail state —
/// everything [`ber_curve`] needs, implemented by [`SimplexModel`] and
/// [`DuplexModel`].
pub trait MemoryModel: MarkovModel {
    /// The code parameters (for Eq. (1)'s prefactor).
    fn code_params(&self) -> CodeParams;
    /// The lumped unrecoverable-error state.
    fn fail_state(&self) -> Self::State;
}

impl MemoryModel for SimplexModel {
    fn code_params(&self) -> CodeParams {
        self.code()
    }
    fn fail_state(&self) -> SimplexState {
        SimplexState::Fail
    }
}

impl MemoryModel for DuplexModel {
    fn code_params(&self) -> CodeParams {
        self.code()
    }
    fn fail_state(&self) -> DuplexState {
        DuplexState::Fail
    }
}

/// A BER-versus-time series, the payload of every figure in the paper.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BerCurve {
    /// The evaluation times.
    pub times: Vec<Time>,
    /// `P_Fail(t)` at each time.
    pub fail_probability: Vec<f64>,
    /// `BER(t) = m·(n−k)/k · P_Fail(t)` at each time.
    pub ber: Vec<f64>,
}

impl BerCurve {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// `(hours, BER)` pairs — the axes of paper Figs. 5–7.
    pub fn as_hours_series(&self) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.ber)
            .map(|(t, &b)| (t.as_hours(), b))
            .collect()
    }

    /// `(months, BER)` pairs — the axes of paper Figs. 8–10.
    pub fn as_months_series(&self) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.ber)
            .map(|(t, &b)| (t.as_months(), b))
            .collect()
    }
}

/// Evaluates the BER curve of a memory model over the given times with
/// default solver options.
///
/// # Errors
///
/// [`ModelError::InvalidTime`] on bad grid points, or a wrapped
/// [`ModelError::Ctmc`] from exploration/solving.
pub fn ber_curve<M>(model: &M, times: &[Time]) -> Result<BerCurve, ModelError>
where
    M: MemoryModel,
{
    ber_curve_with_options(model, times, &UniformizationOptions::default())
}

/// [`ber_curve`] with explicit solver options.
///
/// # Errors
///
/// See [`ber_curve`].
pub fn ber_curve_with_options<M>(
    model: &M,
    times: &[Time],
    opts: &UniformizationOptions,
) -> Result<BerCurve, ModelError>
where
    M: MemoryModel,
{
    for t in times {
        if !t.is_valid() {
            return Err(ModelError::InvalidTime);
        }
    }
    let space = StateSpace::explore(model)?;
    let days: Vec<f64> = times.iter().map(|t| t.as_days()).collect();
    let grid = transient_grid(&space, &days, opts)?;
    let fail = space.index_of(&model.fail_state());
    let prefactor = model.code_params().ber_prefactor();
    let fail_probability: Vec<f64> = grid.iter().map(|p| fail.map_or(0.0, |f| p[f])).collect();
    let ber = fail_probability.iter().map(|&p| prefactor * p).collect();
    Ok(BerCurve {
        times: times.to_vec(),
        fail_probability,
        ber,
    })
}

/// SURE-style two-sided bounds on `P_Fail(t)` for **acyclic** models
/// (no scrubbing). Returns unreachable-as-zero bounds when the Fail state
/// was never generated (e.g. all rates zero).
///
/// # Errors
///
/// [`ModelError::Ctmc`] wrapping [`rsmem_ctmc::CtmcError::NotAcyclic`]
/// when scrubbing (or any cycle) is present.
pub fn fail_probability_bounds<M>(model: &M, t: Time) -> Result<PathBound, ModelError>
where
    M: MemoryModel,
{
    let space = StateSpace::explore(model)?;
    let Some(fail) = space.index_of(&model.fail_state()) else {
        return Ok(PathBound {
            ln_lower: f64::NEG_INFINITY,
            ln_upper: f64::NEG_INFINITY,
        });
    };
    Ok(absorption_bounds(
        &space,
        fail,
        t.as_days(),
        &PathOptions::default(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ErasureRate, SeuRate, TimeGrid};
    use crate::{FaultRates, Scrubbing};

    fn simplex(seu: f64, erasure: f64, scrub: Scrubbing) -> SimplexModel {
        SimplexModel::new(
            CodeParams::rs18_16(),
            FaultRates {
                seu: SeuRate::per_bit_day(seu),
                erasure: ErasureRate::per_symbol_day(erasure),
            },
            scrub,
        )
    }

    fn duplex(seu: f64, erasure: f64, scrub: Scrubbing) -> DuplexModel {
        DuplexModel::new(
            CodeParams::rs18_16(),
            FaultRates {
                seu: SeuRate::per_bit_day(seu),
                erasure: ErasureRate::per_symbol_day(erasure),
            },
            scrub,
        )
    }

    #[test]
    fn ber_is_zero_at_time_zero_and_monotone_without_scrubbing() {
        let model = simplex(1.7e-5, 0.0, Scrubbing::None);
        let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 13);
        let curve = ber_curve(&model, grid.points()).unwrap();
        assert_eq!(curve.ber[0], 0.0);
        for w in curve.ber.windows(2) {
            assert!(w[1] >= w[0], "absorbing fail ⇒ monotone BER");
        }
        assert!(curve.ber[12] > 0.0);
    }

    #[test]
    fn eq1_prefactor_applied() {
        let model = simplex(1.7e-5, 0.0, Scrubbing::None);
        let curve = ber_curve(&model, &[Time::from_hours(48.0)]).unwrap();
        // RS(18,16), m=8 → prefactor exactly 1.
        assert_eq!(curve.ber[0], curve.fail_probability[0]);

        let wide = SimplexModel::new(
            CodeParams::rs36_16(),
            FaultRates::transient_only(SeuRate::per_bit_day(1.7e-5)),
            Scrubbing::None,
        );
        let wide_curve = ber_curve(&wide, &[Time::from_hours(48.0)]).unwrap();
        assert!((wide_curve.ber[0] - 10.0 * wide_curve.fail_probability[0]).abs() < 1e-25);
    }

    #[test]
    fn simplex_two_seu_failure_matches_hand_rate_analysis() {
        // For small λt, P_fail(t) ≈ (first path rates product)·t²/2:
        // G →(mλn) (0,1) →(mλ(n−1)) Fail ⇒ P ≈ m²λ²n(n−1)·t²/2.
        let lam = 1e-6;
        let model = simplex(lam, 0.0, Scrubbing::None);
        let t = Time::from_hours(1.0);
        let curve = ber_curve(&model, &[t]).unwrap();
        let td = t.as_days();
        let expect = (8.0 * lam).powi(2) * 18.0 * 17.0 * td * td / 2.0;
        let rel = (curve.fail_probability[0] - expect).abs() / expect;
        assert!(
            rel < 1e-3,
            "got {} expect {expect}",
            curve.fail_probability[0]
        );
    }

    #[test]
    fn duplex_beats_simplex_under_permanent_faults() {
        let t = Time::from_months(24.0);
        let s = ber_curve(&simplex(0.0, 1e-6, Scrubbing::None), &[t]).unwrap();
        let d = ber_curve(&duplex(0.0, 1e-6, Scrubbing::None), &[t]).unwrap();
        assert!(
            d.ber[0] < s.ber[0] / 1e3,
            "duplex {} should be orders below simplex {}",
            d.ber[0],
            s.ber[0]
        );
    }

    #[test]
    fn scrubbing_improves_duplex_ber() {
        let t = Time::from_hours(48.0);
        let no = ber_curve(&duplex(1.7e-5, 0.0, Scrubbing::None), &[t]).unwrap();
        let with = ber_curve(&duplex(1.7e-5, 0.0, Scrubbing::every_seconds(900.0)), &[t]).unwrap();
        assert!(with.ber[0] < no.ber[0]);
    }

    #[test]
    fn faster_scrubbing_is_better() {
        // Paper Fig. 7: BER at fixed t grows with the scrub period, and
        // any Tsc ≤ 1 h keeps BER(48 h) below 1e-6 at the worst-case SEU
        // rate.
        let t = Time::from_hours(48.0);
        let bers: Vec<f64> = [900.0, 1200.0, 1800.0, 3600.0]
            .iter()
            .map(|&secs| {
                ber_curve(&duplex(1.7e-5, 0.0, Scrubbing::every_seconds(secs)), &[t])
                    .unwrap()
                    .ber[0]
            })
            .collect();
        for w in bers.windows(2) {
            assert!(w[0] < w[1], "longer period ⇒ worse BER: {bers:?}");
        }
        assert!(bers.iter().all(|&b| b > 0.0 && b < 1e-6), "{bers:?}");
    }

    #[test]
    fn path_bounds_bracket_uniformization_for_acyclic_models() {
        let model = simplex(1e-6, 1e-7, Scrubbing::None);
        let t = Time::from_hours(48.0);
        let curve = ber_curve(&model, &[t]).unwrap();
        let bounds = fail_probability_bounds(&model, t).unwrap();
        let p = curve.fail_probability[0];
        assert!(p > 0.0);
        assert!(
            bounds.contains_ln(p.ln(), 1e-6),
            "p={p:e} not in [{:e}, {:e}]",
            bounds.lower(),
            bounds.upper()
        );
        assert!(bounds.ln_width() < 0.01, "bounds should be tight here");
    }

    #[test]
    fn path_bounds_reject_scrubbing_models() {
        let model = simplex(1e-6, 1e-7, Scrubbing::every_seconds(900.0));
        assert!(matches!(
            fail_probability_bounds(&model, Time::from_hours(1.0)),
            Err(ModelError::Ctmc(rsmem_ctmc::CtmcError::NotAcyclic))
        ));
    }

    #[test]
    fn zero_rates_give_zero_ber() {
        let model = simplex(0.0, 0.0, Scrubbing::None);
        let curve = ber_curve(&model, &[Time::from_hours(48.0)]).unwrap();
        assert_eq!(curve.ber[0], 0.0);
        let b = fail_probability_bounds(&model, Time::from_hours(48.0)).unwrap();
        assert_eq!(b.upper(), 0.0);
    }

    #[test]
    fn series_conversions() {
        let model = simplex(1e-5, 0.0, Scrubbing::None);
        let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 3);
        let curve = ber_curve(&model, grid.points()).unwrap();
        let hours = curve.as_hours_series();
        assert_eq!(hours.len(), 3);
        assert!((hours[2].0 - 48.0).abs() < 1e-9);
        let months = curve.as_months_series();
        assert!((months[2].0 - 2.0 / 30.4375).abs() < 1e-9);
    }

    #[test]
    fn invalid_time_rejected() {
        let model = simplex(1e-5, 0.0, Scrubbing::None);
        let bad = [Time::from_days(f64::NAN)];
        assert!(matches!(
            ber_curve(&model, &bad),
            Err(ModelError::InvalidTime)
        ));
    }
}
