use rsmem_ctmc::CtmcError;
use std::error::Error;
use std::fmt;

/// Errors from model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Invalid code parameters.
    InvalidCode {
        /// Codeword length.
        n: usize,
        /// Dataword length.
        k: usize,
        /// Symbol width.
        m: u32,
        /// Why the combination is rejected.
        reason: &'static str,
    },
    /// A fault rate is negative or non-finite.
    InvalidRate,
    /// A scrubbing period is non-positive or non-finite.
    InvalidScrubPeriod,
    /// A time grid point is invalid.
    InvalidTime,
    /// An underlying CTMC solver error.
    Ctmc(CtmcError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidCode { n, k, m, reason } => {
                write!(f, "invalid RS({n},{k}) over GF(2^{m}): {reason}")
            }
            ModelError::InvalidRate => write!(f, "fault rates must be finite and non-negative"),
            ModelError::InvalidScrubPeriod => {
                write!(f, "scrubbing period must be positive and finite")
            }
            ModelError::InvalidTime => write!(f, "time points must be finite and non-negative"),
            ModelError::Ctmc(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Ctmc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtmcError> for ModelError {
    fn from(e: CtmcError) -> Self {
        ModelError::Ctmc(e)
    }
}
