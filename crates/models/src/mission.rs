//! Mission profiles: piecewise-constant fault environments.
//!
//! Space missions do not see a constant SEU rate — solar flares raise the
//! particle flux by orders of magnitude for hours to days. The paper
//! sweeps constant rates; this module composes its models over a sequence
//! of *phases*, each with its own [`FaultRates`], by carrying the full
//! transient state distribution across phase boundaries (the chain's
//! state indexing is shared across phases, so no probability mass is
//! lost or misattributed).

use crate::ber::MemoryModel;
use crate::units::{SeuRate, Time};
use crate::{CodeParams, FaultRates, ModelError, Scrubbing, SimplexModel};
use rsmem_ctmc::uniformization::{transient_grid_from, UniformizationOptions};
use rsmem_ctmc::StateSpace;

/// One phase of a mission: a duration spent in a fault environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionPhase {
    /// How long the phase lasts.
    pub duration: Time,
    /// The environment during the phase.
    pub rates: FaultRates,
}

/// Shared phase-composition engine: explore once under a superset
/// environment, then solve each phase over the shared state indexing,
/// carrying the full distribution across boundaries.
fn phase_fail_probabilities<M>(probe: &M, phases: &[(M, Time)]) -> Result<Vec<f64>, ModelError>
where
    M: MemoryModel,
{
    let space = StateSpace::explore(probe)?;
    let fail = space.index_of(&probe.fail_state());
    let opts = UniformizationOptions::default();
    let mut p = space.initial_distribution();
    let mut out = Vec::with_capacity(phases.len());
    for (model, duration) in phases {
        let phase_space = space.with_model_rates(model)?;
        let mut grid = transient_grid_from(&phase_space, &p, &[duration.as_days()], &opts)?;
        p = grid.pop().expect("one time point");
        out.push(fail.map_or(0.0, |f| p[f]));
    }
    Ok(out)
}

fn superset_rates() -> FaultRates {
    FaultRates {
        seu: SeuRate::per_bit_day(1.0),
        erasure: crate::units::ErasureRate::per_symbol_day(1.0),
    }
}

/// A piecewise-constant mission profile for a **simplex** memory word.
///
/// The duplex counterpart is [`DuplexMission`].
///
/// # Examples
///
/// ```
/// use rsmem_models::mission::{MissionPhase, SimplexMission};
/// use rsmem_models::units::{SeuRate, Time};
/// use rsmem_models::{CodeParams, FaultRates, Scrubbing};
///
/// # fn main() -> Result<(), rsmem_models::ModelError> {
/// let quiet = FaultRates::transient_only(SeuRate::per_bit_day(7.3e-7));
/// let flare = FaultRates::transient_only(SeuRate::per_bit_day(1.7e-5));
/// let mission = SimplexMission::new(
///     CodeParams::rs18_16(),
///     Scrubbing::None,
///     vec![
///         MissionPhase { duration: Time::from_hours(24.0), rates: quiet },
///         MissionPhase { duration: Time::from_hours(6.0), rates: flare },
///         MissionPhase { duration: Time::from_hours(18.0), rates: quiet },
///     ],
/// )?;
/// let p_fail = mission.fail_probability_at_end()?;
/// assert!(p_fail > 0.0 && p_fail < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexMission {
    code: CodeParams,
    scrub: Scrubbing,
    phases: Vec<MissionPhase>,
}

impl SimplexMission {
    /// Builds a mission profile.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidRate`] / [`ModelError::InvalidTime`] /
    /// [`ModelError::InvalidScrubPeriod`] on malformed phases; a mission
    /// needs at least one phase.
    pub fn new(
        code: CodeParams,
        scrub: Scrubbing,
        phases: Vec<MissionPhase>,
    ) -> Result<Self, ModelError> {
        if phases.is_empty() {
            return Err(ModelError::InvalidTime);
        }
        scrub.validate()?;
        for phase in &phases {
            phase.rates.validate()?;
            if !phase.duration.is_valid() {
                return Err(ModelError::InvalidTime);
            }
        }
        Ok(SimplexMission {
            code,
            scrub,
            phases,
        })
    }

    /// The phases.
    pub fn phases(&self) -> &[MissionPhase] {
        &self.phases
    }

    /// Total mission duration.
    pub fn total_duration(&self) -> Time {
        Time::from_days(self.phases.iter().map(|p| p.duration.as_days()).sum())
    }

    /// The fail-state probability at the end of the last phase.
    ///
    /// # Errors
    ///
    /// Wrapped solver errors.
    pub fn fail_probability_at_end(&self) -> Result<f64, ModelError> {
        Ok(*self
            .fail_probability_after_each_phase()?
            .last()
            .expect("at least one phase"))
    }

    /// `BER` (paper Eq. 1) at mission end.
    ///
    /// # Errors
    ///
    /// Wrapped solver errors.
    pub fn ber_at_end(&self) -> Result<f64, ModelError> {
        Ok(self.code.ber_prefactor() * self.fail_probability_at_end()?)
    }

    /// The fail probability after each phase boundary, in order.
    ///
    /// # Errors
    ///
    /// Wrapped solver errors.
    pub fn fail_probability_after_each_phase(&self) -> Result<Vec<f64>, ModelError> {
        let probe = SimplexModel::new(self.code, superset_rates(), self.scrub);
        let phases: Vec<(SimplexModel, Time)> = self
            .phases
            .iter()
            .map(|ph| {
                (
                    SimplexModel::new(self.code, ph.rates, self.scrub),
                    ph.duration,
                )
            })
            .collect();
        phase_fail_probabilities(&probe, &phases)
    }
}

/// A piecewise-constant mission profile for the paper's **duplex**
/// arrangement — see [`SimplexMission`] for the composition semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct DuplexMission {
    code: CodeParams,
    scrub: Scrubbing,
    options: crate::DuplexOptions,
    phases: Vec<MissionPhase>,
}

impl DuplexMission {
    /// Builds a duplex mission profile with default
    /// [`crate::DuplexOptions`].
    ///
    /// # Errors
    ///
    /// See [`SimplexMission::new`].
    pub fn new(
        code: CodeParams,
        scrub: Scrubbing,
        phases: Vec<MissionPhase>,
    ) -> Result<Self, ModelError> {
        Self::with_options(code, scrub, crate::DuplexOptions::default(), phases)
    }

    /// Builds a duplex mission profile with explicit options.
    ///
    /// # Errors
    ///
    /// See [`SimplexMission::new`].
    pub fn with_options(
        code: CodeParams,
        scrub: Scrubbing,
        options: crate::DuplexOptions,
        phases: Vec<MissionPhase>,
    ) -> Result<Self, ModelError> {
        if phases.is_empty() {
            return Err(ModelError::InvalidTime);
        }
        scrub.validate()?;
        for phase in &phases {
            phase.rates.validate()?;
            if !phase.duration.is_valid() {
                return Err(ModelError::InvalidTime);
            }
        }
        Ok(DuplexMission {
            code,
            scrub,
            options,
            phases,
        })
    }

    /// The phases.
    pub fn phases(&self) -> &[MissionPhase] {
        &self.phases
    }

    /// Total mission duration.
    pub fn total_duration(&self) -> Time {
        Time::from_days(self.phases.iter().map(|p| p.duration.as_days()).sum())
    }

    /// The fail-state probability at the end of the last phase.
    ///
    /// # Errors
    ///
    /// Wrapped solver errors.
    pub fn fail_probability_at_end(&self) -> Result<f64, ModelError> {
        Ok(*self
            .fail_probability_after_each_phase()?
            .last()
            .expect("at least one phase"))
    }

    /// `BER` (paper Eq. 1) at mission end.
    ///
    /// # Errors
    ///
    /// Wrapped solver errors.
    pub fn ber_at_end(&self) -> Result<f64, ModelError> {
        Ok(self.code.ber_prefactor() * self.fail_probability_at_end()?)
    }

    /// The fail probability after each phase boundary, in order.
    ///
    /// # Errors
    ///
    /// Wrapped solver errors.
    pub fn fail_probability_after_each_phase(&self) -> Result<Vec<f64>, ModelError> {
        let probe =
            crate::DuplexModel::with_options(self.code, superset_rates(), self.scrub, self.options);
        let phases: Vec<(crate::DuplexModel, Time)> = self
            .phases
            .iter()
            .map(|ph| {
                (
                    crate::DuplexModel::with_options(self.code, ph.rates, self.scrub, self.options),
                    ph.duration,
                )
            })
            .collect();
        phase_fail_probabilities(&probe, &phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber;
    use crate::units::ErasureRate;

    fn quiet() -> FaultRates {
        FaultRates::transient_only(SeuRate::per_bit_day(7.3e-7))
    }

    fn flare() -> FaultRates {
        FaultRates::transient_only(SeuRate::per_bit_day(1.7e-5))
    }

    #[test]
    fn empty_mission_rejected() {
        assert!(SimplexMission::new(CodeParams::rs18_16(), Scrubbing::None, vec![]).is_err());
    }

    #[test]
    fn single_phase_matches_constant_rate_model() {
        let phase = MissionPhase {
            duration: Time::from_hours(48.0),
            rates: flare(),
        };
        let mission =
            SimplexMission::new(CodeParams::rs18_16(), Scrubbing::None, vec![phase]).unwrap();
        let model = SimplexModel::new(CodeParams::rs18_16(), flare(), Scrubbing::None);
        let constant = ber::ber_curve(&model, &[Time::from_hours(48.0)]).unwrap();
        let p_mission = mission.fail_probability_at_end().unwrap();
        let rel = (p_mission - constant.fail_probability[0]).abs() / constant.fail_probability[0];
        assert!(
            rel < 1e-9,
            "mission {p_mission} vs constant {}",
            constant.fail_probability[0]
        );
    }

    #[test]
    fn splitting_a_phase_changes_nothing() {
        // Markov property: solving 48 h in one phase or as 2×24 h with the
        // same rates must agree exactly.
        let whole = SimplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::None,
            vec![MissionPhase {
                duration: Time::from_hours(48.0),
                rates: flare(),
            }],
        )
        .unwrap();
        let split = SimplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::None,
            vec![
                MissionPhase {
                    duration: Time::from_hours(24.0),
                    rates: flare(),
                },
                MissionPhase {
                    duration: Time::from_hours(24.0),
                    rates: flare(),
                },
            ],
        )
        .unwrap();
        let (a, b) = (
            whole.fail_probability_at_end().unwrap(),
            split.fail_probability_at_end().unwrap(),
        );
        assert!(((a - b) / a).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn flare_phase_dominates_the_mission_ber() {
        // 47 h quiet + 1 h flare ≫ 48 h quiet.
        let calm = SimplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::None,
            vec![MissionPhase {
                duration: Time::from_hours(48.0),
                rates: quiet(),
            }],
        )
        .unwrap();
        let stormy = SimplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::None,
            vec![
                MissionPhase {
                    duration: Time::from_hours(47.0),
                    rates: quiet(),
                },
                MissionPhase {
                    duration: Time::from_hours(1.0),
                    rates: flare(),
                },
            ],
        )
        .unwrap();
        let (c, s) = (
            calm.fail_probability_at_end().unwrap(),
            stormy.fail_probability_at_end().unwrap(),
        );
        assert!(s > 2.0 * c, "stormy {s} vs calm {c}");
    }

    #[test]
    fn phase_order_matters_with_scrubbing_but_probabilities_accumulate() {
        // Without repair the fail state is absorbing, so probabilities
        // after each phase are non-decreasing.
        let mission = SimplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::None,
            vec![
                MissionPhase {
                    duration: Time::from_hours(10.0),
                    rates: flare(),
                },
                MissionPhase {
                    duration: Time::from_hours(10.0),
                    rates: quiet(),
                },
                MissionPhase {
                    duration: Time::from_hours(10.0),
                    rates: flare(),
                },
            ],
        )
        .unwrap();
        let steps = mission.fail_probability_after_each_phase().unwrap();
        assert_eq!(steps.len(), 3);
        assert!(steps[0] < steps[1] && steps[1] < steps[2]);
        assert!((mission.total_duration().as_hours() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn duplex_mission_matches_constant_rate_model() {
        let phase = MissionPhase {
            duration: Time::from_hours(48.0),
            rates: flare(),
        };
        let mission =
            DuplexMission::new(CodeParams::rs18_16(), Scrubbing::None, vec![phase]).unwrap();
        let model = crate::DuplexModel::new(CodeParams::rs18_16(), flare(), Scrubbing::None);
        let constant = ber::ber_curve(&model, &[Time::from_hours(48.0)]).unwrap();
        let p = mission.fail_probability_at_end().unwrap();
        let rel = (p - constant.fail_probability[0]).abs() / constant.fail_probability[0];
        assert!(rel < 1e-9, "{p} vs {}", constant.fail_probability[0]);
    }

    #[test]
    fn duplex_mission_flare_ordering_holds() {
        let calm = DuplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::None,
            vec![MissionPhase {
                duration: Time::from_hours(48.0),
                rates: quiet(),
            }],
        )
        .unwrap();
        let stormy = DuplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::None,
            vec![
                MissionPhase {
                    duration: Time::from_hours(42.0),
                    rates: quiet(),
                },
                MissionPhase {
                    duration: Time::from_hours(6.0),
                    rates: flare(),
                },
            ],
        )
        .unwrap();
        assert!(
            stormy.fail_probability_at_end().unwrap() > calm.fail_probability_at_end().unwrap()
        );
        assert!(DuplexMission::new(CodeParams::rs18_16(), Scrubbing::None, vec![]).is_err());
    }

    #[test]
    fn mixed_mechanisms_supported() {
        let mission = SimplexMission::new(
            CodeParams::rs18_16(),
            Scrubbing::every_seconds(1800.0),
            vec![
                MissionPhase {
                    duration: Time::from_days(5.0),
                    rates: FaultRates {
                        seu: SeuRate::per_bit_day(1e-5),
                        erasure: ErasureRate::per_symbol_day(1e-6),
                    },
                },
                MissionPhase {
                    duration: Time::from_days(5.0),
                    rates: FaultRates {
                        seu: SeuRate::per_bit_day(1e-4),
                        erasure: ErasureRate::per_symbol_day(0.0),
                    },
                },
            ],
        )
        .unwrap();
        let ber = mission.ber_at_end().unwrap();
        assert!(ber > 0.0 && ber < 1.0);
    }
}
