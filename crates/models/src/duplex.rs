//! The duplex-memory Markov model (paper Section 5, Figs. 3–4).

use crate::{CodeParams, FaultRates, Scrubbing};
use rsmem_ctmc::MarkovModel;

/// Joint corruption state of the two replicated, RS-coded words
/// (paper Fig. 3).
///
/// Counting the `n` homologous symbol *pairs*:
///
/// * `x`  — pairs with erasures in **both** symbols;
/// * `y`  — pairs with an erasure in one symbol, the other clean
///   (maskable by the arbiter's erasure-recovery step);
/// * `b`  — pairs with an erasure in one symbol and a random error in the
///   other (the mask substitutes an erroneous value);
/// * `e1` — pairs whose word-1 symbol has a random error, word-2 clean;
/// * `e2` — symmetric for word 2;
/// * `ec` — pairs with random errors in **both** symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DuplexState {
    /// Operational with the given pair counts.
    Up {
        /// Double-erasure pairs (X).
        x: u16,
        /// Single-erasure pairs (Y), maskable.
        y: u16,
        /// Erasure + random-error pairs (b).
        b: u16,
        /// Word-1-only random errors (e1).
        e1: u16,
        /// Word-2-only random errors (e2).
        e2: u16,
        /// Common-position random errors (ec).
        ec: u16,
    },
    /// Unrecoverable-error state (absorbing).
    Fail,
}

impl DuplexState {
    /// The fault-free state.
    pub fn good() -> Self {
        DuplexState::Up {
            x: 0,
            y: 0,
            b: 0,
            e1: 0,
            e2: 0,
            ec: 0,
        }
    }
}

/// When does the duplex system fail?
///
/// After erasure recovery (Y masked), word `i` sees `X` erasures and
/// `b + ec + e_i` random errors, so word `i` is decodable iff
/// `X + 2(b + ec + e_i) ≤ n − k`.
///
/// The paper presents the two inequalities as a brace-connected system
/// ("either of the following conditions must be satisfied", with *either*
/// in its distributive sense of *each of the two*): the system is
/// operational only while **both** words are decodable. This reading is
/// confirmed quantitatively by the paper's figures — Fig. 6's duplex BER
/// sits in the same range as Fig. 5's simplex, which only happens when a
/// single word's overload fails the system. The optimistic alternative
/// (the arbiter saves the day while at least one word decodes) is kept as
/// an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DuplexFailCriterion {
    /// Operational only while **both** words are decodable (paper).
    #[default]
    BothWords,
    /// Operational while **at least one** word is decodable (optimistic
    /// arbiter-selection ablation).
    EitherWord,
}

/// Modelling options for the duplex arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DuplexOptions {
    /// Fail criterion (default: [`DuplexFailCriterion::BothWords`]).
    pub fail_criterion: DuplexFailCriterion,
    /// The paper's Fig. 4 assigns erasure arrivals on a clean *pair* the
    /// rate `λe·(clean pairs)` — one erasure event per pair — and
    /// likewise `λe·ec` for double-error pairs (transition F). Setting
    /// this flag doubles those two rates to model independent per-module
    /// erasure exposure (both symbols of the pair are physically exposed).
    /// The Monte-Carlo simulator, which injects faults per module,
    /// empirically matches this convention — see DESIGN.md §2 note 3 and
    /// `tests/analytic_vs_simulation.rs`.
    pub erasures_per_module: bool,
}

/// Markov model of the duplex RS-coded memory (paper Figs. 3–4).
///
/// The transition structure follows the paper's states A–O exactly; see
/// the module-level docs of [`crate`] and DESIGN.md for the two
/// documented deviations (transition B's rate `λe·b`, which Fig. 4's
/// label supports over the prose's `λe·Y`; and the optional per-module
/// erasure convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplexModel {
    code: CodeParams,
    rates: FaultRates,
    scrub: Scrubbing,
    options: DuplexOptions,
}

impl DuplexModel {
    /// Builds the model with default [`DuplexOptions`].
    pub fn new(code: CodeParams, rates: FaultRates, scrub: Scrubbing) -> Self {
        Self::with_options(code, rates, scrub, DuplexOptions::default())
    }

    /// Builds the model with explicit options.
    pub fn with_options(
        code: CodeParams,
        rates: FaultRates,
        scrub: Scrubbing,
        options: DuplexOptions,
    ) -> Self {
        DuplexModel {
            code,
            rates,
            scrub,
            options,
        }
    }

    /// The code parameters.
    pub fn code(&self) -> CodeParams {
        self.code
    }

    /// The fault environment.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// The scrubbing policy.
    pub fn scrubbing(&self) -> Scrubbing {
        self.scrub
    }

    /// The modelling options.
    pub fn options(&self) -> DuplexOptions {
        self.options
    }

    /// Is a counted configuration operational under the fail criterion?
    pub fn is_operational(&self, x: u16, b: u16, e1: u16, e2: u16, ec: u16) -> bool {
        let cap = self.code.capability();
        let word1 = cap.admits(x as usize, b as usize + ec as usize + e1 as usize);
        let word2 = cap.admits(x as usize, b as usize + ec as usize + e2 as usize);
        match self.options.fail_criterion {
            DuplexFailCriterion::EitherWord => word1 || word2,
            DuplexFailCriterion::BothWords => word1 && word2,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn classify(&self, x: u16, y: u16, b: u16, e1: u16, e2: u16, ec: u16) -> DuplexState {
        if self.is_operational(x, b, e1, e2, ec) {
            DuplexState::Up {
                x,
                y,
                b,
                e1,
                e2,
                ec,
            }
        } else {
            DuplexState::Fail
        }
    }
}

impl MarkovModel for DuplexModel {
    type State = DuplexState;

    fn initial_state(&self) -> DuplexState {
        DuplexState::good()
    }

    fn is_absorbing(&self, state: &DuplexState) -> bool {
        matches!(state, DuplexState::Fail)
    }

    fn transitions(&self, state: &DuplexState, out: &mut Vec<(DuplexState, f64)>) {
        let DuplexState::Up {
            x,
            y,
            b,
            e1,
            e2,
            ec,
        } = *state
        else {
            return;
        };
        let n = self.code.n() as f64;
        let m_bits = self.code.m() as f64;
        let lam = self.rates.seu.as_per_bit_day();
        let lam_e = self.rates.erasure.as_per_symbol_day();
        let clean = n - x as f64 - y as f64 - b as f64 - e1 as f64 - e2 as f64 - ec as f64;
        debug_assert!(clean >= 0.0, "pair counts exceed n");
        let pair_factor = if self.options.erasures_per_module {
            2.0
        } else {
            1.0
        };

        if lam_e > 0.0 {
            // A: erasure joins an existing single erasure (rate λe·Y).
            if y > 0 {
                out.push((self.classify(x + 1, y - 1, b, e1, e2, ec), lam_e * y as f64));
            }
            // B: erasure lands on the errored half of an (erasure, error)
            // pair (rate λe·b — see DESIGN.md on the paper's B-rate typo).
            if b > 0 {
                out.push((self.classify(x + 1, y, b - 1, e1, e2, ec), lam_e * b as f64));
            }
            // C: erasure strikes a completely clean pair.
            if clean > 0.0 {
                out.push((
                    self.classify(x, y + 1, b, e1, e2, ec),
                    lam_e * clean * pair_factor,
                ));
            }
            // D/E: erasure supersedes a private random error (same symbol).
            if e1 > 0 {
                out.push((
                    self.classify(x, y + 1, b, e1 - 1, e2, ec),
                    lam_e * e1 as f64,
                ));
            }
            if e2 > 0 {
                out.push((
                    self.classify(x, y + 1, b, e1, e2 - 1, ec),
                    lam_e * e2 as f64,
                ));
            }
            // F: erasure on one half of a double-error pair (both halves
            // are exposed under the per-module convention).
            if ec > 0 {
                out.push((
                    self.classify(x, y, b + 1, e1, e2, ec - 1),
                    lam_e * ec as f64 * pair_factor,
                ));
            }
            // G/H: erasure on the clean homologous of a private error.
            if e1 > 0 {
                out.push((
                    self.classify(x, y, b + 1, e1 - 1, e2, ec),
                    lam_e * e1 as f64,
                ));
            }
            if e2 > 0 {
                out.push((
                    self.classify(x, y, b + 1, e1, e2 - 1, ec),
                    lam_e * e2 as f64,
                ));
            }
        }

        if lam > 0.0 {
            let bit_rate = m_bits * lam;
            // I: SEU on the clean homologous of a single erasure.
            if y > 0 {
                out.push((
                    self.classify(x, y - 1, b + 1, e1, e2, ec),
                    bit_rate * y as f64,
                ));
            }
            // L/M: SEU on a clean pair, in word 1 or word 2.
            if clean > 0.0 {
                out.push((self.classify(x, y, b, e1 + 1, e2, ec), bit_rate * clean));
                out.push((self.classify(x, y, b, e1, e2 + 1, ec), bit_rate * clean));
            }
            // N/O: SEU on the clean homologous of a private error.
            if e1 > 0 {
                out.push((
                    self.classify(x, y, b, e1 - 1, e2, ec + 1),
                    bit_rate * e1 as f64,
                ));
            }
            if e2 > 0 {
                out.push((
                    self.classify(x, y, b, e1, e2 - 1, ec + 1),
                    bit_rate * e2 as f64,
                ));
            }
        }

        // Scrubbing: transient errors cleared, permanent faults persist.
        // An (erasure, error) pair becomes a plain single-erasure pair.
        let scrub_rate = self.scrub.rate_per_day();
        if scrub_rate > 0.0 && (b > 0 || e1 > 0 || e2 > 0 || ec > 0) {
            out.push((self.classify(x, y + b, 0, 0, 0, 0), scrub_rate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ErasureRate, SeuRate};
    use rsmem_ctmc::StateSpace;

    fn rates(seu: f64, erasure: f64) -> FaultRates {
        FaultRates {
            seu: SeuRate::per_bit_day(seu),
            erasure: ErasureRate::per_symbol_day(erasure),
        }
    }

    fn model(seu: f64, erasure: f64, scrub: Scrubbing) -> DuplexModel {
        DuplexModel::new(CodeParams::rs18_16(), rates(seu, erasure), scrub)
    }

    #[test]
    fn good_state_has_symmetric_seu_transitions() {
        let m = model(1e-5, 0.0, Scrubbing::None);
        let mut out = Vec::new();
        m.transitions(&DuplexState::good(), &mut out);
        assert_eq!(out.len(), 2); // L and M
        let rate = 8.0 * 1e-5 * 18.0;
        for (s, r) in &out {
            assert!((r - rate).abs() < 1e-15);
            assert!(matches!(
                s,
                DuplexState::Up { e1: 1, e2: 0, .. } | DuplexState::Up { e1: 0, e2: 1, .. }
            ));
        }
    }

    #[test]
    fn transition_rates_match_paper_figure4() {
        // From (X,Y,b,e1,e2,ec) = (0,1,1,1,1,1) with n=18 ⇒ clean = 13.
        // Note this state is operational only under EitherWord? Check:
        // word_i load = X + 2(b+ec+e_i) = 0 + 2·3 = 6 > 2 → NOT operational.
        // Use a wider code so the state is live.
        let code = CodeParams::rs36_16();
        let m = DuplexModel::new(code, rates(1e-5, 1e-6), Scrubbing::None);
        let state = DuplexState::Up {
            x: 0,
            y: 1,
            b: 1,
            e1: 1,
            e2: 1,
            ec: 1,
        };
        let mut out = Vec::new();
        m.transitions(&state, &mut out);
        let clean = 36.0 - 5.0;
        let lam_e = 1e-6;
        let bit = 8.0 * 1e-5;
        // Expected (target, rate) multiset per Fig. 4 (A..O):
        let expect = [
            ((1u16, 0u16, 1u16, 1u16, 1u16, 1u16), lam_e * 1.0), // A
            ((1, 1, 0, 1, 1, 1), lam_e * 1.0),                   // B
            ((0, 2, 1, 1, 1, 1), lam_e * clean),                 // C
            ((0, 2, 1, 0, 1, 1), lam_e * 1.0),                   // D
            ((0, 2, 1, 1, 0, 1), lam_e * 1.0),                   // E
            ((0, 1, 2, 1, 1, 0), lam_e * 1.0),                   // F
            ((0, 1, 2, 0, 1, 1), lam_e * 1.0),                   // G
            ((0, 1, 2, 1, 0, 1), lam_e * 1.0),                   // H
            ((0, 0, 2, 1, 1, 1), bit * 1.0),                     // I
            ((0, 1, 1, 2, 1, 1), bit * clean),                   // L
            ((0, 1, 1, 1, 2, 1), bit * clean),                   // M
            ((0, 1, 1, 0, 1, 2), bit * 1.0),                     // N
            ((0, 1, 1, 1, 0, 2), bit * 1.0),                     // O
        ];
        assert_eq!(out.len(), expect.len());
        for ((x, y, b, e1, e2, ec), rate) in expect {
            let target = DuplexState::Up {
                x,
                y,
                b,
                e1,
                e2,
                ec,
            };
            let found: Vec<_> = out.iter().filter(|(s, _)| *s == target).collect();
            assert!(
                found
                    .iter()
                    .any(|(_, r)| (r - rate).abs() < 1e-18 * rate.max(1.0)),
                "missing transition to {target:?} at rate {rate}: found {found:?}"
            );
        }
    }

    #[test]
    fn scrubbing_maps_b_to_y() {
        let m = model(1e-5, 1e-6, Scrubbing::every_seconds(1800.0));
        let state = DuplexState::Up {
            x: 1,
            y: 0,
            b: 1,
            e1: 0,
            e2: 0,
            ec: 0,
        };
        // Operational? word load = 1 + 2·1 = 3 > 2 for both words →
        // under EitherWord this is Fail-territory; classify() would have
        // lumped it. Pick a state that's live: (x=0, b=1):
        let state_live = DuplexState::Up {
            x: 0,
            y: 0,
            b: 1,
            e1: 0,
            e2: 0,
            ec: 0,
        };
        let _ = state;
        let mut out = Vec::new();
        m.transitions(&state_live, &mut out);
        let scrub_target = DuplexState::Up {
            x: 0,
            y: 1,
            b: 0,
            e1: 0,
            e2: 0,
            ec: 0,
        };
        let hits: Vec<_> = out.iter().filter(|(s, _)| *s == scrub_target).collect();
        assert_eq!(hits.len(), 1);
        assert!((hits[0].1 - 48.0).abs() < 1e-9); // 1/(1800 s) = 48/day
    }

    #[test]
    fn default_criterion_fails_on_one_sided_overload() {
        let m = model(1e-5, 0.0, Scrubbing::None);
        // e1 = 5 overloads word 1 (2·5 > 2): the system fails even though
        // word 2 is clean (paper semantics, matches Fig. 6's magnitudes).
        assert!(!m.is_operational(0, 0, 5, 0, 0));
        assert!(!m.is_operational(0, 0, 0, 5, 0));
        // One private error per word: each word carries load 2 ≤ 2.
        assert!(m.is_operational(0, 0, 1, 1, 0));
        // Common errors overload both words.
        assert!(!m.is_operational(0, 0, 0, 0, 2));
        // b counts against both words too.
        assert!(!m.is_operational(0, 2, 0, 0, 0));
    }

    #[test]
    fn either_word_ablation_is_more_permissive() {
        let m = DuplexModel::with_options(
            CodeParams::rs18_16(),
            rates(1e-5, 0.0),
            Scrubbing::None,
            DuplexOptions {
                fail_criterion: DuplexFailCriterion::EitherWord,
                ..Default::default()
            },
        );
        // Word 2 overloaded, word 1 clean: the optimistic arbiter survives.
        assert!(m.is_operational(0, 0, 0, 5, 0));
        assert!(m.is_operational(0, 0, 5, 0, 0));
        assert!(!m.is_operational(0, 0, 0, 0, 2));
        assert!(!m.is_operational(0, 2, 0, 0, 0));
    }

    #[test]
    fn state_space_is_finite_and_has_single_absorber() {
        let space = StateSpace::explore(&model(1e-5, 1e-6, Scrubbing::None)).unwrap();
        assert!(space.len() > 10, "expected a nontrivial space");
        assert!(space.len() < 3000, "space blew up: {}", space.len());
        assert_eq!(space.absorbing_states().len(), 1);
        let fail = space.index_of(&DuplexState::Fail).unwrap();
        assert_eq!(space.absorbing_states()[0], fail);
    }

    #[test]
    fn pair_counts_never_exceed_n() {
        let space =
            StateSpace::explore(&model(1e-5, 1e-6, Scrubbing::every_seconds(900.0))).unwrap();
        for s in space.states() {
            if let DuplexState::Up {
                x,
                y,
                b,
                e1,
                e2,
                ec,
            } = s
            {
                let total = *x as usize
                    + *y as usize
                    + *b as usize
                    + *e1 as usize
                    + *e2 as usize
                    + *ec as usize;
                assert!(total <= 18, "state {s:?} exceeds n");
            }
        }
    }

    #[test]
    fn e1_e2_symmetry_of_the_state_space() {
        // The model is symmetric in the two words: for every reachable
        // state, its mirror (e1 ↔ e2) is reachable too.
        let space = StateSpace::explore(&model(1e-5, 1e-6, Scrubbing::None)).unwrap();
        for s in space.states() {
            if let DuplexState::Up {
                x,
                y,
                b,
                e1,
                e2,
                ec,
            } = *s
            {
                let mirror = DuplexState::Up {
                    x,
                    y,
                    b,
                    e1: e2,
                    e2: e1,
                    ec,
                };
                assert!(space.index_of(&mirror).is_some(), "mirror of {s:?} missing");
            }
        }
    }

    #[test]
    fn per_module_erasure_option_doubles_clean_pair_rate() {
        let base = model(0.0, 1e-6, Scrubbing::None);
        let doubled = DuplexModel::with_options(
            CodeParams::rs18_16(),
            rates(0.0, 1e-6),
            Scrubbing::None,
            DuplexOptions {
                erasures_per_module: true,
                ..Default::default()
            },
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        base.transitions(&DuplexState::good(), &mut a);
        doubled.transitions(&DuplexState::good(), &mut b);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!((b[0].1 - 2.0 * a[0].1).abs() < 1e-18);
    }
}
