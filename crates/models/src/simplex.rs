//! The simplex-memory Markov model (paper Fig. 2, after \[7\]).

use crate::{CodeParams, FaultRates, Scrubbing};
use rsmem_ctmc::MarkovModel;

/// State of one RS-coded word in a simplex memory.
///
/// `er` counts erased symbols (located permanent faults), `re` counts
/// symbols holding a random error (SEU bit-flip). The word is decodable
/// while `er + 2·re ≤ n − k`; all undecodable configurations are lumped
/// into the absorbing [`SimplexState::Fail`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimplexState {
    /// Operational with the given erasure/error counts.
    Up {
        /// Erased symbols.
        er: u16,
        /// Symbols with a random error.
        re: u16,
    },
    /// Unrecoverable-error state (absorbing).
    Fail,
}

impl SimplexState {
    /// The fault-free state `S(0,0)`.
    pub fn good() -> Self {
        SimplexState::Up { er: 0, re: 0 }
    }
}

/// Markov model of a simplex RS-coded memory word.
///
/// Transitions (rates per day; `c = n − er − re` clean symbols):
///
/// | event | rate | target |
/// |---|---|---|
/// | erasure on a clean symbol | `λe·c` | `(er+1, re)` |
/// | erasure superseding a random error | `λe·re` | `(er+1, re−1)` |
/// | SEU on a clean symbol | `m·λ·c` | `(er, re+1)` |
/// | scrubbing | `1/Tsc` | `(er, 0)` |
///
/// SEUs striking already-erased symbols are immaterial, and a second SEU
/// on an already-erroneous symbol is excluded by the paper's assumptions.
/// Any transition that violates `er + 2·re ≤ n − k` is redirected to the
/// absorbing [`SimplexState::Fail`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexModel {
    code: CodeParams,
    rates: FaultRates,
    scrub: Scrubbing,
}

impl SimplexModel {
    /// Builds the model. Parameters are assumed validated (see
    /// [`CodeParams::new`], [`FaultRates::validate`],
    /// [`Scrubbing::validate`]); invalid rates surface as solver errors.
    pub fn new(code: CodeParams, rates: FaultRates, scrub: Scrubbing) -> Self {
        SimplexModel { code, rates, scrub }
    }

    /// The code parameters.
    pub fn code(&self) -> CodeParams {
        self.code
    }

    /// The fault environment.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// The scrubbing policy.
    pub fn scrubbing(&self) -> Scrubbing {
        self.scrub
    }

    fn classify(&self, er: u16, re: u16) -> SimplexState {
        if self.code.within_capability(er as usize, re as usize) {
            SimplexState::Up { er, re }
        } else {
            SimplexState::Fail
        }
    }
}

impl MarkovModel for SimplexModel {
    type State = SimplexState;

    fn initial_state(&self) -> SimplexState {
        SimplexState::good()
    }

    fn is_absorbing(&self, state: &SimplexState) -> bool {
        matches!(state, SimplexState::Fail)
    }

    fn transitions(&self, state: &SimplexState, out: &mut Vec<(SimplexState, f64)>) {
        let SimplexState::Up { er, re } = *state else {
            return;
        };
        let n = self.code.n() as f64;
        let m = self.code.m() as f64;
        let lambda = self.rates.seu.as_per_bit_day();
        let lambda_e = self.rates.erasure.as_per_symbol_day();
        let clean = n - er as f64 - re as f64;

        if lambda_e > 0.0 {
            if clean > 0.0 {
                // Erasure on a previously untouched symbol.
                out.push((self.classify(er + 1, re), lambda_e * clean));
            }
            if re > 0 {
                // Erasure lands on a symbol already holding a random error;
                // the located fault supersedes the error.
                out.push((self.classify(er + 1, re - 1), lambda_e * re as f64));
            }
        }
        if lambda > 0.0 && clean > 0.0 {
            // SEU flips one of the m bits of a clean symbol.
            out.push((self.classify(er, re + 1), lambda * m * clean));
        }
        let scrub_rate = self.scrub.rate_per_day();
        if scrub_rate > 0.0 && re > 0 {
            // Scrubbing rewrites corrected data: transient errors clear,
            // permanent faults persist.
            out.push((SimplexState::Up { er, re: 0 }, scrub_rate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ErasureRate, SeuRate};
    use rsmem_ctmc::StateSpace;

    fn model(seu: f64, erasure: f64, scrub: Scrubbing) -> SimplexModel {
        SimplexModel::new(
            CodeParams::rs18_16(),
            FaultRates {
                seu: SeuRate::per_bit_day(seu),
                erasure: ErasureRate::per_symbol_day(erasure),
            },
            scrub,
        )
    }

    #[test]
    fn rs18_16_state_space_is_tiny() {
        // Operational states satisfy er + 2·re ≤ 2:
        // (0,0), (1,0), (2,0), (0,1) plus Fail = 5 states.
        let space = StateSpace::explore(&model(1e-5, 1e-6, Scrubbing::None)).unwrap();
        assert_eq!(space.len(), 5);
        assert_eq!(space.absorbing_states().len(), 1);
    }

    #[test]
    fn rs36_16_state_count_matches_combinatorics() {
        let m = SimplexModel::new(
            CodeParams::rs36_16(),
            FaultRates {
                seu: SeuRate::per_bit_day(1e-5),
                erasure: ErasureRate::per_symbol_day(1e-6),
            },
            Scrubbing::None,
        );
        let space = StateSpace::explore(&m).unwrap();
        // #{(er,re): er + 2re ≤ 20} = Σ_{re=0..10} (21 − 2·re) = 121, +Fail.
        assert_eq!(space.len(), 122);
    }

    #[test]
    fn transient_only_has_no_erasure_transitions() {
        let m = model(1e-5, 0.0, Scrubbing::None);
        let mut out = Vec::new();
        m.transitions(&SimplexState::good(), &mut out);
        assert_eq!(out.len(), 1);
        let (target, rate) = out[0];
        assert_eq!(target, SimplexState::Up { er: 0, re: 1 });
        // m·λ·n = 8 · 1e-5 · 18.
        assert!((rate - 8.0 * 1e-5 * 18.0).abs() < 1e-15);
    }

    #[test]
    fn boundary_transition_goes_to_fail() {
        let m = model(1e-5, 0.0, Scrubbing::None);
        let mut out = Vec::new();
        // At (0,1): one more random error exceeds 2·2 > 2 → Fail.
        m.transitions(&SimplexState::Up { er: 0, re: 1 }, &mut out);
        let fail_rate: f64 = out
            .iter()
            .filter(|(s, _)| matches!(s, SimplexState::Fail))
            .map(|&(_, r)| r)
            .sum();
        // 17 clean symbols can take the killing SEU.
        assert!((fail_rate - 8.0 * 1e-5 * 17.0).abs() < 1e-15);
    }

    #[test]
    fn erasure_supersedes_error() {
        let m = model(0.0, 1e-6, Scrubbing::None);
        let mut out = Vec::new();
        m.transitions(&SimplexState::Up { er: 0, re: 1 }, &mut out);
        assert!(out
            .iter()
            .any(|&(s, r)| s == SimplexState::Up { er: 1, re: 0 } && (r - 1e-6).abs() < 1e-20));
    }

    #[test]
    fn scrubbing_clears_only_transients() {
        let m = model(1e-5, 1e-6, Scrubbing::every_seconds(3600.0));
        let mut out = Vec::new();
        m.transitions(&SimplexState::Up { er: 1, re: 1 }, &mut out);
        // Wait — (1,1) violates 1 + 2 ≤ 2, so it can never be explored.
        // Use (0,1) instead: scrub target is (0,0).
        out.clear();
        m.transitions(&SimplexState::Up { er: 0, re: 1 }, &mut out);
        let scrub_target = SimplexState::Up { er: 0, re: 0 };
        let scrub: Vec<_> = out.iter().filter(|(s, _)| *s == scrub_target).collect();
        assert_eq!(scrub.len(), 1);
        assert!((scrub[0].1 - 24.0).abs() < 1e-9); // 1/(3600 s) = 24/day
    }

    #[test]
    fn no_scrub_transition_from_error_free_states() {
        // Scrubbing from (er, 0) is a self-loop; the model must not emit it.
        let m = model(1e-5, 1e-6, Scrubbing::every_seconds(900.0));
        let mut out = Vec::new();
        m.transitions(&SimplexState::Up { er: 1, re: 0 }, &mut out);
        assert!(out
            .iter()
            .all(|&(s, _)| s != SimplexState::Up { er: 1, re: 0 }));
    }

    #[test]
    fn fail_is_absorbing() {
        let m = model(1e-5, 1e-6, Scrubbing::None);
        assert!(m.is_absorbing(&SimplexState::Fail));
        let mut out = Vec::new();
        m.transitions(&SimplexState::Fail, &mut out);
        assert!(out.is_empty());
    }
}
