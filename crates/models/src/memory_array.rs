//! Whole-memory composition of the per-word models.
//!
//! The paper analyses a single word and notes "the extension by
//! considering the whole memory is straightforward and does not affect
//! the ultimate correctness of the proposed models": with SEUs and
//! permanent faults striking words independently, a `W`-word memory
//! composes binomially from the per-word failure probability. This
//! module performs that composition with numerically careful tail
//! handling (per-word probabilities routinely sit at 1e-60 in the
//! paper's sweeps, where naive `(1−p)^W` evaluates to exactly 1).

use crate::ber::MemoryModel;
use crate::units::Time;
use crate::ModelError;
use rsmem_ctmc::uniformization::{transient, UniformizationOptions};
use rsmem_ctmc::StateSpace;

/// A memory of `words` independent, identically-protected words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryArray {
    words: u64,
}

impl MemoryArray {
    /// A memory of `words` codewords; `None` for an (ill-posed)
    /// zero-word memory.
    pub fn new(words: u64) -> Option<Self> {
        if words == 0 {
            None
        } else {
            Some(MemoryArray { words })
        }
    }

    /// Number of words.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Probability that *at least one* word of the array is failed at
    /// `t`, computed as `1 − (1−p)^W = −expm1(W·ln1p(−p))` for numerical
    /// stability at tiny `p`.
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors.
    pub fn any_word_fail_probability<M>(&self, model: &M, t: Time) -> Result<f64, ModelError>
    where
        M: MemoryModel,
    {
        let p = word_fail_probability(model, t)?;
        Ok(-f64::exp_m1(self.words as f64 * f64::ln_1p(-p)))
    }

    /// Expected number of failed words at `t` (`W·p`).
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors.
    pub fn expected_failed_words<M>(&self, model: &M, t: Time) -> Result<f64, ModelError>
    where
        M: MemoryModel,
    {
        Ok(self.words as f64 * word_fail_probability(model, t)?)
    }

    /// The array-level BER equals the per-word Eq.-(1) BER (failures are
    /// i.i.d. across words, so the expected fraction of erroneous bits is
    /// unchanged); provided for API symmetry.
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors.
    pub fn ber<M>(&self, model: &M, t: Time) -> Result<f64, ModelError>
    where
        M: MemoryModel,
    {
        let p = word_fail_probability(model, t)?;
        Ok(model.code_params().ber_prefactor() * p)
    }
}

/// Per-word fail probability at `t` — the quantity everything above
/// composes from.
///
/// # Errors
///
/// [`ModelError::InvalidTime`] or wrapped solver errors.
pub fn word_fail_probability<M>(model: &M, t: Time) -> Result<f64, ModelError>
where
    M: MemoryModel,
{
    if !t.is_valid() {
        return Err(ModelError::InvalidTime);
    }
    let space = StateSpace::explore(model)?;
    let p = transient(&space, t.as_days(), &UniformizationOptions::default())?;
    Ok(space.index_of(&model.fail_state()).map_or(0.0, |f| p[f]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ErasureRate, SeuRate};
    use crate::{CodeParams, FaultRates, Scrubbing, SimplexModel};

    fn model(seu: f64, erasure: f64) -> SimplexModel {
        SimplexModel::new(
            CodeParams::rs18_16(),
            FaultRates {
                seu: SeuRate::per_bit_day(seu),
                erasure: ErasureRate::per_symbol_day(erasure),
            },
            Scrubbing::None,
        )
    }

    #[test]
    fn zero_words_rejected() {
        assert!(MemoryArray::new(0).is_none());
        assert_eq!(MemoryArray::new(1024).unwrap().words(), 1024);
    }

    #[test]
    fn single_word_array_matches_word_probability() {
        let m = model(1e-3, 0.0);
        let t = Time::from_days(2.0);
        let arr = MemoryArray::new(1).unwrap();
        let p_word = word_fail_probability(&m, t).unwrap();
        let p_any = arr.any_word_fail_probability(&m, t).unwrap();
        assert!((p_word - p_any).abs() < 1e-15);
    }

    #[test]
    fn small_p_composition_is_linear() {
        // With p·W ≪ 1, P(any) ≈ W·p; naive (1−p)^W would flush to 0
        // difference entirely at p ~ 1e-60.
        let m = model(0.0, 1e-9);
        let t = Time::from_days(2.0);
        let p = word_fail_probability(&m, t).unwrap();
        assert!(p > 0.0 && p < 1e-18, "p = {p:e}");
        let arr = MemoryArray::new(1 << 30).unwrap(); // a gigaword memory
        let any = arr.any_word_fail_probability(&m, t).unwrap();
        let expect = p * (1u64 << 30) as f64;
        assert!(
            ((any - expect) / expect).abs() < 1e-6,
            "any = {any:e}, W·p = {expect:e}"
        );
    }

    #[test]
    fn large_p_saturates_at_one() {
        let m = model(1.0, 0.0); // absurdly hostile environment
        let t = Time::from_days(2.0);
        let arr = MemoryArray::new(1000).unwrap();
        let any = arr.any_word_fail_probability(&m, t).unwrap();
        assert!(any > 0.999999);
        assert!(any <= 1.0);
    }

    #[test]
    fn expected_failures_scale_linearly_in_words() {
        let m = model(5e-3, 0.0);
        let t = Time::from_days(2.0);
        let e1 = MemoryArray::new(100)
            .unwrap()
            .expected_failed_words(&m, t)
            .unwrap();
        let e2 = MemoryArray::new(200)
            .unwrap()
            .expected_failed_words(&m, t)
            .unwrap();
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn array_ber_equals_word_ber() {
        let m = model(1e-3, 1e-5);
        let t = Time::from_days(2.0);
        let arr = MemoryArray::new(4096).unwrap();
        let word_curve = crate::ber::ber_curve(&m, &[t]).unwrap();
        assert!((arr.ber(&m, t).unwrap() - word_curve.ber[0]).abs() < 1e-18);
    }
}
