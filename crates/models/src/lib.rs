//! Markov reliability models of Reed–Solomon-coded memories.
//!
//! This crate implements the DATE 2005 paper's primary contribution: the
//! continuous-time Markov models of a **simplex** and a **duplex**
//! RS-coded memory word under transient faults (SEUs, modelled as random
//! errors at rate `λ` per bit), permanent faults (located stuck-ats,
//! modelled as erasures at rate `λe` per symbol) and periodic
//! **scrubbing** (rate `1/Tsc`).
//!
//! * [`SimplexModel`] — states `S(er, re)`; the word fails when
//!   `er + 2·re > n − k` (paper Fig. 2, after \[7\]).
//! * [`DuplexModel`] — states `(X, Y, b, e1, e2, ec)` describing the joint
//!   corruption of the two replicated words (paper Figs. 3–4), with the
//!   arbiter-aware fail criterion of Section 5.
//! * [`ber`] — the Bit Error Rate figure of merit, paper Eq. (1):
//!   `BER(t) = m·(n−k)/k · P_Fail(t)`, evaluated over time grids with the
//!   solvers from [`rsmem_ctmc`].
//! * [`units`] — newtypes that keep the paper's mixed units straight
//!   (rates per bit·day, scrub periods in seconds, horizons in hours or
//!   months).
//!
//! # Examples
//!
//! Reproduce one point of the paper's Figure 5 (simplex RS(18,16), worst
//! SEU rate, no scrubbing, 48 h):
//!
//! ```
//! use rsmem_models::{ber, CodeParams, FaultRates, Scrubbing, SimplexModel};
//! use rsmem_models::units::{SeuRate, Time};
//!
//! # fn main() -> Result<(), rsmem_models::ModelError> {
//! let code = CodeParams::new(18, 16, 8)?;
//! let rates = FaultRates {
//!     seu: SeuRate::per_bit_day(1.7e-5),
//!     erasure: Default::default(),
//! };
//! let model = SimplexModel::new(code, rates, Scrubbing::None);
//! let curve = ber::ber_curve(&model, &[Time::from_hours(48.0)])?;
//! assert!(curve.ber[0] > 0.0 && curve.ber[0] < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
mod config;
mod duplex;
mod error;
pub mod memory_array;
pub mod metrics;
pub mod mission;
mod simplex;
pub mod units;

pub use config::{CodeFamily, CodeParams, CorrectionCapability, FaultRates, Scrubbing};
pub use duplex::{DuplexFailCriterion, DuplexModel, DuplexOptions, DuplexState};
pub use error::ModelError;
pub use simplex::{SimplexModel, SimplexState};
