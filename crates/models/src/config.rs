//! Shared model configuration: code parameters, fault environment,
//! scrubbing policy.

use crate::units::{ErasureRate, SeuRate, Time};
use crate::ModelError;
use std::fmt;

/// The RS(n,k) code parameters a memory model is built around.
///
/// This mirrors `rsmem_code::RsCode` but carries no field tables — the
/// Markov models only need the counting parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CodeParams {
    n: usize,
    k: usize,
    m: u32,
}

impl CodeParams {
    /// Validates and builds code parameters.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCode`] for `k == 0`, `k >= n`, `m ∉ 2..=16`
    /// or `n > 2^m − 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsmem_models::CodeParams;
    /// # fn main() -> Result<(), rsmem_models::ModelError> {
    /// let code = CodeParams::new(18, 16, 8)?;
    /// assert_eq!(code.redundancy(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(n: usize, k: usize, m: u32) -> Result<Self, ModelError> {
        if !(2..=16).contains(&m) {
            return Err(ModelError::InvalidCode {
                n,
                k,
                m,
                reason: "symbol width must be 2..=16",
            });
        }
        if k == 0 || k >= n {
            return Err(ModelError::InvalidCode {
                n,
                k,
                m,
                reason: "need 0 < k < n",
            });
        }
        if n > (1usize << m) - 1 {
            return Err(ModelError::InvalidCode {
                n,
                k,
                m,
                reason: "codeword length exceeds 2^m - 1",
            });
        }
        Ok(CodeParams { n, k, m })
    }

    /// The paper's narrow code, RS(18,16) with byte symbols.
    pub fn rs18_16() -> Self {
        CodeParams { n: 18, k: 16, m: 8 }
    }

    /// The paper's wide code, RS(36,16) with byte symbols.
    pub fn rs36_16() -> Self {
        CodeParams { n: 36, k: 16, m: 8 }
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dataword length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Symbol width in bits.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Redundancy `n − k` (the erasure-correction budget).
    pub fn redundancy(&self) -> usize {
        self.n - self.k
    }

    /// The boundary condition of the paper: `er + 2·re ≤ n − k`.
    pub fn within_capability(&self, erasures: usize, random_errors: usize) -> bool {
        erasures + 2 * random_errors <= self.redundancy()
    }

    /// Paper Eq. (1) prefactor, `m·(n−k)/k`.
    pub fn ber_prefactor(&self) -> f64 {
        self.m as f64 * self.redundancy() as f64 / self.k as f64
    }
}

impl fmt::Display for CodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RS({},{}) over GF(2^{})", self.n, self.k, self.m)
    }
}

impl std::str::FromStr for CodeParams {
    type Err = ModelError;

    /// Parses the `N,K,M` triple used by the CLI `--code` flag and the
    /// service JSON string form (e.g. `"18,16,8"`). Whitespace around
    /// each component is ignored; the result is validated by
    /// [`CodeParams::new`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let invalid = || ModelError::InvalidCode {
            n: 0,
            k: 0,
            m: 0,
            reason: "expected an N,K,M triple",
        };
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 3 {
            return Err(invalid());
        }
        let n = parts[0].trim().parse().map_err(|_| invalid())?;
        let k = parts[1].trim().parse().map_err(|_| invalid())?;
        let m = parts[2].trim().parse().map_err(|_| invalid())?;
        CodeParams::new(n, k, m)
    }
}

/// The fault environment: SEU and permanent-fault exposure rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultRates {
    /// Transient (SEU) rate per bit per day — the paper's `λ`.
    pub seu: SeuRate,
    /// Permanent-fault (erasure) rate per symbol per day — the paper's `λe`.
    pub erasure: ErasureRate,
}

impl FaultRates {
    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidRate`] if either rate is negative or NaN.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.seu.is_valid() && self.erasure.is_valid() {
            Ok(())
        } else {
            Err(ModelError::InvalidRate)
        }
    }

    /// Transient-only environment (paper Figs. 5–7).
    pub fn transient_only(seu: SeuRate) -> Self {
        FaultRates {
            seu,
            erasure: ErasureRate::default(),
        }
    }

    /// Permanent-only environment (paper Figs. 8–10).
    pub fn permanent_only(erasure: ErasureRate) -> Self {
        FaultRates {
            seu: SeuRate::default(),
            erasure,
        }
    }

    /// Validates and canonicalizes the rates for use as part of a cache
    /// key: `-0.0` is normalized to `+0.0` so that configurations that
    /// solve identically hash identically.
    ///
    /// # Errors
    ///
    /// See [`FaultRates::validate`].
    pub fn canonicalized(self) -> Result<Self, ModelError> {
        self.validate()?;
        fn unsign_zero(x: f64) -> f64 {
            if x == 0.0 {
                0.0
            } else {
                x
            }
        }
        Ok(FaultRates {
            seu: SeuRate::per_bit_day(unsign_zero(self.seu.as_per_bit_day())),
            erasure: ErasureRate::per_symbol_day(unsign_zero(self.erasure.as_per_symbol_day())),
        })
    }
}

/// The scrubbing policy.
///
/// Scrubbing is modelled as a memoryless repair event at rate `1/Tsc`
/// (the paper: "executed at a prescribed frequency characterized by a
/// rate 1/Tsc"); it rewrites corrected data, clearing accumulated
/// transient errors but leaving permanent faults in place.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scrubbing {
    /// No scrubbing.
    #[default]
    None,
    /// Periodic scrubbing with the given period `Tsc`.
    Periodic {
        /// The scrub period.
        period: Time,
    },
}

impl Scrubbing {
    /// Convenience constructor from a period in seconds (the unit the
    /// paper's Fig. 7 legend uses).
    pub fn every_seconds(seconds: f64) -> Self {
        Scrubbing::Periodic {
            period: Time::from_seconds(seconds),
        }
    }

    /// The Markov repair rate in events per day (0 when disabled).
    pub fn rate_per_day(&self) -> f64 {
        match self {
            Scrubbing::None => 0.0,
            Scrubbing::Periodic { period } => 1.0 / period.as_days(),
        }
    }

    /// Validates and canonicalizes the policy for use as part of a cache
    /// key: the period is re-expressed in whole days (the internal unit
    /// every solver sees), so `Periodic { 900 s }` and
    /// `Periodic { 0.25 h }` produce the same canonical value.
    ///
    /// # Errors
    ///
    /// See [`Scrubbing::validate`].
    pub fn canonicalized(self) -> Result<Self, ModelError> {
        self.validate()?;
        Ok(match self {
            Scrubbing::None => Scrubbing::None,
            Scrubbing::Periodic { period } => Scrubbing::Periodic {
                period: Time::from_days(period.as_days()),
            },
        })
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidScrubPeriod`] for a non-positive period.
    pub fn validate(&self) -> Result<(), ModelError> {
        match self {
            Scrubbing::None => Ok(()),
            Scrubbing::Periodic { period } => {
                if period.is_valid() && period.as_days() > 0.0 {
                    Ok(())
                } else {
                    Err(ModelError::InvalidScrubPeriod)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_codes_validate() {
        assert_eq!(CodeParams::rs18_16(), CodeParams::new(18, 16, 8).unwrap());
        assert_eq!(CodeParams::rs36_16(), CodeParams::new(36, 16, 8).unwrap());
    }

    #[test]
    fn invalid_codes_rejected() {
        assert!(CodeParams::new(18, 18, 8).is_err());
        assert!(CodeParams::new(18, 0, 8).is_err());
        assert!(CodeParams::new(300, 16, 8).is_err());
        assert!(CodeParams::new(18, 16, 1).is_err());
        assert!(CodeParams::new(18, 16, 17).is_err());
        assert!(CodeParams::new(16, 8, 4).is_err()); // n > 15
    }

    #[test]
    fn ber_prefactor_matches_paper_examples() {
        // RS(18,16), m=8: 8·2/16 = 1. RS(36,16), m=8: 8·20/16 = 10.
        assert_eq!(CodeParams::rs18_16().ber_prefactor(), 1.0);
        assert_eq!(CodeParams::rs36_16().ber_prefactor(), 10.0);
    }

    #[test]
    fn capability_boundary() {
        let c = CodeParams::rs18_16();
        assert!(c.within_capability(2, 0));
        assert!(c.within_capability(0, 1));
        assert!(!c.within_capability(1, 1));
        assert!(!c.within_capability(3, 0));
    }

    #[test]
    fn scrub_rate_conversion() {
        let s = Scrubbing::every_seconds(3600.0);
        assert!((s.rate_per_day() - 24.0).abs() < 1e-9);
        assert_eq!(Scrubbing::None.rate_per_day(), 0.0);
    }

    #[test]
    fn scrub_validation() {
        assert!(Scrubbing::None.validate().is_ok());
        assert!(Scrubbing::every_seconds(900.0).validate().is_ok());
        assert!(Scrubbing::every_seconds(0.0).validate().is_err());
        assert!(Scrubbing::every_seconds(-5.0).validate().is_err());
        assert!(Scrubbing::every_seconds(f64::NAN).validate().is_err());
    }

    #[test]
    fn code_params_parse_from_triple() {
        let code: CodeParams = "18,16,8".parse().unwrap();
        assert_eq!(code, CodeParams::rs18_16());
        let spaced: CodeParams = " 36 , 16 , 8 ".parse().unwrap();
        assert_eq!(spaced, CodeParams::rs36_16());
        assert!("18,16".parse::<CodeParams>().is_err());
        assert!("18,16,8,9".parse::<CodeParams>().is_err());
        assert!("a,b,c".parse::<CodeParams>().is_err());
        assert!("16,18,8".parse::<CodeParams>().is_err()); // k > n
    }

    #[test]
    fn canonicalization_normalizes_negative_zero() {
        let rates = FaultRates {
            seu: SeuRate::per_bit_day(-0.0),
            erasure: ErasureRate::per_symbol_day(1e-6),
        };
        let canon = rates.canonicalized().unwrap();
        assert!(canon.seu.as_per_bit_day().is_sign_positive());
        assert_eq!(canon.erasure.as_per_symbol_day(), 1e-6);
        let bad = FaultRates {
            seu: SeuRate::per_bit_day(f64::NAN),
            erasure: ErasureRate::default(),
        };
        assert!(bad.canonicalized().is_err());
    }

    #[test]
    fn scrub_canonicalization_validates() {
        assert_eq!(
            Scrubbing::every_seconds(900.0).canonicalized().unwrap(),
            Scrubbing::every_seconds(900.0)
        );
        assert!(Scrubbing::every_seconds(-1.0).canonicalized().is_err());
    }

    #[test]
    fn rate_validation() {
        assert!(FaultRates::default().validate().is_ok());
        let bad = FaultRates {
            seu: SeuRate::per_bit_day(-1.0),
            erasure: ErasureRate::default(),
        };
        assert!(bad.validate().is_err());
    }
}
