//! Shared model configuration: code parameters, fault environment,
//! scrubbing policy.

use crate::units::{ErasureRate, SeuRate, Time};
use crate::ModelError;
use std::fmt;

/// The code family a [`CodeParams`] describes.
///
/// The Markov models and the simulator only ever consult the family
/// through [`CodeParams::capability`], so adding a family here is all
/// the analysis layers need; the actual encoder/decoder lives in
/// `rsmem-codes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CodeFamily {
    /// Reed–Solomon over GF(2^m) — the paper's code.
    #[default]
    Rs,
    /// First-order Reed–Muller RM(1,r) over GF(2), majority-logic
    /// decoded with the stuck-at masking trick (Djurdjevic et al.).
    Rm,
    /// Depth-d interleaved Reed–Solomon — the burst-error variant.
    Irs,
}

impl CodeFamily {
    /// The short lowercase name used by the CLI and the service JSON
    /// (`rs`, `rm`, `irs`).
    pub fn name(&self) -> &'static str {
        match self {
            CodeFamily::Rs => "rs",
            CodeFamily::Rm => "rm",
            CodeFamily::Irs => "irs",
        }
    }
}

impl fmt::Display for CodeFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CodeFamily {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "rs" => Ok(CodeFamily::Rs),
            "rm" => Ok(CodeFamily::Rm),
            "irs" => Ok(CodeFamily::Irs),
            _ => Err(ModelError::InvalidCode {
                n: 0,
                k: 0,
                m: 0,
                reason: "unknown code family (expected rs, rm or irs)",
            }),
        }
    }
}

/// What a decoder guarantees to correct, as pure data.
///
/// Every family's guarantee fits one shape: after up to
/// `masked_erasures` erasures are absorbed for free (stuck-at masking),
/// the remaining erasures cost 1 and random symbol errors cost 2
/// against `budget`. For RS this is exactly the paper's
/// `er + 2·re ≤ n − k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorrectionCapability {
    /// The weighted error/erasure budget (`n − k` for RS).
    pub budget: usize,
    /// Erasures absorbed before counting against the budget (stuck-at
    /// masking: RM(1,r) absorbs one known-stuck cell at write time).
    pub masked_erasures: usize,
}

impl CorrectionCapability {
    /// Does the guarantee cover `erasures` known-position faults plus
    /// `random_errors` unknown-position symbol errors?
    pub fn admits(&self, erasures: usize, random_errors: usize) -> bool {
        erasures.saturating_sub(self.masked_erasures) + 2 * random_errors <= self.budget
    }

    /// Maximum random symbol errors correctable with no erasures
    /// present (`t` in classical notation).
    pub fn max_random_errors(&self) -> usize {
        self.budget / 2
    }

    /// Maximum erasures correctable with no random errors present.
    pub fn max_erasures(&self) -> usize {
        self.budget + self.masked_erasures
    }
}

/// The code parameters a memory model is built around.
///
/// This mirrors the `rsmem-codes` constructions but carries no field
/// tables — the Markov models only need the counting parameters and
/// the [`CorrectionCapability`] they imply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CodeParams {
    n: usize,
    k: usize,
    m: u32,
    family: CodeFamily,
    depth: u8,
}

impl CodeParams {
    /// Validates and builds code parameters.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCode`] for `k == 0`, `k >= n`, `m ∉ 2..=16`
    /// or `n > 2^m − 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsmem_models::CodeParams;
    /// # fn main() -> Result<(), rsmem_models::ModelError> {
    /// let code = CodeParams::new(18, 16, 8)?;
    /// assert_eq!(code.redundancy(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(n: usize, k: usize, m: u32) -> Result<Self, ModelError> {
        if !(2..=16).contains(&m) {
            return Err(ModelError::InvalidCode {
                n,
                k,
                m,
                reason: "symbol width must be 2..=16",
            });
        }
        if k == 0 || k >= n {
            return Err(ModelError::InvalidCode {
                n,
                k,
                m,
                reason: "need 0 < k < n",
            });
        }
        if n > (1usize << m) - 1 {
            return Err(ModelError::InvalidCode {
                n,
                k,
                m,
                reason: "codeword length exceeds 2^m - 1",
            });
        }
        Ok(CodeParams {
            n,
            k,
            m,
            family: CodeFamily::Rs,
            depth: 1,
        })
    }

    /// First-order Reed–Muller RM(1,r): `n = 2^r` bit symbols,
    /// `k = r + 1`, minimum distance `2^(r−1)`, majority-logic decoded.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCode`] for `r ∉ 3..=12` (below r = 3 the
    /// bounded-distance budget is too small to correct even one error).
    pub fn rm1(r: u32) -> Result<Self, ModelError> {
        if !(3..=12).contains(&r) {
            return Err(ModelError::InvalidCode {
                n: 1usize << r.min(32),
                k: r as usize + 1,
                m: 1,
                reason: "RM(1,r) order must be 3..=12",
            });
        }
        Ok(CodeParams {
            n: 1 << r,
            k: r as usize + 1,
            m: 1,
            family: CodeFamily::Rm,
            depth: 1,
        })
    }

    /// Depth-`depth` interleaved RS built from `depth` copies of an
    /// inner RS(`inner_n`,`inner_k`) code over GF(2^m), round-robin
    /// dispersed: `n = depth·inner_n`, `k = depth·inner_k`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCode`] for an invalid inner code or
    /// `depth ∉ 2..=64`.
    pub fn interleaved(
        inner_n: usize,
        inner_k: usize,
        m: u32,
        depth: u8,
    ) -> Result<Self, ModelError> {
        let inner = CodeParams::new(inner_n, inner_k, m)?;
        if !(2..=64).contains(&depth) {
            return Err(ModelError::InvalidCode {
                n: inner_n,
                k: inner_k,
                m,
                reason: "interleave depth must be 2..=64",
            });
        }
        Ok(CodeParams {
            n: inner.n * depth as usize,
            k: inner.k * depth as usize,
            m,
            family: CodeFamily::Irs,
            depth,
        })
    }

    /// The paper's narrow code, RS(18,16) with byte symbols.
    pub fn rs18_16() -> Self {
        CodeParams {
            n: 18,
            k: 16,
            m: 8,
            family: CodeFamily::Rs,
            depth: 1,
        }
    }

    /// The paper's wide code, RS(36,16) with byte symbols.
    pub fn rs36_16() -> Self {
        CodeParams {
            n: 36,
            k: 16,
            m: 8,
            family: CodeFamily::Rs,
            depth: 1,
        }
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dataword length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Symbol width in bits.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Redundancy `n − k`.
    pub fn redundancy(&self) -> usize {
        self.n - self.k
    }

    /// The code family.
    pub fn family(&self) -> CodeFamily {
        self.family
    }

    /// Interleave depth (1 for non-interleaved families).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Constituent codeword length: `n/depth` for interleaved RS,
    /// otherwise `n`.
    pub fn inner_n(&self) -> usize {
        self.n / self.depth as usize
    }

    /// Constituent dataword length: `k/depth` for interleaved RS,
    /// otherwise `k`.
    pub fn inner_k(&self) -> usize {
        self.k / self.depth as usize
    }

    /// The family's worst-case correction guarantee.
    ///
    /// - RS: the paper's budget `n − k` (erasure 1, error 2).
    /// - RM(1,r): bounded-distance budget `d − 1 = n/2 − 1`, plus one
    ///   masked erasure from the stuck-at write trick.
    /// - Interleaved RS: the inner budget `n/depth − k/depth` — the
    ///   worst case puts every random fault in one constituent word
    ///   (bursts do much better; see [`CodeParams::max_burst`]).
    pub fn capability(&self) -> CorrectionCapability {
        match self.family {
            CodeFamily::Rs => CorrectionCapability {
                budget: self.redundancy(),
                masked_erasures: 0,
            },
            CodeFamily::Rm => CorrectionCapability {
                budget: self.n / 2 - 1,
                masked_erasures: 1,
            },
            CodeFamily::Irs => CorrectionCapability {
                budget: self.inner_n() - self.inner_k(),
                masked_erasures: 0,
            },
        }
    }

    /// Longest contiguous symbol burst guaranteed correctable with no
    /// other faults present. Interleaving spreads a length-b burst over
    /// the constituents, `≤ ⌈b/depth⌉` errors each, so the guarantee is
    /// `depth · t_inner`; for the other families it is plain `t`.
    pub fn max_burst(&self) -> usize {
        self.depth as usize * self.capability().max_random_errors()
    }

    /// The boundary condition generalizing the paper's
    /// `er + 2·re ≤ n − k` to every family (see
    /// [`CodeParams::capability`]).
    pub fn within_capability(&self, erasures: usize, random_errors: usize) -> bool {
        self.capability().admits(erasures, random_errors)
    }

    /// Paper Eq. (1) prefactor, `m·(n−k)/k`.
    pub fn ber_prefactor(&self) -> f64 {
        self.m as f64 * self.redundancy() as f64 / self.k as f64
    }
}

impl fmt::Display for CodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.family {
            CodeFamily::Rs => write!(f, "RS({},{}) over GF(2^{})", self.n, self.k, self.m),
            CodeFamily::Rm => write!(f, "RM(1,{}) over GF(2)", self.n.trailing_zeros()),
            CodeFamily::Irs => write!(
                f,
                "IRS({},{})x{} over GF(2^{})",
                self.inner_n(),
                self.inner_k(),
                self.depth,
                self.m
            ),
        }
    }
}

impl std::str::FromStr for CodeParams {
    type Err = ModelError;

    /// Parses the forms used by the CLI `--code` flag and the service
    /// JSON string form. A plain `N,K,M` triple (e.g. `"18,16,8"`)
    /// stays Reed–Solomon for backward compatibility; prefixed forms
    /// select the other families:
    ///
    /// - `rs:N,K,M` — explicit RS
    /// - `rm:R` — Reed–Muller RM(1,R)
    /// - `irs:N,K,M,D` — depth-D interleaved RS over inner RS(N,K)
    ///
    /// Whitespace around each component is ignored; results are
    /// validated by the corresponding constructor.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let invalid = |reason: &'static str| ModelError::InvalidCode {
            n: 0,
            k: 0,
            m: 0,
            reason,
        };
        let (family, rest) = match s.split_once(':') {
            Some((prefix, rest)) => (prefix.trim().parse::<CodeFamily>()?, rest),
            None => (CodeFamily::Rs, s),
        };
        let parts: Vec<usize> = rest
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| invalid("expected comma-separated integers"))?;
        match (family, parts.as_slice()) {
            (CodeFamily::Rs, &[n, k, m]) => CodeParams::new(n, k, m as u32),
            (CodeFamily::Rs, _) => Err(invalid("expected an N,K,M triple")),
            (CodeFamily::Rm, &[r]) => CodeParams::rm1(r as u32),
            (CodeFamily::Rm, _) => Err(invalid("expected rm:R")),
            (CodeFamily::Irs, &[n, k, m, d]) if d <= u8::MAX as usize => {
                CodeParams::interleaved(n, k, m as u32, d as u8)
            }
            (CodeFamily::Irs, _) => Err(invalid("expected irs:N,K,M,D")),
        }
    }
}

/// The fault environment: SEU and permanent-fault exposure rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultRates {
    /// Transient (SEU) rate per bit per day — the paper's `λ`.
    pub seu: SeuRate,
    /// Permanent-fault (erasure) rate per symbol per day — the paper's `λe`.
    pub erasure: ErasureRate,
}

impl FaultRates {
    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidRate`] if either rate is negative or NaN.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.seu.is_valid() && self.erasure.is_valid() {
            Ok(())
        } else {
            Err(ModelError::InvalidRate)
        }
    }

    /// Transient-only environment (paper Figs. 5–7).
    pub fn transient_only(seu: SeuRate) -> Self {
        FaultRates {
            seu,
            erasure: ErasureRate::default(),
        }
    }

    /// Permanent-only environment (paper Figs. 8–10).
    pub fn permanent_only(erasure: ErasureRate) -> Self {
        FaultRates {
            seu: SeuRate::default(),
            erasure,
        }
    }

    /// Validates and canonicalizes the rates for use as part of a cache
    /// key: `-0.0` is normalized to `+0.0` so that configurations that
    /// solve identically hash identically.
    ///
    /// # Errors
    ///
    /// See [`FaultRates::validate`].
    pub fn canonicalized(self) -> Result<Self, ModelError> {
        self.validate()?;
        fn unsign_zero(x: f64) -> f64 {
            if x == 0.0 {
                0.0
            } else {
                x
            }
        }
        Ok(FaultRates {
            seu: SeuRate::per_bit_day(unsign_zero(self.seu.as_per_bit_day())),
            erasure: ErasureRate::per_symbol_day(unsign_zero(self.erasure.as_per_symbol_day())),
        })
    }
}

/// The scrubbing policy.
///
/// Scrubbing is modelled as a memoryless repair event at rate `1/Tsc`
/// (the paper: "executed at a prescribed frequency characterized by a
/// rate 1/Tsc"); it rewrites corrected data, clearing accumulated
/// transient errors but leaving permanent faults in place.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scrubbing {
    /// No scrubbing.
    #[default]
    None,
    /// Periodic scrubbing with the given period `Tsc`.
    Periodic {
        /// The scrub period.
        period: Time,
    },
}

impl Scrubbing {
    /// Convenience constructor from a period in seconds (the unit the
    /// paper's Fig. 7 legend uses).
    pub fn every_seconds(seconds: f64) -> Self {
        Scrubbing::Periodic {
            period: Time::from_seconds(seconds),
        }
    }

    /// The Markov repair rate in events per day (0 when disabled).
    pub fn rate_per_day(&self) -> f64 {
        match self {
            Scrubbing::None => 0.0,
            Scrubbing::Periodic { period } => 1.0 / period.as_days(),
        }
    }

    /// Validates and canonicalizes the policy for use as part of a cache
    /// key: the period is re-expressed in whole days (the internal unit
    /// every solver sees), so `Periodic { 900 s }` and
    /// `Periodic { 0.25 h }` produce the same canonical value.
    ///
    /// # Errors
    ///
    /// See [`Scrubbing::validate`].
    pub fn canonicalized(self) -> Result<Self, ModelError> {
        self.validate()?;
        Ok(match self {
            Scrubbing::None => Scrubbing::None,
            Scrubbing::Periodic { period } => Scrubbing::Periodic {
                period: Time::from_days(period.as_days()),
            },
        })
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidScrubPeriod`] for a non-positive period.
    pub fn validate(&self) -> Result<(), ModelError> {
        match self {
            Scrubbing::None => Ok(()),
            Scrubbing::Periodic { period } => {
                if period.is_valid() && period.as_days() > 0.0 {
                    Ok(())
                } else {
                    Err(ModelError::InvalidScrubPeriod)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_codes_validate() {
        assert_eq!(CodeParams::rs18_16(), CodeParams::new(18, 16, 8).unwrap());
        assert_eq!(CodeParams::rs36_16(), CodeParams::new(36, 16, 8).unwrap());
    }

    #[test]
    fn invalid_codes_rejected() {
        assert!(CodeParams::new(18, 18, 8).is_err());
        assert!(CodeParams::new(18, 0, 8).is_err());
        assert!(CodeParams::new(300, 16, 8).is_err());
        assert!(CodeParams::new(18, 16, 1).is_err());
        assert!(CodeParams::new(18, 16, 17).is_err());
        assert!(CodeParams::new(16, 8, 4).is_err()); // n > 15
    }

    #[test]
    fn ber_prefactor_matches_paper_examples() {
        // RS(18,16), m=8: 8·2/16 = 1. RS(36,16), m=8: 8·20/16 = 10.
        assert_eq!(CodeParams::rs18_16().ber_prefactor(), 1.0);
        assert_eq!(CodeParams::rs36_16().ber_prefactor(), 10.0);
    }

    #[test]
    fn capability_boundary() {
        let c = CodeParams::rs18_16();
        assert!(c.within_capability(2, 0));
        assert!(c.within_capability(0, 1));
        assert!(!c.within_capability(1, 1));
        assert!(!c.within_capability(3, 0));
    }

    #[test]
    fn rm_geometry_and_capability() {
        // RM(1,4): n = 16 bits, k = 5, d = 8 → budget 7, one masked
        // erasure from the stuck-at write trick.
        let c = CodeParams::rm1(4).unwrap();
        assert_eq!((c.n(), c.k(), c.m()), (16, 5, 1));
        assert_eq!(c.family(), CodeFamily::Rm);
        let cap = c.capability();
        assert_eq!(cap.budget, 7);
        assert_eq!(cap.masked_erasures, 1);
        assert_eq!(cap.max_random_errors(), 3);
        assert_eq!(cap.max_erasures(), 8);
        assert!(c.within_capability(8, 0)); // one erasure is free
        assert!(!c.within_capability(9, 0));
        assert!(c.within_capability(1, 3)); // masked erasure + t errors
        assert!(c.within_capability(2, 3)); // (2−1) + 2·3 = 7 ≤ 7
        assert!(!c.within_capability(3, 3));
        assert!(CodeParams::rm1(2).is_err());
        assert!(CodeParams::rm1(13).is_err());
    }

    #[test]
    fn irs_geometry_and_capability() {
        let c = CodeParams::interleaved(18, 16, 8, 4).unwrap();
        assert_eq!((c.n(), c.k(), c.m()), (72, 64, 8));
        assert_eq!(c.family(), CodeFamily::Irs);
        assert_eq!((c.inner_n(), c.inner_k(), c.depth()), (18, 16, 4));
        // Worst case: every fault in one constituent → inner budget.
        assert_eq!(c.capability().budget, 2);
        assert!(c.within_capability(0, 1));
        assert!(!c.within_capability(0, 2));
        // Bursts spread across the constituents: depth · t_inner.
        assert_eq!(c.max_burst(), 4);
        assert!(CodeParams::interleaved(18, 16, 8, 1).is_err());
        assert!(CodeParams::interleaved(18, 18, 8, 4).is_err());
    }

    #[test]
    fn family_names_round_trip() {
        for family in [CodeFamily::Rs, CodeFamily::Rm, CodeFamily::Irs] {
            assert_eq!(family.name().parse::<CodeFamily>().unwrap(), family);
        }
        assert!("bch".parse::<CodeFamily>().is_err());
    }

    #[test]
    fn family_display_forms() {
        assert_eq!(CodeParams::rs18_16().to_string(), "RS(18,16) over GF(2^8)");
        assert_eq!(
            CodeParams::rm1(3).unwrap().to_string(),
            "RM(1,3) over GF(2)"
        );
        assert_eq!(
            CodeParams::interleaved(18, 16, 8, 2).unwrap().to_string(),
            "IRS(18,16)x2 over GF(2^8)"
        );
    }

    #[test]
    fn prefixed_code_forms_parse() {
        assert_eq!(
            "rs:18,16,8".parse::<CodeParams>().unwrap(),
            CodeParams::rs18_16()
        );
        assert_eq!(
            "rm:4".parse::<CodeParams>().unwrap(),
            CodeParams::rm1(4).unwrap()
        );
        assert_eq!(
            "irs: 18, 16, 8, 2".parse::<CodeParams>().unwrap(),
            CodeParams::interleaved(18, 16, 8, 2).unwrap()
        );
        assert!("bch:18,16,8".parse::<CodeParams>().is_err());
        assert!("rm:4,5".parse::<CodeParams>().is_err());
        assert!("irs:18,16,8".parse::<CodeParams>().is_err());
    }

    #[test]
    fn scrub_rate_conversion() {
        let s = Scrubbing::every_seconds(3600.0);
        assert!((s.rate_per_day() - 24.0).abs() < 1e-9);
        assert_eq!(Scrubbing::None.rate_per_day(), 0.0);
    }

    #[test]
    fn scrub_validation() {
        assert!(Scrubbing::None.validate().is_ok());
        assert!(Scrubbing::every_seconds(900.0).validate().is_ok());
        assert!(Scrubbing::every_seconds(0.0).validate().is_err());
        assert!(Scrubbing::every_seconds(-5.0).validate().is_err());
        assert!(Scrubbing::every_seconds(f64::NAN).validate().is_err());
    }

    #[test]
    fn code_params_parse_from_triple() {
        let code: CodeParams = "18,16,8".parse().unwrap();
        assert_eq!(code, CodeParams::rs18_16());
        let spaced: CodeParams = " 36 , 16 , 8 ".parse().unwrap();
        assert_eq!(spaced, CodeParams::rs36_16());
        assert!("18,16".parse::<CodeParams>().is_err());
        assert!("18,16,8,9".parse::<CodeParams>().is_err());
        assert!("a,b,c".parse::<CodeParams>().is_err());
        assert!("16,18,8".parse::<CodeParams>().is_err()); // k > n
    }

    #[test]
    fn canonicalization_normalizes_negative_zero() {
        let rates = FaultRates {
            seu: SeuRate::per_bit_day(-0.0),
            erasure: ErasureRate::per_symbol_day(1e-6),
        };
        let canon = rates.canonicalized().unwrap();
        assert!(canon.seu.as_per_bit_day().is_sign_positive());
        assert_eq!(canon.erasure.as_per_symbol_day(), 1e-6);
        let bad = FaultRates {
            seu: SeuRate::per_bit_day(f64::NAN),
            erasure: ErasureRate::default(),
        };
        assert!(bad.canonicalized().is_err());
    }

    #[test]
    fn scrub_canonicalization_validates() {
        assert_eq!(
            Scrubbing::every_seconds(900.0).canonicalized().unwrap(),
            Scrubbing::every_seconds(900.0)
        );
        assert!(Scrubbing::every_seconds(-1.0).canonicalized().is_err());
    }

    #[test]
    fn rate_validation() {
        assert!(FaultRates::default().validate().is_ok());
        let bad = FaultRates {
            seu: SeuRate::per_bit_day(-1.0),
            erasure: ErasureRate::default(),
        };
        assert!(bad.validate().is_err());
    }
}
