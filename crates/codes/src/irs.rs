//! Depth-d interleaved Reed–Solomon: the burst-error variant.
//!
//! `depth` constituent RS(n_i,k_i) words are stored round-robin via
//! `rsmem_code::Interleaver`, so `depth` physically adjacent symbols
//! always belong to `depth` different words. A contiguous burst of `b`
//! symbols degrades into `≤ ⌈b/depth⌉` errors per constituent — up to
//! `depth · t_inner` burst symbols corrected, at the cost of a
//! worst-case *random* guarantee of only the inner budget (all faults
//! can land in one constituent).

use crate::MemoryCode;
use rsmem_code::complexity::{area_units, decode_cycles, ComplexityRow};
use rsmem_code::{CodeError, Correction, DecodeOutcome, Interleaver, RsCode, Symbol};
use rsmem_models::CodeParams;
use std::borrow::Cow;

/// Interleaved RS behind the [`MemoryCode`] trait.
///
/// The composite dataword is itself round-robin: data symbol `j`
/// belongs to constituent `j % depth` — so, like the physical layout,
/// a burst of writes spreads evenly over the constituent words.
#[derive(Debug, Clone)]
pub struct InterleavedRs {
    inner: RsCode,
    interleaver: Interleaver,
    params: CodeParams,
}

impl InterleavedRs {
    /// Builds a depth-`depth` interleave of RS(`inner_n`,`inner_k`)
    /// over GF(2^m).
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] for an invalid inner geometry
    /// or `depth ∉ 2..=64`.
    pub fn new(inner_n: usize, inner_k: usize, m: u32, depth: usize) -> Result<Self, CodeError> {
        let params = CodeParams::interleaved(inner_n, inner_k, m, u8::try_from(depth).unwrap_or(0))
            .map_err(|_| CodeError::InvalidParameters {
                n: inner_n,
                k: inner_k,
                m,
                reason: "invalid interleaved-RS parameters (depth must be 2..=64)",
            })?;
        Ok(InterleavedRs {
            inner: RsCode::new(inner_n, inner_k, m)?,
            interleaver: Interleaver::new(depth)?,
            params,
        })
    }

    /// The constituent code.
    pub fn inner(&self) -> &RsCode {
        &self.inner
    }

    /// The interleave depth.
    pub fn depth(&self) -> usize {
        self.interleaver.depth()
    }

    /// Longest contiguous burst guaranteed correctable,
    /// `depth · t_inner`.
    pub fn max_burst(&self) -> usize {
        self.params.max_burst()
    }

    fn check_len(&self, got: usize, expected: usize) -> Result<(), CodeError> {
        if got != expected {
            return Err(CodeError::CodewordLength { got, expected });
        }
        Ok(())
    }

    /// Splits composite round-robin data into per-constituent datawords.
    fn split_data(&self, data: &[Symbol]) -> Vec<Vec<Symbol>> {
        let depth = self.depth();
        let mut split = vec![Vec::with_capacity(self.inner.k()); depth];
        for (j, &s) in data.iter().enumerate() {
            split[j % depth].push(s);
        }
        split
    }

    /// Deinterleave → per-constituent decode → recombine; the
    /// [`MemoryCode::decode`] wrapper adds the `code.irs` span and
    /// outcome bookkeeping.
    fn decode_constituents(
        &self,
        word: &[Symbol],
        erasures: &[usize],
    ) -> Result<DecodeOutcome, CodeError> {
        let (n, depth) = (self.params.n(), self.depth());
        self.check_len(word.len(), n)?;
        for &p in erasures {
            if p >= n {
                return Err(CodeError::BadErasure { position: p, n });
            }
        }
        let mut words = self.interleaver.deinterleave(word, self.inner.n())?;
        let mut split_erasures = vec![Vec::new(); depth];
        for &p in erasures {
            let (w, i) = self.interleaver.locate(p);
            split_erasures[w].push(i);
        }

        let mut datas = Vec::with_capacity(depth);
        let mut corrections: Vec<Correction> = Vec::new();
        for w in 0..depth {
            split_erasures[w].sort_unstable();
            match self.inner.decode(&words[w], &split_erasures[w])? {
                DecodeOutcome::Clean { data } => datas.push(data),
                DecodeOutcome::Corrected {
                    data,
                    codeword,
                    corrections: inner_corr,
                } => {
                    corrections.extend(inner_corr.iter().map(|c| Correction {
                        position: c.position * depth + w,
                        magnitude: c.magnitude,
                        was_erasure: c.was_erasure,
                    }));
                    words[w] = codeword;
                    datas.push(data);
                }
                // Any constituent failure is a composite failure.
                DecodeOutcome::Failure(failure) => return Ok(DecodeOutcome::Failure(failure)),
            }
        }

        let data = {
            let mut out = Vec::with_capacity(self.params.k());
            for i in 0..self.inner.k() {
                for d in datas.iter().take(depth) {
                    out.push(d[i]);
                }
            }
            out
        };
        if corrections.is_empty() {
            Ok(DecodeOutcome::Clean { data })
        } else {
            corrections.sort_unstable_by_key(|c| c.position);
            Ok(DecodeOutcome::Corrected {
                data,
                codeword: self.interleaver.interleave(&words)?,
                corrections,
            })
        }
    }
}

impl MemoryCode for InterleavedRs {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn encode(&self, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError> {
        if data.len() != self.params.k() {
            return Err(CodeError::DatawordLength {
                got: data.len(),
                expected: self.params.k(),
            });
        }
        let words = self
            .split_data(data)
            .iter()
            .map(|d| self.inner.encode(d))
            .collect::<Result<Vec<_>, _>>()?;
        self.interleaver.interleave(&words)
    }

    fn decode(&self, word: &[Symbol], erasures: &[usize]) -> Result<DecodeOutcome, CodeError> {
        let mut span = rsmem_obs::span("code.irs", "decode");
        span.record("erasures", erasures.len() as u64);
        let result = self.decode_constituents(word, erasures);
        if let Ok(outcome) = &result {
            crate::metrics::record_outcome("irs", outcome);
            crate::metrics::record_decode_event("code.irs", "interleaved", outcome);
        }
        result
    }

    fn data_of<'w>(&self, word: &'w [Symbol]) -> Result<Cow<'w, [Symbol]>, CodeError> {
        self.check_len(word.len(), self.params.n())?;
        let words = self.interleaver.deinterleave(word, self.inner.n())?;
        let mut out = Vec::with_capacity(self.params.k());
        for i in 0..self.inner.k() {
            for w in &words {
                out.push(self.inner.data_of(w)?[i]);
            }
        }
        Ok(Cow::Owned(out))
    }

    fn complexity_model(&self) -> ComplexityRow {
        let (n_i, k_i, m) = (self.inner.n(), self.inner.k(), self.inner.symbol_bits());
        // One shared inner decoder works through the constituents
        // sequentially: latency scales with depth, area does not.
        ComplexityRow {
            label: self.params.to_string(),
            family: "irs".to_owned(),
            n: self.params.n(),
            k: self.params.k(),
            decode_cycles: self.depth() as u64 * decode_cycles(n_i, k_i),
            area_units: area_units(m, n_i, k_i),
            redundant_symbols: self.params.n() - self.params.k(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> InterleavedRs {
        InterleavedRs::new(18, 16, 8, 4).unwrap()
    }

    fn data_for(code: &InterleavedRs) -> Vec<Symbol> {
        (0..code.params().k())
            .map(|j| ((j * 31 + 7) % 251) as Symbol)
            .collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let code = code();
        let data = data_for(&code);
        let word = code.encode(&data).unwrap();
        assert_eq!(word.len(), 72);
        match code.decode(&word, &[]).unwrap() {
            DecodeOutcome::Clean { data: got } => assert_eq!(got, data),
            other => panic!("clean word misread: {other:?}"),
        }
        assert_eq!(code.data_of(&word).unwrap().into_owned(), data);
    }

    #[test]
    fn max_burst_is_corrected_anywhere() {
        // depth 4 × t_inner 1 → any burst of 4 adjacent symbols.
        let code = code();
        let data = data_for(&code);
        let word = code.encode(&data).unwrap();
        assert_eq!(code.max_burst(), 4);
        for start in 0..=(72 - 4) {
            let mut corrupted = word.clone();
            for cell in &mut corrupted[start..start + 4] {
                *cell ^= 0x55;
            }
            match code.decode(&corrupted, &[]).unwrap() {
                DecodeOutcome::Corrected {
                    data: got,
                    codeword,
                    corrections,
                } => {
                    assert_eq!(got, data);
                    assert_eq!(codeword, word);
                    assert_eq!(corrections.len(), 4);
                }
                other => panic!("burst at {start} not corrected: {other:?}"),
            }
        }
    }

    #[test]
    fn burst_beyond_guarantee_is_not_silent_success() {
        // A burst of depth + 1 puts 2 errors in one constituent with
        // t_inner = 1: must fail (or at least flag), never return the
        // wrong data as Clean.
        let code = code();
        let data = data_for(&code);
        let word = code.encode(&data).unwrap();
        let mut corrupted = word.clone();
        for cell in &mut corrupted[10..15] {
            *cell ^= 0x55;
        }
        match code.decode(&corrupted, &[]).unwrap() {
            DecodeOutcome::Failure(_) => {}
            DecodeOutcome::Corrected { .. } => {}
            DecodeOutcome::Clean { .. } => panic!("corrupted word read as clean"),
        }
    }

    #[test]
    fn erasures_map_to_constituents() {
        let code = code();
        let data = data_for(&code);
        let word = code.encode(&data).unwrap();
        // Erase two adjacent physical symbols → one erasure in each of
        // two constituents: both within the inner budget of 2.
        let mut corrupted = word.clone();
        corrupted[8] ^= 0xff;
        corrupted[9] ^= 0xff;
        match code.decode(&corrupted, &[8, 9]).unwrap() {
            DecodeOutcome::Corrected { data: got, .. } => assert_eq!(got, data),
            other => panic!("erased pair not recovered: {other:?}"),
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        let code = code();
        let data = data_for(&code);
        assert!(code.encode(&data[..10]).is_err());
        assert!(code.decode(&[0; 71], &[]).is_err());
        assert!(code.decode(&[0; 72], &[72]).is_err());
        assert!(code.decode(&[0; 72], &[3, 3]).is_err());
    }

    #[test]
    fn invalid_depth_rejected() {
        assert!(InterleavedRs::new(18, 16, 8, 0).is_err());
        assert!(InterleavedRs::new(18, 16, 8, 1).is_err());
        assert!(InterleavedRs::new(18, 16, 8, 65).is_err());
    }
}
