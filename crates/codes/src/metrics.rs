//! Per-family decode-outcome counters for the [`MemoryCode`] layer.
//!
//! The solver crate settles the backend-level `rsmem_solver_decode_*`
//! series; those are untouched here and stay byte-identical for code
//! that calls `RsCode` directly. This module adds one series *above*
//! the trait boundary — `rsmem_decode_outcomes_total{family,outcome}` —
//! so a `rsmem compare` run shows the `rs` / `rm` / `irs` outcome mix
//! side by side in `/metrics`.
//!
//! Handles are resolved lazily on the first trait-layer decode of each
//! family: a process that never routes a decode through [`MemoryCode`]
//! renders exactly the same `/metrics` text as before this module
//! existed (pinned by `tests/family_metrics.rs`).
//!
//! [`MemoryCode`]: crate::MemoryCode

use rsmem_code::{BatchOutcome, DecodeFailure, DecodeOutcome};
use rsmem_obs::metrics::{global, Counter};
use rsmem_obs::recorder::{self, RecordKind};
use std::sync::OnceLock;

/// Cached counter handles for one code family, resolved once so the
/// per-decode cost is a single relaxed atomic add.
struct FamilyMetrics {
    clean: Counter,
    corrected: Counter,
    failure: Counter,
}

impl FamilyMetrics {
    fn resolve(family: &'static str) -> FamilyMetrics {
        let by_outcome = |outcome: &str| {
            global().counter(
                "rsmem_decode_outcomes_total",
                &[("family", family), ("outcome", outcome)],
            )
        };
        FamilyMetrics {
            clean: by_outcome("clean"),
            corrected: by_outcome("corrected"),
            failure: by_outcome("failure"),
        }
    }
}

fn family_metrics(family: &'static str) -> &'static FamilyMetrics {
    static RS: OnceLock<FamilyMetrics> = OnceLock::new();
    static RM: OnceLock<FamilyMetrics> = OnceLock::new();
    static IRS: OnceLock<FamilyMetrics> = OnceLock::new();
    let slot = match family {
        "rs" => &RS,
        "rm" => &RM,
        _ => &IRS,
    };
    slot.get_or_init(|| FamilyMetrics::resolve(family))
}

/// Settles the family-labelled outcome counter for one decode.
pub(crate) fn record_outcome(family: &'static str, outcome: &DecodeOutcome) {
    let metrics = family_metrics(family);
    match outcome {
        DecodeOutcome::Clean { .. } => metrics.clean.inc(),
        DecodeOutcome::Corrected { .. } => metrics.corrected.inc(),
        DecodeOutcome::Failure(_) => metrics.failure.inc(),
    }
}

/// Batch variant of [`record_outcome`]: one pass over the outcome
/// slice, three atomic adds.
pub(crate) fn record_batch(family: &'static str, outcomes: &[BatchOutcome]) {
    let (mut clean, mut corrected, mut failure) = (0u64, 0u64, 0u64);
    for outcome in outcomes {
        match outcome {
            BatchOutcome::Clean => clean += 1,
            BatchOutcome::Corrected { .. } => corrected += 1,
            BatchOutcome::Failure(_) => failure += 1,
        }
    }
    let metrics = family_metrics(family);
    if clean > 0 {
        metrics.clean.add(clean);
    }
    if corrected > 0 {
        metrics.corrected.add(corrected);
    }
    if failure > 0 {
        metrics.failure.add(failure);
    }
}

/// Compact outcome encoding for flight-recorder events, mirroring the
/// solver layer: 0 = clean, 1 = corrected, 2+discriminant = failure.
fn outcome_code(outcome: &DecodeOutcome) -> u64 {
    match outcome {
        DecodeOutcome::Clean { .. } => 0,
        DecodeOutcome::Corrected { .. } => 1,
        DecodeOutcome::Failure(failure) => {
            2 + match failure {
                DecodeFailure::TooManyErasures { .. } => 0,
                DecodeFailure::KeyEquation => 1,
                DecodeFailure::CapabilityExceeded { .. } => 2,
                DecodeFailure::RootCountMismatch => 3,
                DecodeFailure::Unverified => 4,
                _ => 5,
            }
        }
    }
}

/// Emits a flight-recorder `decode` event for families that do not pass
/// through the solver crate's `decode_word` (RM and interleaved-RS run
/// their own decoders, so they record here instead).
pub(crate) fn record_decode_event(
    target: &'static str,
    name: &'static str,
    outcome: &DecodeOutcome,
) {
    if !recorder::enabled() {
        return;
    }
    let corrections = match outcome {
        DecodeOutcome::Corrected { corrections, .. } => corrections.len() as u64,
        _ => 0,
    };
    recorder::record_event(
        RecordKind::Decode,
        target,
        name,
        outcome_code(outcome),
        corrections,
    );
}
