//! Code-family framework: one [`MemoryCode`] trait over every code the
//! memory analyses compare.
//!
//! The paper's pipeline — CTMC models, MC simulation, the duplex
//! arbiter — was originally hard-wired to `rsmem_code::RsCode`. This
//! crate is the seam that makes every layer generic: a [`MemoryCode`]
//! trait capturing what the analyses actually need (encode, decode with
//! erasures, batch decode, symbol geometry, a correction-capability
//! predicate and a complexity-model hook), plus three implementations:
//!
//! * [`RsAdapter`] — the paper's Reed–Solomon code, wrapping the
//!   existing `RsCode` including its batched decode plane. The adapter
//!   is bit-identical to calling `RsCode` directly.
//! * [`ReedMuller`] — first-order RM(1,r) over GF(2) with Reed's
//!   majority-logic decoder and the stuck-at masking trick of
//!   Djurdjevic et al. (the all-ones codeword freedom absorbs one
//!   known-stuck cell at write time).
//! * [`InterleavedRs`] — a depth-d interleaved-RS burst-error variant
//!   built on `rsmem_code::Interleaver` round-robin dispersal.
//!
//! [`build`] maps a `rsmem_models::CodeParams` (which now carries a
//! [`CodeFamily`]) to the right implementation, so models, simulator,
//! stress harness and service all construct codes the same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod irs;
mod metrics;
mod rm;
mod rs;

pub use irs::InterleavedRs;
pub use rm::ReedMuller;
pub use rs::RsAdapter;

use rsmem_code::complexity::ComplexityRow;
use rsmem_code::{BatchOutcome, CodeError, DecodeOutcome, Symbol};
use rsmem_models::{CodeFamily, CodeParams, CorrectionCapability};
use std::borrow::Cow;

/// A block code protecting one memory word, as the reliability
/// analyses see it.
///
/// Implementations are cheap to share behind `Box<dyn MemoryCode>` or
/// `Arc`: all methods take `&self` and the trait is `Send + Sync` so
/// the threaded MC runner can fan a single instance across shards.
pub trait MemoryCode: std::fmt::Debug + Send + Sync {
    /// The counting parameters (geometry, family, capability).
    fn params(&self) -> CodeParams;

    /// Systematically encodes `k` data symbols into an `n`-symbol word.
    ///
    /// # Errors
    ///
    /// [`CodeError`] for a wrong-length dataword or out-of-range
    /// symbols.
    fn encode(&self, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError>;

    /// Decodes a stored word given declared erasure positions.
    ///
    /// The outcome contract matches `RsCode::decode`: `Clean` when the
    /// word is already a codeword, `Corrected` with the repaired
    /// codeword and per-position corrections, `Failure` when the
    /// corruption is detected as uncorrectable. Claims beyond
    /// [`MemoryCode::capability`] must come back as `Failure`, never as
    /// a `Corrected` outcome.
    ///
    /// # Errors
    ///
    /// [`CodeError`] for malformed input (wrong length, out-of-range
    /// symbols or erasure indices, duplicate erasures) — as opposed to
    /// a well-formed but uncorrectable word, which is `Ok(Failure)`.
    fn decode(&self, word: &[Symbol], erasures: &[usize]) -> Result<DecodeOutcome, CodeError>;

    /// Extracts the data symbols of a valid codeword.
    ///
    /// Borrowed for systematic layouts (RS), owned where the data is
    /// not stored verbatim (Reed–Muller) or not contiguous
    /// (interleaved RS).
    ///
    /// # Errors
    ///
    /// [`CodeError`] for a wrong-length word.
    fn data_of<'w>(&self, word: &'w [Symbol]) -> Result<Cow<'w, [Symbol]>, CodeError>;

    /// Decodes a batch of words in place, appending one
    /// [`BatchOutcome`] per word.
    ///
    /// The default loops the scalar [`MemoryCode::decode`]; the RS
    /// adapter overrides it with the SWAR batch plane. Corrected words
    /// are repaired in place, exactly like
    /// `rsmem_code::BatchDecoder::decode_batch`.
    ///
    /// # Errors
    ///
    /// [`CodeError`] for malformed input or a batch-shape mismatch.
    fn decode_batch(
        &self,
        words: &mut [Vec<Symbol>],
        erasures: &[Vec<usize>],
        out: &mut Vec<BatchOutcome>,
    ) -> Result<(), CodeError> {
        if words.len() != erasures.len() {
            return Err(CodeError::CodewordLength {
                got: erasures.len(),
                expected: words.len(),
            });
        }
        out.reserve(words.len());
        for (word, era) in words.iter_mut().zip(erasures) {
            match self.decode(word, era)? {
                DecodeOutcome::Clean { .. } => out.push(BatchOutcome::Clean),
                DecodeOutcome::Corrected {
                    codeword,
                    corrections,
                    ..
                } => {
                    let erased = corrections.iter().filter(|c| c.was_erasure).count() as u32;
                    word.copy_from_slice(&codeword);
                    out.push(BatchOutcome::Corrected {
                        errors: corrections.len() as u32 - erased,
                        erasures: erased,
                    });
                }
                DecodeOutcome::Failure(f) => out.push(BatchOutcome::Failure(f)),
            }
        }
        Ok(())
    }

    /// The hardware complexity model for one decoder of this code, in
    /// the Section-6 schema (latency cycles, relative area units,
    /// redundant symbols).
    fn complexity_model(&self) -> ComplexityRow;

    /// Codeword length in symbols.
    fn n(&self) -> usize {
        self.params().n()
    }

    /// Dataword length in symbols.
    fn k(&self) -> usize {
        self.params().k()
    }

    /// Symbol width in bits.
    fn symbol_bits(&self) -> u32 {
        self.params().m()
    }

    /// The family's worst-case correction guarantee.
    fn capability(&self) -> CorrectionCapability {
        self.params().capability()
    }

    /// The generalized paper boundary `er + 2·re ≤ budget` (after
    /// write-time masking).
    fn within_capability(&self, erasures: usize, random_errors: usize) -> bool {
        self.capability().admits(erasures, random_errors)
    }
}

/// Builds the [`MemoryCode`] implementation selected by `params`'s
/// family.
///
/// # Errors
///
/// [`CodeError::InvalidParameters`] when the parameters do not name a
/// constructible code (e.g. no primitive polynomial of width `m`).
///
/// # Examples
///
/// ```
/// use rsmem_codes::{build, MemoryCode};
/// use rsmem_models::CodeParams;
///
/// # fn main() -> Result<(), rsmem_code::CodeError> {
/// let code = build(CodeParams::rs18_16())?;
/// let data: Vec<u16> = (0..16).collect();
/// let word = code.encode(&data)?;
/// assert!(code.decode(&word, &[])?.is_flagged() == false);
/// # Ok(())
/// # }
/// ```
pub fn build(params: CodeParams) -> Result<Box<dyn MemoryCode>, CodeError> {
    Ok(match params.family() {
        CodeFamily::Rs => Box::new(RsAdapter::new(params.n(), params.k(), params.m())?),
        CodeFamily::Rm => Box::new(ReedMuller::new(params.n().trailing_zeros())?),
        CodeFamily::Irs => Box::new(InterleavedRs::new(
            params.inner_n(),
            params.inner_k(),
            params.m(),
            params.depth(),
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_family() {
        for params in [
            CodeParams::rs18_16(),
            CodeParams::rm1(4).unwrap(),
            CodeParams::interleaved(18, 16, 8, 2).unwrap(),
        ] {
            let code = build(params).unwrap();
            assert_eq!(code.params(), params);
            assert_eq!(code.n(), params.n());
            assert_eq!(code.k(), params.k());
            assert_eq!(code.capability(), params.capability());
        }
    }

    #[test]
    fn trait_default_batch_matches_scalar() {
        let code = build(CodeParams::rm1(3).unwrap()).unwrap();
        let data = vec![1, 0, 1, 1];
        let clean = code.encode(&data).unwrap();
        let mut corrupted = clean.clone();
        corrupted[2] ^= 1;
        let mut words = vec![clean.clone(), corrupted];
        let erasures = vec![vec![], vec![]];
        let mut out = Vec::new();
        code.decode_batch(&mut words, &erasures, &mut out).unwrap();
        assert_eq!(out[0], BatchOutcome::Clean);
        assert_eq!(
            out[1],
            BatchOutcome::Corrected {
                errors: 1,
                erasures: 0
            }
        );
        assert_eq!(words[1], clean, "corrected in place");
    }
}
