//! First-order Reed–Muller RM(1,r) with majority-logic decoding and
//! stuck-at masking.
//!
//! RM(1,r) protects `k = r + 1` data bits in a `n = 2^r`-bit word with
//! minimum distance `d = 2^(r−1)`. Position `p`'s bit is the Boolean
//! affine form `a0 ⊕ a1·p_0 ⊕ … ⊕ ar·p_{r−1}` evaluated on the binary
//! digits of `p`. Two properties make it interesting next to RS for
//! memories (Djurdjevic et al., PAPERS.md):
//!
//! * **Majority-logic decoding** (Reed's algorithm) needs only XOR
//!   trees and majority gates — no finite-field arithmetic at all.
//! * The code contains the **all-ones codeword** (`a0 = 1`), so a word
//!   can be stored complemented. Given one cell with a known stuck-at
//!   value, the encoder picks the polarity that makes the stuck cell
//!   *correct* — one permanent fault absorbed per word at write time
//!   without spending any decode budget ([`ReedMuller::encode_for_stuck`]).

use crate::MemoryCode;
use rsmem_code::complexity::ComplexityRow;
use rsmem_code::{CodeError, Correction, DecodeFailure, DecodeOutcome, Symbol};
use rsmem_models::CodeParams;
use std::borrow::Cow;

/// The RM(1,r) code over GF(2) (bit symbols, `m = 1`).
#[derive(Debug, Clone)]
pub struct ReedMuller {
    r: u32,
    params: CodeParams,
}

impl ReedMuller {
    /// Builds RM(1,r).
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] for `r ∉ 3..=12` (matching
    /// `CodeParams::rm1`).
    pub fn new(r: u32) -> Result<Self, CodeError> {
        let params = CodeParams::rm1(r).map_err(|_| CodeError::InvalidParameters {
            n: 1usize << r.min(32),
            k: r as usize + 1,
            m: 1,
            reason: "RM(1,r) order must be 3..=12",
        })?;
        Ok(ReedMuller { r, params })
    }

    /// The order `r`.
    pub fn order(&self) -> u32 {
        self.r
    }

    /// The bounded-distance decode budget `d − 1 = n/2 − 1`, i.e. the
    /// guarantee *without* the write-time masked erasure.
    fn budget(&self) -> usize {
        self.params.n() / 2 - 1
    }

    fn check_word(&self, word: &[Symbol]) -> Result<(), CodeError> {
        let n = self.params.n();
        if word.len() != n {
            return Err(CodeError::CodewordLength {
                got: word.len(),
                expected: n,
            });
        }
        if let Some(idx) = word.iter().position(|&s| s > 1) {
            return Err(CodeError::SymbolOutOfRange {
                index: idx,
                value: word[idx] as u32,
            });
        }
        Ok(())
    }

    fn check_erasures(&self, erasures: &[usize]) -> Result<(), CodeError> {
        let mut seen = vec![false; self.params.n()];
        for &p in erasures {
            if p >= seen.len() || seen[p] {
                return Err(CodeError::BadErasure {
                    position: p,
                    n: seen.len(),
                });
            }
            seen[p] = true;
        }
        Ok(())
    }

    /// Encodes with one known stuck-at cell masked: stores the word
    /// complemented when needed so the stuck cell reads back correct.
    ///
    /// Returns the stored word and the complement flag the system must
    /// keep alongside its stuck-at fault map (the flag is equivalent to
    /// flipping data bit `a0`; [`ReedMuller::unmask_data`] undoes it).
    ///
    /// # Errors
    ///
    /// [`CodeError`] for malformed data, an out-of-range position or a
    /// non-bit stuck value.
    pub fn encode_for_stuck(
        &self,
        data: &[Symbol],
        stuck_pos: usize,
        stuck_val: Symbol,
    ) -> Result<(Vec<Symbol>, bool), CodeError> {
        if stuck_pos >= self.params.n() {
            return Err(CodeError::BadErasure {
                position: stuck_pos,
                n: self.params.n(),
            });
        }
        if stuck_val > 1 {
            return Err(CodeError::SymbolOutOfRange {
                index: stuck_pos,
                value: stuck_val as u32,
            });
        }
        let mut word = self.encode(data)?;
        let complemented = word[stuck_pos] != stuck_val;
        if complemented {
            for s in &mut word {
                *s ^= 1;
            }
        }
        Ok((word, complemented))
    }

    /// Reverts the complement flag of [`ReedMuller::encode_for_stuck`]
    /// on decoded data (complementing the codeword flips `a0` only).
    pub fn unmask_data(&self, data: &mut [Symbol], complemented: bool) {
        if complemented {
            data[0] ^= 1;
        }
    }

    /// Reed's majority-logic core; the [`MemoryCode::decode`] wrapper
    /// adds the `code.rm` span and outcome bookkeeping.
    fn majority_decode(
        &self,
        word: &[Symbol],
        erasures: &[usize],
    ) -> Result<DecodeOutcome, CodeError> {
        self.check_word(word)?;
        self.check_erasures(erasures)?;
        let n = self.params.n();
        let budget = self.budget();
        if erasures.len() > budget {
            return Ok(DecodeOutcome::Failure(DecodeFailure::TooManyErasures {
                erasures: erasures.len(),
                redundancy: budget,
            }));
        }
        let mut erased = vec![false; n];
        for &p in erasures {
            erased[p] = true;
        }

        let mut data = vec![0 as Symbol; self.params.k()];
        for i in 0..self.r as usize {
            let mask = 1usize << i;
            let (mut ones, mut votes) = (0usize, 0usize);
            for p in 0..n {
                if p & mask != 0 || erased[p] || erased[p | mask] {
                    continue;
                }
                votes += 1;
                ones += (word[p] ^ word[p | mask]) as usize;
            }
            if 2 * ones == votes {
                return Ok(DecodeOutcome::Failure(DecodeFailure::KeyEquation));
            }
            data[i + 1] = (2 * ones > votes) as Symbol;
        }
        let (mut ones, mut votes) = (0usize, 0usize);
        for p in 0..n {
            if erased[p] {
                continue;
            }
            let mut linear = 0 as Symbol;
            for i in 0..self.r as usize {
                linear ^= data[i + 1] & ((p >> i) & 1) as Symbol;
            }
            votes += 1;
            ones += (word[p] ^ linear) as usize;
        }
        if 2 * ones == votes {
            return Ok(DecodeOutcome::Failure(DecodeFailure::KeyEquation));
        }
        data[0] = (2 * ones > votes) as Symbol;

        let codeword = self.encode(&data)?;
        let corrections: Vec<Correction> = (0..n)
            .filter(|&p| codeword[p] != word[p])
            .map(|p| Correction {
                position: p,
                magnitude: 1,
                was_erasure: erased[p],
            })
            .collect();
        let random = corrections.iter().filter(|c| !c.was_erasure).count();
        if erasures.len() + 2 * random > budget {
            return Ok(DecodeOutcome::Failure(DecodeFailure::CapabilityExceeded {
                erasures: erasures.len(),
                errors: random,
            }));
        }
        if corrections.is_empty() {
            Ok(DecodeOutcome::Clean { data })
        } else {
            Ok(DecodeOutcome::Corrected {
                data,
                codeword,
                corrections,
            })
        }
    }
}

impl MemoryCode for ReedMuller {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn encode(&self, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError> {
        let (n, k) = (self.params.n(), self.params.k());
        if data.len() != k {
            return Err(CodeError::DatawordLength {
                got: data.len(),
                expected: k,
            });
        }
        if let Some(idx) = data.iter().position(|&s| s > 1) {
            return Err(CodeError::SymbolOutOfRange {
                index: idx,
                value: data[idx] as u32,
            });
        }
        let word = (0..n)
            .map(|p| {
                let mut bit = data[0];
                for i in 0..self.r as usize {
                    bit ^= data[i + 1] & ((p >> i) & 1) as Symbol;
                }
                bit
            })
            .collect();
        Ok(word)
    }

    /// Reed's majority-logic decoder with erasure exclusion.
    ///
    /// Each linear coefficient `a_i` is the majority over the
    /// `2^(r−1)` disjoint vote pairs `w[p] ⊕ w[p ⊕ 2^(i−1)]`; votes
    /// touching an erased position are excluded, which keeps the
    /// majority correct whenever `e + 2t ≤ d − 1`. The constant `a0` is
    /// the majority of the word with the linear part stripped. Ties and
    /// claims beyond the bounded-distance budget are detected failures.
    fn decode(&self, word: &[Symbol], erasures: &[usize]) -> Result<DecodeOutcome, CodeError> {
        let mut span = rsmem_obs::span("code.rm", "decode");
        span.record("erasures", erasures.len() as u64);
        let result = self.majority_decode(word, erasures);
        if let Ok(outcome) = &result {
            crate::metrics::record_outcome("rm", outcome);
            crate::metrics::record_decode_event("code.rm", "majority-logic", outcome);
        }
        result
    }

    fn data_of<'w>(&self, word: &'w [Symbol]) -> Result<Cow<'w, [Symbol]>, CodeError> {
        self.check_word(word)?;
        // Not systematic: recover the coefficients from noiseless
        // evaluations. a_i = w[2^(i−1)] ⊕ w[0], a0 = w[0].
        let mut data = vec![0 as Symbol; self.params.k()];
        data[0] = word[0];
        for i in 0..self.r as usize {
            data[i + 1] = word[1 << i] ^ word[0];
        }
        Ok(Cow::Owned(data))
    }

    fn complexity_model(&self) -> ComplexityRow {
        let (n, k) = (self.params.n(), self.params.k());
        // Latency: r info-bit majorities of n/2 vote XORs each, plus one
        // final pass over n cells for the constant term. Area: one
        // XOR/majority cell per codeword bit — no field arithmetic.
        ComplexityRow {
            label: self.params.to_string(),
            family: "rm".to_owned(),
            n,
            k,
            decode_cycles: (self.r as u64) * (n as u64 / 2) + n as u64,
            area_units: n as u64,
            redundant_symbols: n - k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_datawords(k: usize) -> impl Iterator<Item = Vec<Symbol>> {
        (0..1u32 << k).map(move |bits| (0..k).map(|i| ((bits >> i) & 1) as Symbol).collect())
    }

    #[test]
    fn rm13_corrects_every_single_error() {
        let code = ReedMuller::new(3).unwrap();
        for data in all_datawords(4) {
            let word = code.encode(&data).unwrap();
            for p in 0..8 {
                let mut corrupted = word.clone();
                corrupted[p] ^= 1;
                match code.decode(&corrupted, &[]).unwrap() {
                    DecodeOutcome::Corrected {
                        data: got,
                        codeword,
                        corrections,
                    } => {
                        assert_eq!(got, data);
                        assert_eq!(codeword, word);
                        assert_eq!(corrections.len(), 1);
                        assert_eq!(corrections[0].position, p);
                    }
                    other => panic!("expected correction, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn all_ones_is_a_codeword() {
        let code = ReedMuller::new(4).unwrap();
        let mut data = vec![0; 5];
        data[0] = 1;
        assert_eq!(code.encode(&data).unwrap(), vec![1; 16]);
    }

    #[test]
    fn stuck_at_masking_round_trips() {
        let code = ReedMuller::new(4).unwrap();
        let data = vec![1, 0, 1, 1, 0];
        for stuck_pos in 0..16 {
            for stuck_val in [0, 1] {
                let (word, complemented) =
                    code.encode_for_stuck(&data, stuck_pos, stuck_val).unwrap();
                // The stuck cell already holds its forced value: the
                // permanent fault costs nothing.
                assert_eq!(word[stuck_pos], stuck_val);
                let mut got = match code.decode(&word, &[]).unwrap() {
                    DecodeOutcome::Clean { data } => data,
                    other => panic!("masked word should be clean, got {other:?}"),
                };
                code.unmask_data(&mut got, complemented);
                assert_eq!(got, data);
            }
        }
    }

    #[test]
    fn erasures_and_errors_within_budget_correct() {
        // RM(1,4): budget 7 → 2 erasures + 2 errors (2 + 4 = 6) must
        // decode exactly.
        let code = ReedMuller::new(4).unwrap();
        let data = vec![0, 1, 1, 0, 1];
        let word = code.encode(&data).unwrap();
        let mut corrupted = word.clone();
        corrupted[3] ^= 1;
        corrupted[9] ^= 1;
        corrupted[12] ^= 1; // erased + wrong
        let outcome = code.decode(&corrupted, &[12, 14]).unwrap();
        match outcome {
            DecodeOutcome::Corrected { data: got, .. } => assert_eq!(got, data),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn too_many_erasures_detected() {
        let code = ReedMuller::new(3).unwrap();
        let word = code.encode(&[0, 0, 0, 0]).unwrap();
        let outcome = code.decode(&word, &[0, 1, 2, 3]).unwrap();
        assert!(matches!(
            outcome,
            DecodeOutcome::Failure(DecodeFailure::TooManyErasures { .. })
        ));
    }

    #[test]
    fn malformed_input_is_an_error() {
        let code = ReedMuller::new(3).unwrap();
        assert!(code.encode(&[0, 1]).is_err());
        assert!(code.encode(&[2, 0, 0, 0]).is_err());
        assert!(code.decode(&[0; 7], &[]).is_err());
        assert!(code.decode(&[0; 8], &[8]).is_err());
        assert!(code.decode(&[0; 8], &[1, 1]).is_err());
        assert!(code.decode(&[3, 0, 0, 0, 0, 0, 0, 0], &[]).is_err());
    }

    #[test]
    fn data_of_inverts_encode() {
        let code = ReedMuller::new(4).unwrap();
        for data in all_datawords(5) {
            let word = code.encode(&data).unwrap();
            assert_eq!(code.data_of(&word).unwrap().into_owned(), data);
        }
    }
}
