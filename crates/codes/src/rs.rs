//! [`MemoryCode`] adapter over the paper's `rsmem_code::RsCode`.

use crate::MemoryCode;
use rsmem_code::complexity::{area_units, decode_cycles, ComplexityRow};
use rsmem_code::{
    BatchDecoder, BatchOutcome, CodeError, DecodeOpts, DecodeOutcome, RsCode, Symbol,
};
use rsmem_models::CodeParams;
use std::borrow::Cow;

/// The Reed–Solomon family behind the [`MemoryCode`] trait.
///
/// A thin wrapper: every method forwards to the wrapped [`RsCode`], so
/// outcomes are bit-identical to calling it directly — including the
/// batch path, which builds the same fresh [`BatchDecoder`] per call
/// that the MC shard loop always has.
#[derive(Debug, Clone)]
pub struct RsAdapter {
    inner: RsCode,
    params: CodeParams,
}

impl RsAdapter {
    /// Builds the adapter over a fresh `RsCode`.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] for an invalid RS geometry.
    pub fn new(n: usize, k: usize, m: u32) -> Result<Self, CodeError> {
        let inner = RsCode::new(n, k, m)?;
        let params = CodeParams::new(n, k, m).map_err(|_| CodeError::InvalidParameters {
            n,
            k,
            m,
            reason: "parameters rejected by the model layer",
        })?;
        Ok(RsAdapter { inner, params })
    }

    /// Wraps an existing `RsCode`.
    pub fn from_code(inner: RsCode) -> Self {
        let params = CodeParams::new(inner.n(), inner.k(), inner.symbol_bits())
            .expect("a constructed RsCode has valid parameters");
        RsAdapter { inner, params }
    }

    /// The wrapped concrete code.
    pub fn inner(&self) -> &RsCode {
        &self.inner
    }
}

impl MemoryCode for RsAdapter {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn encode(&self, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError> {
        self.inner.encode(data)
    }

    fn decode(&self, word: &[Symbol], erasures: &[usize]) -> Result<DecodeOutcome, CodeError> {
        // Recorder events and solver metrics come from `decode_word`
        // inside `RsCode`; the trait layer only adds the family label.
        let result = self.inner.decode(word, erasures);
        if let Ok(outcome) = &result {
            crate::metrics::record_outcome("rs", outcome);
        }
        result
    }

    fn data_of<'w>(&self, word: &'w [Symbol]) -> Result<Cow<'w, [Symbol]>, CodeError> {
        self.inner.data_of(word).map(Cow::Borrowed)
    }

    fn decode_batch(
        &self,
        words: &mut [Vec<Symbol>],
        erasures: &[Vec<usize>],
        out: &mut Vec<BatchOutcome>,
    ) -> Result<(), CodeError> {
        BatchDecoder::new().decode_batch(
            &self.inner,
            words,
            erasures,
            &DecodeOpts::default(),
            out,
        )?;
        crate::metrics::record_batch("rs", out);
        Ok(())
    }

    fn complexity_model(&self) -> ComplexityRow {
        let (n, k, m) = (self.inner.n(), self.inner.k(), self.inner.symbol_bits());
        ComplexityRow {
            label: self.params.to_string(),
            family: "rs".to_owned(),
            n,
            k,
            decode_cycles: decode_cycles(n, k),
            area_units: area_units(m, n, k),
            redundant_symbols: n - k,
        }
    }
}

/// `RsCode` itself speaks [`MemoryCode`], so call sites that already
/// hold a concrete code (the stress harness, hand-written tests) can use
/// the generic entry points without wrapping. Semantically identical to
/// [`RsAdapter`]; the adapter additionally caches its [`CodeParams`].
impl MemoryCode for RsCode {
    fn params(&self) -> CodeParams {
        CodeParams::new(self.n(), self.k(), self.symbol_bits())
            .expect("a constructed RsCode has valid parameters")
    }

    fn encode(&self, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError> {
        RsCode::encode(self, data)
    }

    fn decode(&self, word: &[Symbol], erasures: &[usize]) -> Result<DecodeOutcome, CodeError> {
        let result = RsCode::decode(self, word, erasures);
        if let Ok(outcome) = &result {
            crate::metrics::record_outcome("rs", outcome);
        }
        result
    }

    fn data_of<'w>(&self, word: &'w [Symbol]) -> Result<Cow<'w, [Symbol]>, CodeError> {
        RsCode::data_of(self, word).map(Cow::Borrowed)
    }

    fn decode_batch(
        &self,
        words: &mut [Vec<Symbol>],
        erasures: &[Vec<usize>],
        out: &mut Vec<BatchOutcome>,
    ) -> Result<(), CodeError> {
        BatchDecoder::new().decode_batch(self, words, erasures, &DecodeOpts::default(), out)?;
        crate::metrics::record_batch("rs", out);
        Ok(())
    }

    fn complexity_model(&self) -> ComplexityRow {
        RsAdapter::from_code(self.clone()).complexity_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_forwards_encode_decode() {
        let adapter = RsAdapter::new(18, 16, 8).unwrap();
        let concrete = RsCode::new(18, 16, 8).unwrap();
        let data: Vec<Symbol> = (0..16).map(|i| (i * 7 + 3) as Symbol).collect();
        let word = adapter.encode(&data).unwrap();
        assert_eq!(word, concrete.encode(&data).unwrap());
        let mut corrupted = word.clone();
        corrupted[5] ^= 0x2a;
        assert_eq!(
            adapter.decode(&corrupted, &[]).unwrap(),
            concrete.decode(&corrupted, &[]).unwrap()
        );
        assert_eq!(
            adapter.data_of(&word).unwrap().as_ref(),
            concrete.data_of(&word).unwrap()
        );
        assert!(matches!(adapter.data_of(&word).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn complexity_row_matches_paper_model() {
        let row = RsAdapter::new(18, 16, 8).unwrap().complexity_model();
        assert_eq!(row.decode_cycles, 74);
        assert_eq!(row.area_units, 16);
        assert_eq!(row.family, "rs");
    }
}
