//! Snapshot coverage for the family-labelled decode-outcome series.
//!
//! A single `#[test]` in its own binary: the global metrics registry is
//! process-wide, so ordering matters — first prove that raw `RsCode`
//! usage leaves the exposition byte-stable (no family series appears),
//! then prove the trait layer creates exactly the `family="rs"` series.

use rsmem_code::RsCode;
use rsmem_codes::{build, MemoryCode, RsAdapter};
use rsmem_models::CodeParams;
use rsmem_obs::metrics::global;

/// The series keys (everything before the value) of one rendered
/// exposition, so value churn does not hide series-set changes.
fn series_keys(text: &str) -> Vec<String> {
    text.lines()
        .map(|line| match line.rsplit_once(' ') {
            Some((key, _)) if !line.starts_with('#') => key.to_owned(),
            _ => line.to_owned(),
        })
        .collect()
}

#[test]
fn family_series_appear_only_at_the_trait_layer() {
    let code = RsCode::new(18, 16, 8).unwrap();
    let data: Vec<u16> = (0..16).map(|i| (i * 7 + 3) as u16).collect();
    let word = code.encode(&data).unwrap();

    // Raw solver-layer decodes: the paper pipeline's direct path.
    let mut corrupted = word.clone();
    corrupted[5] ^= 0x40;
    RsCode::decode(&code, &corrupted, &[]).unwrap();
    let before = global().render();

    // More raw decodes must not grow the exposition — RS-only output
    // stays byte-stable in its series set, and no family label exists.
    RsCode::decode(&code, &word, &[]).unwrap();
    RsCode::decode(&code, &corrupted, &[5]).unwrap();
    let after = global().render();
    assert!(
        !before.contains("rsmem_decode_outcomes_total"),
        "raw RsCode decode must not create family-labelled series:\n{before}"
    );
    assert_eq!(
        series_keys(&before),
        series_keys(&after),
        "raw decodes changed the exposition's series set"
    );

    // The trait layer adds the family label, for both entry points.
    let adapter = RsAdapter::from_code(code.clone());
    adapter.decode(&corrupted, &[]).unwrap();
    let text = global().render();
    assert!(text.contains("# TYPE rsmem_decode_outcomes_total counter"));
    assert!(text.contains("rsmem_decode_outcomes_total{family=\"rs\",outcome=\"corrected\"} 1"));
    assert!(text.contains("rsmem_decode_outcomes_total{family=\"rs\",outcome=\"clean\"} 0"));

    MemoryCode::decode(&code, &word, &[]).unwrap();
    assert!(global()
        .render()
        .contains("rsmem_decode_outcomes_total{family=\"rs\",outcome=\"clean\"} 1"));

    // Batch decodes settle the same series in one pass.
    let mut words = vec![word.clone(), corrupted.clone(), word.clone()];
    let erasures = vec![Vec::new(); 3];
    let mut out = Vec::new();
    adapter
        .decode_batch(&mut words, &erasures, &mut out)
        .unwrap();
    let text = global().render();
    assert!(text.contains("rsmem_decode_outcomes_total{family=\"rs\",outcome=\"clean\"} 3"));
    assert!(text.contains("rsmem_decode_outcomes_total{family=\"rs\",outcome=\"corrected\"} 2"));

    // And the other families label their own series.
    let rm = build(CodeParams::rm1(4).unwrap()).unwrap();
    let rm_word = rm.encode(&[1, 0, 1, 1, 0]).unwrap();
    rm.decode(&rm_word, &[]).unwrap();
    let irs = build(CodeParams::interleaved(18, 16, 8, 2).unwrap()).unwrap();
    let irs_data: Vec<u16> = (0..32).collect();
    let irs_word = irs.encode(&irs_data).unwrap();
    irs.decode(&irs_word, &[]).unwrap();
    let text = global().render();
    assert!(text.contains("rsmem_decode_outcomes_total{family=\"rm\",outcome=\"clean\"} 1"));
    assert!(text.contains("rsmem_decode_outcomes_total{family=\"irs\",outcome=\"clean\"} 1"));
}
