//! Exhaustive small-code and differential tests across the
//! [`MemoryCode`] families.
//!
//! Three classes of evidence:
//!
//! 1. RM(1,3)/RM(1,4) **full-codebook** checks: every dataword encodes
//!    to a distinct codeword at the design distance, round-trips, and
//!    every within-budget error/erasure pattern decodes exactly.
//! 2. Interleaved-RS **burst-vs-predicate**: bursts up to `max_burst`
//!    always correct; random patterns admitted by the capability
//!    predicate always correct.
//! 3. **Trait-object vs concrete** RS: on the pinned stress-corpus
//!    seeds, `Box<dyn MemoryCode>` decoding (scalar and batch) is
//!    bit-identical to calling `RsCode` directly.

use rand::{Rng, SeedableRng};
use rsmem_code::{BatchDecoder, BatchOutcome, DecodeOpts, DecodeOutcome, RsCode, Symbol};
use rsmem_codes::{build, InterleavedRs, MemoryCode, ReedMuller};
use rsmem_models::CodeParams;

/// The stress harness's pinned corpus seeds (crates/stress/tests).
const PINNED_SEEDS: [u64; 4] = [0xDA7E, 0xC0FFEE, 0x1234, 42];

fn all_datawords(k: usize) -> impl Iterator<Item = Vec<Symbol>> {
    (0..1u32 << k).map(move |bits| (0..k).map(|i| ((bits >> i) & 1) as Symbol).collect())
}

fn hamming(a: &[Symbol], b: &[Symbol]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[test]
fn rm_full_codebook_round_trip_and_distance() {
    for r in [3u32, 4] {
        let code = ReedMuller::new(r).unwrap();
        let (n, k, d) = (1usize << r, r as usize + 1, 1usize << (r - 1));
        let codebook: Vec<(Vec<Symbol>, Vec<Symbol>)> = all_datawords(k)
            .map(|data| {
                let word = code.encode(&data).unwrap();
                assert_eq!(word.len(), n);
                match code.decode(&word, &[]).unwrap() {
                    DecodeOutcome::Clean { data: got } => assert_eq!(got, data),
                    other => panic!("RM(1,{r}) codeword misread: {other:?}"),
                }
                (data, word)
            })
            .collect();
        assert_eq!(codebook.len(), 1 << k);
        // Pairwise minimum distance is exactly 2^(r−1).
        let mut min = n;
        for i in 0..codebook.len() {
            for j in i + 1..codebook.len() {
                min = min.min(hamming(&codebook[i].1, &codebook[j].1));
            }
        }
        assert_eq!(min, d, "RM(1,{r}) minimum distance");
    }
}

#[test]
fn rm13_every_pattern_within_budget_decodes_exactly() {
    // RM(1,3): n = 8, budget d−1 = 3. Exhaust every error mask and
    // erasure mask with er + 2·re ≤ 3 over every dataword.
    let code = ReedMuller::new(3).unwrap();
    for data in all_datawords(4) {
        let clean = code.encode(&data).unwrap();
        for emask in 0u32..256 {
            for fmask in 0u32..256 {
                if emask & fmask != 0 {
                    continue; // erasures and errors disjoint here
                }
                let erasures: Vec<usize> = (0..8).filter(|i| emask >> i & 1 == 1).collect();
                let flips: Vec<usize> = (0..8).filter(|i| fmask >> i & 1 == 1).collect();
                if erasures.len() + 2 * flips.len() > 3 {
                    continue;
                }
                let mut word = clean.clone();
                for &p in &flips {
                    word[p] ^= 1;
                }
                // Also corrupt half the erased cells: an erasure may or
                // may not hold the right value.
                for (i, &p) in erasures.iter().enumerate() {
                    if i % 2 == 0 {
                        word[p] ^= 1;
                    }
                }
                let outcome = code.decode(&word, &erasures).unwrap();
                let got = outcome
                    .data()
                    .unwrap_or_else(|| panic!("within-budget pattern detected: {outcome:?}"));
                assert_eq!(got, &data[..], "er={erasures:?} flips={flips:?}");
            }
        }
    }
}

#[test]
fn irs_burst_correction_matches_capability_predicate() {
    // Depth 3 over RS(15,9): t_inner = 3 → bursts up to 9; worst-case
    // random budget = inner redundancy 6.
    let code = InterleavedRs::new(15, 9, 4, 3).unwrap();
    let params = code.params();
    let data: Vec<Symbol> = (0..params.k())
        .map(|j| ((j * 5 + 1) % 16) as Symbol)
        .collect();
    let clean = code.encode(&data).unwrap();
    assert_eq!(code.max_burst(), 9);
    assert_eq!(params.max_burst(), 9);

    for b in 1..=code.max_burst() {
        for start in 0..params.n() - b {
            let mut word = clean.clone();
            for cell in &mut word[start..start + b] {
                *cell ^= 0x9;
            }
            let outcome = code.decode(&word, &[]).unwrap();
            let got = outcome
                .data()
                .unwrap_or_else(|| panic!("burst b={b} at {start} not corrected: {outcome:?}"));
            assert_eq!(got, &data[..], "burst b={b} at {start}");
        }
    }

    // Random (non-burst) patterns admitted by the predicate: place all
    // faults in one constituent — the worst case the guarantee covers.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1235_5EED);
    for _ in 0..200 {
        let er = rng.gen_range(0..4usize);
        let re_cap = (6 - er) / 2;
        let re = rng.gen_range(0..=re_cap);
        assert!(params.within_capability(er, re));
        let mut word = clean.clone();
        let mut erasures = Vec::new();
        // Constituent w holds physical positions {i·depth + w}.
        let w = rng.gen_range(0..3usize);
        let mut inner_positions: Vec<usize> = (0..15).collect();
        for i in (1..inner_positions.len()).rev() {
            inner_positions.swap(i, rng.gen_range(0..=i));
        }
        for (idx, &i) in inner_positions[..er + re].iter().enumerate() {
            let p = i * 3 + w;
            word[p] ^= 1 + rng.gen_range(0..15) as Symbol;
            if idx < er {
                erasures.push(p);
            }
        }
        let outcome = code.decode(&word, &erasures).unwrap();
        let got = outcome
            .data()
            .unwrap_or_else(|| panic!("admitted ({er},{re}) pattern failed: {outcome:?}"));
        assert_eq!(got, &data[..]);
    }
}

#[test]
fn rs_trait_object_bit_identical_on_pinned_seeds() {
    for &(n, k, m) in &[(18usize, 16usize, 8u32), (36, 16, 8), (15, 9, 4)] {
        let concrete = RsCode::new(n, k, m).unwrap();
        let boxed: Box<dyn MemoryCode> = build(CodeParams::new(n, k, m).unwrap()).unwrap();
        for &seed in &PINNED_SEEDS {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut words = Vec::new();
            let mut erasure_sets = Vec::new();
            for _ in 0..64 {
                let data: Vec<Symbol> = (0..k)
                    .map(|_| rng.gen_range(0..1u32 << m) as Symbol)
                    .collect();
                let mut word = concrete.encode(&data).unwrap();
                let faults = rng.gen_range(0..=(n - k) + 2);
                let mut erasures = Vec::new();
                for _ in 0..faults {
                    let p = rng.gen_range(0..n);
                    word[p] ^= 1 + rng.gen_range(0..(1u32 << m) - 1) as Symbol;
                    if rng.gen_range(0..2) == 0 && !erasures.contains(&p) {
                        erasures.push(p);
                    }
                }
                // Scalar path: identical outcome structs.
                assert_eq!(
                    boxed.decode(&word, &erasures).unwrap(),
                    concrete.decode(&word, &erasures).unwrap(),
                    "seed {seed:#x} RS({n},{k})"
                );
                words.push(word);
                erasure_sets.push(erasures);
            }
            // Batch path: identical outcomes AND identical in-place
            // corrections vs BatchDecoder on the concrete code.
            let mut trait_words = words.clone();
            let mut trait_out = Vec::new();
            boxed
                .decode_batch(&mut trait_words, &erasure_sets, &mut trait_out)
                .unwrap();
            let mut concrete_out = Vec::new();
            BatchDecoder::new()
                .decode_batch(
                    &concrete,
                    &mut words,
                    &erasure_sets,
                    &DecodeOpts::default(),
                    &mut concrete_out,
                )
                .unwrap();
            assert_eq!(trait_out, concrete_out, "seed {seed:#x} RS({n},{k}) batch");
            assert_eq!(trait_words, words, "seed {seed:#x} RS({n},{k}) in-place");
        }
    }
}

#[test]
fn every_family_rejects_claims_beyond_capability() {
    // Flood each code with more corruption than its budget: no Clean
    // outcome may report the wrong data.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    for params in [
        CodeParams::rs18_16(),
        CodeParams::rm1(4).unwrap(),
        CodeParams::interleaved(18, 16, 8, 2).unwrap(),
    ] {
        let code = build(params).unwrap();
        let size = 1u32 << params.m();
        let data: Vec<Symbol> = (0..params.k())
            .map(|_| rng.gen_range(0..size) as Symbol)
            .collect();
        let clean = code.encode(&data).unwrap();
        for _ in 0..100 {
            let mut word = clean.clone();
            let faults = params.capability().budget + 1 + rng.gen_range(0..3usize);
            for _ in 0..faults.min(params.n()) {
                let p = rng.gen_range(0..params.n());
                word[p] ^= 1 + rng.gen_range(0..size - 1) as Symbol;
            }
            if word == clean {
                continue;
            }
            if let DecodeOutcome::Clean { data: got } = code.decode(&word, &[]).unwrap() {
                assert_eq!(got, data, "corrupted word reported clean with wrong data");
            }
        }
    }
}

#[test]
fn batch_outcomes_match_scalar_for_every_family() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED_CAFE);
    for params in [
        CodeParams::rs36_16(),
        CodeParams::rm1(5).unwrap(),
        CodeParams::interleaved(15, 9, 4, 3).unwrap(),
    ] {
        let code = build(params).unwrap();
        let size = 1u32 << params.m();
        let mut words = Vec::new();
        let mut erasure_sets = Vec::new();
        let mut scalar = Vec::new();
        for _ in 0..48 {
            let data: Vec<Symbol> = (0..params.k())
                .map(|_| rng.gen_range(0..size) as Symbol)
                .collect();
            let mut word = code.encode(&data).unwrap();
            for _ in 0..rng.gen_range(0..4usize) {
                word[rng.gen_range(0..params.n())] ^= 1 + rng.gen_range(0..size - 1) as Symbol;
            }
            scalar.push(code.decode(&word, &[]).unwrap());
            words.push(word);
            erasure_sets.push(Vec::new());
        }
        let mut out = Vec::new();
        code.decode_batch(&mut words, &erasure_sets, &mut out)
            .unwrap();
        for (i, (batch, scalar)) in out.iter().zip(&scalar).enumerate() {
            let matches = matches!(
                (batch, scalar),
                (BatchOutcome::Clean, DecodeOutcome::Clean { .. })
                    | (
                        BatchOutcome::Corrected { .. },
                        DecodeOutcome::Corrected { .. }
                    )
                    | (BatchOutcome::Failure(_), DecodeOutcome::Failure(_))
            );
            assert!(matches, "{params}: word {i}: {batch:?} vs {scalar:?}");
            if let DecodeOutcome::Corrected { codeword, .. } = scalar {
                assert_eq!(&words[i], codeword, "{params}: word {i} in-place repair");
            }
        }
    }
}
