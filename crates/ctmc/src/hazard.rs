//! Instantaneous failure (hazard) rates.
//!
//! The hazard toward an absorbing state `F` at time `t` is the current
//! probability inflow, `h(t) = Σ_i p_i(t)·q_{iF}` — the derivative of the
//! absorption probability. For the scrubbed memory chains of the paper's
//! Fig. 7 the hazard settles to a constant within a few scrub periods,
//! which is why those BER curves turn linear; this module computes the
//! quantity directly so that claim can be asserted instead of eyeballed.

use crate::model::StateSpace;
use crate::uniformization::{transient, UniformizationOptions};
use crate::CtmcError;
use std::fmt::Debug;
use std::hash::Hash;

/// The probability inflow into `target` at time `t` (per unit time).
///
/// # Errors
///
/// Propagates solver errors; [`CtmcError::DimensionMismatch`] if
/// `target` is out of range.
pub fn absorption_hazard<S>(
    space: &StateSpace<S>,
    target: usize,
    t: f64,
    opts: &UniformizationOptions,
) -> Result<f64, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    if target >= space.len() {
        return Err(CtmcError::DimensionMismatch {
            got: target,
            expected: space.len(),
        });
    }
    let p = transient(space, t, opts)?;
    Ok(inflow(space, &p, target))
}

/// The inflow into `target` under an explicit distribution.
pub fn inflow<S>(space: &StateSpace<S>, p: &[f64], target: usize) -> f64
where
    S: Clone + Eq + Hash + Debug,
{
    let mut h = 0.0;
    for (i, &pi) in p.iter().enumerate().take(space.len()) {
        if pi == 0.0 || i == target {
            continue;
        }
        for (j, rate) in space.rates().row(i) {
            if j == target {
                h += pi * rate;
            }
        }
    }
    h
}

/// The long-run (quasi-steady) hazard: the inflow under the
/// quasi-stationary distribution approximated by solving at a time `t`
/// large enough for the transient to settle but small enough that the
/// absorbing state has absorbed negligible mass.
///
/// # Errors
///
/// See [`absorption_hazard`].
pub fn quasi_steady_hazard<S>(
    space: &StateSpace<S>,
    target: usize,
    settle_time: f64,
    opts: &UniformizationOptions,
) -> Result<f64, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    absorption_hazard(space, target, settle_time, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarkovModel;

    struct TwoState {
        lambda: f64,
    }
    impl MarkovModel for TwoState {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((1, self.lambda));
            }
        }
    }

    #[test]
    fn exponential_hazard_is_lambda_times_survival() {
        // h(t) = λ·e^{−λt} for the two-state chain.
        let lam = 0.3;
        let space = StateSpace::explore(&TwoState { lambda: lam }).unwrap();
        let opts = UniformizationOptions::default();
        for &t in &[0.0, 1.0, 5.0] {
            let h = absorption_hazard(&space, 1, t, &opts).unwrap();
            let expect = lam * (-lam * t).exp();
            assert!((h - expect).abs() < 1e-12, "t={t}: {h} vs {expect}");
        }
    }

    #[test]
    fn hazard_is_derivative_of_absorption() {
        let space = StateSpace::explore(&TwoState { lambda: 0.7 }).unwrap();
        let opts = UniformizationOptions::default();
        let (t, dt) = (2.0, 1e-6);
        let p1 = transient(&space, t, &opts).unwrap()[1];
        let p2 = transient(&space, t + dt, &opts).unwrap()[1];
        let h = absorption_hazard(&space, 1, t, &opts).unwrap();
        let numeric = (p2 - p1) / dt;
        assert!((h - numeric).abs() < 1e-5, "{h} vs {numeric}");
    }

    #[test]
    fn out_of_range_target_rejected() {
        let space = StateSpace::explore(&TwoState { lambda: 1.0 }).unwrap();
        assert!(absorption_hazard(&space, 9, 1.0, &Default::default()).is_err());
    }

    #[test]
    fn inflow_under_point_mass_is_the_direct_rate() {
        let space = StateSpace::explore(&TwoState { lambda: 0.4 }).unwrap();
        let mut p = vec![0.0; 2];
        p[0] = 1.0;
        assert!((inflow(&space, &p, 1) - 0.4).abs() < 1e-15);
        p[0] = 0.25;
        assert!((inflow(&space, &p, 1) - 0.1).abs() < 1e-15);
    }
}
