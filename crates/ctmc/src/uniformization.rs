//! Transient CTMC solution by uniformization (Jensen's method).
//!
//! The transient distribution is expanded as
//!
//! ```text
//! p(t) = Σ_n Poisson(n; Λt) · p(0)·Pⁿ,      P = I + Q/Λ,  Λ ≥ max exit rate
//! ```
//!
//! Every quantity in the iteration is **non-negative**, so there is no
//! cancellation and each component of `p(t)` is computed with full
//! floating-point *relative* accuracy down to the denormal floor. This is
//! the property that lets the paper's Figures 8–10 (fail probabilities of
//! 1e-30 … 1e-200) come out of a plain f64 solver.
//!
//! The power sequence `p(0)·Pⁿ` does not depend on `t`, so a whole time
//! grid is evaluated in one pass ([`transient_grid`]).

use crate::model::StateSpace;
use crate::poisson::poisson_ln_pmf;
use crate::CtmcError;
use std::fmt::Debug;
use std::hash::Hash;

/// Options for the uniformization solver.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformizationOptions {
    /// Target per-component relative truncation error (default `1e-12`).
    pub rel_tol: f64,
    /// Hard cap on the number of series terms (default `5_000_000`).
    pub max_terms: usize,
}

impl Default for UniformizationOptions {
    fn default() -> Self {
        UniformizationOptions {
            rel_tol: 1e-12,
            max_terms: 5_000_000,
        }
    }
}

/// Computes `p(t)` from the point-mass initial distribution.
///
/// # Errors
///
/// [`CtmcError::InvalidTime`] for negative/non-finite `t`;
/// [`CtmcError::NotConverged`] if `max_terms` is exhausted.
pub fn transient<S>(
    space: &StateSpace<S>,
    t: f64,
    opts: &UniformizationOptions,
) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let p0 = space.initial_distribution();
    transient_from(space, &p0, t, opts)
}

/// Computes `p(t)` from an arbitrary initial distribution.
///
/// # Errors
///
/// As [`transient`], plus [`CtmcError::DimensionMismatch`].
pub fn transient_from<S>(
    space: &StateSpace<S>,
    p0: &[f64],
    t: f64,
    opts: &UniformizationOptions,
) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let mut grid = transient_grid_from(space, p0, &[t], opts)?;
    Ok(grid.pop().expect("one time point"))
}

/// Computes `p(t)` for every `t` in `times` in a single pass over the
/// uniformized power sequence (one sparse mat-vec per term, shared across
/// the whole grid).
///
/// # Errors
///
/// See [`transient`].
pub fn transient_grid<S>(
    space: &StateSpace<S>,
    times: &[f64],
    opts: &UniformizationOptions,
) -> Result<Vec<Vec<f64>>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let p0 = space.initial_distribution();
    transient_grid_from(space, &p0, times, opts)
}

/// [`transient_grid`] from an arbitrary initial distribution.
///
/// # Errors
///
/// See [`transient`].
pub fn transient_grid_from<S>(
    space: &StateSpace<S>,
    p0: &[f64],
    times: &[f64],
    opts: &UniformizationOptions,
) -> Result<Vec<Vec<f64>>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let n_states = space.len();
    if p0.len() != n_states {
        return Err(CtmcError::DimensionMismatch {
            got: p0.len(),
            expected: n_states,
        });
    }
    for &t in times {
        if !(t.is_finite() && t >= 0.0) {
            return Err(CtmcError::InvalidTime { time: t });
        }
    }

    let lambda = space.max_exit_rate();
    if lambda == 0.0 || times.iter().all(|&t| t == 0.0) {
        // No dynamics (or only t=0 requested where applicable).
        return Ok(times
            .iter()
            .map(|&t| {
                if t == 0.0 || lambda == 0.0 {
                    p0.to_vec()
                } else {
                    p0.to_vec()
                }
            })
            .collect());
    }

    let means: Vec<f64> = times.iter().map(|&t| lambda * t).collect();
    let max_mean = means.iter().fold(0.0f64, |a, &b| a.max(b));

    let mut v = p0.to_vec();
    let mut acc: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n_states]).collect();
    let mut converged: Vec<bool> = means.iter().map(|&m| m == 0.0).collect();
    // For the m == 0 (t == 0) entries the answer is p0 itself.
    for (k, &m) in means.iter().enumerate() {
        if m == 0.0 {
            acc[k] = p0.to_vec();
        }
    }
    let mut streak: Vec<u32> = vec![0; times.len()];
    let rates = space.rates();

    // Minimum terms before convergence tests: past the Poisson mode and
    // past the state count (so reachability has settled).
    let n_min = (max_mean.ceil() as usize).max(n_states.min(10_000));

    for n in 0..opts.max_terms {
        let mut all_done = true;
        for k in 0..times.len() {
            if converged[k] {
                continue;
            }
            all_done = false;
            let w = poisson_ln_pmf(n as u64, means[k]).exp();
            let mut small = true;
            if w > 0.0 {
                for j in 0..n_states {
                    let delta = w * v[j];
                    acc[k][j] += delta;
                    if delta > opts.rel_tol * acc[k][j] {
                        small = false;
                    }
                }
            }
            if n >= n_min && (n as f64) > means[k] {
                if small {
                    streak[k] += 1;
                    if streak[k] >= 3 {
                        converged[k] = true;
                    }
                } else {
                    streak[k] = 0;
                }
            }
        }
        if all_done {
            return Ok(acc);
        }
        // v ← v·P = v + (v·R − v∘exit)/Λ, computed without cancellation:
        // v_next[j] = v[j]·(1 − exit_j/Λ) + Σ_i v[i]·r_ij/Λ.
        let mut next = vec![0.0; n_states];
        for j in 0..n_states {
            next[j] = v[j] * (1.0 - space.exit_rate(j) / lambda);
        }
        // Accumulate incoming flow scaled by 1/Λ.
        let mut inflow = vec![0.0; n_states];
        rates.acc_left_mul(&v, &mut inflow);
        for j in 0..n_states {
            next[j] += inflow[j] / lambda;
        }
        v = next;
    }
    Err(CtmcError::NotConverged {
        iterations: opts.max_terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarkovModel;

    /// Good --λ--> Fail.
    struct TwoState {
        lambda: f64,
    }
    impl MarkovModel for TwoState {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((1, self.lambda));
            }
        }
    }

    /// 0 --a--> 1 --b--> 2 (pure death chain).
    struct ThreeChain {
        a: f64,
        b: f64,
    }
    impl MarkovModel for ThreeChain {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            match s {
                0 => out.push((1, self.a)),
                1 => out.push((2, self.b)),
                _ => {}
            }
        }
    }

    #[test]
    fn two_state_matches_closed_form() {
        let space = StateSpace::explore(&TwoState { lambda: 0.3 }).unwrap();
        let opts = UniformizationOptions::default();
        for &t in &[0.0, 0.1, 1.0, 10.0, 100.0] {
            let p = transient(&space, t, &opts).unwrap();
            let expect = 1.0 - (-0.3 * t).exp();
            assert!(
                (p[1] - expect).abs() <= 1e-12 * expect.max(1e-300) + 1e-15,
                "t={t}: {} vs {expect}",
                p[1]
            );
        }
    }

    #[test]
    fn tiny_rates_retain_relative_accuracy() {
        // λ = 1e-30, t = 1: P_fail ≈ 1e-30 with relative error ~1e-12.
        let space = StateSpace::explore(&TwoState { lambda: 1e-30 }).unwrap();
        let p = transient(&space, 1.0, &UniformizationOptions::default()).unwrap();
        let expect = 1e-30; // 1 − e^{−x} ≈ x
        let rel = (p[1] - expect).abs() / expect;
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn extremely_small_probabilities_do_not_flush_to_zero() {
        // Two sequential rare events: P(state 2 at t) ≈ (λt)²/2 = 5e-101.
        let space = StateSpace::explore(&ThreeChain { a: 1e-50, b: 1e-50 }).unwrap();
        let p = transient(&space, 1.0, &UniformizationOptions::default()).unwrap();
        let expect = 0.5e-100;
        assert!(p[2] > 0.0);
        let rel = (p[2] - expect).abs() / expect;
        assert!(rel < 1e-6, "p={} expect={expect} rel={rel}", p[2]);
    }

    #[test]
    fn three_chain_matches_bateman_solution() {
        // Bateman: P2(t) = 1 − (b·e^{−at} − a·e^{−bt})/(b − a).
        let (a, b) = (0.7, 0.2);
        let space = StateSpace::explore(&ThreeChain { a, b }).unwrap();
        let p = transient(&space, 3.0, &UniformizationOptions::default()).unwrap();
        let t = 3.0;
        let p1 = a / (a - b) * ((-b * t).exp() - (-a * t).exp());
        let p2 = 1.0 - ((b * (-a * t).exp() - a * (-b * t).exp()) / (b - a));
        assert!((p[1] - p1).abs() < 1e-10, "{} vs {p1}", p[1]);
        assert!((p[2] - p2).abs() < 1e-10, "{} vs {p2}", p[2]);
    }

    #[test]
    fn distribution_stays_normalized() {
        let space = StateSpace::explore(&ThreeChain { a: 2.0, b: 5.0 }).unwrap();
        for &t in &[0.01, 0.5, 2.0, 20.0] {
            let p = transient(&space, t, &UniformizationOptions::default()).unwrap();
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "t={t} total={total}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn grid_matches_pointwise_solves() {
        let space = StateSpace::explore(&ThreeChain { a: 1.0, b: 0.5 }).unwrap();
        let opts = UniformizationOptions::default();
        let times = [0.0, 0.3, 1.7, 6.0];
        let grid = transient_grid(&space, &times, &opts).unwrap();
        for (k, &t) in times.iter().enumerate() {
            let single = transient(&space, t, &opts).unwrap();
            for j in 0..space.len() {
                assert!(
                    (grid[k][j] - single[j]).abs() < 1e-12,
                    "t={t} j={j}: {} vs {}",
                    grid[k][j],
                    single[j]
                );
            }
        }
    }

    #[test]
    fn zero_time_returns_initial_distribution() {
        let space = StateSpace::explore(&TwoState { lambda: 1.0 }).unwrap();
        let p = transient(&space, 0.0, &UniformizationOptions::default()).unwrap();
        assert_eq!(p, vec![1.0, 0.0]);
    }

    #[test]
    fn invalid_time_rejected() {
        let space = StateSpace::explore(&TwoState { lambda: 1.0 }).unwrap();
        let opts = UniformizationOptions::default();
        assert!(matches!(
            transient(&space, -1.0, &opts),
            Err(CtmcError::InvalidTime { .. })
        ));
        assert!(matches!(
            transient(&space, f64::NAN, &opts),
            Err(CtmcError::InvalidTime { .. })
        ));
    }

    #[test]
    fn large_uniformization_mean_is_handled() {
        // Λt = 1000: early Poisson weights underflow; result stays exact.
        let space = StateSpace::explore(&TwoState { lambda: 10.0 }).unwrap();
        let p = transient(&space, 100.0, &UniformizationOptions::default()).unwrap();
        // ~1200 Poisson terms each carrying ~1e-11 relative log-gamma
        // rounding: expect ~1e-10 absolute accuracy here.
        assert!((p[1] - 1.0).abs() < 1e-9, "p1={}", p[1]);
        assert!(p[0] >= 0.0);
    }
}
