//! Transient CTMC solution by uniformization (Jensen's method).
//!
//! The transient distribution is expanded as
//!
//! ```text
//! p(t) = Σ_n Poisson(n; Λt) · p(0)·Pⁿ,      P = I + Q/Λ,  Λ ≥ max exit rate
//! ```
//!
//! Every quantity in the iteration is **non-negative**, so there is no
//! cancellation and each component of `p(t)` is computed with full
//! floating-point *relative* accuracy down to the denormal floor. This is
//! the property that lets the paper's Figures 8–10 (fail probabilities of
//! 1e-30 … 1e-200) come out of a plain f64 solver.
//!
//! The power sequence `p(0)·Pⁿ` does not depend on `t`, so a whole time
//! grid is evaluated in one pass ([`transient_grid`]).
//!
//! # Performance
//!
//! The solver is engineered around three hot-path properties:
//!
//! 1. **Allocation-free iteration.** All per-term scratch lives in a
//!    reusable [`UniformizationWorkspace`]; a grid solve's heap traffic
//!    is independent of the number of Poisson terms (only the returned
//!    distributions are allocated). Sweeps solving many grids pass one
//!    workspace to [`transient_grid_with`] and reuse its buffers.
//! 2. **Recurrent Poisson weights.** Weights advance by
//!    `ln w_{n+1} = ln w_n + ln(Λt) − ln(n+1)` — one `exp` per active
//!    term instead of a full log-gamma evaluation — and are resynced
//!    against [`poisson_ln_pmf`] every [`LN_W_RESYNC`] terms so rounding
//!    drift stays far below the truncation tolerance.
//! 3. **Gather-form mat-vec.** `v·P` uses the state space's cached
//!    transposed rate matrix ([`StateSpace::rates_transposed`]): each
//!    output component is one sequential gather, fused with the diagonal
//!    term in a single pass (no scattered writes, no inflow buffer).

use crate::model::StateSpace;
use crate::poisson::poisson_ln_pmf;
use crate::CtmcError;
use rsmem_obs::metrics::{global, Counter, Histogram};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::OnceLock;

/// Terms between exact recomputations of the recurrent log-weights.
const LN_W_RESYNC: usize = 64;

/// Bucket bounds for the per-time-point series-length histogram: the
/// truncation point grows with Λt, so powers of four cover everything
/// from a trivial two-state solve to a 1M-term deep-grid run.
const TERMS_BUCKETS: &[u64] = &[16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1_048_576];

/// Cached handles into the global metrics registry, resolved once so
/// the solver's bookkeeping is plain atomic adds (no registry lock and
/// no allocation on the hot path — the crate's `alloc_count` test
/// covers an instrumented solve).
struct SolverMetrics {
    solves: Counter,
    terms: Histogram,
    skipped_terms: Counter,
    workspace_reuses: Counter,
    reallocs: Counter,
}

fn solver_metrics() -> &'static SolverMetrics {
    static METRICS: OnceLock<SolverMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = global();
        SolverMetrics {
            solves: registry.counter("rsmem_solver_uniformization_solves_total", &[]),
            terms: registry.histogram("rsmem_solver_uniformization_terms", &[], TERMS_BUCKETS),
            skipped_terms: registry.counter("rsmem_solver_uniformization_skipped_terms_total", &[]),
            workspace_reuses: registry
                .counter("rsmem_solver_uniformization_workspace_reuses_total", &[]),
            reallocs: registry.counter("rsmem_solver_uniformization_reallocs_total", &[]),
        }
    })
}

/// Eagerly registers the uniformization metric families in the global
/// registry so a `/metrics` scrape sees them (zero-valued) before the
/// first solve runs.
pub fn register_metrics() {
    let _ = solver_metrics();
}

/// Options for the uniformization solver.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformizationOptions {
    /// Target per-component relative truncation error (default `1e-12`).
    pub rel_tol: f64,
    /// Hard cap on the number of series terms (default `5_000_000`).
    pub max_terms: usize,
}

impl Default for UniformizationOptions {
    fn default() -> Self {
        UniformizationOptions {
            rel_tol: 1e-12,
            max_terms: 5_000_000,
        }
    }
}

/// Reusable scratch for the uniformization iteration: the double-buffered
/// power-sequence vectors plus per-time-point bookkeeping.
///
/// A workspace may be reused across solves of *different* chains and
/// grids; buffers are resized (never shrunk) on entry. Reuse makes a
/// sweep's allocation count independent of both the term count and the
/// number of grids solved.
#[derive(Debug, Clone, Default)]
pub struct UniformizationWorkspace {
    /// Current power-sequence vector `p(0)·Pⁿ`.
    v: Vec<f64>,
    /// Write buffer for `v·P`, swapped with `v` each term.
    next: Vec<f64>,
    /// Poisson mean `Λ·t` per time point.
    means: Vec<f64>,
    /// `ln(Λ·t)` per time point (the recurrence increment numerator).
    ln_mean: Vec<f64>,
    /// Recurrent `ln w_n` per time point.
    ln_w: Vec<f64>,
    /// Time points whose series has converged.
    converged: Vec<bool>,
    /// Consecutive below-tolerance terms per time point.
    streak: Vec<u32>,
}

impl UniformizationWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes and resets every buffer for a solve of `n_states` states
    /// over `n_times` time points. Returns whether any buffer had to
    /// grow — `false` means the solve runs entirely in reused capacity.
    fn prepare(&mut self, p0: &[f64], n_times: usize) -> bool {
        let grew = self.v.capacity() < p0.len()
            || self.next.capacity() < p0.len()
            || self.means.capacity() < n_times;
        self.v.clear();
        self.v.extend_from_slice(p0);
        self.next.clear();
        self.next.resize(p0.len(), 0.0);
        self.means.clear();
        self.means.resize(n_times, 0.0);
        self.ln_mean.clear();
        self.ln_mean.resize(n_times, 0.0);
        self.ln_w.clear();
        self.ln_w.resize(n_times, 0.0);
        self.converged.clear();
        self.converged.resize(n_times, false);
        self.streak.clear();
        self.streak.resize(n_times, 0);
        grew
    }
}

/// Computes `p(t)` from the point-mass initial distribution.
///
/// # Errors
///
/// [`CtmcError::InvalidTime`] for negative/non-finite `t`;
/// [`CtmcError::NotConverged`] if `max_terms` is exhausted.
pub fn transient<S>(
    space: &StateSpace<S>,
    t: f64,
    opts: &UniformizationOptions,
) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let p0 = space.initial_distribution();
    transient_from(space, &p0, t, opts)
}

/// Computes `p(t)` from an arbitrary initial distribution.
///
/// # Errors
///
/// As [`transient`], plus [`CtmcError::DimensionMismatch`].
pub fn transient_from<S>(
    space: &StateSpace<S>,
    p0: &[f64],
    t: f64,
    opts: &UniformizationOptions,
) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let mut grid = transient_grid_from(space, p0, &[t], opts)?;
    Ok(grid.pop().expect("one time point"))
}

/// Computes `p(t)` for every `t` in `times` in a single pass over the
/// uniformized power sequence (one sparse mat-vec per term, shared across
/// the whole grid).
///
/// # Errors
///
/// See [`transient`].
pub fn transient_grid<S>(
    space: &StateSpace<S>,
    times: &[f64],
    opts: &UniformizationOptions,
) -> Result<Vec<Vec<f64>>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let p0 = space.initial_distribution();
    transient_grid_from(space, &p0, times, opts)
}

/// [`transient_grid`] from an arbitrary initial distribution.
///
/// # Errors
///
/// See [`transient`].
pub fn transient_grid_from<S>(
    space: &StateSpace<S>,
    p0: &[f64],
    times: &[f64],
    opts: &UniformizationOptions,
) -> Result<Vec<Vec<f64>>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    transient_grid_with(space, p0, times, opts, &mut UniformizationWorkspace::new())
}

/// [`transient_grid_from`] with caller-owned scratch: sweeps that solve
/// many grids reuse one [`UniformizationWorkspace`] so their allocation
/// count stays constant across solves.
///
/// # Errors
///
/// See [`transient`].
pub fn transient_grid_with<S>(
    space: &StateSpace<S>,
    p0: &[f64],
    times: &[f64],
    opts: &UniformizationOptions,
    ws: &mut UniformizationWorkspace,
) -> Result<Vec<Vec<f64>>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let n_states = space.len();
    if p0.len() != n_states {
        return Err(CtmcError::DimensionMismatch {
            got: p0.len(),
            expected: n_states,
        });
    }
    for &t in times {
        if !(t.is_finite() && t >= 0.0) {
            return Err(CtmcError::InvalidTime { time: t });
        }
    }

    let metrics = solver_metrics();
    let mut obs_span = rsmem_obs::span("ctmc.uniformization", "transient_grid");
    obs_span.record("states", n_states);
    obs_span.record("time_points", times.len());

    let lambda = space.max_exit_rate();
    if lambda == 0.0 || times.iter().all(|&t| t == 0.0) {
        // No dynamics: p(t) = p(0) at every requested time.
        metrics.solves.inc();
        for _ in times {
            metrics.terms.observe(0.0);
        }
        obs_span.record("terms", 0u64);
        return Ok(times.iter().map(|_| p0.to_vec()).collect());
    }
    obs_span.record("lambda", lambda);

    metrics.solves.inc();
    if ws.prepare(p0, times.len()) {
        metrics.reallocs.inc();
    } else {
        metrics.workspace_reuses.inc();
    }
    let mut max_mean = 0.0f64;
    for (k, &t) in times.iter().enumerate() {
        let m = lambda * t;
        ws.means[k] = m;
        max_mean = max_mean.max(m);
        if m == 0.0 {
            // The t == 0 answer is p0 itself, exactly.
            ws.converged[k] = true;
            metrics.terms.observe(0.0);
        } else {
            ws.ln_mean[k] = m.ln();
            // ln Poisson(0; m) = −m, the recurrence's exact anchor.
            ws.ln_w[k] = -m;
        }
    }
    let mut acc: Vec<Vec<f64>> = ws
        .converged
        .iter()
        .map(|&done| {
            if done {
                p0.to_vec()
            } else {
                vec![0.0; n_states]
            }
        })
        .collect();
    let rates_t = space.rates_transposed();

    // Minimum terms before convergence tests: past the Poisson mode and
    // past the state count (so reachability has settled).
    let n_min = (max_mean.ceil() as usize).max(n_states.min(10_000));

    // Per-point series lengths plus the terms saved by per-point
    // convergence skips (accumulated locally; one atomic add at exit).
    let mut skipped: u64 = 0;
    for n in 0..opts.max_terms {
        let mut all_done = true;
        for (k, row) in acc.iter_mut().enumerate() {
            if ws.converged[k] {
                skipped += 1;
                continue;
            }
            all_done = false;
            if n > 0 {
                if n % LN_W_RESYNC == 0 {
                    // Cancel the recurrence's accumulated rounding.
                    ws.ln_w[k] = poisson_ln_pmf(n as u64, ws.means[k]);
                } else {
                    ws.ln_w[k] += ws.ln_mean[k] - (n as f64).ln();
                }
            }
            let w = ws.ln_w[k].exp();
            let mut small = true;
            if w > 0.0 {
                for (slot, &vj) in row.iter_mut().zip(&ws.v) {
                    let delta = w * vj;
                    *slot += delta;
                    if delta > opts.rel_tol * *slot {
                        small = false;
                    }
                }
            }
            if n >= n_min && (n as f64) > ws.means[k] {
                if small {
                    ws.streak[k] += 1;
                    if ws.streak[k] >= 3 {
                        ws.converged[k] = true;
                        metrics.terms.observe((n + 1) as f64);
                    }
                } else {
                    ws.streak[k] = 0;
                }
            }
        }
        if all_done {
            metrics.skipped_terms.add(skipped);
            obs_span.record("terms", n);
            obs_span.record("skipped_terms", skipped);
            return Ok(acc);
        }
        // v ← v·P = v + (v·R − v∘exit)/Λ, computed without cancellation:
        // v_next[j] = v[j]·(1 − exit_j/Λ) + Σ_i v[i]·r_ij/Λ. The inflow
        // sum gathers row j of Rᵀ — sequential reads, no scatter buffer.
        for j in 0..n_states {
            let mut inflow = 0.0;
            for (i, r) in rates_t.row(j) {
                inflow += ws.v[i] * r;
            }
            ws.next[j] = ws.v[j] * (1.0 - space.exit_rate(j) / lambda) + inflow / lambda;
        }
        std::mem::swap(&mut ws.v, &mut ws.next);
    }
    metrics.skipped_terms.add(skipped);
    obs_span.record("converged", false);
    obs_span.record("terms", opts.max_terms);
    Err(CtmcError::NotConverged {
        iterations: opts.max_terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarkovModel;

    /// Good --λ--> Fail.
    struct TwoState {
        lambda: f64,
    }
    impl MarkovModel for TwoState {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((1, self.lambda));
            }
        }
    }

    /// 0 --a--> 1 --b--> 2 (pure death chain).
    struct ThreeChain {
        a: f64,
        b: f64,
    }
    impl MarkovModel for ThreeChain {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            match s {
                0 => out.push((1, self.a)),
                1 => out.push((2, self.b)),
                _ => {}
            }
        }
    }

    #[test]
    fn two_state_matches_closed_form() {
        let space = StateSpace::explore(&TwoState { lambda: 0.3 }).unwrap();
        let opts = UniformizationOptions::default();
        for &t in &[0.0, 0.1, 1.0, 10.0, 100.0] {
            let p = transient(&space, t, &opts).unwrap();
            let expect = 1.0 - (-0.3 * t).exp();
            assert!(
                (p[1] - expect).abs() <= 1e-12 * expect.max(1e-300) + 1e-15,
                "t={t}: {} vs {expect}",
                p[1]
            );
        }
    }

    #[test]
    fn tiny_rates_retain_relative_accuracy() {
        // λ = 1e-30, t = 1: P_fail ≈ 1e-30 with relative error ~1e-12.
        let space = StateSpace::explore(&TwoState { lambda: 1e-30 }).unwrap();
        let p = transient(&space, 1.0, &UniformizationOptions::default()).unwrap();
        let expect = 1e-30; // 1 − e^{−x} ≈ x
        let rel = (p[1] - expect).abs() / expect;
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn extremely_small_probabilities_do_not_flush_to_zero() {
        // Two sequential rare events: P(state 2 at t) ≈ (λt)²/2 = 5e-101.
        let space = StateSpace::explore(&ThreeChain { a: 1e-50, b: 1e-50 }).unwrap();
        let p = transient(&space, 1.0, &UniformizationOptions::default()).unwrap();
        let expect = 0.5e-100;
        assert!(p[2] > 0.0);
        let rel = (p[2] - expect).abs() / expect;
        assert!(rel < 1e-6, "p={} expect={expect} rel={rel}", p[2]);
    }

    #[test]
    fn three_chain_matches_bateman_solution() {
        // Bateman: P2(t) = 1 − (b·e^{−at} − a·e^{−bt})/(b − a).
        let (a, b) = (0.7, 0.2);
        let space = StateSpace::explore(&ThreeChain { a, b }).unwrap();
        let p = transient(&space, 3.0, &UniformizationOptions::default()).unwrap();
        let t = 3.0;
        let p1 = a / (a - b) * ((-b * t).exp() - (-a * t).exp());
        let p2 = 1.0 - ((b * (-a * t).exp() - a * (-b * t).exp()) / (b - a));
        assert!((p[1] - p1).abs() < 1e-10, "{} vs {p1}", p[1]);
        assert!((p[2] - p2).abs() < 1e-10, "{} vs {p2}", p[2]);
    }

    #[test]
    fn distribution_stays_normalized() {
        let space = StateSpace::explore(&ThreeChain { a: 2.0, b: 5.0 }).unwrap();
        for &t in &[0.01, 0.5, 2.0, 20.0] {
            let p = transient(&space, t, &UniformizationOptions::default()).unwrap();
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "t={t} total={total}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn grid_matches_pointwise_solves() {
        let space = StateSpace::explore(&ThreeChain { a: 1.0, b: 0.5 }).unwrap();
        let opts = UniformizationOptions::default();
        let times = [0.0, 0.3, 1.7, 6.0];
        let grid = transient_grid(&space, &times, &opts).unwrap();
        for (k, &t) in times.iter().enumerate() {
            let single = transient(&space, t, &opts).unwrap();
            for j in 0..space.len() {
                assert!(
                    (grid[k][j] - single[j]).abs() < 1e-12,
                    "t={t} j={j}: {} vs {}",
                    grid[k][j],
                    single[j]
                );
            }
        }
    }

    #[test]
    fn zero_time_returns_initial_distribution() {
        let space = StateSpace::explore(&TwoState { lambda: 1.0 }).unwrap();
        let p = transient(&space, 0.0, &UniformizationOptions::default()).unwrap();
        assert_eq!(p, vec![1.0, 0.0]);
    }

    #[test]
    fn invalid_time_rejected() {
        let space = StateSpace::explore(&TwoState { lambda: 1.0 }).unwrap();
        let opts = UniformizationOptions::default();
        assert!(matches!(
            transient(&space, -1.0, &opts),
            Err(CtmcError::InvalidTime { .. })
        ));
        assert!(matches!(
            transient(&space, f64::NAN, &opts),
            Err(CtmcError::InvalidTime { .. })
        ));
    }

    #[test]
    fn large_uniformization_mean_is_handled() {
        // Λt = 1000: early Poisson weights underflow; result stays exact.
        let space = StateSpace::explore(&TwoState { lambda: 10.0 }).unwrap();
        let p = transient(&space, 100.0, &UniformizationOptions::default()).unwrap();
        // ~1200 Poisson terms each carrying ~1e-11 relative log-gamma
        // rounding: expect ~1e-10 absolute accuracy here.
        assert!((p[1] - 1.0).abs() < 1e-9, "p1={}", p[1]);
        assert!(p[0] >= 0.0);
    }
}
