//! SURE-style path bounds for acyclic highly-reliable chains.
//!
//! NASA's SURE program bounds the probability of reaching a "death state"
//! in a semi-Markov model by enumerating paths and bounding each path's
//! traversal probability algebraically (White's theorem). For the pure
//! CTMC, no-scrubbing case of the paper (Figures 5, 6, 8, 9, 10) the chain
//! is **acyclic**, and each path `s₀ →r₁ s₁ →r₂ … →r_K target` satisfies
//!
//! ```text
//! ∏ rᵢ · (tᴷ/K!) · e^(−D·t)  ≤  P(path traversed by t)  ≤  ∏ rᵢ · tᴷ/K!
//! ```
//!
//! where `D` is the largest exit rate along the path. Summing over all
//! paths gives two-sided bounds on the absorption probability. All
//! arithmetic is in **log space**, so results far below the f64 range
//! (the paper's Figure 10 reaches 1e-200) remain representable as
//! logarithms and the bounds stay meaningful even past 1e-308.
//!
//! These bounds are tight when `D·t ≪ 1` — precisely the highly-reliable
//! regime the tool targets — and are used to cross-validate the
//! uniformization solver.

use crate::model::StateSpace;
use crate::poisson::ln_factorial;
use crate::CtmcError;
use std::fmt::Debug;
use std::hash::Hash;

/// Two-sided bounds on a probability, carried as natural logarithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathBound {
    /// `ln` of the lower bound (`-inf` when the target is unreachable).
    pub ln_lower: f64,
    /// `ln` of the upper bound (`-inf` when the target is unreachable).
    pub ln_upper: f64,
}

impl PathBound {
    /// The lower bound as a plain probability (may flush to 0).
    pub fn lower(&self) -> f64 {
        self.ln_lower.exp()
    }

    /// The upper bound as a plain probability (may flush to 0).
    pub fn upper(&self) -> f64 {
        self.ln_upper.exp()
    }

    /// Log-midpoint estimate, `exp((ln_lower + ln_upper)/2)`.
    pub fn geometric_mid(&self) -> f64 {
        (0.5 * (self.ln_lower + self.ln_upper)).exp()
    }

    /// Width of the bound in log space (0 = exact; small = tight).
    pub fn ln_width(&self) -> f64 {
        self.ln_upper - self.ln_lower
    }

    /// True when `ln p` falls inside the bounds (inclusive, with slack).
    pub fn contains_ln(&self, ln_p: f64, slack: f64) -> bool {
        ln_p >= self.ln_lower - slack && ln_p <= self.ln_upper + slack
    }
}

/// Options for the path enumerator.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOptions {
    /// Cap on the number of enumerated paths (default `50_000_000`).
    pub max_paths: usize,
}

impl Default for PathOptions {
    fn default() -> Self {
        PathOptions {
            max_paths: 50_000_000,
        }
    }
}

/// Streaming log-sum-exp accumulator.
#[derive(Debug, Clone, Copy)]
struct LogSum {
    max: f64,
    sum: f64,
}

impl LogSum {
    fn new() -> Self {
        LogSum {
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
    fn add(&mut self, ln_x: f64) {
        if ln_x == f64::NEG_INFINITY {
            return;
        }
        if ln_x > self.max {
            self.sum = self.sum * (self.max - ln_x).exp() + 1.0;
            self.max = ln_x;
        } else {
            self.sum += (ln_x - self.max).exp();
        }
    }
    fn ln_total(&self) -> f64 {
        if self.sum == 0.0 {
            f64::NEG_INFINITY
        } else {
            self.max + self.sum.ln()
        }
    }
}

/// Checks the chain is acyclic and returns `Ok(())` or
/// [`CtmcError::NotAcyclic`].
///
/// # Errors
///
/// [`CtmcError::NotAcyclic`] when any directed cycle exists.
pub fn check_acyclic<S>(space: &StateSpace<S>) -> Result<(), CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    // Iterative three-color DFS.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = space.len();
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succ: Vec<usize> = space.rates().row(root).map(|(j, _)| j).collect();
        color[root] = GRAY;
        stack.push((root, succ, 0));
        while let Some((node, succ, idx)) = stack.last_mut() {
            if *idx >= succ.len() {
                color[*node] = BLACK;
                stack.pop();
                continue;
            }
            let next = succ[*idx];
            *idx += 1;
            match color[next] {
                WHITE => {
                    color[next] = GRAY;
                    let ns: Vec<usize> = space.rates().row(next).map(|(j, _)| j).collect();
                    stack.push((next, ns, 0));
                }
                GRAY => return Err(CtmcError::NotAcyclic),
                _ => {}
            }
        }
    }
    Ok(())
}

/// Bounds the probability of being absorbed in `target` by time `t`.
///
/// # Errors
///
/// * [`CtmcError::NotAcyclic`] — the chain has a cycle (e.g. scrubbing);
/// * [`CtmcError::NoAbsorbingState`] — `target` has outgoing transitions;
/// * [`CtmcError::InvalidTime`] — bad `t`;
/// * [`CtmcError::NotConverged`] — more than `max_paths` paths.
pub fn absorption_bounds<S>(
    space: &StateSpace<S>,
    target: usize,
    t: f64,
    opts: &PathOptions,
) -> Result<PathBound, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    if !(t.is_finite() && t >= 0.0) {
        return Err(CtmcError::InvalidTime { time: t });
    }
    if space.exit_rate(target) != 0.0 {
        return Err(CtmcError::NoAbsorbingState);
    }
    check_acyclic(space)?;

    // Restrict the walk to states that can reach the target (reverse BFS).
    let n = space.len();
    let mut reaches = vec![false; n];
    reaches[target] = true;
    // Build reverse adjacency once.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, _) in space.rates().row(i) {
            rev[j].push(i);
        }
    }
    let mut frontier = vec![target];
    while let Some(v) = frontier.pop() {
        for &u in &rev[v] {
            if !reaches[u] {
                reaches[u] = true;
                frontier.push(u);
            }
        }
    }
    if !reaches[space.initial_index()] {
        return Ok(PathBound {
            ln_lower: f64::NEG_INFINITY,
            ln_upper: f64::NEG_INFINITY,
        });
    }

    let ln_t = if t == 0.0 { f64::NEG_INFINITY } else { t.ln() };
    let mut lower = LogSum::new();
    let mut upper = LogSum::new();
    let mut paths_seen = 0usize;

    // DFS stack: (state, edges, next_edge, ln_rate_product, depth, max_exit).
    struct Frame {
        edges: Vec<(usize, f64)>,
        next: usize,
        ln_prod: f64,
        max_exit: f64,
    }
    let init = space.initial_index();
    let first_edges: Vec<(usize, f64)> = space
        .rates()
        .row(init)
        .filter(|&(j, _)| reaches[j])
        .collect();
    let mut stack = vec![Frame {
        edges: first_edges,
        next: 0,
        ln_prod: 0.0,
        max_exit: space.exit_rate(init),
    }];
    if init == target {
        // Degenerate: already absorbed.
        return Ok(PathBound {
            ln_lower: 0.0,
            ln_upper: 0.0,
        });
    }

    while let Some(top) = stack.last_mut() {
        if top.next >= top.edges.len() {
            stack.pop();
            continue;
        }
        let (j, rate) = top.edges[top.next];
        top.next += 1;
        let ln_prod = top.ln_prod + rate.ln();
        let max_exit = top.max_exit.max(space.exit_rate(j));
        if j == target {
            paths_seen += 1;
            if paths_seen > opts.max_paths {
                return Err(CtmcError::NotConverged {
                    iterations: paths_seen,
                });
            }
            let k = stack.len() as u64; // path length in transitions
            let ln_core = ln_prod + k as f64 * ln_t - ln_factorial(k);
            upper.add(ln_core);
            lower.add(ln_core - max_exit * t);
        } else {
            let edges: Vec<(usize, f64)> = space
                .rates()
                .row(j)
                .filter(|&(jj, _)| reaches[jj])
                .collect();
            stack.push(Frame {
                edges,
                next: 0,
                ln_prod,
                max_exit,
            });
        }
    }

    Ok(PathBound {
        ln_lower: lower.ln_total().min(0.0),
        ln_upper: upper.ln_total().min(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformization::{transient, UniformizationOptions};
    use crate::MarkovModel;

    struct Chain {
        rates: Vec<f64>,
    }
    impl MarkovModel for Chain {
        type State = usize;
        fn initial_state(&self) -> usize {
            0
        }
        fn transitions(&self, s: &usize, out: &mut Vec<(usize, f64)>) {
            if *s < self.rates.len() {
                out.push((s + 1, self.rates[*s]));
            }
        }
    }

    #[test]
    fn single_hop_bounds_bracket_exact_value() {
        let space = StateSpace::explore(&Chain { rates: vec![1e-6] }).unwrap();
        let t = 10.0;
        let b = absorption_bounds(&space, 1, t, &PathOptions::default()).unwrap();
        let exact = 1.0 - (-1e-6 * t).exp();
        assert!(b.contains_ln(exact.ln(), 1e-9), "{b:?} vs {}", exact.ln());
        assert!(b.ln_width() < 1e-4); // D·t = 1e-5 → very tight
    }

    #[test]
    fn multi_hop_bounds_match_uniformization() {
        let space = StateSpace::explore(&Chain {
            rates: vec![1e-8, 2e-8, 5e-9],
        })
        .unwrap();
        let t = 100.0;
        let b = absorption_bounds(&space, 3, t, &PathOptions::default()).unwrap();
        let p = transient(&space, t, &UniformizationOptions::default()).unwrap();
        assert!(p[3] > 0.0);
        assert!(b.contains_ln(p[3].ln(), 1e-6), "{b:?} vs {}", p[3].ln());
    }

    #[test]
    fn bounds_work_far_below_f64_range() {
        // Three hops at 1e-120 each: P ≈ (1e-120)³·t³/6 = 1.7e-361 < min f64.
        let space = StateSpace::explore(&Chain {
            rates: vec![1e-120, 1e-120, 1e-120],
        })
        .unwrap();
        let b = absorption_bounds(&space, 3, 1.0, &PathOptions::default()).unwrap();
        let expect_ln = 3.0 * (1e-120f64).ln() - 6.0f64.ln();
        assert!((b.ln_upper - expect_ln).abs() < 1e-9);
        assert!(b.lower() == 0.0, "materializes as 0, but the log is exact");
        assert!(b.ln_lower.is_finite());
    }

    struct Diamond;
    impl MarkovModel for Diamond {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            match s {
                0 => {
                    out.push((1, 1e-6));
                    out.push((2, 3e-6));
                }
                1 | 2 => out.push((3, 2e-6)),
                _ => {}
            }
        }
    }

    #[test]
    fn diamond_sums_both_paths() {
        let space = StateSpace::explore(&Diamond).unwrap();
        let t = 5.0;
        let b = absorption_bounds(&space, 3, t, &PathOptions::default()).unwrap();
        // Σ paths: (1e-6·2e-6 + 3e-6·2e-6)·t²/2 = 8e-12·25/2 = 1e-10.
        let expect = 1e-10f64;
        assert!((b.ln_upper - expect.ln()).abs() < 1e-6);
        let p = transient(&space, t, &UniformizationOptions::default()).unwrap();
        assert!(b.contains_ln(p[3].ln(), 1e-6));
    }

    struct Cyclic;
    impl MarkovModel for Cyclic {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            match s {
                0 => out.push((1, 1.0)),
                1 => {
                    out.push((0, 1.0)); // cycle (like scrubbing)
                    out.push((2, 1.0));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cyclic_chain_is_rejected() {
        let space = StateSpace::explore(&Cyclic).unwrap();
        assert_eq!(
            absorption_bounds(&space, 2, 1.0, &PathOptions::default()),
            Err(CtmcError::NotAcyclic)
        );
        assert_eq!(check_acyclic(&space), Err(CtmcError::NotAcyclic));
    }

    #[test]
    fn non_absorbing_target_is_rejected() {
        let space = StateSpace::explore(&Chain {
            rates: vec![1.0, 1.0],
        })
        .unwrap();
        assert_eq!(
            absorption_bounds(&space, 1, 1.0, &PathOptions::default()),
            Err(CtmcError::NoAbsorbingState)
        );
    }

    #[test]
    fn unreachable_target_gives_zero() {
        struct Split;
        impl MarkovModel for Split {
            type State = u8;
            fn initial_state(&self) -> u8 {
                0
            }
            fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
                if *s == 0 {
                    out.push((1, 1.0));
                }
                // state 2 exists only via is_absorbing trick — emulate by
                // exploring a chain that includes 2 from another branch.
                if *s == 1 {
                    out.push((2, 1.0));
                }
            }
        }
        let space = StateSpace::explore(&Split).unwrap();
        // Target = initial (trivially "reached" only at depth 0); instead
        // test t=0 gives -inf for a real target.
        let b = absorption_bounds(&space, 2, 0.0, &PathOptions::default()).unwrap();
        assert_eq!(b.upper(), 0.0);
    }
}
