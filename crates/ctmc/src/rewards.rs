//! Cumulative (reward) measures: expected time spent in each state.
//!
//! For a CTMC with distribution `p(s)`, the expected total time spent in
//! state `j` during `[0, t]` is `L_j(t) = ∫₀ᵗ p_j(s) ds`. Uniformization
//! gives the classical series
//!
//! ```text
//! L(t) = (1/Λ) Σ_{n≥0} P[N > n] · v_n,      N ~ Poisson(Λt),
//! ```
//!
//! again with all-non-negative terms. These measures feed availability
//! analysis (expected operational time of a memory arrangement) and
//! scrubbing-overhead economics in the layers above.

use crate::model::StateSpace;
use crate::poisson::poisson_ln_pmf;
use crate::CtmcError;
use std::fmt::Debug;
use std::hash::Hash;

/// Options for the cumulative-time solver.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardOptions {
    /// Per-component relative truncation tolerance (default `1e-12`).
    pub rel_tol: f64,
    /// Hard cap on series terms (default `5_000_000`).
    pub max_terms: usize,
}

impl Default for RewardOptions {
    fn default() -> Self {
        RewardOptions {
            rel_tol: 1e-12,
            max_terms: 5_000_000,
        }
    }
}

/// Expected time spent in each state over `[0, t]`, starting from the
/// initial point mass. The entries sum to `t`.
///
/// # Errors
///
/// [`CtmcError::InvalidTime`] for bad `t`;
/// [`CtmcError::NotConverged`] if the term cap is exhausted.
pub fn expected_time_in_states<S>(
    space: &StateSpace<S>,
    t: f64,
    opts: &RewardOptions,
) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    if !(t.is_finite() && t >= 0.0) {
        return Err(CtmcError::InvalidTime { time: t });
    }
    let n_states = space.len();
    let mut acc = vec![0.0; n_states];
    if t == 0.0 {
        return Ok(acc);
    }
    let lambda = space.max_exit_rate();
    if lambda == 0.0 {
        acc[space.initial_index()] = t;
        return Ok(acc);
    }
    let mean = lambda * t;
    let rates = space.rates();
    let mut v = space.initial_distribution();

    // Tail probabilities P[N > n]. The subtractive recurrence
    // P[N > n] = P[N > n−1] − pmf(n) is exact to rounding but bottoms out
    // at ~1e-16 absolute error, which would stall convergence; past the
    // mode we therefore cap it with the geometric tail bound
    // P[N > n] ≤ pmf(n+1)·(n+2)/(n+2−mean), which decays to true zero.
    let mut tail = 1.0f64;
    let n_min = (mean.ceil() as usize).max(n_states.min(10_000));
    let mut streak = 0u32;

    for n in 0..opts.max_terms {
        let pmf = poisson_ln_pmf(n as u64, mean).exp();
        tail = (tail - pmf).max(0.0);
        let next = (n + 2) as f64;
        if next > mean {
            let pmf_next = poisson_ln_pmf(n as u64 + 1, mean).exp();
            let geometric = pmf_next * next / (next - mean);
            tail = tail.min(geometric);
        }
        let w = tail / lambda;
        let mut small = true;
        if w > 0.0 {
            for j in 0..n_states {
                let delta = w * v[j];
                acc[j] += delta;
                if delta > opts.rel_tol * acc[j] {
                    small = false;
                }
            }
        }
        if n >= n_min && (n as f64) > mean {
            if small {
                streak += 1;
                if streak >= 3 {
                    return Ok(acc);
                }
            } else {
                streak = 0;
            }
        }
        // v ← v·P (same uniformized step as the transient solver).
        let mut next = vec![0.0; n_states];
        for j in 0..n_states {
            next[j] = v[j] * (1.0 - space.exit_rate(j) / lambda);
        }
        let mut inflow = vec![0.0; n_states];
        rates.acc_left_mul(&v, &mut inflow);
        for j in 0..n_states {
            next[j] += inflow[j] / lambda;
        }
        v = next;
    }
    Err(CtmcError::NotConverged {
        iterations: opts.max_terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarkovModel;

    struct TwoState {
        lambda: f64,
    }
    impl MarkovModel for TwoState {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((1, self.lambda));
            }
        }
    }

    #[test]
    fn two_state_expected_times_match_closed_form() {
        // L_good(t) = (1 − e^{−λt})/λ; L_fail(t) = t − L_good(t).
        let lam = 0.4;
        let space = StateSpace::explore(&TwoState { lambda: lam }).unwrap();
        for &t in &[0.5, 2.0, 10.0] {
            let l = expected_time_in_states(&space, t, &RewardOptions::default()).unwrap();
            let lg = (1.0 - (-lam * t).exp()) / lam;
            assert!((l[0] - lg).abs() < 1e-9, "t={t}: {} vs {lg}", l[0]);
            assert!((l[1] - (t - lg)).abs() < 1e-9);
        }
    }

    #[test]
    fn times_sum_to_horizon() {
        let space = StateSpace::explore(&TwoState { lambda: 3.0 }).unwrap();
        let t = 7.0;
        let l = expected_time_in_states(&space, t, &RewardOptions::default()).unwrap();
        let total: f64 = l.iter().sum();
        assert!((total - t).abs() < 1e-8, "{total}");
    }

    #[test]
    fn zero_horizon_gives_zero_times() {
        let space = StateSpace::explore(&TwoState { lambda: 1.0 }).unwrap();
        let l = expected_time_in_states(&space, 0.0, &RewardOptions::default()).unwrap();
        assert_eq!(l, vec![0.0, 0.0]);
    }

    #[test]
    fn no_dynamics_accumulates_in_initial_state() {
        let space = StateSpace::explore(&TwoState { lambda: 0.0 }).unwrap();
        let l = expected_time_in_states(&space, 5.0, &RewardOptions::default()).unwrap();
        assert_eq!(l[0], 5.0);
    }

    #[test]
    fn invalid_time_rejected() {
        let space = StateSpace::explore(&TwoState { lambda: 1.0 }).unwrap();
        assert!(expected_time_in_states(&space, -1.0, &RewardOptions::default()).is_err());
    }

    /// Numerical cross-check against the trapezoid rule on the transient
    /// distribution.
    #[test]
    fn matches_quadrature_of_transient() {
        use crate::uniformization::{transient, UniformizationOptions};
        struct Cycle;
        impl MarkovModel for Cycle {
            type State = u8;
            fn initial_state(&self) -> u8 {
                0
            }
            fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
                match s {
                    0 => out.push((1, 2.0)),
                    1 => {
                        out.push((0, 1.0));
                        out.push((2, 0.3))
                    }
                    _ => {}
                }
            }
        }
        let space = StateSpace::explore(&Cycle).unwrap();
        let t = 4.0;
        let l = expected_time_in_states(&space, t, &RewardOptions::default()).unwrap();
        // Trapezoid over a fine grid.
        let steps = 4000;
        let h = t / steps as f64;
        let mut quad = vec![0.0; space.len()];
        let opts = UniformizationOptions::default();
        let times: Vec<f64> = (0..=steps).map(|i| i as f64 * h).collect();
        let grid = crate::uniformization::transient_grid(&space, &times, &opts).unwrap();
        for i in 0..steps {
            for j in 0..space.len() {
                quad[j] += 0.5 * h * (grid[i][j] + grid[i + 1][j]);
            }
        }
        let _ = transient(&space, t, &opts).unwrap();
        for j in 0..space.len() {
            assert!(
                (l[j] - quad[j]).abs() < 1e-5,
                "state {j}: {} vs {}",
                l[j],
                quad[j]
            );
        }
    }
}
