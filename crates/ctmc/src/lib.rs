//! Continuous-time Markov chain (CTMC) engine for reliability analysis.
//!
//! This crate is the `rsmem` workspace's replacement for the NASA **SURE**
//! solver the DATE 2005 paper relies on. It provides:
//!
//! * [`MarkovModel`] — describe a chain implicitly (initial state +
//!   per-state transition function) and let [`StateSpace::explore`]
//!   enumerate it breadth-first into an indexed state space with a sparse
//!   generator matrix;
//! * transient solvers for `p'(t) = p(t)·Q`:
//!   - [`uniformization::transient`] — the workhorse. Because the
//!     uniformized iteration is non-negative it has **no cancellation**, so
//!     absorbing-state probabilities retain full *relative* accuracy down
//!     to the f64 denormal floor (~1e-308) — exactly what the paper's
//!     BER-vs-permanent-fault sweeps (1e-200 territory) need;
//!   - [`ode`] — fixed-step RK4 and adaptive RKF45 integrators, used as an
//!     independent cross-check;
//!   - [`paths`] — a SURE-style path-bound solver for *acyclic* chains
//!     (no scrubbing), computing log-space lower/upper bounds that remain
//!     meaningful below 1e-308;
//! * [`steady`] — steady-state distribution and mean time to absorption;
//! * [`sparse::CsrMatrix`] / [`dense::DenseMatrix`] — the minimal linear
//!   algebra the above needs (no external LA dependency).
//!
//! # Examples
//!
//! A two-state failure chain `Good --λ--> Fail` has
//! `P_fail(t) = 1 − e^{−λt}`:
//!
//! ```
//! use rsmem_ctmc::{MarkovModel, StateSpace, uniformization};
//!
//! struct TwoState {
//!     lambda: f64,
//! }
//!
//! impl MarkovModel for TwoState {
//!     type State = bool; // false = good, true = failed
//!     fn initial_state(&self) -> bool { false }
//!     fn transitions(&self, s: &bool, out: &mut Vec<(bool, f64)>) {
//!         if !s {
//!             out.push((true, self.lambda));
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), rsmem_ctmc::CtmcError> {
//! let space = StateSpace::explore(&TwoState { lambda: 0.5 })?;
//! let p = uniformization::transient(&space, 2.0, &Default::default())?;
//! let fail = space.index_of(&true).unwrap();
//! assert!((p[fail] - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
mod error;
pub mod hazard;
mod model;
pub mod ode;
pub mod paths;
pub mod poisson;
pub mod rewards;
pub mod sparse;
pub mod steady;
pub mod uniformization;

pub use error::CtmcError;
pub use model::{MarkovModel, StateSpace};
