//! ODE integrators for the Kolmogorov forward equations `p'(t) = p(t)·Q`.
//!
//! These are *cross-check* solvers: they trade the non-negativity
//! guarantee of [`crate::uniformization`] for genericity, and are used by
//! the test-suite and the solver-ablation bench to confirm the primary
//! solver. Absolute accuracy is limited to roughly the integrator
//! tolerance, so they are not suitable for the 1e-200-probability regime.

use crate::model::StateSpace;
use crate::CtmcError;
use std::fmt::Debug;
use std::hash::Hash;

/// Options for the fixed-step RK4 integrator.
#[derive(Debug, Clone, PartialEq)]
pub struct Rk4Options {
    /// Number of equal steps over `[0, t]` (default 1000).
    pub steps: usize,
}

impl Default for Rk4Options {
    fn default() -> Self {
        Rk4Options { steps: 1000 }
    }
}

/// Options for the adaptive RKF45 integrator.
#[derive(Debug, Clone, PartialEq)]
pub struct Rkf45Options {
    /// Local truncation error tolerance per unit step (default `1e-10`).
    pub tol: f64,
    /// Initial step size as a fraction of `t` (default `1e-3`).
    pub initial_step_fraction: f64,
    /// Hard cap on accepted+rejected steps (default `10_000_000`).
    pub max_steps: usize,
}

impl Default for Rkf45Options {
    fn default() -> Self {
        Rkf45Options {
            tol: 1e-10,
            initial_step_fraction: 1e-3,
            max_steps: 10_000_000,
        }
    }
}

fn check_time(t: f64) -> Result<(), CtmcError> {
    if !(t.is_finite() && t >= 0.0) {
        return Err(CtmcError::InvalidTime { time: t });
    }
    Ok(())
}

/// Integrates `p' = p·Q` from the initial point mass with classical RK4.
///
/// # Errors
///
/// [`CtmcError::InvalidTime`] for bad `t`.
pub fn rk4<S>(space: &StateSpace<S>, t: f64, opts: &Rk4Options) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    check_time(t)?;
    let mut p = space.initial_distribution();
    if t == 0.0 || space.max_exit_rate() == 0.0 {
        return Ok(p);
    }
    let steps = opts.steps.max(1);
    let h = t / steps as f64;
    for _ in 0..steps {
        let k1 = space.apply_generator(&p)?;
        let p2: Vec<f64> = p.iter().zip(&k1).map(|(&x, &k)| x + 0.5 * h * k).collect();
        let k2 = space.apply_generator(&p2)?;
        let p3: Vec<f64> = p.iter().zip(&k2).map(|(&x, &k)| x + 0.5 * h * k).collect();
        let k3 = space.apply_generator(&p3)?;
        let p4: Vec<f64> = p.iter().zip(&k3).map(|(&x, &k)| x + h * k).collect();
        let k4 = space.apply_generator(&p4)?;
        for j in 0..p.len() {
            p[j] += h / 6.0 * (k1[j] + 2.0 * k2[j] + 2.0 * k3[j] + k4[j]);
        }
    }
    Ok(p)
}

/// Integrates `p' = p·Q` with the adaptive Runge–Kutta–Fehlberg 4(5) pair.
///
/// # Errors
///
/// [`CtmcError::InvalidTime`] for bad `t`;
/// [`CtmcError::NotConverged`] if the step budget is exhausted.
pub fn rkf45<S>(space: &StateSpace<S>, t: f64, opts: &Rkf45Options) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    check_time(t)?;
    let mut p = space.initial_distribution();
    if t == 0.0 || space.max_exit_rate() == 0.0 {
        return Ok(p);
    }

    // Fehlberg coefficients.
    const A: [[f64; 5]; 5] = [
        [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [
            -8.0 / 27.0,
            2.0,
            -3544.0 / 2565.0,
            1859.0 / 4104.0,
            -11.0 / 40.0,
        ],
    ];
    const B4: [f64; 6] = [
        25.0 / 216.0,
        0.0,
        1408.0 / 2565.0,
        2197.0 / 4104.0,
        -1.0 / 5.0,
        0.0,
    ];
    const B5: [f64; 6] = [
        16.0 / 135.0,
        0.0,
        6656.0 / 12825.0,
        28561.0 / 56430.0,
        -9.0 / 50.0,
        2.0 / 55.0,
    ];

    let n = p.len();
    let mut time = 0.0;
    let mut h = (t * opts.initial_step_fraction).max(t * 1e-12);
    let mut steps_used = 0usize;

    while time < t {
        if steps_used >= opts.max_steps {
            return Err(CtmcError::NotConverged {
                iterations: steps_used,
            });
        }
        steps_used += 1;
        if time + h > t {
            h = t - time;
        }
        let mut k: Vec<Vec<f64>> = Vec::with_capacity(6);
        k.push(space.apply_generator(&p)?);
        for a_row in A.iter().take(5) {
            let mut y = p.clone();
            for (s, krow) in k.iter().enumerate() {
                let a = a_row[s];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    y[j] += h * a * krow[j];
                }
            }
            k.push(space.apply_generator(&y)?);
        }
        // 4th- and 5th-order estimates.
        let mut y4 = p.clone();
        let mut y5 = p.clone();
        for (s, krow) in k.iter().enumerate() {
            for j in 0..n {
                y4[j] += h * B4[s] * krow[j];
                y5[j] += h * B5[s] * krow[j];
            }
        }
        let err: f64 = y4
            .iter()
            .zip(&y5)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        let tol_h = opts.tol * h.max(f64::MIN_POSITIVE);
        if err <= tol_h || h <= t * 1e-14 {
            time += h;
            p = y5;
        }
        // Step-size controller.
        let factor = if err == 0.0 {
            4.0
        } else {
            0.84 * (tol_h / err).powf(0.25)
        };
        h *= factor.clamp(0.1, 4.0);
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformization::{transient, UniformizationOptions};
    use crate::MarkovModel;

    /// Cyclic repairable system: Good <-> Degraded -> Failed(absorbing).
    struct Repairable;
    impl MarkovModel for Repairable {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            match s {
                0 => out.push((1, 1.0)),
                1 => {
                    out.push((0, 5.0)); // repair (cycle!)
                    out.push((2, 0.2));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn rk4_agrees_with_uniformization() {
        let space = StateSpace::explore(&Repairable).unwrap();
        let t = 4.0;
        let a = rk4(&space, t, &Rk4Options { steps: 4000 }).unwrap();
        let b = transient(&space, t, &UniformizationOptions::default()).unwrap();
        for j in 0..space.len() {
            assert!((a[j] - b[j]).abs() < 1e-8, "j={j}: {} vs {}", a[j], b[j]);
        }
    }

    #[test]
    fn rkf45_agrees_with_uniformization() {
        let space = StateSpace::explore(&Repairable).unwrap();
        let t = 4.0;
        let a = rkf45(&space, t, &Rkf45Options::default()).unwrap();
        let b = transient(&space, t, &UniformizationOptions::default()).unwrap();
        for j in 0..space.len() {
            assert!((a[j] - b[j]).abs() < 1e-7, "j={j}: {} vs {}", a[j], b[j]);
        }
    }

    #[test]
    fn probability_is_conserved() {
        let space = StateSpace::explore(&Repairable).unwrap();
        for t in [0.5, 2.0, 10.0] {
            let p = rkf45(&space, t, &Rkf45Options::default()).unwrap();
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-7, "t={t}: {total}");
        }
    }

    #[test]
    fn zero_time_is_identity() {
        let space = StateSpace::explore(&Repairable).unwrap();
        assert_eq!(rk4(&space, 0.0, &Rk4Options::default()).unwrap()[0], 1.0);
        assert_eq!(
            rkf45(&space, 0.0, &Rkf45Options::default()).unwrap()[0],
            1.0
        );
    }

    #[test]
    fn bad_time_rejected() {
        let space = StateSpace::explore(&Repairable).unwrap();
        assert!(rk4(&space, f64::INFINITY, &Rk4Options::default()).is_err());
        assert!(rkf45(&space, -0.5, &Rkf45Options::default()).is_err());
    }
}
