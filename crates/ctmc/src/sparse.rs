//! Compressed sparse row matrices for CTMC generators.

use crate::CtmcError;

/// A compressed-sparse-row matrix of `f64` entries.
///
/// Used to store the off-diagonal part of a CTMC generator; rows index the
/// *source* state, columns the *target*. The matrix supports the one
/// operation the solvers need: accumulating `y += x·A` (left-multiplication
/// by a row vector).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` lists.
    ///
    /// Duplicate columns within a row are summed.
    ///
    /// # Errors
    ///
    /// [`CtmcError::InvalidRate`] if any value is non-finite.
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> Result<Self, CtmcError> {
        let nrows = rows.len();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in rows {
            let mut entries: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for &(c, v) in row {
                if !v.is_finite() {
                    return Err(CtmcError::InvalidRate { rate: v });
                }
                debug_assert!(c < ncols, "column {c} out of bounds {ncols}");
                match entries.iter_mut().find(|(ec, _)| *ec == c) {
                    Some((_, ev)) => *ev += v,
                    None => entries.push((c, v)),
                }
            }
            entries.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in entries {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `i` as `(column, value)` pairs.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sum of the entries of row `i` (for generators: the exit rate).
    pub fn row_sum(&self, i: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.values[lo..hi].iter().sum()
    }

    /// Accumulates `y += x · A` where `x` is a row vector.
    ///
    /// # Panics
    ///
    /// Panics (debug) on dimension mismatch; callers validate lengths.
    pub fn acc_left_mul(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for k in lo..hi {
                y[self.col_idx[k]] += xi * self.values[k];
            }
        }
    }

    /// Computes `x · A` into a fresh vector.
    pub fn left_mul(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.ncols];
        self.acc_left_mul(x, &mut y);
        y
    }

    /// Accumulates `y += A · x` (right multiplication by a column
    /// vector). Each output row is a sequential gather over one stored
    /// row — cache-friendly and independently computable per row, unlike
    /// [`CsrMatrix::acc_left_mul`]'s scattered writes. With `A = Bᵀ`
    /// this evaluates `y += x · B`, which is how the uniformization hot
    /// loop uses it (see [`CsrMatrix::transpose`]).
    ///
    /// # Panics
    ///
    /// Panics (debug) on dimension mismatch; callers validate lengths.
    pub fn acc_right_mul(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += x[self.col_idx[k]] * self.values[k];
            }
            *yi += acc;
        }
    }

    /// Builds the transpose as a new CSR matrix (a CSC view of `self`),
    /// via a counting sort over columns: O(nnz + nrows + ncols). Column
    /// indices of each transposed row come out sorted.
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.ncols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr[..self.ncols].to_vec();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let slot = cursor[self.col_idx[k]];
                cursor[self.col_idx[k]] += 1;
                col_idx[slot] = i;
                values[slot] = self.values[k];
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 0 1 2 ]
        // [ 3 0 0 ]
        CsrMatrix::from_rows(3, &[vec![(1, 1.0), (2, 2.0)], vec![(0, 3.0)]]).unwrap()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn left_mul_matches_dense() {
        let m = sample();
        let x = [2.0, 5.0];
        // x·A = [5·3, 2·1, 2·2]
        assert_eq!(m.left_mul(&x), vec![15.0, 2.0, 4.0]);
    }

    #[test]
    fn duplicate_columns_are_summed() {
        let m = CsrMatrix::from_rows(2, &[vec![(0, 1.0), (0, 2.5)]]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row_sum(0), 3.5);
    }

    #[test]
    fn rejects_non_finite_values() {
        assert!(CsrMatrix::from_rows(1, &[vec![(0, f64::NAN)]]).is_err());
        assert!(CsrMatrix::from_rows(1, &[vec![(0, f64::INFINITY)]]).is_err());
    }

    #[test]
    fn row_iteration_is_sorted() {
        let m = CsrMatrix::from_rows(4, &[vec![(3, 1.0), (0, 2.0), (2, 3.0)]]).unwrap();
        let cols: Vec<usize> = m.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }

    #[test]
    fn zero_x_entries_skip_work() {
        let m = sample();
        let x = [0.0, 1.0];
        assert_eq!(m.left_mul(&x), vec![3.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_swaps_shape_and_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.nnz(), 3);
        // Column 0 of A held a single entry 3.0 at row 1.
        let row0: Vec<(usize, f64)> = t.row(0).collect();
        assert_eq!(row0, vec![(1, 3.0)]);
        // Transposing twice round-trips.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transposed_rows_are_sorted() {
        let m = CsrMatrix::from_rows(2, &[vec![(0, 1.0)], vec![(0, 2.0)], vec![(0, 3.0)]]).unwrap();
        let t = m.transpose();
        let cols: Vec<usize> = t.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn gather_mul_on_transpose_matches_scatter_left_mul() {
        let m = CsrMatrix::from_rows(
            4,
            &[
                vec![(1, 1.0), (3, 2.0)],
                vec![(0, 0.5), (2, 4.0)],
                vec![(3, 1.5)],
            ],
        )
        .unwrap();
        let t = m.transpose();
        let x = [2.0, -1.0, 0.25];
        let scattered = m.left_mul(&x);
        let mut gathered = vec![0.0; 4];
        t.acc_right_mul(&x, &mut gathered);
        for (a, b) in scattered.iter().zip(&gathered) {
            assert!((a - b).abs() < 1e-15, "{scattered:?} vs {gathered:?}");
        }
    }
}
