use std::error::Error;
use std::fmt;

/// Errors from CTMC construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// State-space exploration exceeded the configured limit.
    StateExplosion {
        /// The limit that was hit.
        limit: usize,
    },
    /// A model emitted a negative or non-finite transition rate.
    InvalidRate {
        /// The offending rate.
        rate: f64,
    },
    /// The requested time is negative or non-finite.
    InvalidTime {
        /// The offending time.
        time: f64,
    },
    /// A solver input vector has the wrong length.
    DimensionMismatch {
        /// Length supplied.
        got: usize,
        /// Length expected.
        expected: usize,
    },
    /// The iteration did not converge within its budget.
    NotConverged {
        /// Iterations or terms consumed.
        iterations: usize,
    },
    /// A linear system was singular (e.g. reducible chain in steady-state).
    SingularSystem,
    /// The path-bound solver requires an acyclic chain, but a cycle was
    /// found (e.g. a scrubbing transition).
    NotAcyclic,
    /// The chain has no absorbing state where one is required.
    NoAbsorbingState,
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::StateExplosion { limit } => {
                write!(f, "state space exceeds limit of {limit} states")
            }
            CtmcError::InvalidRate { rate } => write!(f, "invalid transition rate {rate}"),
            CtmcError::InvalidTime { time } => write!(f, "invalid time {time}"),
            CtmcError::DimensionMismatch { got, expected } => {
                write!(
                    f,
                    "vector length {got} does not match state count {expected}"
                )
            }
            CtmcError::NotConverged { iterations } => {
                write!(f, "solver did not converge after {iterations} iterations")
            }
            CtmcError::SingularSystem => write!(f, "singular linear system"),
            CtmcError::NotAcyclic => write!(f, "chain contains a cycle"),
            CtmcError::NoAbsorbingState => write!(f, "chain has no absorbing state"),
        }
    }
}

impl Error for CtmcError {}
