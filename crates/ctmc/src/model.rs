//! Implicit Markov models and breadth-first state-space exploration.

use crate::sparse::CsrMatrix;
use crate::CtmcError;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt::Debug;
use std::hash::Hash;

/// An implicitly-described continuous-time Markov chain.
///
/// Implementors provide the initial state and, for each state, the
/// outgoing transitions with their rates. [`StateSpace::explore`] turns
/// this into an explicit indexed chain.
///
/// Emitting two transitions to the same target state is allowed; their
/// rates are summed (this happens naturally in the duplex memory model
/// when distinct physical events lead to the same counted state).
pub trait MarkovModel {
    /// The state representation. Must be hashable for deduplication.
    type State: Clone + Eq + Hash + Debug;

    /// The state the chain starts in at `t = 0`.
    fn initial_state(&self) -> Self::State;

    /// Appends all outgoing transitions `(target, rate)` of `state` to
    /// `out`. Rates must be positive and finite; zero-rate transitions
    /// may be emitted and are dropped.
    fn transitions(&self, state: &Self::State, out: &mut Vec<(Self::State, f64)>);

    /// True for states that should not be expanded (absorbing by fiat,
    /// e.g. a lumped Fail state). Defaults to asking for transitions and
    /// is overridden for efficiency.
    fn is_absorbing(&self, state: &Self::State) -> bool {
        let _ = state;
        false
    }
}

/// Default exploration limit — generous for the paper's models
/// (duplex RS(36,16) stays below this).
pub const DEFAULT_MAX_STATES: usize = 2_000_000;

/// An explored, indexed CTMC: states, generator and initial distribution.
#[derive(Debug, Clone)]
pub struct StateSpace<S> {
    states: Vec<S>,
    initial: usize,
    /// Off-diagonal rates, row = source.
    rates: CsrMatrix,
    /// Transpose of `rates` (row = target), cached so hot left-multiplies
    /// run as sequential per-output gathers instead of scattered writes.
    rates_t: CsrMatrix,
    /// Exit rate per state (sum of the row).
    exit: Vec<f64>,
}

impl<S: Clone + Eq + Hash + Debug> StateSpace<S> {
    /// Explores the model breadth-first from its initial state with the
    /// default state cap.
    ///
    /// # Errors
    ///
    /// [`CtmcError::StateExplosion`] past the cap,
    /// [`CtmcError::InvalidRate`] on negative/non-finite rates.
    pub fn explore<M>(model: &M) -> Result<Self, CtmcError>
    where
        M: MarkovModel<State = S>,
    {
        Self::explore_with_limit(model, DEFAULT_MAX_STATES)
    }

    /// Explores with an explicit state cap.
    ///
    /// # Errors
    ///
    /// See [`StateSpace::explore`].
    pub fn explore_with_limit<M>(model: &M, max_states: usize) -> Result<Self, CtmcError>
    where
        M: MarkovModel<State = S>,
    {
        let mut states: Vec<S> = Vec::new();
        let mut index: HashMap<S, usize> = HashMap::new();
        let mut adjacency: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut scratch: Vec<(S, f64)> = Vec::new();

        let init = model.initial_state();
        states.push(init.clone());
        index.insert(init, 0);
        adjacency.push(Vec::new());
        queue.push_back(0);

        while let Some(i) = queue.pop_front() {
            let state = states[i].clone();
            if model.is_absorbing(&state) {
                continue;
            }
            scratch.clear();
            model.transitions(&state, &mut scratch);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(scratch.len());
            for (target, rate) in scratch.drain(..) {
                if rate == 0.0 {
                    continue;
                }
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(CtmcError::InvalidRate { rate });
                }
                let j = match index.get(&target) {
                    Some(&j) => j,
                    None => {
                        if states.len() >= max_states {
                            return Err(CtmcError::StateExplosion { limit: max_states });
                        }
                        let j = states.len();
                        states.push(target.clone());
                        index.insert(target, j);
                        adjacency.push(Vec::new());
                        queue.push_back(j);
                        j
                    }
                };
                if i == j {
                    // Self-loops are no-ops in a CTMC; drop them.
                    continue;
                }
                row.push((j, rate));
            }
            adjacency[i] = row;
        }

        let n = states.len();
        let rates = CsrMatrix::from_rows(n, &adjacency)?;
        let rates_t = rates.transpose();
        let exit: Vec<f64> = (0..n).map(|i| rates.row_sum(i)).collect();
        Ok(StateSpace {
            states,
            initial: 0,
            rates,
            rates_t,
            exit,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the space is empty (cannot happen via exploration).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, in exploration (BFS) order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The state at index `i`.
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// Index of a state, if it was reached during exploration.
    pub fn index_of(&self, state: &S) -> Option<usize> {
        self.states.iter().position(|s| s == state)
    }

    /// Index of the initial state (always 0).
    pub fn initial_index(&self) -> usize {
        self.initial
    }

    /// The initial distribution (a point mass on the initial state).
    pub fn initial_distribution(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.len()];
        p[self.initial] = 1.0;
        p
    }

    /// Off-diagonal transition-rate matrix (row = source state).
    pub fn rates(&self) -> &CsrMatrix {
        &self.rates
    }

    /// Cached transpose of [`StateSpace::rates`] (row = target state).
    /// `rates_transposed().acc_right_mul(p, y)` computes `y += p·rates`
    /// with sequential writes per output component — the form the
    /// uniformization inner loop wants.
    pub fn rates_transposed(&self) -> &CsrMatrix {
        &self.rates_t
    }

    /// Exit rate of state `i` (the negated generator diagonal).
    pub fn exit_rate(&self, i: usize) -> f64 {
        self.exit[i]
    }

    /// Maximum exit rate over all states (the uniformization constant base).
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Indices of absorbing states (no outgoing transitions).
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.exit[i] == 0.0).collect()
    }

    /// Rebuilds the transition rates over the *same* state set from a
    /// different model (e.g. the same memory system in a different fault
    /// environment). The new model's transitions must stay within this
    /// space's states.
    ///
    /// This is the primitive behind piecewise-constant (mission-phase)
    /// transient analysis: explore once with a superset environment, then
    /// solve each phase with its own rates over the shared state indexing.
    ///
    /// # Errors
    ///
    /// [`CtmcError::InvalidRate`] on bad rates;
    /// [`CtmcError::StateExplosion`] (with the current size as the limit)
    /// if the new model transitions to a state this space does not
    /// contain.
    pub fn with_model_rates<M>(&self, model: &M) -> Result<Self, CtmcError>
    where
        M: MarkovModel<State = S>,
    {
        let n = self.len();
        let index: HashMap<&S, usize> = self
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut scratch: Vec<(S, f64)> = Vec::new();
        for (i, state) in self.states.iter().enumerate() {
            if model.is_absorbing(state) {
                continue;
            }
            scratch.clear();
            model.transitions(state, &mut scratch);
            for (target, rate) in scratch.drain(..) {
                if rate == 0.0 {
                    continue;
                }
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(CtmcError::InvalidRate { rate });
                }
                let Some(&j) = index.get(&target) else {
                    return Err(CtmcError::StateExplosion { limit: n });
                };
                if i != j {
                    adjacency[i].push((j, rate));
                }
            }
        }
        let rates = CsrMatrix::from_rows(n, &adjacency)?;
        let rates_t = rates.transpose();
        let exit: Vec<f64> = (0..n).map(|i| rates.row_sum(i)).collect();
        Ok(StateSpace {
            states: self.states.clone(),
            initial: self.initial,
            rates,
            rates_t,
            exit,
        })
    }

    /// Applies the generator from the left: `y = p·Q`, where
    /// `Q = rates − diag(exit)`.
    pub fn apply_generator(&self, p: &[f64]) -> Result<Vec<f64>, CtmcError> {
        if p.len() != self.len() {
            return Err(CtmcError::DimensionMismatch {
                got: p.len(),
                expected: self.len(),
            });
        }
        let mut y = vec![0.0; self.len()];
        self.rates.acc_left_mul(p, &mut y);
        for i in 0..self.len() {
            y[i] -= p[i] * self.exit[i];
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A birth–death chain on 0..=n with birth rate λ and death rate μ.
    struct BirthDeath {
        n: u32,
        lambda: f64,
        mu: f64,
    }

    impl MarkovModel for BirthDeath {
        type State = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn transitions(&self, s: &u32, out: &mut Vec<(u32, f64)>) {
            if *s < self.n {
                out.push((s + 1, self.lambda));
            }
            if *s > 0 {
                out.push((s - 1, self.mu));
            }
        }
    }

    #[test]
    fn explores_full_birth_death_chain() {
        let space = StateSpace::explore(&BirthDeath {
            n: 5,
            lambda: 1.0,
            mu: 2.0,
        })
        .unwrap();
        assert_eq!(space.len(), 6);
        assert_eq!(space.initial_index(), 0);
        assert_eq!(space.index_of(&5), Some(5));
        assert!(space.absorbing_states().is_empty());
    }

    #[test]
    fn exit_rates_are_row_sums() {
        let space = StateSpace::explore(&BirthDeath {
            n: 3,
            lambda: 1.5,
            mu: 0.5,
        })
        .unwrap();
        assert_eq!(space.exit_rate(0), 1.5);
        let mid = space.index_of(&1).unwrap();
        assert_eq!(space.exit_rate(mid), 2.0);
        let top = space.index_of(&3).unwrap();
        assert_eq!(space.exit_rate(top), 0.5);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let space = StateSpace::explore(&BirthDeath {
            n: 4,
            lambda: 0.7,
            mu: 1.3,
        })
        .unwrap();
        for i in 0..space.len() {
            let mut p = vec![0.0; space.len()];
            p[i] = 1.0;
            let row = space.apply_generator(&p).unwrap();
            let sum: f64 = row.iter().sum();
            assert!(sum.abs() < 1e-12, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn state_explosion_is_reported() {
        let err = StateSpace::explore_with_limit(
            &BirthDeath {
                n: 100,
                lambda: 1.0,
                mu: 1.0,
            },
            10,
        )
        .unwrap_err();
        assert_eq!(err, CtmcError::StateExplosion { limit: 10 });
    }

    struct NegativeRate;
    impl MarkovModel for NegativeRate {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, _s: &u8, out: &mut Vec<(u8, f64)>) {
            out.push((1, -1.0));
        }
    }

    #[test]
    fn negative_rates_are_rejected() {
        assert!(matches!(
            StateSpace::explore(&NegativeRate),
            Err(CtmcError::InvalidRate { .. })
        ));
    }

    struct Absorbing;
    impl MarkovModel for Absorbing {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((1, 2.0));
            } else {
                // Would be a self-perpetuating expansion if not marked
                // absorbing; transitions from 1 are never requested.
                out.push((2, 1.0));
            }
        }
        fn is_absorbing(&self, s: &u8) -> bool {
            *s == 1
        }
    }

    #[test]
    fn absorbing_states_are_not_expanded() {
        let space = StateSpace::explore(&Absorbing).unwrap();
        assert_eq!(space.len(), 2);
        assert_eq!(space.absorbing_states(), vec![1]);
    }

    struct SelfLoop;
    impl MarkovModel for SelfLoop {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((0, 5.0)); // self-loop: must be dropped
                out.push((1, 1.0));
            }
        }
    }

    #[test]
    fn self_loops_are_dropped() {
        let space = StateSpace::explore(&SelfLoop).unwrap();
        assert_eq!(space.exit_rate(0), 1.0);
    }

    struct Duplicated;
    impl MarkovModel for Duplicated {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((1, 1.0));
                out.push((1, 2.0)); // distinct physical events, same state
            }
        }
    }

    #[test]
    fn duplicate_targets_sum_rates() {
        let space = StateSpace::explore(&Duplicated).unwrap();
        assert_eq!(space.exit_rate(0), 3.0);
        assert_eq!(space.rates().nnz(), 1);
    }

    #[test]
    fn cached_transpose_tracks_rates() {
        let space = StateSpace::explore(&BirthDeath {
            n: 4,
            lambda: 0.7,
            mu: 1.3,
        })
        .unwrap();
        assert_eq!(space.rates_transposed(), &space.rates().transpose());
        let swapped = space
            .with_model_rates(&BirthDeath {
                n: 4,
                lambda: 2.0,
                mu: 0.1,
            })
            .unwrap();
        assert_eq!(swapped.rates_transposed(), &swapped.rates().transpose());
    }

    #[test]
    fn with_model_rates_swaps_rates_over_same_states() {
        let probe = BirthDeath {
            n: 4,
            lambda: 1.0,
            mu: 1.0,
        };
        let space = StateSpace::explore(&probe).unwrap();
        let other = BirthDeath {
            n: 4,
            lambda: 2.5,
            mu: 0.5,
        };
        let swapped = space.with_model_rates(&other).unwrap();
        assert_eq!(swapped.len(), space.len());
        assert_eq!(swapped.states(), space.states());
        assert_eq!(swapped.exit_rate(0), 2.5);
        let mid = swapped.index_of(&2).unwrap();
        assert_eq!(swapped.exit_rate(mid), 3.0);
    }

    #[test]
    fn with_model_rates_rejects_escaping_transitions() {
        let small = BirthDeath {
            n: 2,
            lambda: 1.0,
            mu: 1.0,
        };
        let space = StateSpace::explore(&small).unwrap();
        let bigger = BirthDeath {
            n: 5,
            lambda: 1.0,
            mu: 1.0,
        };
        assert!(matches!(
            space.with_model_rates(&bigger),
            Err(CtmcError::StateExplosion { .. })
        ));
    }

    #[test]
    fn with_model_rates_drops_to_subchain() {
        // A model with mu = 0 over the probe's space: death transitions
        // vanish, exit rates shrink, states stay.
        let probe = BirthDeath {
            n: 3,
            lambda: 1.0,
            mu: 2.0,
        };
        let space = StateSpace::explore(&probe).unwrap();
        // Emulate mu = 0 by a model emitting zero-rate deaths.
        struct BirthOnly;
        impl MarkovModel for BirthOnly {
            type State = u32;
            fn initial_state(&self) -> u32 {
                0
            }
            fn transitions(&self, s: &u32, out: &mut Vec<(u32, f64)>) {
                if *s < 3 {
                    out.push((s + 1, 0.7));
                }
            }
        }
        let sub = space.with_model_rates(&BirthOnly).unwrap();
        let top = sub.index_of(&3).unwrap();
        assert_eq!(sub.exit_rate(top), 0.0);
        assert_eq!(sub.absorbing_states(), vec![top]);
    }
}
