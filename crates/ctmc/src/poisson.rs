//! Poisson probabilities and log-Gamma, in log space.
//!
//! Uniformization weights terms by `Poisson(n; Λt)`; for large `Λt` the
//! early weights underflow f64, so everything is carried as logarithms
//! until the final exponentiation (an underflowing term contributes less
//! than ~1e-323 to a probability and may safely flush to zero).

/// Natural log of the Gamma function via the Lanczos approximation
/// (g = 7, n = 9), accurate to ~1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain");
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` computed through [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    // Small values exactly, via a compact table filled on first principles.
    const TABLE: [f64; 16] = [
        0.0,
        0.0,
        std::f64::consts::LN_2, // ln 2! = ln 2
        1.791_759_469_228_055,
        3.178_053_830_347_945_8,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln P[N = n]` for `N ~ Poisson(mean)`.
///
/// Returns `-inf` for `mean == 0, n > 0`; `0.0` for `mean == 0, n == 0`.
pub fn poisson_ln_pmf(n: u64, mean: f64) -> f64 {
    debug_assert!(mean >= 0.0);
    if mean == 0.0 {
        return if n == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    n as f64 * mean.ln() - mean - ln_factorial(n)
}

/// Iterator over `(n, weight)` Poisson weights, materialized from log
/// space; weights below the f64 floor surface as `0.0`.
#[derive(Debug, Clone)]
pub struct PoissonWeights {
    mean: f64,
    n: u64,
}

impl PoissonWeights {
    /// Weights of `Poisson(mean)` starting at `n = 0`.
    pub fn new(mean: f64) -> Self {
        PoissonWeights { mean, n: 0 }
    }
}

impl Iterator for PoissonWeights {
    type Item = (u64, f64);
    fn next(&mut self) -> Option<(u64, f64)> {
        let n = self.n;
        self.n += 1;
        Some((n, poisson_ln_pmf(n, self.mean).exp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-11);
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_factorial_consistent_with_recurrence() {
        for n in 1..60u64 {
            let expect = ln_factorial(n - 1) + (n as f64).ln();
            assert!(
                (ln_factorial(n) - expect).abs() < 1e-9,
                "n={n}: {} vs {}",
                ln_factorial(n),
                expect
            );
        }
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for &mean in &[0.1, 1.0, 7.3, 42.0] {
            let total: f64 = PoissonWeights::new(mean)
                .take_while(|&(n, _)| (n as f64) < mean + 40.0 * (mean.sqrt() + 1.0))
                .map(|(_, w)| w)
                .sum();
            assert!((total - 1.0).abs() < 1e-10, "mean={mean} total={total}");
        }
    }

    #[test]
    fn poisson_zero_mean_degenerates() {
        assert_eq!(poisson_ln_pmf(0, 0.0), 0.0);
        assert_eq!(poisson_ln_pmf(3, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn large_mean_weights_are_finite_and_peak_near_mean() {
        let mean = 900.0;
        let w_peak = poisson_ln_pmf(900, mean).exp();
        // exp(−900) is beyond the f64 floor (~exp(−745)): flushes to zero.
        let w_early = poisson_ln_pmf(0, mean).exp();
        assert!(w_peak > 0.0 && w_peak < 1.0);
        assert_eq!(w_early, 0.0); // underflows, by design
                                  // ...but its logarithm is exact.
        assert_eq!(poisson_ln_pmf(0, mean), -900.0);
    }
}
