//! Minimal dense linear algebra: LU factorization with partial pivoting.
//!
//! The steady-state and mean-time-to-absorption computations need one
//! dense solve on matrices the size of the (modest) explored state space;
//! a purpose-built LU keeps the workspace free of external linear-algebra
//! dependencies.

use crate::CtmcError;

/// A dense row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `x · self = b` for the row vector `x` (the orientation CTMC
    /// equations use), via LU on the transpose.
    ///
    /// # Errors
    ///
    /// [`CtmcError::SingularSystem`] when no unique solution exists.
    pub fn solve_left(&self, b: &[f64]) -> Result<Vec<f64>, CtmcError> {
        // x·A = b  ⇔  Aᵀ·xᵀ = bᵀ.
        self.transposed().solve(b)
    }

    /// Solves `self · x = b` by LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`CtmcError::SingularSystem`] when a pivot collapses to ~0, or
    /// [`CtmcError::DimensionMismatch`] when `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CtmcError> {
        let n = self.n;
        if b.len() != n {
            return Err(CtmcError::DimensionMismatch {
                got: b.len(),
                expected: n,
            });
        }
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = a[perm[col] * n + col].abs();
            for row in (col + 1)..n {
                let v = a[perm[row] * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < f64::MIN_POSITIVE * 1e4 {
                return Err(CtmcError::SingularSystem);
            }
            perm.swap(col, pivot_row);
            let prow = perm[col];
            let pivot = a[prow * n + col];
            for &r in &perm[(col + 1)..n] {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for c in (col + 1)..n {
                    a[r * n + c] -= factor * a[prow * n + c];
                }
                x[r] -= factor * x[prow];
            }
        }
        // Back substitution.
        let mut out = vec![0.0; n];
        for col in (0..n).rev() {
            let r = perm[col];
            let mut acc = x[r];
            for c in (col + 1)..n {
                acc -= a[r * n + c] * out[c];
            }
            out[col] = acc / a[r * n + col];
        }
        Ok(out)
    }

    /// The transpose.
    pub fn transposed(&self) -> DenseMatrix {
        let n = self.n;
        let mut t = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let m = DenseMatrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solves_small_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]
        let mut m = DenseMatrix::zeros(2);
        m[(0, 0)] = 2.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 3.0;
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [0 1; 1 0] x = [2; 3] → x = [3; 2]
        let mut m = DenseMatrix::zeros(2);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = DenseMatrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        assert_eq!(m.solve(&[1.0, 2.0]), Err(CtmcError::SingularSystem));
    }

    #[test]
    fn solve_left_transposes_correctly() {
        // x·A = b with A = [1 2; 0 1]: x = [b0, b1 − 2·b0].
        let mut m = DenseMatrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 1)] = 1.0;
        let x = m.solve_left(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = DenseMatrix::identity(3);
        assert!(matches!(
            m.solve(&[1.0]),
            Err(CtmcError::DimensionMismatch {
                got: 1,
                expected: 3
            })
        ));
    }

    #[test]
    fn random_matrix_roundtrip() {
        // Deterministic pseudo-random 6x6 system: check A·x = b residual.
        let n = 6;
        let mut m = DenseMatrix::zeros(n);
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
            m[(i, i)] += 3.0; // diagonally dominant → nonsingular
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = m.solve(&b).unwrap();
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += m[(i, j)] * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-10, "row {i}");
        }
    }
}
