//! Steady-state analysis and mean time to absorption.

use crate::dense::DenseMatrix;
use crate::model::StateSpace;
use crate::CtmcError;
use std::fmt::Debug;
use std::hash::Hash;

/// Solves the steady-state equations `π·Q = 0`, `Σπ = 1` by a dense solve
/// (one generator column is replaced by the normalization constraint).
///
/// For chains with absorbing states the solution concentrates on the
/// absorbing set; for irreducible chains it is the equilibrium
/// distribution.
///
/// # Errors
///
/// [`CtmcError::SingularSystem`] if the chain has multiple closed classes
/// (the steady state is then not unique).
pub fn steady_state<S>(space: &StateSpace<S>) -> Result<Vec<f64>, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let n = space.len();
    // Build Qᵀ-like dense system for the row-vector equation π·Q = 0 with
    // the last equation replaced by Σ π_i = 1.
    let mut a = DenseMatrix::zeros(n);
    for i in 0..n {
        for (j, r) in space.rates().row(i) {
            // Column j of π·Q gets +π_i·r.
            a[(j, i)] += r;
        }
        a[(i, i)] -= space.exit_rate(i);
    }
    // Replace the last row with the normalization Σ π = 1.
    for i in 0..n {
        a[(n - 1, i)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let pi = a.solve(&b)?;
    // Guard against spurious solutions from reducible chains: π must be a
    // distribution and must satisfy π·Q ≈ 0.
    if pi.iter().any(|&x| x < -1e-9) {
        return Err(CtmcError::SingularSystem);
    }
    let residual = space.apply_generator(&pi)?;
    let scale = space.max_exit_rate().max(1.0);
    if residual.iter().any(|&r| r.abs() > 1e-8 * scale) {
        return Err(CtmcError::SingularSystem);
    }
    Ok(pi.into_iter().map(|x| x.max(0.0)).collect())
}

/// Mean time to absorption from the initial state.
///
/// Solves `Q_TT · τ = −1` on the transient (non-absorbing) subchain; the
/// entry for the initial state is returned.
///
/// # Errors
///
/// [`CtmcError::NoAbsorbingState`] when every state has an exit;
/// [`CtmcError::SingularSystem`] when absorption is not certain from the
/// initial state (the expectation diverges).
pub fn mean_time_to_absorption<S>(space: &StateSpace<S>) -> Result<f64, CtmcError>
where
    S: Clone + Eq + Hash + Debug,
{
    let absorbing = space.absorbing_states();
    if absorbing.is_empty() {
        return Err(CtmcError::NoAbsorbingState);
    }
    let n = space.len();
    let transient: Vec<usize> = (0..n).filter(|i| space.exit_rate(*i) > 0.0).collect();
    if transient.is_empty() {
        return Ok(0.0);
    }
    let mut pos = vec![usize::MAX; n];
    for (row, &i) in transient.iter().enumerate() {
        pos[i] = row;
    }
    let m = transient.len();
    let mut a = DenseMatrix::zeros(m);
    for (row, &i) in transient.iter().enumerate() {
        a[(row, row)] = -space.exit_rate(i);
        for (j, r) in space.rates().row(i) {
            if pos[j] != usize::MAX {
                a[(row, pos[j])] += r;
            }
        }
    }
    let b = vec![-1.0; m];
    let tau = a.solve(&b)?;
    if tau.iter().any(|&x| !(x.is_finite() && x >= 0.0)) {
        return Err(CtmcError::SingularSystem);
    }
    let init = space.initial_index();
    if pos[init] == usize::MAX {
        return Ok(0.0); // initial state is itself absorbing
    }
    Ok(tau[pos[init]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MarkovModel;

    /// Irreducible two-state chain: 0 --a--> 1, 1 --b--> 0.
    struct Flip {
        a: f64,
        b: f64,
    }
    impl MarkovModel for Flip {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            match s {
                0 => out.push((1, self.a)),
                _ => out.push((0, self.b)),
            }
        }
    }

    #[test]
    fn flip_chain_equilibrium() {
        let space = StateSpace::explore(&Flip { a: 2.0, b: 3.0 }).unwrap();
        let pi = steady_state(&space).unwrap();
        // π0 = b/(a+b), π1 = a/(a+b).
        assert!((pi[0] - 0.6).abs() < 1e-12);
        assert!((pi[1] - 0.4).abs() < 1e-12);
    }

    /// Good -λ-> Fail (absorbing).
    struct Die {
        lambda: f64,
    }
    impl MarkovModel for Die {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            if *s == 0 {
                out.push((1, self.lambda));
            }
        }
    }

    #[test]
    fn absorbing_chain_steady_state_is_the_absorbing_state() {
        let space = StateSpace::explore(&Die { lambda: 0.7 }).unwrap();
        let pi = steady_state(&space).unwrap();
        assert!(pi[0].abs() < 1e-12);
        assert!((pi[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mtta_of_exponential_is_reciprocal_rate() {
        let space = StateSpace::explore(&Die { lambda: 0.25 }).unwrap();
        let mtta = mean_time_to_absorption(&space).unwrap();
        assert!((mtta - 4.0).abs() < 1e-10);
    }

    /// Good <-> Degraded -> Fail: MTTA has a closed form.
    struct Repairable;
    impl MarkovModel for Repairable {
        type State = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
            match s {
                0 => out.push((1, 1.0)),
                1 => {
                    out.push((0, 5.0));
                    out.push((2, 0.2));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn repairable_mtta_closed_form() {
        // τ0 = 1/λ + τ1; τ1 = 1/(μ+δ) + μ/(μ+δ)·τ0, with λ=1, μ=5, δ=0.2:
        // τ1 = (1 + μ·τ0)/(μ+δ); solving: τ0 = (μ+δ+λ)/(λδ) = 6.2/0.2 = 31.
        let space = StateSpace::explore(&Repairable).unwrap();
        let mtta = mean_time_to_absorption(&space).unwrap();
        assert!((mtta - 31.0).abs() < 1e-9, "{mtta}");
    }

    #[test]
    fn mtta_requires_an_absorbing_state() {
        let space = StateSpace::explore(&Flip { a: 1.0, b: 1.0 }).unwrap();
        assert_eq!(
            mean_time_to_absorption(&space),
            Err(CtmcError::NoAbsorbingState)
        );
    }
}
