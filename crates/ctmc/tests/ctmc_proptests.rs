//! Property-based tests of the CTMC engine on randomly generated chains:
//! solver agreement, normalization, monotonicity of absorption.

use proptest::prelude::*;
use rsmem_ctmc::ode::{rkf45, Rkf45Options};
use rsmem_ctmc::rewards::{expected_time_in_states, RewardOptions};
use rsmem_ctmc::uniformization::{
    transient, transient_grid, transient_grid_with, UniformizationOptions, UniformizationWorkspace,
};
use rsmem_ctmc::{MarkovModel, StateSpace};

/// A random chain described by an explicit rate table.
#[derive(Debug, Clone)]
struct TableChain {
    /// rates[i] = outgoing (target, rate) list of state i.
    rates: Vec<Vec<(usize, f64)>>,
}

impl MarkovModel for TableChain {
    type State = usize;
    fn initial_state(&self) -> usize {
        0
    }
    fn transitions(&self, s: &usize, out: &mut Vec<(usize, f64)>) {
        if let Some(row) = self.rates.get(*s) {
            out.extend(row.iter().copied());
        }
    }
}

/// Strategy: a random chain of 2..=8 states with up to 3 outgoing edges
/// per state and rates in (0.01, 5.0). Self-loops are redirected by
/// [`sanitize`] (a CTMC self-loop is a no-op anyway).
fn chain_strategy() -> impl Strategy<Value = TableChain> {
    (2usize..=8).prop_flat_map(|n| {
        let row = prop::collection::vec((0..n, 0.01f64..5.0), 0..=3);
        prop::collection::vec(row, n).prop_map(|rates| TableChain { rates })
    })
}

fn sanitize(mut chain: TableChain) -> TableChain {
    let n = chain.rates.len();
    for i in 0..n {
        for (t, _) in chain.rates[i].iter_mut() {
            if *t == i {
                *t = (i + 1) % n; // never equals i again for n ≥ 2
            }
        }
    }
    chain
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniformization_agrees_with_rkf45(raw in chain_strategy(), t in 0.0f64..5.0) {
        let chain = sanitize(raw);
        let space = StateSpace::explore(&chain).expect("explore");
        let a = transient(&space, t, &UniformizationOptions::default()).expect("uni");
        let b = rkf45(&space, t, &Rkf45Options::default()).expect("ode");
        for j in 0..space.len() {
            prop_assert!((a[j] - b[j]).abs() < 1e-6, "state {j}: {} vs {}", a[j], b[j]);
        }
    }

    #[test]
    fn transient_is_a_distribution(raw in chain_strategy(), t in 0.0f64..20.0) {
        let chain = sanitize(raw);
        let space = StateSpace::explore(&chain).expect("explore");
        let p = transient(&space, t, &UniformizationOptions::default()).expect("uni");
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "sum {total}");
        prop_assert!(p.iter().all(|&x| (-1e-15..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn grid_solve_matches_pointwise(raw in chain_strategy(), t1 in 0.1f64..3.0, t2 in 3.0f64..9.0) {
        let chain = sanitize(raw);
        let space = StateSpace::explore(&chain).expect("explore");
        let opts = UniformizationOptions::default();
        let grid = transient_grid(&space, &[t1, t2], &opts).expect("grid");
        let p1 = transient(&space, t1, &opts).expect("p1");
        let p2 = transient(&space, t2, &opts).expect("p2");
        for j in 0..space.len() {
            prop_assert!((grid[0][j] - p1[j]).abs() < 1e-10);
            prop_assert!((grid[1][j] - p2[j]).abs() < 1e-10);
        }
    }

    #[test]
    fn rewards_sum_to_horizon(raw in chain_strategy(), t in 0.0f64..10.0) {
        let chain = sanitize(raw);
        let space = StateSpace::explore(&chain).expect("explore");
        let l = expected_time_in_states(&space, t, &RewardOptions::default()).expect("rewards");
        let total: f64 = l.iter().sum();
        prop_assert!((total - t).abs() < 1e-7 * t.max(1.0), "sum {total} vs {t}");
        prop_assert!(l.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn workspace_reuse_never_changes_the_answer(
        raw_a in chain_strategy(),
        raw_b in chain_strategy(),
        t1 in 0.1f64..3.0,
        t2 in 3.0f64..9.0,
    ) {
        // One workspace reused across two *different* random chains (and
        // grids of different sizes) must reproduce the fresh-workspace
        // solution exactly — stale buffer contents may not leak through.
        let opts = UniformizationOptions::default();
        let mut ws = UniformizationWorkspace::new();
        for chain in [sanitize(raw_a), sanitize(raw_b)] {
            let space = StateSpace::explore(&chain).expect("explore");
            let p0 = space.initial_distribution();
            let times = [0.0, t1, t2];
            let fresh = transient_grid(&space, &times, &opts).expect("fresh");
            let reused = transient_grid_with(&space, &p0, &times, &opts, &mut ws)
                .expect("reused");
            prop_assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn transposed_rates_stay_in_sync(raw in chain_strategy()) {
        // The cached transpose must hold exactly the rate entries, with
        // rows and columns swapped, for every random chain shape.
        let chain = sanitize(raw);
        let space = StateSpace::explore(&chain).expect("explore");
        let rates = space.rates();
        let rt = space.rates_transposed();
        prop_assert_eq!(rates.nrows(), rt.ncols());
        prop_assert_eq!(rates.ncols(), rt.nrows());
        prop_assert_eq!(rates.nnz(), rt.nnz());
        let mut forward: Vec<(usize, usize, f64)> = (0..rates.nrows())
            .flat_map(|i| rates.row(i).map(move |(j, r)| (i, j, r)))
            .collect();
        let mut swapped: Vec<(usize, usize, f64)> = (0..rt.nrows())
            .flat_map(|j| rt.row(j).map(move |(i, r)| (i, j, r)))
            .collect();
        forward.sort_by(|a, b| a.partial_cmp(b).unwrap());
        swapped.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(forward, swapped);
    }

    #[test]
    fn absorption_is_monotone_in_time(raw in chain_strategy(), t in 0.1f64..5.0) {
        let chain = sanitize(raw);
        let space = StateSpace::explore(&chain).expect("explore");
        let absorbing = space.absorbing_states();
        prop_assume!(!absorbing.is_empty());
        let opts = UniformizationOptions::default();
        let early = transient(&space, t, &opts).expect("early");
        let late = transient(&space, 2.0 * t, &opts).expect("late");
        for &a in &absorbing {
            prop_assert!(late[a] >= early[a] - 1e-10);
        }
    }
}
