//! Proves the solver's O(1)-allocation contract with a counting global
//! allocator: a grid solve through a warm [`UniformizationWorkspace`]
//! allocates only the returned distribution rows — the count is
//! independent of how many Poisson terms the series needs.

use rsmem_ctmc::uniformization::{
    transient_grid_with, UniformizationOptions, UniformizationWorkspace,
};
use rsmem_ctmc::{MarkovModel, StateSpace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Good --λ--> Degraded --λ--> Fail, with scrubbing back to Good: a small
/// cyclic chain whose series needs thousands of terms at large Λt.
struct ScrubbedChain {
    lambda: f64,
    scrub: f64,
}

impl MarkovModel for ScrubbedChain {
    type State = u8;
    fn initial_state(&self) -> u8 {
        0
    }
    fn transitions(&self, s: &u8, out: &mut Vec<(u8, f64)>) {
        match s {
            0 => out.push((1, self.lambda)),
            1 => {
                out.push((2, self.lambda));
                out.push((0, self.scrub));
            }
            _ => {}
        }
    }
}

#[test]
fn warm_workspace_grid_solve_allocates_only_the_output() {
    let space = StateSpace::explore(&ScrubbedChain {
        lambda: 1e-4,
        scrub: 50.0,
    })
    .unwrap();
    let opts = UniformizationOptions::default();
    let mut ws = UniformizationWorkspace::new();
    let times_short: [f64; 4] = [0.0, 0.5, 1.0, 2.0];
    // Λt up to 100: thousands of series terms.
    let times_long: [f64; 4] = [0.0, 0.5, 1.0, 2.0].map(|t| t * 1000.0);

    // Warm the workspace on the *larger* grid first so the measured
    // solves never grow a buffer.
    let p0 = space.initial_distribution();
    transient_grid_with(&space, &p0, &times_long, &opts, &mut ws).unwrap();

    let count = |times: &[f64], ws: &mut UniformizationWorkspace| {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let grid = transient_grid_with(&space, &p0, times, &opts, ws).unwrap();
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        drop(grid);
        after - before
    };

    let short_allocs = count(&times_short, &mut ws);
    let long_allocs = count(&times_long, &mut ws);

    // The only allocations are the returned rows: the Vec of rows plus
    // one Vec per time point — identical for both grids even though the
    // long grid runs ~50× more series terms.
    assert_eq!(
        short_allocs, long_allocs,
        "allocation count must not depend on the term count"
    );
    assert!(
        long_allocs <= 2 * times_long.len() + 2,
        "expected only output allocations, got {long_allocs}"
    );
}
