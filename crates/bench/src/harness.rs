//! Continuous benchmark harness with a regression gate.
//!
//! `rsmem bench` runs a fixed suite — figure regenerations (the paper's
//! headline artifacts), a decode-lattice microbench and a service
//! round-trip bench — measuring each with **min-of-N** timing and a
//! **MAD** (median absolute deviation) noise estimate. Every bench also
//! produces a deterministic FNV-1a fingerprint of its *results*, so a
//! report captures correctness alongside speed.
//!
//! Reports serialize through the shared canonical JSON codec
//! ([`rsmem_obs::json`]), making every `BENCH_<date>.json` a
//! parse→encode fixed point like the rest of the workspace's JSON
//! artifacts. [`compare`] gates a new report against an old one:
//! fingerprint/schema/mode violations are **hard failures** (the run
//! is wrong, not slow); timing is flagged when the new minimum exceeds
//! the old by more than `max(25%, 50 µs, 4·MAD)` — min-of-N plus a MAD
//! guard is robust against scheduler noise on loaded runners.

use rsmem::experiments::{run_with, ExperimentId};
use rsmem::Parallelism;
use rsmem_code::{BatchDecoder, BatchOutcome, DecodeOpts, DecodeOutcome, DecoderBackend, RsCode};
use rsmem_gf::Symbol;
use rsmem_obs::json::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Schema tag of the report JSON.
pub const SCHEMA: &str = "rsmem-bench/1";

/// Minimum absolute slowdown (µs) before timing is ever flagged — the
/// timer itself jitters by a few µs, so sub-50 µs deltas are noise.
pub const MIN_REGRESSION_US: f64 = 50.0;

/// Minimum relative slowdown before timing is flagged.
pub const MIN_REGRESSION_FRACTION: f64 = 0.25;

/// How many noise-widths (MAD) a slowdown must clear.
pub const MAD_MULTIPLIER: f64 = 4.0;

/// One benchmark's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Suite-unique bench name (`fig7`, `decode_lattice`, …).
    pub name: String,
    /// Per-iteration wall times, µs, in execution order.
    pub times_us: Vec<f64>,
    /// Minimum of [`BenchResult::times_us`] — the headline statistic.
    pub min_us: f64,
    /// Median of the iteration times.
    pub median_us: f64,
    /// Median absolute deviation — the noise estimate.
    pub mad_us: f64,
    /// FNV-1a fingerprint of the bench's computed results.
    pub fingerprint: u64,
    /// Symbols processed per iteration — non-zero only for throughput
    /// benches, where it turns `min_us` into symbols/s and (for byte
    /// symbols) GB/s in the rendered report.
    pub symbols: u64,
}

/// A complete `rsmem bench` run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// `"quick"` (CI smoke) or `"full"`.
    pub mode: String,
    /// Workspace version under measurement.
    pub build_version: String,
    /// Git hash under measurement (`"unknown"` outside a checkout).
    pub build_git_hash: String,
    /// The suite results, in execution order.
    pub benches: Vec<BenchResult>,
}

// ------------------------------------------------------------- fingerprints

/// Incremental FNV-1a (64-bit) — deterministic, dependency-free.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ------------------------------------------------------------------- stats

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// `(min, median, MAD)` of a non-empty sample.
fn stats(times: &[f64]) -> (f64, f64, f64) {
    let mut sorted = times.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let min = sorted.first().copied().unwrap_or(0.0);
    let median = median_of_sorted(&sorted);
    let mut deviations: Vec<f64> = times.iter().map(|t| (t - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    (min, median, median_of_sorted(&deviations))
}

/// Times `iterations` runs of `work` (each returning its result
/// fingerprint) and folds them into a [`BenchResult`].
///
/// # Errors
///
/// Propagates `work` errors, and reports intra-run nondeterminism
/// (iterations disagreeing on the fingerprint) as an error — a bench
/// whose answer changes between iterations cannot gate anything.
fn run_bench(
    name: &str,
    iterations: usize,
    mut work: impl FnMut() -> Result<u64, String>,
) -> Result<BenchResult, String> {
    let mut times_us = Vec::with_capacity(iterations);
    let mut fingerprint = None;
    for i in 0..iterations.max(1) {
        let started = Instant::now();
        let fp = work().map_err(|e| format!("bench {name}: {e}"))?;
        times_us.push(started.elapsed().as_secs_f64() * 1e6);
        match fingerprint {
            None => fingerprint = Some(fp),
            Some(expected) if expected == fp => {}
            Some(expected) => {
                return Err(format!(
                    "bench {name}: nondeterministic results \
                     (iteration 0 fingerprint {expected:016x}, iteration {i} {fp:016x})"
                ));
            }
        }
    }
    let (min_us, median_us, mad_us) = stats(&times_us);
    Ok(BenchResult {
        name: name.to_owned(),
        times_us,
        min_us,
        median_us,
        mad_us,
        fingerprint: fingerprint.unwrap_or(0),
        symbols: 0,
    })
}

// ------------------------------------------------------------------- suite

fn figure_fingerprint(id: ExperimentId) -> Result<u64, String> {
    let output = run_with(id, &Parallelism::Auto).map_err(|e| e.to_string())?;
    let mut hash = Fnv::new();
    match (output.figure(), output.table()) {
        (Some(fig), _) => {
            for series in &fig.series {
                hash.write(series.label.as_bytes());
                for &(x, y) in &series.points {
                    hash.write_f64(x);
                    hash.write_f64(y);
                }
            }
        }
        (_, Some(rows)) => {
            for row in rows {
                hash.write(row.label.as_bytes());
                hash.write(&row.decode_cycles.to_le_bytes());
            }
        }
        _ => unreachable!("experiment output is figure or table"),
    }
    Ok(hash.finish())
}

/// A deterministic xorshift-style generator for the decode lattice —
/// self-contained so the bench cannot drift with an RNG shim.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Encode/corrupt/decode RS(18,16) words with both back-ends across a
/// deterministic error/erasure lattice; fingerprints every outcome.
fn decode_lattice() -> Result<u64, String> {
    let code = RsCode::new(18, 16, 8).map_err(|e| e.to_string())?;
    let mut hash = Fnv::new();
    let mut state = 0xDA7E_5EED_u64;
    for case in 0..96u64 {
        let data: Vec<Symbol> = (0..16)
            .map(|_| (splitmix(&mut state) & 0xFF) as Symbol)
            .collect();
        let mut word = code.encode(&data).map_err(|e| e.to_string())?;
        // Sweep inside/on/beyond the er + 2·re ≤ n−k = 2 bound.
        let errors = (case % 4) as usize; // 0..=3 corrupted positions
        let erasures_declared = (case % 3) as usize; // of which this many are declared
        let mut positions = Vec::new();
        while positions.len() < errors {
            let p = (splitmix(&mut state) % 18) as usize;
            if !positions.contains(&p) {
                positions.push(p);
            }
        }
        for &p in &positions {
            let flip = (splitmix(&mut state) & 0xFF) as Symbol;
            word[p] ^= flip.max(1); // never a zero-flip: the position is corrupt
        }
        let erasures: Vec<usize> = positions.iter().copied().take(erasures_declared).collect();
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            match code.decode_with(&word, &erasures, backend) {
                Ok(DecodeOutcome::Clean { data }) => {
                    hash.write(b"clean");
                    for s in &data {
                        hash.write(&s.to_le_bytes());
                    }
                }
                Ok(DecodeOutcome::Corrected { data, .. }) => {
                    hash.write(b"corrected");
                    for s in &data {
                        hash.write(&s.to_le_bytes());
                    }
                }
                Ok(DecodeOutcome::Failure(_)) => hash.write(b"failure"),
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    Ok(hash.finish())
}

/// Folds one decode outcome into a fingerprint — shared by the scalar
/// and batched throughput benches so equal behavior means equal
/// fingerprints. Clean words hash as a bare tag (their data is the
/// unmodified input, not a decoder product); corrected words hash the
/// recovered data so a wrong correction changes the fingerprint.
fn fingerprint_outcome(hash: &mut Fnv, outcome: &DecodeOutcome) {
    match outcome {
        DecodeOutcome::Clean { .. } => hash.write(b"c"),
        DecodeOutcome::Corrected { data, .. } => {
            hash.write(b"corrected");
            for s in data {
                hash.write(&s.to_le_bytes());
            }
        }
        DecodeOutcome::Failure(_) => hash.write(b"failure"),
    }
}

/// Batched counterpart of [`fingerprint_outcome`]: reconstructs the same
/// byte stream from the compact outcome plus the (in-place corrected)
/// word, so `decode_batch` and per-word `decode` fingerprints can be
/// compared directly.
fn fingerprint_batch_outcome(
    hash: &mut Fnv,
    code: &RsCode,
    word: &[Symbol],
    outcome: &BatchOutcome,
) -> Result<(), String> {
    match outcome {
        BatchOutcome::Clean => hash.write(b"c"),
        BatchOutcome::Corrected { .. } => {
            hash.write(b"corrected");
            for s in code.data_of(word).map_err(|e| e.to_string())? {
                hash.write(&s.to_le_bytes());
            }
        }
        BatchOutcome::Failure(_) => hash.write(b"failure"),
    }
    Ok(())
}

/// Deterministic decode corpus mirroring a scrub/read-back mix: mostly
/// clean words (the overwhelmingly common case in the MC campaigns),
/// plus correctable single errors, clobbered declared erasures and the
/// occasional multi-error word that may exceed capability.
fn throughput_corpus(code: &RsCode, words: usize) -> (Vec<Vec<Symbol>>, Vec<Vec<usize>>) {
    let mut state = 0xB17_F00D_u64 ^ ((code.n() as u64) << 32) ^ (code.k() as u64);
    let size = u64::from(code.field().size());
    let mut corpus = Vec::with_capacity(words);
    let mut erasures = Vec::with_capacity(words);
    for i in 0..words {
        let data: Vec<Symbol> = (0..code.k())
            .map(|_| (splitmix(&mut state) % size) as Symbol)
            .collect();
        let mut word = code.encode(&data).expect("valid dataword");
        let mut era = Vec::new();
        // Scrub-representative density: 3 dirty words per 512 (~0.6%),
        // one of each escalation shape, clean everywhere else. Real
        // memory-scrub batches are cleaner still; a dirty word costs
        // both paths the same full scalar decode, so the density mostly
        // sets how much of the measurement escalation noise may claim.
        match i % 512 {
            509 => {
                // One random symbol error (always correctable).
                let p = (splitmix(&mut state) as usize) % code.n();
                word[p] ^= 1 + (splitmix(&mut state) % (size - 1)) as Symbol;
            }
            510 => {
                // One declared erasure, clobbered.
                let p = (splitmix(&mut state) as usize) % code.n();
                word[p] = (splitmix(&mut state) % size) as Symbol;
                era.push(p);
            }
            511 => {
                // Two distinct random errors (beyond t for RS(18,16)).
                let p1 = (splitmix(&mut state) as usize) % code.n();
                let p2 = (p1 + 1 + (splitmix(&mut state) as usize) % (code.n() - 1)) % code.n();
                word[p1] ^= 1 + (splitmix(&mut state) % (size - 1)) as Symbol;
                word[p2] ^= 1 + (splitmix(&mut state) % (size - 1)) as Symbol;
            }
            _ => {} // clean
        }
        corpus.push(word);
        erasures.push(era);
    }
    (corpus, erasures)
}

/// The decode-throughput pair for one code: a scalar per-word baseline
/// (`decode_scalar_*`) and the batched plane (`decode_throughput_*`),
/// fingerprinted identically so the gate proves the batch path computes
/// the same outcomes, not just comparable speed.
fn decode_throughput_benches(
    quick: bool,
    iterations: usize,
    benches: &mut Vec<BenchResult>,
) -> Result<(), String> {
    let words = if quick { 512 } else { 2048 };
    for (tag, n, k) in [("rs18_16", 18usize, 16usize), ("rs36_16", 36, 16)] {
        let code = RsCode::new(n, k, 8).map_err(|e| e.to_string())?;
        let (corpus, erasures) = throughput_corpus(&code, words);
        let symbols = (n * words) as u64;

        let mut scalar = run_bench(&format!("decode_scalar_{tag}"), iterations, || {
            let mut hash = Fnv::new();
            for (word, era) in corpus.iter().zip(&erasures) {
                let outcome = code.decode(word, era).map_err(|e| e.to_string())?;
                fingerprint_outcome(&mut hash, &outcome);
            }
            Ok(hash.finish())
        })?;
        scalar.symbols = symbols;
        let scalar_fp = scalar.fingerprint;
        benches.push(scalar);

        // Steady-state batching: the decoder workspaces, the outcome
        // vector and the word buffers are all reused across iterations;
        // only the refill copy (decode_batch corrects in place) is part
        // of the measured cost.
        let mut decoder = BatchDecoder::new();
        let mut batch_words = corpus.clone();
        let mut outcomes = Vec::new();
        let mut batch = run_bench(&format!("decode_throughput_{tag}"), iterations, || {
            for (dst, src) in batch_words.iter_mut().zip(&corpus) {
                dst.copy_from_slice(src);
            }
            decoder
                .decode_batch(
                    &code,
                    &mut batch_words,
                    &erasures,
                    &DecodeOpts::default(),
                    &mut outcomes,
                )
                .map_err(|e| e.to_string())?;
            let mut hash = Fnv::new();
            for (word, outcome) in batch_words.iter().zip(&outcomes) {
                fingerprint_batch_outcome(&mut hash, &code, word, outcome)?;
            }
            Ok(hash.finish())
        })?;
        batch.symbols = symbols;
        if batch.fingerprint != scalar_fp {
            return Err(format!(
                "decode_throughput_{tag}: batched outcomes diverge from the \
                 scalar baseline (fingerprints {:016x} vs {scalar_fp:016x})",
                batch.fingerprint
            ));
        }
        benches.push(batch);
    }
    Ok(())
}

/// One encode+decode throughput bench per code family, driven through
/// the `MemoryCode` trait object — the cross-family analogue of the RS
/// scalar/batch pair above. Each corpus mixes clean words with one
/// within-capability random error or clobbered declared erasure per
/// eight words, and the fingerprint covers every recovered dataword,
/// so the gate proves each family still computes the same corrections,
/// not just that the decoder runs.
fn family_codec_benches(
    quick: bool,
    iterations: usize,
    benches: &mut Vec<BenchResult>,
) -> Result<(), String> {
    let words = if quick { 256 } else { 1024 };
    let families = [
        ("rs", rsmem::CodeParams::rs18_16()),
        ("rm", rsmem::CodeParams::rm1(5).map_err(|e| e.to_string())?),
        (
            "irs",
            rsmem::CodeParams::interleaved(18, 16, 8, 2).map_err(|e| e.to_string())?,
        ),
    ];
    for (tag, params) in families {
        let code = rsmem::codes::build(params).map_err(|e| e.to_string())?;
        let size = 1u64 << code.symbol_bits();
        let mut state = 0xC0DE_FACE_u64 ^ ((code.n() as u64) << 24) ^ code.k() as u64;
        let mut corpus = Vec::with_capacity(words);
        let mut erasures = Vec::with_capacity(words);
        for i in 0..words {
            let data: Vec<Symbol> = (0..code.k())
                .map(|_| (splitmix(&mut state) % size) as Symbol)
                .collect();
            let mut word = code.encode(&data).map_err(|e| e.to_string())?;
            let mut era = Vec::new();
            match i % 8 {
                3 => {
                    // One declared erasure, clobbered (cost 1 against
                    // every representative's budget).
                    let p = (splitmix(&mut state) as usize) % code.n();
                    word[p] = (splitmix(&mut state) % size) as Symbol;
                    era.push(p);
                }
                7 => {
                    // One random symbol error (cost 2 — still within
                    // even RS(18,16)'s budget of n−k = 2).
                    let p = (splitmix(&mut state) as usize) % code.n();
                    word[p] ^= (1 + splitmix(&mut state) % (size - 1)) as Symbol;
                }
                _ => {} // clean
            }
            corpus.push(word);
            erasures.push(era);
        }
        let mut bench = run_bench(&format!("codec_family_{tag}"), iterations, || {
            let mut hash = Fnv::new();
            for (word, era) in corpus.iter().zip(&erasures) {
                match code.decode(word, era).map_err(|e| e.to_string())? {
                    DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => {
                        for s in &data {
                            hash.write(&s.to_le_bytes());
                        }
                    }
                    DecodeOutcome::Failure(_) => hash.write(b"failure"),
                }
            }
            Ok(hash.finish())
        })?;
        bench.symbols = (code.n() * words) as u64;
        benches.push(bench);
    }
    Ok(())
}

/// One HTTP round trip against `addr`; returns the response body.
fn http_post(addr: std::net::SocketAddr, path: &str, body: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response: {response:?}"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("non-200 response: {head}"));
    }
    Ok(payload.to_owned())
}

/// Boots an ephemeral service, warms the cache with one solve, then
/// measures cache-hit round trips (client + HTTP + cache lookup — the
/// service's steady-state latency).
fn service_roundtrip(iterations: usize) -> Result<BenchResult, String> {
    let server = rsmem_service::Server::bind(rsmem_service::ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..rsmem_service::ServiceConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let body =
        r#"{"system": "duplex", "seu_per_bit_day": 1.7e-5, "scrub_period_s": 900, "points": 9}"#;
    // Warm: the one cache miss pays the solve; it is not measured.
    let warm = http_post(addr, "/v1/analyze", body)?;
    let result = run_bench("service_roundtrip", iterations, || {
        let payload = http_post(addr, "/v1/analyze", body)?;
        if payload != warm {
            return Err("cache hit differs from warm-up response".to_owned());
        }
        let mut hash = Fnv::new();
        hash.write(payload.as_bytes());
        Ok(hash.finish())
    });
    server.shutdown();
    result
}

/// Runs the whole suite. `quick` trims iterations and figure coverage
/// for CI smoke runs; `full` covers fig5–fig8.
///
/// # Errors
///
/// The first failing bench's message (solver errors, service I/O,
/// intra-run nondeterminism).
pub fn run_suite(quick: bool) -> Result<BenchReport, String> {
    let iterations = if quick { 5 } else { 15 };
    let figures = if quick {
        vec![ExperimentId::Fig5, ExperimentId::Fig7]
    } else {
        vec![
            ExperimentId::Fig5,
            ExperimentId::Fig6,
            ExperimentId::Fig7,
            ExperimentId::Fig8,
        ]
    };
    let mut benches = Vec::new();
    for id in figures {
        benches.push(run_bench(id.static_name(), iterations, || {
            figure_fingerprint(id)
        })?);
    }
    // Recorder-overhead probe: fig7 again with the flight recorder
    // scoped on. The fingerprint must match the plain fig7 run
    // (recording must never change results), and gating its timing
    // against the baseline bounds the always-on recording overhead.
    let fig7_fp = benches
        .iter()
        .find(|b| b.name == "fig7")
        .map(|b| b.fingerprint);
    let recorded = run_bench("fig7_recorder", iterations, || {
        let _recording = rsmem_obs::recorder::enable_scoped();
        figure_fingerprint(ExperimentId::Fig7)
    })?;
    if let Some(expected) = fig7_fp {
        if recorded.fingerprint != expected {
            return Err(format!(
                "fig7_recorder: fingerprint {:016x} diverges from fig7's {expected:016x} \
                 (recording changed results)",
                recorded.fingerprint
            ));
        }
    }
    benches.push(recorded);
    // Sampler-overhead probe: fig7 once more with the global time-series
    // sampler enabled at a deliberately aggressive 5 ms interval (200×
    // the service default), so the solver-path `tick()` calls actually
    // frame. Same contract as the recorder probe: the fingerprint must
    // match plain fig7 (sampling never changes results) and comparing
    // its timing against the baseline bounds the sampling overhead.
    let sampled = run_bench("fig7_sampled", iterations, || {
        let sampler = rsmem_obs::timeseries::global();
        rsmem_obs::timeseries::track_solver_defaults(sampler);
        sampler.set_interval(std::time::Duration::from_millis(5));
        sampler.set_enabled(true);
        let result = figure_fingerprint(ExperimentId::Fig7);
        sampler.set_enabled(false);
        result
    })?;
    if let Some(expected) = fig7_fp {
        if sampled.fingerprint != expected {
            return Err(format!(
                "fig7_sampled: fingerprint {:016x} diverges from fig7's {expected:016x} \
                 (sampling changed results)",
                sampled.fingerprint
            ));
        }
    }
    benches.push(sampled);
    benches.push(run_bench("decode_lattice", iterations, decode_lattice)?);
    decode_throughput_benches(quick, iterations, &mut benches)?;
    family_codec_benches(quick, iterations, &mut benches)?;
    benches.push(service_roundtrip(iterations)?);
    let (version, git_hash) = rsmem_obs::build_info();
    Ok(BenchReport {
        mode: if quick { "quick" } else { "full" }.to_owned(),
        build_version: version.to_owned(),
        build_git_hash: git_hash.to_owned(),
        benches,
    })
}

// -------------------------------------------------------------------- JSON

impl BenchReport {
    /// Canonical-JSON document; the encoded form is a parse→encode
    /// fixed point.
    pub fn to_json(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("schema".to_owned(), Value::String(SCHEMA.to_owned()));
        map.insert("mode".to_owned(), Value::String(self.mode.clone()));
        let mut build = BTreeMap::new();
        build.insert(
            "version".to_owned(),
            Value::String(self.build_version.clone()),
        );
        build.insert(
            "git_hash".to_owned(),
            Value::String(self.build_git_hash.clone()),
        );
        map.insert("build".to_owned(), Value::Object(build));
        map.insert(
            "benches".to_owned(),
            Value::Array(
                self.benches
                    .iter()
                    .map(|b| {
                        let mut bench = BTreeMap::new();
                        bench.insert("name".to_owned(), Value::String(b.name.clone()));
                        bench.insert(
                            "times_us".to_owned(),
                            Value::Array(b.times_us.iter().map(|&t| Value::Number(t)).collect()),
                        );
                        bench.insert("min_us".to_owned(), Value::Number(b.min_us));
                        bench.insert("median_us".to_owned(), Value::Number(b.median_us));
                        bench.insert("mad_us".to_owned(), Value::Number(b.mad_us));
                        bench.insert(
                            "fingerprint".to_owned(),
                            Value::String(format!("{:016x}", b.fingerprint)),
                        );
                        // Only throughput benches carry a symbol count;
                        // omitting zero keeps older reports' documents
                        // byte-identical.
                        if b.symbols > 0 {
                            bench.insert("symbols".to_owned(), Value::Number(b.symbols as f64));
                        }
                        Value::Object(bench)
                    })
                    .collect(),
            ),
        );
        Value::Object(map)
    }

    /// Parses a report back from its JSON form.
    ///
    /// # Errors
    ///
    /// A message naming the first schema violation.
    pub fn from_json(value: &Value) -> Result<BenchReport, String> {
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let mode = value
            .get("mode")
            .and_then(Value::as_str)
            .ok_or("missing \"mode\"")?
            .to_owned();
        let build = value.get("build").ok_or("missing \"build\"")?;
        let build_version = build
            .get("version")
            .and_then(Value::as_str)
            .ok_or("missing build.version")?
            .to_owned();
        let build_git_hash = build
            .get("git_hash")
            .and_then(Value::as_str)
            .ok_or("missing build.git_hash")?
            .to_owned();
        let benches_value = match value.get("benches") {
            Some(Value::Array(items)) => items,
            _ => return Err("missing \"benches\" array".to_owned()),
        };
        let mut benches = Vec::with_capacity(benches_value.len());
        for item in benches_value {
            let name = item
                .get("name")
                .and_then(Value::as_str)
                .ok_or("bench missing \"name\"")?
                .to_owned();
            let times_us = match item.get("times_us") {
                Some(Value::Array(times)) => times
                    .iter()
                    .map(|t| {
                        t.as_f64()
                            .ok_or_else(|| format!("bench {name}: non-numeric time"))
                    })
                    .collect::<Result<Vec<f64>, String>>()?,
                _ => return Err(format!("bench {name}: missing \"times_us\"")),
            };
            let number = |key: &str| -> Result<f64, String> {
                item.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("bench {name}: missing \"{key}\""))
            };
            let fingerprint_hex = item
                .get("fingerprint")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("bench {name}: missing \"fingerprint\""))?;
            let fingerprint = u64::from_str_radix(fingerprint_hex, 16)
                .map_err(|_| format!("bench {name}: bad fingerprint {fingerprint_hex:?}"))?;
            // Absent in pre-throughput reports: tolerate and default to 0.
            let symbols = item.get("symbols").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            benches.push(BenchResult {
                min_us: number("min_us")?,
                median_us: number("median_us")?,
                mad_us: number("mad_us")?,
                name,
                times_us,
                fingerprint,
                symbols,
            });
        }
        Ok(BenchReport {
            mode,
            build_version,
            build_git_hash,
            benches,
        })
    }

    /// Human-readable one-line-per-bench summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench ({} mode, v{} @ {}): {} benches",
            self.mode,
            self.build_version,
            self.build_git_hash,
            self.benches.len()
        );
        for b in &self.benches {
            let _ = write!(
                out,
                "  {:<24} min {:>10.1}µs  median {:>10.1}µs  ±{:>7.1}µs  fp {:016x}",
                b.name, b.min_us, b.median_us, b.mad_us, b.fingerprint
            );
            if b.symbols > 0 && b.min_us > 0.0 {
                // Byte symbols throughout the suite: symbols/s is bytes/s.
                let per_sec = b.symbols as f64 / (b.min_us / 1e6);
                let _ = write!(
                    out,
                    "  {:>8.1} Msym/s ({:.3} GB/s)",
                    per_sec / 1e6,
                    per_sec / 1e9
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

// ----------------------------------------------------------------- compare

/// Outcome of gating `new` against `old`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Violations that make the comparison itself invalid or prove the
    /// new build computes *different results*: schema/mode mismatches,
    /// missing benches, fingerprint divergence. Always fatal.
    pub hard_failures: Vec<String>,
    /// Statistically significant slowdowns (min-of-N beyond the noise
    /// guard). Fatal unless the caller opts into warn-only timing.
    pub timing_regressions: Vec<String>,
    /// Non-fatal observations (improvements, new benches).
    pub notes: Vec<String>,
}

impl Comparison {
    /// True when nothing at all was flagged.
    pub fn is_clean(&self) -> bool {
        self.hard_failures.is_empty() && self.timing_regressions.is_empty()
    }

    /// Renders every finding, one per line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for h in &self.hard_failures {
            let _ = writeln!(out, "HARD FAIL: {h}");
        }
        for r in &self.timing_regressions {
            let _ = writeln!(out, "REGRESSION: {r}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        if self.is_clean() {
            let _ = writeln!(out, "comparison clean: no regressions");
        }
        out
    }
}

/// Gates `new` against `old`. See [`Comparison`] for severity classes.
pub fn compare(old: &BenchReport, new: &BenchReport) -> Comparison {
    let mut cmp = Comparison::default();
    if old.mode != new.mode {
        cmp.hard_failures.push(format!(
            "mode mismatch: baseline is {:?}, new run is {:?} (compare like with like)",
            old.mode, new.mode
        ));
        return cmp;
    }
    if old.build_git_hash != new.build_git_hash {
        cmp.notes.push(format!(
            "comparing builds {} → {}",
            old.build_git_hash, new.build_git_hash
        ));
    }
    for old_bench in &old.benches {
        let Some(new_bench) = new.benches.iter().find(|b| b.name == old_bench.name) else {
            cmp.hard_failures.push(format!(
                "bench {:?} missing from new report",
                old_bench.name
            ));
            continue;
        };
        if old_bench.fingerprint != new_bench.fingerprint {
            cmp.hard_failures.push(format!(
                "bench {:?}: result fingerprint changed {:016x} → {:016x} \
                 (the new build computes different numbers)",
                old_bench.name, old_bench.fingerprint, new_bench.fingerprint
            ));
            continue;
        }
        let noise = MAD_MULTIPLIER * old_bench.mad_us.max(new_bench.mad_us);
        let threshold = (MIN_REGRESSION_FRACTION * old_bench.min_us)
            .max(MIN_REGRESSION_US)
            .max(noise);
        let delta = new_bench.min_us - old_bench.min_us;
        if delta > threshold {
            cmp.timing_regressions.push(format!(
                "bench {:?}: min {:.1}µs → {:.1}µs (+{:.0}%, threshold {:.1}µs)",
                old_bench.name,
                old_bench.min_us,
                new_bench.min_us,
                delta / old_bench.min_us * 100.0,
                threshold
            ));
        } else if -delta > threshold {
            cmp.notes.push(format!(
                "bench {:?}: improved {:.1}µs → {:.1}µs",
                old_bench.name, old_bench.min_us, new_bench.min_us
            ));
        }
    }
    for new_bench in &new.benches {
        if !old.benches.iter().any(|b| b.name == new_bench.name) {
            cmp.notes
                .push(format!("bench {:?} is new (no baseline)", new_bench.name));
        }
    }
    cmp
}

// -------------------------------------------------------------------- date

/// Days-since-epoch → (year, month, day), Howard Hinnant's
/// `civil_from_days` (exact for the proleptic Gregorian calendar).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Today's UTC date as `YYYY-MM-DD` — the default `BENCH_<date>.json`
/// file stamp.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsmem_obs::json;

    fn sample_report() -> BenchReport {
        BenchReport {
            mode: "quick".to_owned(),
            build_version: "0.1.0".to_owned(),
            build_git_hash: "abc123def456".to_owned(),
            benches: vec![
                BenchResult {
                    name: "fig7".to_owned(),
                    times_us: vec![400.0, 380.0, 371.5, 390.0, 385.0],
                    min_us: 371.5,
                    median_us: 385.0,
                    mad_us: 5.0,
                    fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                    symbols: 0,
                },
                BenchResult {
                    name: "decode_lattice".to_owned(),
                    times_us: vec![120.0, 118.0, 119.0],
                    min_us: 118.0,
                    median_us: 119.0,
                    mad_us: 1.0,
                    fingerprint: 0x0123_4567_89AB_CDEF,
                    symbols: 9_216,
                },
            ],
        }
    }

    #[test]
    fn stats_min_median_mad() {
        let (min, median, mad) = stats(&[5.0, 1.0, 9.0, 3.0, 7.0]);
        assert_eq!(min, 1.0);
        assert_eq!(median, 5.0);
        // |x−5| = {0,4,4,2,2} → sorted {0,2,2,4,4} → median 2.
        assert_eq!(mad, 2.0);
        let (min, median, _) = stats(&[4.0, 2.0]);
        assert_eq!(min, 2.0);
        assert_eq!(median, 3.0);
    }

    #[test]
    fn report_json_roundtrip_is_canonical() {
        let report = sample_report();
        let encoded = report.to_json().encode();
        let parsed = json::parse(&encoded).expect("valid JSON");
        assert_eq!(parsed.encode(), encoded, "parse→encode fixed point");
        let restored = BenchReport::from_json(&parsed).expect("schema-valid");
        assert_eq!(restored, report);
        assert!(encoded.contains("\"schema\":\"rsmem-bench/1\""));
        assert!(encoded.contains("\"fingerprint\":\"deadbeefcafef00d\""));
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        let bad = json::parse("{\"schema\":\"rsmem-bench/9\"}").unwrap();
        assert!(BenchReport::from_json(&bad).unwrap_err().contains("schema"));
        let bad = json::parse("{\"schema\":\"rsmem-bench/1\"}").unwrap();
        assert!(BenchReport::from_json(&bad).is_err());
    }

    #[test]
    fn self_comparison_is_clean() {
        let report = sample_report();
        let cmp = compare(&report, &report);
        assert!(cmp.is_clean(), "{cmp:?}");
        assert!(cmp.render_text().contains("comparison clean"));
    }

    #[test]
    fn injected_2x_slowdown_on_fig7_is_flagged() {
        // The acceptance scenario: double fig7's measured times and the
        // gate must flag exactly that bench.
        let old = sample_report();
        let mut new = old.clone();
        let fig7 = &mut new.benches[0];
        for t in &mut fig7.times_us {
            *t *= 2.0;
        }
        fig7.min_us *= 2.0;
        fig7.median_us *= 2.0;
        let cmp = compare(&old, &new);
        assert!(cmp.hard_failures.is_empty(), "{cmp:?}");
        assert_eq!(cmp.timing_regressions.len(), 1, "{cmp:?}");
        assert!(cmp.timing_regressions[0].contains("fig7"), "{cmp:?}");
        assert!(!cmp.is_clean());
    }

    #[test]
    fn fingerprint_divergence_is_a_hard_failure() {
        let old = sample_report();
        let mut new = old.clone();
        new.benches[1].fingerprint ^= 1;
        let cmp = compare(&old, &new);
        assert_eq!(cmp.hard_failures.len(), 1, "{cmp:?}");
        assert!(cmp.hard_failures[0].contains("decode_lattice"));
    }

    #[test]
    fn missing_bench_and_mode_mismatch_are_hard_failures() {
        let old = sample_report();
        let mut new = old.clone();
        new.benches.pop();
        let cmp = compare(&old, &new);
        assert!(cmp
            .hard_failures
            .iter()
            .any(|h| h.contains("missing from new report")));

        let mut full = old.clone();
        full.mode = "full".to_owned();
        let cmp = compare(&old, &full);
        assert!(cmp.hard_failures[0].contains("mode mismatch"));
    }

    #[test]
    fn small_jitter_below_floor_is_not_flagged() {
        let old = sample_report();
        let mut new = old.clone();
        new.benches[0].min_us += 40.0; // < 50 µs floor and < 25%
        let cmp = compare(&old, &new);
        assert!(cmp.is_clean(), "{cmp:?}");
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap-adjacent
        assert_eq!(civil_from_days(11_016), (2000, 2, 29)); // leap day
        let today = today_utc();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
    }

    #[test]
    fn decode_lattice_is_deterministic() {
        let a = decode_lattice().unwrap();
        let b = decode_lattice().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn recording_does_not_change_decode_results() {
        // The suite's fig7_recorder probe relies on this invariant: the
        // flight recorder observes the decode pipeline but never feeds
        // back into it, so result fingerprints are recording-blind.
        // (run_suite additionally enforces fig7_recorder == fig7; this
        // checks the cheap lattice so the test binary stays light.)
        let plain = decode_lattice().unwrap();
        let _recording = rsmem_obs::recorder::enable_scoped();
        let recorded = decode_lattice().unwrap();
        assert_eq!(plain, recorded);
    }

    #[test]
    fn throughput_benches_agree_and_beat_scalar() {
        // The scalar baseline and the batched plane must fingerprint
        // identically (run_bench enforces intra-bench determinism; the
        // helper enforces cross-bench equality) — that half is strict
        // everywhere. The issue's ≥3× symbols/s floor is a *release*
        // performance contract: in debug builds the batch plane's SWAR
        // inner loops are unoptimized, and on noisy shared containers
        // (timing MAD above 25% of the minimum) the min-of-N estimator
        // itself is unreliable — in either case the floor is skipped
        // with the reason on stderr instead of failing the suite, and
        // release CI (optimized, quiet timing) still gates it hard.
        let mut benches = Vec::new();
        decode_throughput_benches(true, 25, &mut benches).unwrap();
        assert_eq!(benches.len(), 4);
        for pair in benches.chunks(2) {
            let (scalar, batch) = (&pair[0], &pair[1]);
            assert!(scalar.name.starts_with("decode_scalar_"));
            assert!(batch.name.starts_with("decode_throughput_"));
            assert_eq!(scalar.fingerprint, batch.fingerprint);
            assert_eq!(scalar.symbols, batch.symbols);
            assert!(scalar.symbols > 0);
            let speedup = scalar.min_us / batch.min_us.max(f64::MIN_POSITIVE);
            if batch.min_us * 3.0 <= scalar.min_us {
                continue;
            }
            let noisy = scalar.mad_us > 0.25 * scalar.min_us || batch.mad_us > 0.25 * batch.min_us;
            let skip_reason = if cfg!(debug_assertions) {
                Some("debug build (unoptimized SWAR inner loops)")
            } else if noisy {
                Some("noisy timing (MAD > 25% of min — contended host)")
            } else {
                None
            };
            match skip_reason {
                Some(reason) => eprintln!(
                    "warning: skipping 3x speedup floor for {}: measured {speedup:.2}x — {reason}; \
                     fingerprint agreement still enforced",
                    batch.name
                ),
                None => panic!(
                    "{}: batch {:.1}µs vs scalar {:.1}µs is under 3x ({speedup:.2}x)",
                    batch.name, batch.min_us, scalar.min_us
                ),
            }
        }
    }

    #[test]
    fn sampling_does_not_change_decode_results() {
        // The suite's fig7_sampled probe relies on this invariant: the
        // time-series sampler reads counters, it never feeds back into
        // the decode pipeline. Checked on the cheap lattice with frames
        // forced around the run so sampling provably happened.
        let plain = decode_lattice().unwrap();
        let sampler = rsmem_obs::timeseries::global();
        rsmem_obs::timeseries::track_solver_defaults(sampler);
        sampler.set_interval(std::time::Duration::from_millis(1));
        sampler.set_enabled(true);
        sampler.sample_now();
        let sampled = decode_lattice().unwrap();
        sampler.sample_now();
        sampler.set_enabled(false);
        assert_eq!(plain, sampled);
    }

    #[test]
    fn family_codec_benches_cover_every_family_deterministically() {
        // Two independent runs must agree on every fingerprint (the
        // corpora and decoders are fully deterministic), and each family
        // carries a symbol count so the report renders throughput.
        let mut a = Vec::new();
        family_codec_benches(true, 2, &mut a).unwrap();
        let mut b = Vec::new();
        family_codec_benches(true, 2, &mut b).unwrap();
        let names: Vec<&str> = a.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["codec_family_rs", "codec_family_rm", "codec_family_irs"]
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint, y.fingerprint, "{}", x.name);
            assert!(x.symbols > 0, "{}", x.name);
        }
        // Distinct families see distinct corpora/geometries.
        assert_ne!(a[0].fingerprint, a[1].fingerprint);
        assert_ne!(a[1].fingerprint, a[2].fingerprint);
    }

    #[test]
    fn symbols_field_round_trips_and_renders_throughput() {
        let report = sample_report();
        let encoded = report.to_json().encode();
        // fig7 carries no symbol count → omitted; decode_lattice carries
        // one → present.
        assert!(!encoded.contains("\"symbols\":0"));
        assert!(encoded.contains("\"symbols\":9216"));
        let restored = BenchReport::from_json(&json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(restored, report);
        let text = report.render_text();
        assert!(text.contains("Msym/s"), "{text}");
        assert!(text.contains("GB/s"), "{text}");
    }
}
