//! Shared helpers for the `rsmem-bench` Criterion benches.
//!
//! Each figure bench does two things:
//! 1. prints the regenerated series once (the rows the paper's figure
//!    plots), so `cargo bench` output doubles as the reproduction record;
//! 2. benchmarks the regeneration itself with Criterion.

use rsmem::experiments::{run, ExperimentId};
use rsmem::report;

pub mod harness;

/// Prints the regenerated artifact for `id` (series rows or table), then
/// returns the label Criterion should use.
///
/// # Panics
///
/// Panics if the experiment fails — benches must not silently skip the
/// reproduction.
pub fn print_artifact(id: ExperimentId) -> String {
    let output = run(id).expect("experiment runs");
    match (&output.figure(), &output.table()) {
        (Some(fig), _) => println!("{}", report::render_figure(fig)),
        (_, Some(rows)) => println!("{}", report::render_complexity(rows)),
        _ => unreachable!("output is figure or table"),
    }
    id.to_string()
}

/// Criterion sample configuration for the heavier solves.
pub fn small_sample() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1))
}
