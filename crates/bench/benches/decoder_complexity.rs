//! Paper Section 6 decoder complexity: prints the closed-form comparison
//! table (Td ≈ 3n + 10(n−k); 74 vs 308 cycles) and measures this
//! workspace's *software* decoder on the same codes as an empirical
//! analogue — the paper's ">4× decode latency" claim should reproduce in
//! the worst-case software timing too.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::experiments::ExperimentId;
use rsmem::RsCode;
use rsmem_bench::print_artifact;
use std::hint::black_box;

fn corrupted(code: &RsCode, errors: usize) -> Vec<u16> {
    let data: Vec<u16> = (0..code.k() as u16).collect();
    let mut word = code.encode(&data).expect("encode");
    for i in 0..errors {
        word[(i * 7) % code.n()] ^= 0x35;
    }
    word
}

fn bench(c: &mut Criterion) {
    print_artifact(ExperimentId::Complexity);

    let narrow = RsCode::new(18, 16, 8).expect("RS(18,16)");
    let wide = RsCode::new(36, 16, 8).expect("RS(36,16)");

    for (label, code) in [("rs18_16", &narrow), ("rs36_16", &wide)] {
        let clean = corrupted(code, 0);
        let worst = corrupted(code, code.max_random_errors());
        c.bench_function(&format!("complexity/decode_clean/{label}"), |b| {
            b.iter(|| black_box(code.decode(black_box(&clean), &[]).expect("decode")));
        });
        c.bench_function(&format!("complexity/decode_t_errors/{label}"), |b| {
            b.iter(|| black_box(code.decode(black_box(&worst), &[]).expect("decode")));
        });
        let erased: Vec<usize> = (0..code.parity_symbols()).collect();
        let mut erased_word = corrupted(code, 0);
        for &p in &erased {
            erased_word[p] ^= 0xff & (0xff >> (16 - code.symbol_bits()).min(8));
        }
        c.bench_function(&format!("complexity/decode_full_erasures/{label}"), |b| {
            b.iter(|| {
                black_box(
                    code.decode(black_box(&erased_word), black_box(&erased))
                        .expect("decode"),
                )
            });
        });
    }

    c.bench_function("complexity/encode/rs18_16", |b| {
        let data: Vec<u16> = (0..16).collect();
        b.iter(|| black_box(narrow.encode(black_box(&data)).expect("encode")));
    });
    c.bench_function("complexity/encode/rs36_16", |b| {
        let data: Vec<u16> = (0..16).collect();
        b.iter(|| black_box(wide.encode(black_box(&data)).expect("encode")));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
