//! Reed–Solomon codec throughput: encode/decode bandwidth for the
//! paper's codes and both decoder back-ends, in bytes of user data per
//! second. Complements `decoder_complexity` (per-word latency) with the
//! streaming view a storage system cares about.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rsmem::{DecoderBackend, RsCode};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (label, n, k) in [("rs18_16", 18usize, 16usize), ("rs36_16", 36, 16)] {
        let code = RsCode::new(n, k, 8).expect("paper code");
        let data: Vec<u16> = (0..k as u16).collect();
        let clean = code.encode(&data).expect("encode");
        let mut one_err = clean.clone();
        one_err[n / 2] ^= 0x42;

        let mut group = c.benchmark_group(format!("codec_throughput/{label}"));
        group.throughput(Throughput::Bytes(k as u64)); // user bytes per op

        group.bench_function("encode", |b| {
            b.iter(|| black_box(code.encode(black_box(&data)).expect("encode")));
        });
        group.bench_function("decode_clean_sugiyama", |b| {
            b.iter(|| {
                black_box(
                    code.decode_with(black_box(&clean), &[], DecoderBackend::Sugiyama)
                        .expect("decode"),
                )
            });
        });
        group.bench_function("decode_one_error_sugiyama", |b| {
            b.iter(|| {
                black_box(
                    code.decode_with(black_box(&one_err), &[], DecoderBackend::Sugiyama)
                        .expect("decode"),
                )
            });
        });
        group.bench_function("decode_one_error_berlekamp", |b| {
            b.iter(|| {
                black_box(
                    code.decode_with(black_box(&one_err), &[], DecoderBackend::BerlekampMassey)
                        .expect("decode"),
                )
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
