//! Paper Figure 6: BER of duplex RS(18,16) under three SEU rates —
//! prints the regenerated series and benchmarks the regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::experiments::{run, ExperimentId};
use rsmem_bench::{print_artifact, small_sample};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let label = print_artifact(ExperimentId::Fig6);
    c.bench_function(&format!("{label}/regenerate"), |b| {
        b.iter(|| black_box(run(ExperimentId::Fig6).expect("fig6")));
    });
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
