//! Paper Figure 5: BER of simplex RS(18,16) under three SEU rates over a
//! 48-hour store — prints the regenerated series and benchmarks the
//! end-to-end regeneration (model build → state exploration →
//! uniformization over the full grid).

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::experiments::{run, ExperimentId};
use rsmem_bench::{print_artifact, small_sample};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let label = print_artifact(ExperimentId::Fig5);
    c.bench_function(&format!("{label}/regenerate"), |b| {
        b.iter(|| black_box(run(ExperimentId::Fig5).expect("fig5")));
    });
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
