//! Ablation (extension): multi-bit upsets and interleaving in the
//! whole-memory array simulator.
//!
//! The paper's Markov models assume every SEU corrupts exactly one
//! symbol. Real MBUs flip physically adjacent bits and can straddle a
//! symbol boundary, corrupting two symbols of the same word — which the
//! RS(18,16) (t = 1) cannot survive. This bench prints the measured word
//! failure fractions for the single-bit model, a 4-bit MBU, and the MBU
//! with depth-4 interleaving (which restores the model's single-symbol
//! assumption), then benchmarks the array simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem_sim::array::{run_simplex_array, ArrayConfig};
use rsmem_sim::SimConfig;
use std::hint::black_box;

fn config(mbu: u32, depth: usize) -> ArrayConfig {
    ArrayConfig {
        base: SimConfig {
            seu_per_bit_day: 1e-3, // accelerated for measurable statistics
            erasure_per_symbol_day: 0.0,
            scrub: None,
            store_days: 2.0,
            ..SimConfig::rs18_16_baseline()
        },
        words: 32,
        mbu_width_bits: mbu,
        interleave_depth: depth,
    }
}

fn bench(c: &mut Criterion) {
    println!("MBU / interleaving ablation (32-word array, λ = 1e-3/bit/day, 2 days):\n");
    println!(
        "{:<34} {:>16} {:>14}",
        "scenario", "word failures", "95% CI"
    );
    for (label, mbu, depth) in [
        ("single-bit SEU (paper model)", 1u32, 1usize),
        ("4-bit MBU, no interleaving", 4, 1),
        ("4-bit MBU, depth-4 interleave", 4, 4),
    ] {
        let report = run_simplex_array(&config(mbu, depth), 150, 2024).expect("array run");
        println!(
            "{label:<34} {:>16.4} [{:.4}, {:.4}]",
            report.word_failure_fraction, report.wilson_95.0, report.wilson_95.1
        );
    }
    println!();

    c.bench_function("ablation_mbu/array_150x32_words", |b| {
        let cfg = config(4, 4);
        b.iter(|| black_box(run_simplex_array(black_box(&cfg), 10, 7).expect("run")));
    });
}

criterion_group! {
    name = benches;
    config = criterion::Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
