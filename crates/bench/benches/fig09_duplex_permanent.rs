//! Paper Figure 9: duplex RS(18,16) over 24 months under permanent-fault
//! rates 1e-4 … 1e-10 — the probabilities descend to ~1e-60, exercising
//! the cancellation-free uniformization path.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::experiments::{run, ExperimentId};
use rsmem_bench::{print_artifact, small_sample};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let label = print_artifact(ExperimentId::Fig9);
    c.bench_function(&format!("{label}/regenerate"), |b| {
        b.iter(|| black_box(run(ExperimentId::Fig9).expect("fig9")));
    });
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
