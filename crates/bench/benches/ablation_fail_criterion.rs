//! Ablation (DESIGN.md §2 note 2): the duplex fail criterion.
//!
//! The paper's brace condition requires BOTH words decodable (the
//! default); the optimistic reading lets the arbiter survive while EITHER
//! word decodes. This bench prints the Fig. 6/Fig. 9-style endpoints
//! under both criteria — quantifying how much the interpretation matters
//! (orders of magnitude under transient faults, nothing under pure
//! permanent faults) — and benchmarks both model solves.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::units::{ErasureRate, SeuRate, Time};
use rsmem::{CodeParams, DuplexFailCriterion, DuplexOptions, MemorySystem};
use rsmem_bench::small_sample;
use std::hint::black_box;

fn with_criterion(fc: DuplexFailCriterion, seu: f64, erasure: f64) -> MemorySystem {
    MemorySystem::duplex(CodeParams::rs18_16())
        .with_seu_rate(SeuRate::per_bit_day(seu))
        .with_erasure_rate(ErasureRate::per_symbol_day(erasure))
        .with_duplex_options(DuplexOptions {
            fail_criterion: fc,
            ..Default::default()
        })
}

fn bench(c: &mut Criterion) {
    println!("duplex fail-criterion ablation (BER at horizon):\n");
    println!(
        "{:<34} {:>14} {:>14} {:>10}",
        "scenario", "BothWords", "EitherWord", "ratio"
    );
    let scenarios: [(&str, f64, f64, Time); 3] = [
        (
            "transient λ=1.7e-5, 48 h",
            1.7e-5,
            0.0,
            Time::from_hours(48.0),
        ),
        (
            "permanent λe=1e-6, 24 mo",
            0.0,
            1e-6,
            Time::from_months(24.0),
        ),
        (
            "mixed λ=1.7e-5 λe=1e-6, 48 h",
            1.7e-5,
            1e-6,
            Time::from_hours(48.0),
        ),
    ];
    for (label, seu, erasure, t) in scenarios {
        let both = with_criterion(DuplexFailCriterion::BothWords, seu, erasure)
            .ber_curve(&[t])
            .expect("solve")
            .ber[0];
        let either = with_criterion(DuplexFailCriterion::EitherWord, seu, erasure)
            .ber_curve(&[t])
            .expect("solve")
            .ber[0];
        let ratio = if either > 0.0 {
            both / either
        } else {
            f64::NAN
        };
        println!("{label:<34} {both:>14.4e} {either:>14.4e} {ratio:>10.2e}");
    }
    println!();

    let t = [Time::from_hours(48.0)];
    for (name, fc) in [
        ("both_words", DuplexFailCriterion::BothWords),
        ("either_word", DuplexFailCriterion::EitherWord),
    ] {
        let system = with_criterion(fc, 1.7e-5, 1e-7);
        c.bench_function(&format!("ablation_fail_criterion/{name}"), |b| {
            b.iter(|| black_box(system.ber_curve(black_box(&t)).expect("solve")));
        });
    }
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
