//! Paper Figure 10: simplex RS(36,16) over 24 months under permanent-
//! fault rates 1e-4 … 1e-10 — the paper's y-axis reaches 1e-200; the
//! 122-state chain and deep-tail probabilities make this the heaviest
//! permanent-fault solve.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::experiments::{run, ExperimentId};
use rsmem_bench::{print_artifact, small_sample};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let label = print_artifact(ExperimentId::Fig10);
    c.bench_function(&format!("{label}/regenerate"), |b| {
        b.iter(|| black_box(run(ExperimentId::Fig10).expect("fig10")));
    });
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
