//! Paper Figure 7: duplex RS(18,16) at the worst-case SEU rate under
//! four scrubbing periods. The scrubbing transitions put ~10^2 events of
//! Poisson mass on the uniformization series, so this is the heaviest
//! transient-fault solve — benchmarked per scrub period as well as for
//! the whole figure.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::experiments::{run, ExperimentId, WORST_CASE_SEU};
use rsmem::units::{SeuRate, Time, TimeGrid};
use rsmem::{CodeParams, MemorySystem, Scrubbing};
use rsmem_bench::{print_artifact, small_sample};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let label = print_artifact(ExperimentId::Fig7);
    c.bench_function(&format!("{label}/regenerate"), |b| {
        b.iter(|| black_box(run(ExperimentId::Fig7).expect("fig7")));
    });

    let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 25);
    for period_s in [900.0, 3600.0] {
        let system = MemorySystem::duplex(CodeParams::rs18_16())
            .with_seu_rate(SeuRate::per_bit_day(WORST_CASE_SEU))
            .with_scrubbing(Scrubbing::every_seconds(period_s));
        c.bench_function(&format!("{label}/solve_tsc_{period_s}s"), |b| {
            b.iter(|| black_box(system.ber_curve(grid.points()).expect("solve")));
        });
    }
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
