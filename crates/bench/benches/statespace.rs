//! State-space scaling: how large the paper's Markov chains get and how
//! fast exploration is — simplex vs duplex, narrow vs wide code, with
//! and without scrubbing. Prints the state counts DESIGN.md quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::units::{ErasureRate, SeuRate, Time};
use rsmem::{CodeParams, DuplexModel, FaultRates, Scrubbing, SimplexModel};
use rsmem_bench::small_sample;
use rsmem_ctmc::StateSpace;
use std::hint::black_box;

fn rates() -> FaultRates {
    FaultRates {
        seu: SeuRate::per_bit_day(1.7e-5),
        erasure: ErasureRate::per_symbol_day(1e-6),
    }
}

fn bench(c: &mut Criterion) {
    let scrub = Scrubbing::Periodic {
        period: Time::from_seconds(900.0),
    };
    println!("explored state counts (mixed fault environment):\n");
    let configs: Vec<(String, usize)> = vec![
        (
            "simplex RS(18,16)".into(),
            StateSpace::explore(&SimplexModel::new(
                CodeParams::rs18_16(),
                rates(),
                Scrubbing::None,
            ))
            .expect("explore")
            .len(),
        ),
        (
            "simplex RS(36,16)".into(),
            StateSpace::explore(&SimplexModel::new(
                CodeParams::rs36_16(),
                rates(),
                Scrubbing::None,
            ))
            .expect("explore")
            .len(),
        ),
        (
            "duplex RS(18,16)".into(),
            StateSpace::explore(&DuplexModel::new(
                CodeParams::rs18_16(),
                rates(),
                Scrubbing::None,
            ))
            .expect("explore")
            .len(),
        ),
        (
            "duplex RS(18,16) + scrub".into(),
            StateSpace::explore(&DuplexModel::new(CodeParams::rs18_16(), rates(), scrub))
                .expect("explore")
                .len(),
        ),
    ];
    for (label, count) in &configs {
        println!("  {label:<28} {count:>8} states");
    }
    println!();

    c.bench_function("statespace/simplex_rs18_16", |b| {
        let model = SimplexModel::new(CodeParams::rs18_16(), rates(), Scrubbing::None);
        b.iter(|| black_box(StateSpace::explore(&model).expect("explore")));
    });
    c.bench_function("statespace/simplex_rs36_16", |b| {
        let model = SimplexModel::new(CodeParams::rs36_16(), rates(), Scrubbing::None);
        b.iter(|| black_box(StateSpace::explore(&model).expect("explore")));
    });
    c.bench_function("statespace/duplex_rs18_16", |b| {
        let model = DuplexModel::new(CodeParams::rs18_16(), rates(), Scrubbing::None);
        b.iter(|| black_box(StateSpace::explore(&model).expect("explore")));
    });
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
