//! Paper Figure 8: simplex RS(18,16) over 24 months under permanent-fault
//! rates 1e-4 … 1e-10 per symbol per day.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::experiments::{run, ExperimentId};
use rsmem_bench::{print_artifact, small_sample};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let label = print_artifact(ExperimentId::Fig8);
    c.bench_function(&format!("{label}/regenerate"), |b| {
        b.iter(|| black_box(run(ExperimentId::Fig8).expect("fig8")));
    });
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
