//! Ablation: the three transient solvers on the paper's models.
//!
//! Prints a cross-check row (the three solvers' fail probabilities on one
//! Fig. 5 point and one Fig. 8 point) and benchmarks each solver —
//! showing why uniformization is the default: similar speed to the
//! adaptive ODE at small Λt, full relative accuracy in the deep tail
//! where the ODE output is numerically zero, and no acyclicity
//! requirement like the path solver.

use criterion::{criterion_group, criterion_main, Criterion};
use rsmem::units::{ErasureRate, SeuRate};
use rsmem::{CodeParams, FaultRates, MemoryModel, Scrubbing, SimplexModel};
use rsmem_bench::small_sample;
use rsmem_ctmc::ode::{rkf45, Rkf45Options};
use rsmem_ctmc::paths::{absorption_bounds, PathOptions};
use rsmem_ctmc::uniformization::{transient, UniformizationOptions};
use rsmem_ctmc::StateSpace;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cases = [
        (
            "fig5_point (λ=1.7e-5, 48 h)",
            FaultRates {
                seu: SeuRate::per_bit_day(1.7e-5),
                erasure: ErasureRate::per_symbol_day(0.0),
            },
            2.0,
        ),
        (
            "fig8_point (λe=1e-6, 24 mo)",
            FaultRates {
                seu: SeuRate::per_bit_day(0.0),
                erasure: ErasureRate::per_symbol_day(1e-6),
            },
            730.0,
        ),
    ];

    println!("solver cross-check on simplex RS(18,16) (P_fail):\n");
    println!(
        "{:<30} {:>14} {:>14} {:>14} {:>14}",
        "case", "uniformization", "rkf45", "paths lower", "paths upper"
    );
    for (label, rates, t) in &cases {
        let model = SimplexModel::new(CodeParams::rs18_16(), *rates, Scrubbing::None);
        let space = StateSpace::explore(&model).expect("explore");
        let fail = space.index_of(&model.fail_state()).expect("reachable");
        let uni = transient(&space, *t, &UniformizationOptions::default()).expect("uni")[fail];
        let ode = rkf45(&space, *t, &Rkf45Options::default()).expect("rkf45")[fail];
        let bounds = absorption_bounds(&space, fail, *t, &PathOptions::default()).expect("paths");
        println!(
            "{label:<30} {uni:>14.6e} {ode:>14.6e} {:>14.6e} {:>14.6e}",
            bounds.lower(),
            bounds.upper()
        );
    }
    println!();

    for (label, rates, t) in cases {
        let short = label.split_whitespace().next().expect("label");
        let model = SimplexModel::new(CodeParams::rs18_16(), rates, Scrubbing::None);
        let space = StateSpace::explore(&model).expect("explore");
        let fail = space.index_of(&model.fail_state()).expect("reachable");
        c.bench_function(&format!("ablation_solvers/{short}/uniformization"), |b| {
            b.iter(|| {
                black_box(transient(&space, t, &UniformizationOptions::default()).expect("uni"))
            });
        });
        c.bench_function(&format!("ablation_solvers/{short}/rkf45"), |b| {
            b.iter(|| black_box(rkf45(&space, t, &Rkf45Options::default()).expect("rkf45")));
        });
        c.bench_function(&format!("ablation_solvers/{short}/path_bounds"), |b| {
            b.iter(|| {
                black_box(
                    absorption_bounds(&space, fail, t, &PathOptions::default()).expect("paths"),
                )
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = small_sample();
    targets = bench
}
criterion_main!(benches);
