//! # rsmem-obs — observability backbone for the rsmem workspace
//!
//! Everything the rest of the workspace needs to explain *what the
//! solvers did*, built entirely on `std` (the workspace builds offline):
//!
//! * [`log`] — structured events and timed spans with key/value fields
//!   and per-request **trace IDs**, emitted to stderr as JSON-lines
//!   (canonical, machine-parseable) or human-readable text. Output is
//!   selected by `RSMEM_LOG` (e.g. `json`, `text:info`,
//!   `json:debug:ctmc`) or programmatically; when logging is off a
//!   disabled event costs one relaxed atomic load and **zero heap
//!   allocations**.
//! * [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms rendered in the Prometheus text exposition format
//!   (with correct label-value escaping). Handles are cheap atomics;
//!   the [`metrics::global`] registry collects solver-level series that
//!   the service's `/metrics` endpoint exposes next to its HTTP series.
//! * [`progress`] — rate-limited one-line progress reporting for long
//!   CLI runs, routed through the event pipeline when logging is
//!   configured (so `RSMEM_LOG=json` keeps stderr pure JSON-lines).
//! * [`json`] — the canonical JSON codec the event pipeline and
//!   `rsmem-service` share (moved here from the service so the two
//!   layers cannot drift apart).
//! * [`profile`] — a hierarchical self-profiler fed by the span stream:
//!   call counts, total/self wall time and latency histograms per call
//!   tree position, thread-aware across the workspace's worker pools,
//!   with the same zero-allocation disabled path as the event pipeline.
//!   Surfaced as `rsmem profile …` reports and the service's
//!   `GET /debug/profile` endpoint.
//! * [`recorder`] — an always-on flight recorder: lock-free per-thread
//!   ring buffers of compact binary event records (span open/close,
//!   decode outcomes, arbiter decisions) plus a reservoir-sampled
//!   failure-exemplar channel, for post-hoc forensics on the rare
//!   events the aggregates only count. Surfaced as `rsmem trace …`
//!   timelines and the service's `GET /debug/flightrecorder` endpoint,
//!   with the same zero-allocation disabled path as the other systems.
//! * [`timeseries`] — a lock-free-on-the-disabled-path metrics sampler:
//!   a fixed-capacity ring of registry snapshots taken on a configurable
//!   interval, with windowed per-second rates and histogram quantiles
//!   (p50/p90/p99 by bucket interpolation) and a canonical-JSON frame
//!   schema (`rsmem-metrics/1`). Feeds the service's
//!   `GET /debug/metrics/history`, the `GET /v1/stream/metrics`
//!   streaming endpoint and the `rsmem top` dashboard.
//! * [`watchdog`] — declarative SLO rules (p99 latency, error rate,
//!   cache hit ratio, decode-failure rate, MC silent-corruption rate)
//!   evaluated over the sampler's sliding window; edge-triggered breach
//!   events, `rsmem_slo_breaches_total{rule}` counters and automatic
//!   flight-recorder exemplars on breach.
//! * [`clock`] — the injectable monotonic clock shared by every
//!   rate-limited component ([`Progress`], the sampler), so throttling
//!   is tested deterministically instead of by sleeping.
//!
//! Trace IDs flow through a thread-local: [`log::trace_scope`]
//! establishes the current ID, worker pools capture and re-establish it
//! inside their scoped threads, so a cache miss's solver spans carry the
//! ID of the HTTP request that caused them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod recorder;
pub mod timeseries;
pub mod watchdog;

pub use log::{event, span, span_at, Level, LogConfig, LogFormat, Sink, Span};
pub use metrics::{build_info, global, register_build_info, Counter, Gauge, Histogram, Registry};
pub use progress::Progress;
