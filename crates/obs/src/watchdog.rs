//! Declarative SLO watchdogs over the time-series ring.
//!
//! A [`Watchdog`] holds a set of [`SloRule`]s — "p99 latency above
//! 100 ms", "decode failures above 5/s", "cache hit ratio below 10%" —
//! and evaluates them against a [`Sampler`]'s sliding window after each
//! new frame. Detection is **edge-triggered**: entering breach emits
//! one structured `slo_breach` warn event, increments
//! `rsmem_slo_breaches_total{rule}` in the global registry, and offers
//! a flight-recorder exemplar (for latency rules, stamped with the
//! trace ID of the histogram's max-bucket exemplar so the slow request
//! links straight to `rsmem trace` output); leaving breach emits one
//! `slo_recovered` info event. A rule that stays broken does not spam.
//!
//! The watchdog itself has no hot-path hook — it runs on whichever
//! thread drives sampling (the service's sampler thread, a test) — so
//! it needs no disabled-path discipline beyond the sampler's.

use crate::log::{event, Level};
use crate::metrics::Counter;
use crate::recorder::{self, Exemplar};
use crate::timeseries::Sampler;
use std::sync::Mutex;

/// How a rule turns a window of frames into a value to compare.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// `quantile(q)` of histogram series `series` over the window
    /// (delta distribution); breaches when **above** the threshold.
    QuantileAbove {
        /// Tracked histogram series name.
        series: &'static str,
        /// Quantile in `[0, 1]`, e.g. `0.99`.
        q: f64,
    },
    /// Per-second rate of scalar series `series` over the window;
    /// breaches when **above** the threshold.
    RateAbove {
        /// Tracked scalar (counter/closure) series name.
        series: &'static str,
    },
    /// `Δhits / (Δhits + Δmisses)` over the window; breaches when
    /// **below** the threshold. No verdict while both deltas are zero —
    /// an idle cache is not a broken cache.
    HitRatioBelow {
        /// Tracked hit-counter series name.
        hits: &'static str,
        /// Tracked miss-counter series name.
        misses: &'static str,
    },
}

/// One service-level objective, evaluated over a sliding window of
/// sampler frames.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Stable rule name — the `rule` label of
    /// `rsmem_slo_breaches_total` and the `rule` field of alert events.
    pub name: &'static str,
    /// What to measure.
    pub kind: RuleKind,
    /// Sliding window, in frames (clamped to ≥ 2 for deltas).
    pub window: usize,
    /// Breach threshold; the comparison direction is the kind's.
    pub threshold: f64,
}

/// An edge-triggered breach notification returned by
/// [`Watchdog::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The breached rule's name.
    pub rule: &'static str,
    /// The measured value that crossed the threshold.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

struct RuleState {
    rule: SloRule,
    breaches: Counter,
    breached: bool,
}

/// A set of SLO rules with per-rule breach state. See the module docs.
pub struct Watchdog {
    states: Mutex<Vec<RuleState>>,
}

impl Watchdog {
    /// Builds a watchdog over `rules`, resolving each rule's
    /// `rsmem_slo_breaches_total{rule}` counter in the global registry
    /// up front (so `/metrics` shows every rule at `0` from startup).
    pub fn new(rules: Vec<SloRule>) -> Watchdog {
        let registry = crate::metrics::global();
        registry.declare_counter("rsmem_slo_breaches_total");
        let states = rules
            .into_iter()
            .map(|rule| RuleState {
                breaches: registry.counter("rsmem_slo_breaches_total", &[("rule", rule.name)]),
                breached: false,
                rule,
            })
            .collect();
        Watchdog {
            states: Mutex::new(states),
        }
    }

    /// Evaluates every rule against `sampler`'s current window and
    /// returns the rules that *entered* breach on this evaluation.
    /// Call after each new frame (re-evaluating an unchanged window is
    /// harmless — edges cannot re-fire).
    pub fn evaluate(&self, sampler: &Sampler) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut states = self.states.lock().expect("watchdog lock");
        for state in states.iter_mut() {
            let Some(value) = measure(&state.rule, sampler) else {
                continue; // not enough frames / idle: no verdict either way
            };
            let breach = match state.rule.kind {
                RuleKind::QuantileAbove { .. } | RuleKind::RateAbove { .. } => {
                    value > state.rule.threshold
                }
                RuleKind::HitRatioBelow { .. } => value < state.rule.threshold,
            };
            if breach && !state.breached {
                state.breached = true;
                state.breaches.inc();
                on_breach(&state.rule, value, sampler);
                alerts.push(Alert {
                    rule: state.rule.name,
                    value,
                    threshold: state.rule.threshold,
                });
            } else if !breach && state.breached {
                state.breached = false;
                event(Level::Info, "obs.watchdog", "slo_recovered")
                    .field("rule", state.rule.name)
                    .field("value", value)
                    .field("threshold", state.rule.threshold)
                    .emit();
            }
        }
        alerts
    }

    /// Names of the rules currently in breach.
    pub fn active(&self) -> Vec<&'static str> {
        self.states
            .lock()
            .expect("watchdog lock")
            .iter()
            .filter(|s| s.breached)
            .map(|s| s.rule.name)
            .collect()
    }
}

/// The rule's current measurement over the sampler window, if one can
/// be made.
fn measure(rule: &SloRule, sampler: &Sampler) -> Option<f64> {
    match &rule.kind {
        RuleKind::QuantileAbove { series, q } => {
            let window = sampler.window_histogram(series, rule.window)?;
            if window.count == 0 {
                return None; // no observations this window
            }
            window.quantile(*q)
        }
        RuleKind::RateAbove { series } => sampler.window_rate(series, rule.window),
        RuleKind::HitRatioBelow { hits, misses } => {
            let frames = sampler.window(rule.window.max(2));
            let (first, last) = (frames.first()?, frames.last()?);
            let delta_hits = last.scalar(hits)? - first.scalar(hits)?;
            let delta_misses = last.scalar(misses)? - first.scalar(misses)?;
            let total = delta_hits + delta_misses;
            if total <= 0.0 {
                return None;
            }
            Some(delta_hits / total)
        }
    }
}

/// One-time actions on entering breach: the warn event and the
/// flight-recorder exemplar.
fn on_breach(rule: &SloRule, value: f64, sampler: &Sampler) {
    event(Level::Warn, "obs.watchdog", "slo_breach")
        .field("rule", rule.name)
        .field("value", value)
        .field("threshold", rule.threshold)
        .emit();
    // Latency rules carry the offending request's trace: the sampled
    // histogram's exemplar is the most recent max-bucket observation,
    // i.e. (one of) the slow requests that caused the breach.
    let trace_id = match &rule.kind {
        RuleKind::QuantileAbove { series, .. } => sampler
            .histogram_handle(series)
            .and_then(|h| h.exemplar())
            .map_or(0, |e| e.trace_id),
        _ => 0,
    };
    let (name, threshold) = (rule.name, rule.threshold);
    recorder::record_exemplar_with("slo-breach", || Exemplar {
        code: name.to_owned(),
        trace_id,
        detail: format!("rule {name}: value {value} crossed threshold {threshold}"),
        ..Default::default()
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::metrics::{Counter, Histogram};
    use std::time::Duration;

    fn manual_sampler() -> (ManualClock, Sampler) {
        let (control, clock) = ManualClock::new();
        (
            control,
            Sampler::with_clock(16, Duration::from_secs(1), clock),
        )
    }

    fn breaches(rule: &str) -> u64 {
        crate::metrics::global()
            .find_counter("rsmem_slo_breaches_total", &[("rule", rule)])
            .map_or(0, |c| c.get())
    }

    #[test]
    fn rate_rule_fires_once_per_burst_and_recovers() {
        let (clock, sampler) = manual_sampler();
        let failures = Counter::standalone();
        sampler.track_counter("failures", failures.clone());
        sampler.set_enabled(true);
        let watchdog = Watchdog::new(vec![SloRule {
            name: "wd_test_failure_rate",
            kind: RuleKind::RateAbove { series: "failures" },
            window: 3,
            threshold: 5.0,
        }]);

        sampler.maybe_sample();
        assert!(
            watchdog.evaluate(&sampler).is_empty(),
            "one frame: no verdict"
        );

        // A burst: 100 failures in one second → 100/s ≫ 5/s.
        failures.add(100);
        clock.advance(Duration::from_secs(1));
        sampler.maybe_sample();
        let alerts = watchdog.evaluate(&sampler);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "wd_test_failure_rate");
        assert!(alerts[0].value > 5.0);
        assert_eq!(breaches("wd_test_failure_rate"), 1);
        assert_eq!(watchdog.active(), vec!["wd_test_failure_rate"]);

        // Still breached next frame: edge-triggered, no second alert.
        failures.add(100);
        clock.advance(Duration::from_secs(1));
        sampler.maybe_sample();
        assert!(watchdog.evaluate(&sampler).is_empty());
        assert_eq!(breaches("wd_test_failure_rate"), 1);

        // The burst ends; the window drains and the rule recovers.
        for _ in 0..4 {
            clock.advance(Duration::from_secs(1));
            sampler.maybe_sample();
        }
        assert!(watchdog.evaluate(&sampler).is_empty());
        assert!(watchdog.active().is_empty(), "recovered after the burst");
        assert_eq!(breaches("wd_test_failure_rate"), 1);

        // A second burst is a new edge.
        failures.add(100);
        clock.advance(Duration::from_secs(1));
        sampler.maybe_sample();
        assert_eq!(watchdog.evaluate(&sampler).len(), 1);
        assert_eq!(breaches("wd_test_failure_rate"), 2);
    }

    #[test]
    fn quantile_rule_breaches_and_captures_a_trace_linked_exemplar() {
        let (clock, sampler) = manual_sampler();
        let latency = Histogram::with_bounds(&[100, 1_000, 100_000]);
        sampler.track_histogram("lat_us", latency.clone());
        sampler.set_enabled(true);
        let watchdog = Watchdog::new(vec![SloRule {
            name: "wd_test_latency_p99",
            kind: RuleKind::QuantileAbove {
                series: "lat_us",
                q: 0.99,
            },
            window: 3,
            threshold: 10_000.0,
        }]);

        let _recording = recorder::enable_scoped();
        sampler.maybe_sample();
        watchdog.evaluate(&sampler);
        // Slow observations under a trace: the histogram exemplar picks
        // up the trace ID, the breach exemplar links to it.
        {
            let _t = crate::log::trace_scope(0xD00F);
            for _ in 0..10 {
                latency.observe(90_000.0);
            }
        }
        clock.advance(Duration::from_secs(1));
        sampler.maybe_sample();
        let alerts = watchdog.evaluate(&sampler);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].value > 10_000.0);

        let snapshot = recorder::snapshot();
        let exemplar = snapshot
            .exemplars
            .iter()
            .find(|e| e.kind == "slo-breach")
            .expect("breach exemplar captured");
        assert_eq!(exemplar.trace_id, 0xD00F, "linked to the slow trace");
        assert_eq!(exemplar.code, "wd_test_latency_p99");
        assert!(exemplar.detail.contains("crossed threshold"));
    }

    #[test]
    fn hit_ratio_rule_ignores_idle_windows() {
        let (clock, sampler) = manual_sampler();
        let (hits, misses) = (Counter::standalone(), Counter::standalone());
        sampler.track_counter("hits", hits.clone());
        sampler.track_counter("misses", misses.clone());
        sampler.set_enabled(true);
        let watchdog = Watchdog::new(vec![SloRule {
            name: "wd_test_hit_ratio",
            kind: RuleKind::HitRatioBelow {
                hits: "hits",
                misses: "misses",
            },
            window: 4,
            threshold: 0.5,
        }]);

        // Idle frames: no lookups, no verdict, no breach.
        for _ in 0..3 {
            sampler.maybe_sample();
            clock.advance(Duration::from_secs(1));
            assert!(watchdog.evaluate(&sampler).is_empty());
        }
        // A miss-heavy window breaches.
        misses.add(9);
        hits.add(1);
        sampler.maybe_sample();
        let alerts = watchdog.evaluate(&sampler);
        assert_eq!(alerts.len(), 1);
        assert!((alerts[0].value - 0.1).abs() < 1e-9);
    }
}
