//! Always-on flight recorder: per-thread ring buffers of compact binary
//! event records, plus a reservoir-sampled failure-exemplar channel.
//!
//! The aggregates of [`crate::metrics`] and [`crate::profile`] answer
//! *how often* and *how long*; this module answers *which one*. Every
//! span open/close, decode outcome and arbiter decision is written as a
//! fixed-size binary record into a **lock-free per-thread ring**, so
//! when something rare goes wrong — a beyond-bound miscorrection, an
//! arbiter incident, a panic — the recent event history is still there
//! to be replayed (`rsmem trace …`, service `GET /debug/flightrecorder`).
//!
//! ## Record rings
//!
//! Each thread owns a fixed-capacity ring of [`AtomicU64`] slots. The
//! writer (always the owning thread) stamps every record with a
//! wraparound-safe sequence number using a seqlock protocol — stamp
//! odd while writing, even when complete, [`std::sync::atomic::fence`]s
//! on both sides — so a snapshot taken from another thread mid-wrap
//! either sees a record whole or skips it; it can never observe a torn
//! mix of two records. Rings register themselves in a global list on
//! first use and outlive their thread, so a worker's history survives
//! for post-mortem inspection.
//!
//! The disabled path (the default) is **two relaxed atomic loads and
//! zero heap allocations** — the same contract the log and profile
//! gates prove in the crate's `alloc_count` test.
//!
//! ## Failure exemplars
//!
//! When a decode fails, a differential oracle catches a miscorrection,
//! an arbiter rejects malformed input, or a panic unwinds, callers
//! offer an [`Exemplar`] — code parameters, trace id, the exact
//! error/erasure pattern, syndromes, the back-ends' verdicts and a
//! ready-to-paste reproduction. Exemplars are **reservoir-sampled per
//! kind** ([`EXEMPLARS_PER_KIND`]), so the steady-state cost of the
//! millionth detected failure is O(1) — bump a counter, draw one
//! pseudo-random number, usually build nothing — while rare kinds
//! (miscorrections, panics) can never be crowded out by common ones.
//! The reservoir RNG is a [`SplitMix64`-style] stream seeded by
//! [`set_reservoir_seed`], so a pinned seed makes the kept sample a
//! deterministic function of the offered sequence.
//!
//! ## Epochs
//!
//! [`snapshot_and_reset`] atomically captures everything and starts a
//! new epoch: ring floors advance to the current heads and the
//! reservoirs restart (re-seeded), mirroring `/debug/profile?reset=1`.
//! Records written by in-flight spans during the swap land in the next
//! epoch — never in both.
//!
//! [`SplitMix64`-style]: https://prng.di.unimi.it/splitmix64.c

use crate::json::Value;
use crate::log::{current_trace_id, format_trace_id};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Schema tag of the JSON dump.
pub const SCHEMA: &str = "rsmem-trace/1";

/// Records each per-thread ring holds before overwriting the oldest.
pub const RING_CAPACITY: usize = 512;

/// Reservoir capacity per exemplar kind.
pub const EXEMPLARS_PER_KIND: usize = 8;

/// Payload words per record (kind/ids pack, timestamp, trace, a, b).
const WORDS: usize = 5;

/// Slot stride: one stamp word plus the payload.
const STRIDE: usize = WORDS + 1;

/// Default reservoir seed (overridable via [`set_reservoir_seed`]).
const DEFAULT_RESERVOIR_SEED: u64 = 0x5EED_F11E_7D0C_0DE5;

/// What a ring record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum RecordKind {
    /// A span was opened (`a`/`b` unused).
    SpanOpen = 1,
    /// A span closed; `a` carries `elapsed_us`.
    SpanClose = 2,
    /// A decode finished; `a` encodes the outcome, `b` a detail count.
    Decode = 3,
    /// An arbiter decision; `a` encodes the branch taken.
    Arbiter = 4,
    /// An exemplar was frozen; `a` carries its capture sequence.
    Exemplar = 5,
}

impl RecordKind {
    /// Stable lowercase name used in rendered output.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::SpanOpen => "span_open",
            RecordKind::SpanClose => "span_close",
            RecordKind::Decode => "decode",
            RecordKind::Arbiter => "arbiter",
            RecordKind::Exemplar => "exemplar",
        }
    }

    fn from_u8(v: u8) -> Option<RecordKind> {
        match v {
            1 => Some(RecordKind::SpanOpen),
            2 => Some(RecordKind::SpanClose),
            3 => Some(RecordKind::Decode),
            4 => Some(RecordKind::Arbiter),
            5 => Some(RecordKind::Exemplar),
            _ => None,
        }
    }
}

// ------------------------------------------------------------------- gate

/// The manual gate — `false` means every hook returns immediately
/// (unless a [`enable_scoped`] guard is alive).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Live [`enable_scoped`] guards; recording is on while any exist.
static SCOPES: AtomicU64 = AtomicU64::new(0);

/// Current epoch; bumped by [`snapshot_and_reset`].
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Turns the recorder on or off. Off (the default) restores the
/// two-relaxed-load, zero-allocation path; recorded history is kept
/// until the next reset.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when events are currently being recorded. Two relaxed loads.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || SCOPES.load(Ordering::Relaxed) > 0
}

/// Keeps the recorder on while alive; see [`enable_scoped`].
#[must_use = "recording stops when the guard drops"]
#[derive(Debug)]
pub struct RecorderGuard(());

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Enables recording for the guard's lifetime, reference-counted so
/// overlapping scopes (a traced stress run, concurrently dispatched
/// commands in one process) keep recording until the *last* scope ends.
/// Independent of [`set_enabled`]: a permanently enabled recorder (the
/// service) stays on after every guard is gone.
pub fn enable_scoped() -> RecorderGuard {
    SCOPES.fetch_add(1, Ordering::Relaxed);
    RecorderGuard(())
}

/// The current epoch number.
pub fn epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------- interning

/// Global table resolving interned string ids back to the strings.
/// Targets and names are `&'static str`, so the table only ever grows
/// by distinct call sites (a few dozen across the workspace).
static STRINGS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    /// Per-thread intern cache keyed by the `&'static str` data pointer,
    /// so the global lock is taken once per (thread, string) — the hot
    /// path is a thread-local hash probe.
    static INTERN_CACHE: std::cell::RefCell<HashMap<(usize, usize), u16>> =
        std::cell::RefCell::new(HashMap::new());
}

fn intern(s: &'static str) -> u16 {
    let key = (s.as_ptr() as usize, s.len());
    INTERN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&id) = cache.get(&key) {
            return id;
        }
        let mut table = STRINGS.lock().unwrap_or_else(|e| e.into_inner());
        let id = match table.iter().position(|&t| t == s) {
            Some(i) => u16::try_from(i).unwrap_or(u16::MAX),
            None => {
                let i = table.len();
                if i >= usize::from(u16::MAX) {
                    // Table full: fold everything else onto the last id.
                    u16::MAX - 1
                } else {
                    table.push(s);
                    u16::try_from(i).expect("bounded above")
                }
            }
        };
        drop(table);
        cache.insert(key, id);
        id
    })
}

fn resolve_strings() -> Vec<String> {
    STRINGS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|s| (*s).to_owned())
        .collect()
}

// -------------------------------------------------------------------- rings

/// One thread's ring. The owning thread is the only writer; snapshots
/// read concurrently through the per-slot seqlock stamps.
struct Ring {
    /// Stable id assigned at registration (reported as `thread`).
    thread: u32,
    /// Next sequence number to write (also the count of records ever
    /// written to this ring). Stored *after* the record completes.
    head: AtomicU64,
    /// Sequences below this are excluded from snapshots (epoch reset).
    floor: AtomicU64,
    /// `RING_CAPACITY` slots of `STRIDE` words each. Word 0 is the
    /// stamp: `0` = never written, `2·seq+1` = seq in progress,
    /// `2·seq+2` = seq complete.
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(thread: u32) -> Ring {
        Ring {
            thread,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..RING_CAPACITY * STRIDE)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Writes one record. Caller must be the owning thread.
    fn write(&self, kind: RecordKind, target: u16, name: u16, a: u64, b: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let base = (seq as usize % RING_CAPACITY) * STRIDE;
        let packed = u64::from(kind as u8) | (u64::from(target) << 16) | (u64::from(name) << 32);
        // Seqlock write: odd stamp, fence, payload, fence, even stamp.
        self.slots[base].store(2 * seq + 1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        self.slots[base + 1].store(packed, Ordering::Relaxed);
        self.slots[base + 2].store(crate::log::ts_now_us(), Ordering::Relaxed);
        self.slots[base + 3].store(current_trace_id().unwrap_or(0), Ordering::Relaxed);
        self.slots[base + 4].store(a, Ordering::Relaxed);
        self.slots[base + 5].store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        self.slots[base].store(2 * seq + 2, Ordering::Relaxed);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Copies every complete, in-epoch record. Records being overwritten
    /// during the copy fail the stamp re-check and are skipped.
    fn collect(&self, out: &mut Vec<SnapshotEvent>) -> u64 {
        let floor = self.floor.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        for slot in 0..RING_CAPACITY {
            let base = slot * STRIDE;
            let s1 = self.slots[base].load(Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // empty or mid-write
            }
            let payload: [u64; WORDS] =
                std::array::from_fn(|w| self.slots[base + 1 + w].load(Ordering::Relaxed));
            fence(Ordering::SeqCst);
            let s2 = self.slots[base].load(Ordering::Relaxed);
            if s2 != s1 {
                continue; // overwritten mid-copy
            }
            let seq = (s1 - 2) / 2;
            if seq < floor {
                continue; // previous epoch
            }
            let Some(kind) = RecordKind::from_u8((payload[0] & 0xFF) as u8) else {
                continue;
            };
            out.push(SnapshotEvent {
                thread: self.thread,
                seq,
                kind,
                target: ((payload[0] >> 16) & 0xFFFF) as u16,
                name: ((payload[0] >> 32) & 0xFFFF) as u16,
                ts_us: payload[1],
                trace_id: payload[2],
                a: payload[3],
                b: payload[4],
            })
        }
        // Overwritten-before-snapshot records are gone for good.
        (head.saturating_sub(floor)).saturating_sub(RING_CAPACITY as u64)
    }
}

fn rings() -> MutexGuard<'static, Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// This thread's ring, registered on first record.
    static MY_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

fn with_ring(f: impl FnOnce(&Ring)) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let mut all = rings();
            let ring = Arc::new(Ring::new(u32::try_from(all.len()).unwrap_or(u32::MAX)));
            all.push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

// -------------------------------------------------------------------- hooks

/// Records a span opening. No-op (one relaxed load) when disabled.
pub fn record_span_open(target: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    let (t, n) = (intern(target), intern(name));
    with_ring(|r| r.write(RecordKind::SpanOpen, t, n, 0, 0));
}

/// Records a span closing with its measured wall time.
pub fn record_span_close(target: &'static str, name: &'static str, elapsed_us: u64) {
    if !enabled() {
        return;
    }
    let (t, n) = (intern(target), intern(name));
    with_ring(|r| r.write(RecordKind::SpanClose, t, n, elapsed_us, 0));
}

/// Records a decode outcome or arbiter decision (`kind` must be
/// [`RecordKind::Decode`] or [`RecordKind::Arbiter`]); `a`/`b` carry
/// kind-specific codes documented at the call sites.
pub fn record_event(kind: RecordKind, target: &'static str, name: &'static str, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let (t, n) = (intern(target), intern(name));
    with_ring(|r| r.write(kind, t, n, a, b));
}

// ---------------------------------------------------------------- exemplars

/// A frozen failure sample: everything needed to reproduce one rare
/// event offline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exemplar {
    /// Stable kind slug: `"decode-failure"`, `"miscorrection"`,
    /// `"arbiter-reject"`, `"mc-silent-corruption"`, `"panic"`, …
    pub kind: &'static str,
    /// Code parameters in spec form (e.g. `"rs:18,16,8"`), empty when
    /// not applicable.
    pub code: String,
    /// Trace id active at capture; `0` = none.
    pub trace_id: u64,
    /// The received word — the exact error pattern, when applicable.
    pub word: Vec<u32>,
    /// Declared erasure positions.
    pub erasures: Vec<u32>,
    /// Syndromes of the received word.
    pub syndromes: Vec<u32>,
    /// Per-back-end verdicts (e.g. `"sugiyama: Failure(KeyEquation)"`).
    pub verdicts: Vec<String>,
    /// Free-text detail line.
    pub detail: String,
    /// A ready-to-paste reproduction (may be empty).
    pub repro: String,
    /// Capture sequence (how many exemplars of this kind were offered
    /// before this one, this epoch).
    pub seq: u64,
}

struct Reservoir {
    seen: u64,
    slots: Vec<Exemplar>,
}

struct Exemplars {
    rng: u64,
    by_kind: BTreeMap<&'static str, Reservoir>,
    seed: u64,
}

fn exemplars() -> MutexGuard<'static, Exemplars> {
    static STORE: OnceLock<Mutex<Exemplars>> = OnceLock::new();
    STORE
        .get_or_init(|| {
            Mutex::new(Exemplars {
                rng: DEFAULT_RESERVOIR_SEED,
                by_kind: BTreeMap::new(),
                seed: DEFAULT_RESERVOIR_SEED,
            })
        })
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Re-seeds the reservoir RNG (and restarts its stream). With a pinned
/// seed the kept sample is a deterministic function of the sequence of
/// offers — the stress harness relies on this for reproducible runs.
pub fn set_reservoir_seed(seed: u64) {
    let mut store = exemplars();
    store.seed = seed;
    store.rng = seed;
}

/// Offers an exemplar of `kind`. The builder runs **only when the
/// reservoir accepts** — the steady-state rejected path is a counter
/// bump and one RNG draw, no allocation beyond the lock. Returns true
/// when the exemplar was kept.
pub fn record_exemplar_with(kind: &'static str, build: impl FnOnce() -> Exemplar) -> bool {
    if !enabled() {
        return false;
    }
    let mut store = exemplars();
    let mut rng = store.rng;
    let reservoir = store.by_kind.entry(kind).or_insert_with(|| Reservoir {
        seen: 0,
        slots: Vec::new(),
    });
    let seq = reservoir.seen;
    reservoir.seen += 1;
    let slot = if reservoir.slots.len() < EXEMPLARS_PER_KIND {
        reservoir.slots.push(Exemplar::default());
        Some(reservoir.slots.len() - 1)
    } else {
        // Vitter's algorithm R: replace a uniform slot with probability
        // capacity/seen, keeping every offer equally likely to survive.
        let j = (splitmix(&mut rng) % reservoir.seen) as usize;
        (j < EXEMPLARS_PER_KIND).then_some(j)
    };
    let kept = slot.is_some();
    if let Some(j) = slot {
        let mut exemplar = build();
        exemplar.kind = kind;
        exemplar.seq = seq;
        if exemplar.trace_id == 0 {
            exemplar.trace_id = current_trace_id().unwrap_or(0);
        }
        reservoir.slots[j] = exemplar;
    }
    store.rng = rng;
    drop(store);
    if kept {
        record_event(RecordKind::Exemplar, "recorder", kind, seq, 0);
    }
    kept
}

// ----------------------------------------------------------------- snapshot

/// One decoded ring record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEvent {
    /// Ring id of the writing thread.
    pub thread: u32,
    /// Per-ring wraparound-safe sequence number.
    pub seq: u64,
    /// Record kind.
    pub kind: RecordKind,
    /// Interned target id — index into [`Snapshot::strings`].
    pub target: u16,
    /// Interned name id — index into [`Snapshot::strings`].
    pub name: u16,
    /// Microseconds since process start.
    pub ts_us: u64,
    /// Trace id active when the record was written; `0` = none.
    pub trace_id: u64,
    /// Kind-specific payload word.
    pub a: u64,
    /// Kind-specific payload word.
    pub b: u64,
}

/// A consistent capture of the recorder's state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Epoch the events belong to.
    pub epoch: u64,
    /// Whether recording was enabled at capture time.
    pub enabled: bool,
    /// Interned-string table; `SnapshotEvent::target`/`name` index it.
    pub strings: Vec<String>,
    /// All readable records, ordered by (ts_us, thread, seq).
    pub events: Vec<SnapshotEvent>,
    /// Records overwritten before they could be captured.
    pub dropped: u64,
    /// Rings (≈ threads) that recorded at least once.
    pub threads: usize,
    /// The sampled failure exemplars, grouped by kind then capture order.
    pub exemplars: Vec<Exemplar>,
    /// Total exemplars offered this epoch (kept + rejected), by kind.
    pub exemplars_seen: Vec<(String, u64)>,
}

impl Snapshot {
    /// Resolves an interned id against the snapshot's string table.
    pub fn string(&self, id: u16) -> &str {
        self.strings
            .get(usize::from(id))
            .map_or("<unknown>", String::as_str)
    }
}

fn capture(reset: bool) -> Snapshot {
    // Lock order: rings, then exemplars; both held across the floor
    // swap so the epoch boundary is atomic (like profile's snapshot).
    let all = rings();
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in all.iter() {
        dropped += ring.collect(&mut events);
        if reset {
            ring.floor
                .store(ring.head.load(Ordering::Acquire), Ordering::Relaxed);
        }
    }
    let threads = all.len();
    events.sort_by_key(|e| (e.ts_us, e.thread, e.seq));
    let mut store = exemplars();
    let mut kept = Vec::new();
    let mut seen = Vec::new();
    for (kind, reservoir) in &store.by_kind {
        let mut slots = reservoir.slots.clone();
        slots.sort_by_key(|e| e.seq);
        kept.extend(slots);
        seen.push(((*kind).to_owned(), reservoir.seen));
    }
    if reset {
        store.by_kind.clear();
        let seed = store.seed;
        store.rng = seed;
    }
    drop(store);
    let epoch = if reset {
        EPOCH.fetch_add(1, Ordering::Relaxed)
    } else {
        EPOCH.load(Ordering::Relaxed)
    };
    drop(all);
    Snapshot {
        epoch,
        enabled: enabled(),
        strings: resolve_strings(),
        events,
        dropped,
        threads,
        exemplars: kept,
        exemplars_seen: seen,
    }
}

/// Captures the current epoch without disturbing it.
pub fn snapshot() -> Snapshot {
    capture(false)
}

/// Atomically captures everything and starts a fresh epoch: ring floors
/// advance past every captured record and the exemplar reservoirs
/// restart from their seed. The `?reset=1` semantics of
/// `GET /debug/flightrecorder`, matching `/debug/profile`.
pub fn snapshot_and_reset() -> Snapshot {
    capture(true)
}

// ---------------------------------------------------------------- rendering

fn exemplar_to_json(e: &Exemplar) -> Value {
    let mut map = BTreeMap::new();
    map.insert("kind".to_owned(), Value::String(e.kind.to_owned()));
    map.insert("seq".to_owned(), Value::Number(e.seq as f64));
    if !e.code.is_empty() {
        map.insert("code".to_owned(), Value::String(e.code.clone()));
    }
    if e.trace_id != 0 {
        map.insert(
            "trace_id".to_owned(),
            Value::String(format_trace_id(e.trace_id)),
        );
    }
    let nums = |xs: &[u32]| Value::Array(xs.iter().map(|&v| Value::Number(f64::from(v))).collect());
    if !e.word.is_empty() {
        map.insert("word".to_owned(), nums(&e.word));
    }
    if !e.erasures.is_empty() {
        map.insert("erasures".to_owned(), nums(&e.erasures));
    }
    if !e.syndromes.is_empty() {
        map.insert("syndromes".to_owned(), nums(&e.syndromes));
    }
    if !e.verdicts.is_empty() {
        map.insert(
            "verdicts".to_owned(),
            Value::Array(
                e.verdicts
                    .iter()
                    .map(|v| Value::String(v.clone()))
                    .collect(),
            ),
        );
    }
    if !e.detail.is_empty() {
        map.insert("detail".to_owned(), Value::String(e.detail.clone()));
    }
    if !e.repro.is_empty() {
        map.insert("repro".to_owned(), Value::String(e.repro.clone()));
    }
    Value::Object(map)
}

/// Canonical-JSON document (schema [`SCHEMA`]); the encoded form is a
/// parse→encode fixed point like every other workspace JSON artifact.
pub fn to_json(snapshot: &Snapshot) -> Value {
    let mut map = BTreeMap::new();
    map.insert("schema".to_owned(), Value::String(SCHEMA.to_owned()));
    map.insert("epoch".to_owned(), Value::Number(snapshot.epoch as f64));
    map.insert("enabled".to_owned(), Value::Bool(snapshot.enabled));
    map.insert("dropped".to_owned(), Value::Number(snapshot.dropped as f64));
    map.insert("threads".to_owned(), Value::Number(snapshot.threads as f64));
    map.insert(
        "events".to_owned(),
        Value::Array(
            snapshot
                .events
                .iter()
                .map(|e| {
                    let mut ev = BTreeMap::new();
                    ev.insert("thread".to_owned(), Value::Number(f64::from(e.thread)));
                    ev.insert("seq".to_owned(), Value::Number(e.seq as f64));
                    ev.insert("kind".to_owned(), Value::String(e.kind.as_str().to_owned()));
                    ev.insert(
                        "target".to_owned(),
                        Value::String(snapshot.string(e.target).to_owned()),
                    );
                    ev.insert(
                        "name".to_owned(),
                        Value::String(snapshot.string(e.name).to_owned()),
                    );
                    ev.insert("ts_us".to_owned(), Value::Number(e.ts_us as f64));
                    if e.trace_id != 0 {
                        ev.insert(
                            "trace_id".to_owned(),
                            Value::String(format_trace_id(e.trace_id)),
                        );
                    }
                    ev.insert("a".to_owned(), Value::Number(e.a as f64));
                    ev.insert("b".to_owned(), Value::Number(e.b as f64));
                    Value::Object(ev)
                })
                .collect(),
        ),
    );
    map.insert(
        "exemplars".to_owned(),
        Value::Array(snapshot.exemplars.iter().map(exemplar_to_json).collect()),
    );
    map.insert(
        "exemplars_seen".to_owned(),
        Value::Object(
            snapshot
                .exemplars_seen
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                .collect(),
        ),
    );
    Value::Object(map)
}

/// Renders one exemplar as indented text (shared by the timeline and
/// the stress/sim divergence reports).
pub fn render_exemplar_text(e: &Exemplar) -> String {
    let mut out = String::new();
    let _ = write!(out, "[{}]", e.kind);
    if !e.code.is_empty() {
        let _ = write!(out, " {}", e.code);
    }
    if e.trace_id != 0 {
        let _ = write!(out, " trace={}", format_trace_id(e.trace_id));
    }
    if !e.detail.is_empty() {
        let _ = write!(out, " — {}", e.detail);
    }
    let _ = writeln!(out);
    if !e.word.is_empty() {
        let _ = writeln!(out, "  word:      {:?}", e.word);
    }
    if !e.erasures.is_empty() {
        let _ = writeln!(out, "  erasures:  {:?}", e.erasures);
    }
    if !e.syndromes.is_empty() {
        let _ = writeln!(out, "  syndromes: {:?}", e.syndromes);
    }
    for verdict in &e.verdicts {
        let _ = writeln!(out, "  verdict:   {verdict}");
    }
    if !e.repro.is_empty() {
        let _ = writeln!(out, "  reproduction (paste as a unit test):");
        for line in e.repro.lines() {
            let _ = writeln!(out, "    {line}");
        }
    }
    out
}

/// Renders the snapshot as a trace-id-grouped timeline: one block per
/// trace (untraced events last), span open/close pairs indented as a
/// tree, exemplars appended.
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: epoch {}, {} event(s) on {} thread(s), {} dropped, {} exemplar(s)",
        snapshot.epoch,
        snapshot.events.len(),
        snapshot.threads,
        snapshot.dropped,
        snapshot.exemplars.len()
    );
    // Group by trace id, preserving first-appearance order; 0 (no
    // trace) sorts last.
    let mut traces: Vec<u64> = Vec::new();
    for e in &snapshot.events {
        if !traces.contains(&e.trace_id) {
            traces.push(e.trace_id);
        }
    }
    if let Some(pos) = traces.iter().position(|&t| t == 0) {
        traces.remove(pos);
        traces.push(0);
    }
    for trace in traces {
        let events: Vec<&SnapshotEvent> = snapshot
            .events
            .iter()
            .filter(|e| e.trace_id == trace)
            .collect();
        if trace == 0 {
            let _ = writeln!(out, "untraced ({} event(s))", events.len());
        } else {
            let _ = writeln!(
                out,
                "trace {} ({} event(s))",
                format_trace_id(trace),
                events.len()
            );
        }
        // Span nesting depth per thread within this trace.
        let mut depth: HashMap<u32, usize> = HashMap::new();
        for e in &events {
            let d = depth.entry(e.thread).or_insert(0);
            if e.kind == RecordKind::SpanClose {
                *d = d.saturating_sub(1);
            }
            let indent = "  ".repeat(*d + 1);
            let _ = write!(
                out,
                "{indent}[t{} +{}µs] {} {} {}",
                e.thread,
                e.ts_us,
                e.kind.as_str(),
                snapshot.string(e.target),
                snapshot.string(e.name)
            );
            match e.kind {
                RecordKind::SpanOpen => {
                    *d += 1;
                }
                RecordKind::SpanClose => {
                    let _ = write!(out, " ({}µs)", e.a);
                }
                _ => {
                    let _ = write!(out, " a={} b={}", e.a, e.b);
                }
            }
            let _ = writeln!(out);
        }
    }
    if !snapshot.exemplars.is_empty() {
        let _ = writeln!(out, "exemplars:");
        for e in &snapshot.exemplars {
            for line in render_exemplar_text(e).lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::log::trace_scope;

    /// Serializes tests that touch the global recorder state (shares
    /// the log/profile test lock: spans feed all three systems).
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::log::test_env_lock()
    }

    fn fresh() {
        set_enabled(true);
        set_reservoir_seed(DEFAULT_RESERVOIR_SEED);
        let _ = snapshot_and_reset();
    }

    #[test]
    fn scoped_enables_are_reference_counted() {
        let _guard = env_lock();
        fresh();
        set_enabled(false);
        assert!(!enabled());
        let outer = enable_scoped();
        let inner = enable_scoped();
        assert!(enabled());
        drop(outer);
        assert!(enabled(), "recording must survive until the last scope");
        drop(inner);
        assert!(!enabled());
        // Scopes stack on top of a manual enable without clearing it.
        set_enabled(true);
        drop(enable_scoped());
        assert!(enabled());
        set_enabled(false);
    }

    #[test]
    fn disabled_hooks_record_nothing() {
        let _guard = env_lock();
        fresh();
        set_enabled(false);
        record_span_open("t", "n");
        record_event(RecordKind::Decode, "t", "n", 1, 2);
        assert!(!record_exemplar_with("decode-failure", Exemplar::default));
        let snap = snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.exemplars.is_empty());
        assert!(!snap.enabled);
    }

    #[test]
    fn records_round_trip_with_trace_ids() {
        let _guard = env_lock();
        fresh();
        {
            let _t = trace_scope(0xAB);
            record_span_open("code.decode", "word");
            record_event(RecordKind::Decode, "code.decode", "word", 2, 1);
            record_span_close("code.decode", "word", 17);
        }
        record_event(RecordKind::Arbiter, "sim.arbiter", "combine", 3, 0);
        let snap = snapshot_and_reset();
        set_enabled(false);
        let ours: Vec<&SnapshotEvent> = snap
            .events
            .iter()
            .filter(|e| {
                snap.string(e.target).starts_with("code.decode")
                    || snap.string(e.target).starts_with("sim.arbiter")
            })
            .collect();
        assert_eq!(ours.len(), 4);
        assert_eq!(ours[0].kind, RecordKind::SpanOpen);
        assert_eq!(ours[0].trace_id, 0xAB);
        assert_eq!(ours[2].kind, RecordKind::SpanClose);
        assert_eq!(ours[2].a, 17);
        assert_eq!(ours[3].trace_id, 0);
        // Sequence numbers strictly increase per thread.
        assert!(ours
            .windows(2)
            .all(|w| w[0].seq < w[1].seq || w[0].thread != w[1].thread));
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let _guard = env_lock();
        fresh();
        let extra = 40u64;
        for i in 0..(RING_CAPACITY as u64 + extra) {
            record_event(RecordKind::Decode, "wrap.test", "spin", i, !i);
        }
        let snap = snapshot_and_reset();
        set_enabled(false);
        let ours: Vec<&SnapshotEvent> = snap
            .events
            .iter()
            .filter(|e| snap.string(e.target) == "wrap.test")
            .collect();
        assert_eq!(ours.len(), RING_CAPACITY);
        // Oldest `extra` records were overwritten; the newest survive.
        assert_eq!(ours.first().unwrap().a, extra);
        assert_eq!(ours.last().unwrap().a, RING_CAPACITY as u64 + extra - 1);
        assert!(snap.dropped >= extra);
    }

    #[test]
    fn snapshot_during_wrap_sees_no_torn_records() {
        let _guard = env_lock();
        fresh();
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    // Invariant under test: b is always !a.
                    record_event(RecordKind::Decode, "tear.test", "spin", i, !i);
                    i += 1;
                }
            });
            for _ in 0..200 {
                let snap = snapshot();
                for e in snap
                    .events
                    .iter()
                    .filter(|e| snap.string(e.target) == "tear.test")
                {
                    assert_eq!(e.b, !e.a, "torn record at seq {}", e.seq);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        set_enabled(false);
        let _ = snapshot_and_reset();
    }

    #[test]
    fn reset_starts_a_new_epoch() {
        let _guard = env_lock();
        fresh();
        record_event(RecordKind::Decode, "epoch.test", "one", 1, 0);
        let first = snapshot_and_reset();
        let count = |s: &Snapshot| {
            s.events
                .iter()
                .filter(|e| s.string(e.target) == "epoch.test")
                .count()
        };
        assert_eq!(count(&first), 1);
        let second = snapshot();
        assert_eq!(count(&second), 0, "floor must exclude captured records");
        assert!(second.epoch > first.epoch);
        record_event(RecordKind::Decode, "epoch.test", "two", 2, 0);
        let third = snapshot();
        assert_eq!(count(&third), 1);
        set_enabled(false);
        let _ = snapshot_and_reset();
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic_under_a_pinned_seed() {
        let _guard = env_lock();
        let run = || {
            set_enabled(true);
            set_reservoir_seed(0xDA7E);
            let _ = snapshot_and_reset();
            for i in 0..500u32 {
                record_exemplar_with("miscorrection", || Exemplar {
                    detail: format!("case {i}"),
                    ..Exemplar::default()
                });
            }
            let snap = snapshot();
            set_enabled(false);
            let _ = snapshot_and_reset();
            snap
        };
        let a = run();
        let b = run();
        let kept: Vec<&str> = a.exemplars.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(a.exemplars.len(), EXEMPLARS_PER_KIND);
        assert_eq!(
            kept,
            b.exemplars
                .iter()
                .map(|e| e.detail.as_str())
                .collect::<Vec<_>>(),
            "pinned seed must make the sample deterministic"
        );
        // The sample is not just the first EXEMPLARS_PER_KIND offers.
        assert!(a
            .exemplars
            .iter()
            .any(|e| e.seq >= EXEMPLARS_PER_KIND as u64));
        assert_eq!(a.exemplars_seen, vec![("miscorrection".to_owned(), 500)]);
    }

    #[test]
    fn rare_kinds_survive_common_ones() {
        let _guard = env_lock();
        fresh();
        for _ in 0..10_000u32 {
            record_exemplar_with("decode-failure", Exemplar::default);
        }
        record_exemplar_with("panic", || Exemplar {
            detail: "the one panic".to_owned(),
            ..Exemplar::default()
        });
        let snap = snapshot_and_reset();
        set_enabled(false);
        assert!(
            snap.exemplars
                .iter()
                .any(|e| e.kind == "panic" && e.detail == "the one panic"),
            "per-kind reservoirs must keep rare kinds"
        );
        assert_eq!(
            snap.exemplars
                .iter()
                .filter(|e| e.kind == "decode-failure")
                .count(),
            EXEMPLARS_PER_KIND
        );
    }

    #[test]
    fn json_dump_is_canonical_and_carries_exemplar_forensics() {
        let _guard = env_lock();
        fresh();
        {
            let _t = trace_scope(0xC0FFEE);
            record_span_open("json.test", "work");
            record_exemplar_with("miscorrection", || Exemplar {
                code: "rs:15,9,4".to_owned(),
                word: vec![1, 2, 3],
                erasures: vec![7],
                syndromes: vec![9, 0],
                verdicts: vec!["sugiyama: Corrected(wrong)".to_owned()],
                detail: "beyond-bound".to_owned(),
                repro: "#[test]\nfn x() {}".to_owned(),
                ..Exemplar::default()
            });
            record_span_close("json.test", "work", 5);
        }
        let snap = snapshot_and_reset();
        set_enabled(false);
        let encoded = to_json(&snap).encode();
        let parsed = json::parse(&encoded).expect("valid JSON");
        assert_eq!(parsed.encode(), encoded, "parse→encode fixed point");
        assert!(encoded.contains("\"schema\":\"rsmem-trace/1\""));
        assert!(encoded.contains("\"kind\":\"miscorrection\""));
        assert!(encoded.contains("\"code\":\"rs:15,9,4\""));
        assert!(encoded.contains("\"syndromes\":[9,0]"));
        assert!(encoded.contains("\"trace_id\":\"0000000000c0ffee\""));
        let text = render_text(&snap);
        assert!(text.contains("trace 0000000000c0ffee"), "{text}");
        assert!(text.contains("exemplars:"), "{text}");
        assert!(text.contains("syndromes: [9, 0]"), "{text}");
    }

    #[test]
    fn text_timeline_nests_spans_under_their_trace() {
        let _guard = env_lock();
        fresh();
        {
            let _t = trace_scope(0x77);
            record_span_open("outer.target", "outer");
            record_span_open("inner.target", "inner");
            record_span_close("inner.target", "inner", 1);
            record_span_close("outer.target", "outer", 2);
        }
        let snap = snapshot_and_reset();
        set_enabled(false);
        let text = render_text(&snap);
        let outer_open = text
            .lines()
            .find(|l| l.contains("span_open outer.target"))
            .unwrap();
        let inner_open = text
            .lines()
            .find(|l| l.contains("span_open inner.target"))
            .unwrap();
        let outer_indent = outer_open.len() - outer_open.trim_start().len();
        let inner_indent = inner_open.len() - inner_open.trim_start().len();
        assert!(inner_indent > outer_indent, "{text}");
    }
}
