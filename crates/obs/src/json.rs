//! A small, dependency-free JSON encoder/decoder.
//!
//! The workspace builds offline with vendored shims, so it carries its
//! own JSON support instead of pulling `serde_json`. The subset is
//! exactly what the workspace needs: the full JSON data model, a strict
//! recursive-descent parser with a depth limit, and a **canonical
//! encoder** — object keys are stored sorted (`BTreeMap`) and numbers are
//! formatted shortest-round-trip, so encoding the same logical value
//! always yields the same bytes. That property is what makes the encoded
//! analyze config usable as a cache key in `rsmem-service` (which
//! re-exports this module) and what makes every JSON-line the event
//! pipeline emits byte-reproducible for a given record.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are kept sorted for canonical encoding.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array of numbers.
    pub fn numbers(xs: &[f64]) -> Value {
        Value::Array(xs.iter().map(|&x| Value::Number(x)).collect())
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// Encodes the value as compact canonical JSON.
    ///
    /// Numbers that are mathematically integers (and small enough to be
    /// exact) print as integers; everything else prints in shortest
    /// round-trip exponent form, so `encode(parse(encode(v))) ==
    /// encode(v)`. Non-finite numbers encode as `null` — the API layer
    /// validates inputs long before they reach the encoder.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(x) => encode_number(*x, out),
            Value::String(s) => encode_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_number(x: f64, out: &mut String) {
    use fmt::Write as _;
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else if (1e-4..1e15).contains(&x.abs()) {
        // Rust's float formatting prints the shortest digit string that
        // parses back to the same f64; fixed notation in the readable
        // range, exponent form (`1.7e-5`) outside it.
        let _ = write!(out, "{x}");
    } else {
        let _ = write!(out, "{x:e}");
    }
}

fn encode_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// [`ParseError`] on malformed input, duplicate object keys, or nesting
/// deeper than 64 levels.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key, value).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a following \uXXXX low half.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a fraction digit"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected an exponent digit"));
            }
            self.digits();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let x: f64 = text.parse().map_err(|_| self.err("unparsable number"))?;
        if !x.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Value::Number(x))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-1", "42", "\"hi\""] {
            assert_eq!(parse(text).unwrap().encode(), text, "{text}");
        }
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for x in [0.0, 1.0, -3.5, 1.7e-5, 6.02e23, 1e-300, f64::MIN, 0.1] {
            let encoded = Value::Number(x).encode();
            let back = parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {encoded}");
        }
        assert_eq!(Value::Number(18.0).encode(), "18");
        assert_eq!(Value::Number(1.7e-5).encode(), "1.7e-5");
    }

    #[test]
    fn objects_encode_with_sorted_keys() {
        let v = parse(r#"{"zeta": 1, "alpha": {"b": [1, 2.5, "x"], "a": null}}"#).unwrap();
        assert_eq!(
            v.encode(),
            r#"{"alpha":{"a":null,"b":[1,2.5,"x"]},"zeta":1}"#
        );
    }

    #[test]
    fn canonical_encoding_is_stable_under_reordering() {
        let a = parse(r#"{"n": 18, "k": 16}"#).unwrap();
        let b = parse(r#"{"k": 16, "n": 18}"#).unwrap();
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndA\u{e9}\u{1F600}");
        // Control characters re-encode escaped.
        assert_eq!(Value::String("x\u{1}\n".into()).encode(), r#""x\u0001\n""#);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "[1] garbage",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800\"",
            "1e999",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "s": "x", "b": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("a").unwrap().as_f64(), None);
    }
}
