//! Injectable monotonic clocks — the shared test seam for every
//! rate-limited component.
//!
//! [`Progress`](crate::Progress) (PR 5) and the time-series
//! [`Sampler`](crate::timeseries::Sampler) both throttle on wall time;
//! testing throttling by sleeping is slow and flaky, so both take a
//! [`Clock`] instead of calling [`Instant::now`] directly. Production
//! code uses [`system_clock`]; tests build a [`ManualClock`] and advance
//! it explicitly, making every rate-limit decision deterministic.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A source of monotonic time. `FnMut` (not `Fn`) so stateful test
/// clocks are possible; `Send` so the component owning it can move
/// across threads.
pub type Clock = Box<dyn FnMut() -> Instant + Send>;

/// The production clock: a thin wrapper over [`Instant::now`].
pub fn system_clock() -> Clock {
    Box::new(Instant::now)
}

/// A manually advanced clock for deterministic tests.
///
/// [`ManualClock::new`] returns the controller and a [`Clock`] reading
/// from it; hand the clock to the component under test and drive time
/// forward with [`ManualClock::advance`].
#[derive(Clone)]
pub struct ManualClock {
    now: Arc<Mutex<Instant>>,
}

impl ManualClock {
    /// A fresh manual clock frozen at the current instant, plus a
    /// [`Clock`] handle that always reads the controller's time.
    pub fn new() -> (ManualClock, Clock) {
        let controller = ManualClock {
            now: Arc::new(Mutex::new(Instant::now())),
        };
        let handle = controller.clone();
        (controller, Box::new(move || handle.now()))
    }

    /// Moves time forward by `by`.
    pub fn advance(&self, by: Duration) {
        *self.now.lock().expect("manual clock lock") += by;
    }

    /// The clock's current reading.
    pub fn now(&self) -> Instant {
        *self.now.lock().expect("manual clock lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let (control, mut clock) = ManualClock::new();
        let start = clock();
        assert_eq!(clock(), start, "reads do not advance time");
        control.advance(Duration::from_secs(3));
        assert_eq!(clock().duration_since(start), Duration::from_secs(3));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let mut clock = system_clock();
        let a = clock();
        let b = clock();
        assert!(b >= a);
    }
}
