//! Hierarchical self-profiler aggregating the span stream.
//!
//! Every [`crate::log::span`] is also a profiler probe: when profiling
//! is enabled (independently of logging), span entry/exit updates a
//! global call tree keyed by `(parent, target, name)` — call count,
//! total wall time and a fixed-bound latency histogram per node. Self
//! time is derived at snapshot time as `total − Σ children.total`
//! (clamped at zero: children running on parallel workers can overlap,
//! so the sum may legitimately exceed the serial parent's wall time).
//!
//! The disabled path is one relaxed atomic load and **zero heap
//! allocations** — the same contract the event pipeline proves in the
//! crate's `alloc_count` test.
//!
//! ## Thread awareness
//!
//! The "current node" lives in a thread-local, exactly like trace IDs.
//! Worker pools ([`Parallelism::map`], `run_sharded`) capture
//! [`current_node`] on the spawning thread and re-establish it inside
//! each worker with [`attach_scope`], so spans opened on workers attach
//! under the span that spawned them instead of dangling at the root.
//!
//! ## Snapshot / reset
//!
//! [`snapshot`] clones the aggregated tree (text, canonical-JSON and
//! Prometheus-summary renders); [`reset`] zeroes the statistics but
//! keeps the node tree and index intact so node IDs held by in-flight
//! spans (e.g. a request racing a `/debug/profile?reset=1`) stay valid.

use crate::json::Value;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Upper bounds (µs, inclusive) of the latency histogram buckets; one
/// implicit `+Inf` bucket follows. Spans here range from a single
/// `decode` (~µs) to a whole figure regeneration (~s).
pub const BOUNDS_US: [u64; 8] = [
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

/// Bucket count: one per bound plus the `+Inf` overflow bucket.
const BUCKETS: usize = BOUNDS_US.len() + 1;

/// The single fast gate — `false` means [`enter`] returns immediately.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One aggregated call-tree node.
struct Node {
    target: &'static str,
    name: &'static str,
    children: Vec<u32>,
    count: u64,
    total_us: u64,
    hist: [u64; BUCKETS],
}

impl Node {
    fn new(target: &'static str, name: &'static str) -> Node {
        Node {
            target,
            name,
            children: Vec::new(),
            count: 0,
            total_us: 0,
            hist: [0; BUCKETS],
        }
    }
}

/// The aggregated call tree. Node `0` is a synthetic root that never
/// accumulates stats; real spans hang off it.
struct Tree {
    nodes: Vec<Node>,
    index: HashMap<(u32, &'static str, &'static str), u32>,
}

impl Tree {
    fn intern(&mut self, parent: u32, target: &'static str, name: &'static str) -> u32 {
        if let Some(&id) = self.index.get(&(parent, target, name)) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("profile tree node overflow");
        self.nodes.push(Node::new(target, name));
        self.nodes[parent as usize].children.push(id);
        self.index.insert((parent, target, name), id);
        id
    }
}

fn lock_tree() -> MutexGuard<'static, Tree> {
    use std::sync::OnceLock;
    static TREE: OnceLock<Mutex<Tree>> = OnceLock::new();
    TREE.get_or_init(|| {
        Mutex::new(Tree {
            nodes: vec![Node::new("", "root")],
            index: HashMap::new(),
        })
    })
    .lock()
    .unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// The node id spans opened on this thread attach under; `0` = root.
    static CURRENT: Cell<u32> = const { Cell::new(0) };
}

/// Turns the profiler on or off. Off (the default) restores the
/// zero-cost path; the accumulated tree is kept until [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when spans are currently being aggregated.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An open profiler frame; returned by [`enter`], closed by [`exit`].
#[derive(Clone, Copy)]
pub(crate) struct Frame {
    node: u32,
    prev: u32,
}

/// Registers span entry. Returns `None` (after exactly one relaxed
/// atomic load, no allocation) when profiling is off.
pub(crate) fn enter(target: &'static str, name: &'static str) -> Option<Frame> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let prev = CURRENT.with(Cell::get);
    let node = lock_tree().intern(prev, target, name);
    CURRENT.with(|c| c.set(node));
    Some(Frame { node, prev })
}

/// Registers span exit with its measured wall time.
pub(crate) fn exit(frame: Frame, elapsed_us: u64) {
    CURRENT.with(|c| c.set(frame.prev));
    let mut tree = lock_tree();
    let node = &mut tree.nodes[frame.node as usize];
    node.count += 1;
    node.total_us = node.total_us.saturating_add(elapsed_us);
    let bucket = BOUNDS_US
        .iter()
        .position(|&b| elapsed_us <= b)
        .unwrap_or(BUCKETS - 1);
    node.hist[bucket] += 1;
}

/// The profiler node active on this thread (the attachment point for
/// new spans). Worker pools capture this before spawning.
pub fn current_node() -> u32 {
    CURRENT.with(Cell::get)
}

/// Restores the previous current node when dropped.
pub struct NodeGuard {
    previous: u32,
}

/// Sets this thread's current profiler node for the guard's lifetime.
/// Thread pools call this inside each worker with the node captured via
/// [`current_node`] on the spawning thread, so worker spans nest under
/// the span that fanned them out.
pub fn attach_scope(node: u32) -> NodeGuard {
    let previous = CURRENT.with(|c| c.replace(node));
    NodeGuard { previous }
}

impl Drop for NodeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

/// Zeroes all statistics. The node tree and index survive, so node IDs
/// held by spans still in flight remain valid and their exits land in
/// the (freshly zeroed) same nodes.
pub fn reset() {
    let mut tree = lock_tree();
    for node in &mut tree.nodes {
        node.count = 0;
        node.total_us = 0;
        node.hist = [0; BUCKETS];
    }
}

/// One node of a [`Snapshot`]: aggregated stats plus derived self time.
#[derive(Debug, Clone)]
pub struct SnapNode {
    /// Span target (module-ish dotted path).
    pub target: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Completed calls.
    pub count: u64,
    /// Summed wall time of completed calls, µs.
    pub total_us: u64,
    /// `total_us − Σ children.total_us`, clamped at zero (parallel
    /// children overlap, so the sum can exceed a serial parent).
    pub self_us: u64,
    /// Latency histogram; `hist[i]` counts calls with
    /// `elapsed ≤ BOUNDS_US[i]` (last bucket = `+Inf`).
    pub hist: [u64; BUCKETS],
    /// Child nodes, sorted by `total_us` descending.
    pub children: Vec<SnapNode>,
}

/// An immutable copy of the aggregated call tree.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Top-level spans (children of the synthetic root), sorted by
    /// `total_us` descending.
    pub roots: Vec<SnapNode>,
}

fn build_snapshot(tree: &Tree) -> Snapshot {
    fn build(tree: &Tree, id: u32) -> SnapNode {
        let node = &tree.nodes[id as usize];
        let mut children: Vec<SnapNode> = node.children.iter().map(|&c| build(tree, c)).collect();
        children.sort_by_key(|c| std::cmp::Reverse(c.total_us));
        let child_total: u64 = children.iter().map(|c| c.total_us).sum();
        SnapNode {
            target: node.target,
            name: node.name,
            count: node.count,
            total_us: node.total_us,
            self_us: node.total_us.saturating_sub(child_total),
            hist: node.hist,
            children,
        }
    }
    let mut roots: Vec<SnapNode> = tree.nodes[0]
        .children
        .clone()
        .into_iter()
        .map(|c| build(tree, c))
        .collect();
    roots.sort_by_key(|r| std::cmp::Reverse(r.total_us));
    Snapshot { roots }
}

/// Clones the current aggregated tree. Nodes with zero completed calls
/// (and no active descendants) are kept — they show interned-but-reset
/// call sites, which is harmless and keeps IDs stable.
pub fn snapshot() -> Snapshot {
    build_snapshot(&lock_tree())
}

/// [`snapshot`] followed by [`reset`] under one lock acquisition — the
/// `/debug/profile?reset=1` semantics: no window where a span exit is
/// counted in neither the snapshot nor the fresh epoch.
pub fn snapshot_and_reset() -> Snapshot {
    let mut tree = lock_tree();
    let snap = build_snapshot(&tree);
    for node in &mut tree.nodes {
        node.count = 0;
        node.total_us = 0;
        node.hist = [0; BUCKETS];
    }
    snap
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

impl Snapshot {
    /// Summed wall time of the top-level spans, µs — the denominator
    /// for "how much of the run is attributed to named spans".
    pub fn root_total_us(&self) -> u64 {
        self.roots.iter().map(|r| r.total_us).sum()
    }

    /// True when no span has completed since the last reset.
    pub fn is_empty(&self) -> bool {
        fn any_count(n: &SnapNode) -> bool {
            n.count > 0 || n.children.iter().any(any_count)
        }
        !self.roots.iter().any(any_count)
    }

    /// Human-readable call-tree report, one node per line, children
    /// indented and sorted by total time descending.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} root span(s), {} attributed",
            self.roots.len(),
            fmt_us(self.root_total_us())
        );
        fn emit(out: &mut String, node: &SnapNode, depth: usize) {
            let indent = "  ".repeat(depth);
            let _ = writeln!(
                out,
                "{indent}{}.{}  calls={} total={} self={}",
                node.target,
                node.name,
                node.count,
                fmt_us(node.total_us),
                fmt_us(node.self_us)
            );
            for child in &node.children {
                emit(out, child, depth + 1);
            }
        }
        for root in &self.roots {
            emit(&mut out, root, 1);
        }
        out
    }

    /// Canonical-JSON document (schema `rsmem-profile/1`); the encoded
    /// form is a parse→encode fixed point like every obs JSON artifact.
    pub fn to_json(&self) -> Value {
        fn node_json(node: &SnapNode) -> Value {
            let mut map = BTreeMap::new();
            map.insert("target".to_owned(), Value::String(node.target.to_owned()));
            map.insert("name".to_owned(), Value::String(node.name.to_owned()));
            map.insert("count".to_owned(), Value::Number(node.count as f64));
            map.insert("total_us".to_owned(), Value::Number(node.total_us as f64));
            map.insert("self_us".to_owned(), Value::Number(node.self_us as f64));
            map.insert(
                "hist".to_owned(),
                Value::Array(node.hist.iter().map(|&c| Value::Number(c as f64)).collect()),
            );
            map.insert(
                "children".to_owned(),
                Value::Array(node.children.iter().map(node_json).collect()),
            );
            Value::Object(map)
        }
        let mut map = BTreeMap::new();
        map.insert(
            "schema".to_owned(),
            Value::String("rsmem-profile/1".to_owned()),
        );
        map.insert(
            "bounds_us".to_owned(),
            Value::Array(BOUNDS_US.iter().map(|&b| Value::Number(b as f64)).collect()),
        );
        map.insert(
            "spans".to_owned(),
            Value::Array(self.roots.iter().map(node_json).collect()),
        );
        Value::Object(map)
    }

    /// Prometheus summary series aggregated per `(target, name)` across
    /// all tree positions — suitable for appending to a `/metrics` body.
    pub fn render_prometheus(&self) -> String {
        let mut agg: BTreeMap<(&'static str, &'static str), (u64, u64)> = BTreeMap::new();
        fn walk(node: &SnapNode, agg: &mut BTreeMap<(&'static str, &'static str), (u64, u64)>) {
            let entry = agg.entry((node.target, node.name)).or_insert((0, 0));
            entry.0 += node.count;
            entry.1 = entry.1.saturating_add(node.total_us);
            for child in &node.children {
                walk(child, agg);
            }
        }
        for root in &self.roots {
            walk(root, &mut agg);
        }
        let mut out = String::new();
        if agg.is_empty() {
            return out;
        }
        out.push_str("# HELP rsmem_profile_span_us Aggregated span wall time by name.\n");
        out.push_str("# TYPE rsmem_profile_span_us summary\n");
        for ((target, name), (count, total)) in &agg {
            let t = crate::metrics::escape_label_value(target);
            let n = crate::metrics::escape_label_value(name);
            let _ = writeln!(
                out,
                "rsmem_profile_span_us_sum{{name=\"{n}\",target=\"{t}\"}} {total}"
            );
            let _ = writeln!(
                out,
                "rsmem_profile_span_us_count{{name=\"{n}\",target=\"{t}\"}} {count}"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::log::{span, Level};

    /// Serializes tests that touch the global profiler (and logging)
    /// state.
    fn profile_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::log::test_env_lock()
    }

    fn clean() {
        set_enabled(false);
        reset();
    }

    fn find<'a>(nodes: &'a [SnapNode], name: &str) -> Option<&'a SnapNode> {
        nodes.iter().find(|n| n.name == name)
    }

    #[test]
    fn disabled_enter_returns_none() {
        let _guard = profile_lock();
        clean();
        assert!(enter("t", "n").is_none());
        assert!(!is_enabled());
    }

    #[test]
    fn spans_build_a_tree_with_counts_and_self_time() {
        let _guard = profile_lock();
        clean();
        set_enabled(true);
        {
            let _outer = span("test.profile", "outer");
            for _ in 0..3 {
                let _inner = span("test.profile", "inner");
            }
        }
        let snap = snapshot_and_reset();
        clean();
        let outer = find(&snap.roots, "outer").expect("outer root");
        assert_eq!(outer.count, 1);
        let inner = find(&outer.children, "inner").expect("inner child");
        assert_eq!(inner.count, 3);
        assert_eq!(inner.hist.iter().sum::<u64>(), 3);
        assert!(outer.total_us >= inner.total_us);
        assert_eq!(outer.self_us, outer.total_us - inner.total_us);
    }

    #[test]
    fn same_name_under_different_parents_gets_distinct_nodes() {
        let _guard = profile_lock();
        clean();
        set_enabled(true);
        {
            let _a = span("test.profile", "parent_a");
            let _w = span("test.profile", "work");
        }
        {
            let _b = span("test.profile", "parent_b");
            let _w = span("test.profile", "work");
        }
        let snap = snapshot_and_reset();
        clean();
        let a = find(&snap.roots, "parent_a").unwrap();
        let b = find(&snap.roots, "parent_b").unwrap();
        assert_eq!(find(&a.children, "work").unwrap().count, 1);
        assert_eq!(find(&b.children, "work").unwrap().count, 1);
    }

    #[test]
    fn attach_scope_nests_worker_spans_under_captured_node() {
        let _guard = profile_lock();
        clean();
        set_enabled(true);
        {
            let _outer = span("test.profile", "spawn_site");
            let node = current_node();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _scope = attach_scope(node);
                    let _w = span("test.profile", "worker_task");
                });
            });
        }
        let snap = snapshot_and_reset();
        clean();
        let outer = find(&snap.roots, "spawn_site").expect("spawn_site root");
        assert!(
            find(&outer.children, "worker_task").is_some(),
            "worker span must nest under the captured node, tree: {:?}",
            snap.roots
        );
        assert!(find(&snap.roots, "worker_task").is_none());
    }

    #[test]
    fn reset_keeps_tree_and_zeroes_stats() {
        let _guard = profile_lock();
        clean();
        set_enabled(true);
        {
            let _s = span("test.profile", "epoch_one");
        }
        // Hold a frame across the reset: its exit must still land.
        let frame = enter("test.profile", "in_flight").expect("enabled");
        reset();
        exit(frame, 42);
        let snap = snapshot_and_reset();
        clean();
        let epoch = find(&snap.roots, "epoch_one").expect("node survives reset");
        assert_eq!(epoch.count, 0, "stats zeroed");
        let inflight = find(&snap.roots, "in_flight").expect("in-flight node");
        assert_eq!(inflight.count, 1);
        assert_eq!(inflight.total_us, 42);
    }

    #[test]
    fn snapshot_json_is_canonical_fixed_point() {
        let _guard = profile_lock();
        clean();
        set_enabled(true);
        {
            let _s = span("test.profile", "json_case");
            let _c = span("test.profile", "child");
        }
        let snap = snapshot_and_reset();
        clean();
        let encoded = snap.to_json().encode();
        let reparsed = json::parse(&encoded).expect("valid JSON");
        assert_eq!(reparsed.encode(), encoded, "parse→encode fixed point");
        assert!(encoded.contains("\"schema\":\"rsmem-profile/1\""));
        assert!(encoded.contains("\"bounds_us\""));
    }

    #[test]
    fn prometheus_render_merges_positions_by_name() {
        let _guard = profile_lock();
        clean();
        set_enabled(true);
        {
            let _a = span("test.profile", "prom_parent");
            let _w = span("test.profile", "prom_work");
        }
        {
            let _w = span("test.profile", "prom_work");
        }
        let snap = snapshot_and_reset();
        clean();
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE rsmem_profile_span_us summary"));
        assert!(text
            .contains("rsmem_profile_span_us_count{name=\"prom_work\",target=\"test.profile\"} 2"));
    }

    #[test]
    fn histogram_buckets_by_elapsed() {
        let _guard = profile_lock();
        clean();
        set_enabled(true);
        let f = enter("test.profile", "hist_case").unwrap();
        exit(f, 5); // ≤ 10µs bucket
        let f = enter("test.profile", "hist_case").unwrap();
        exit(f, 50_000); // ≤ 100ms bucket
        let f = enter("test.profile", "hist_case").unwrap();
        exit(f, u64::MAX); // +Inf bucket
        let snap = snapshot_and_reset();
        clean();
        let node = find(&snap.roots, "hist_case").unwrap();
        assert_eq!(node.hist[0], 1);
        assert_eq!(node.hist[4], 1);
        assert_eq!(node.hist[BUCKETS - 1], 1);
    }

    #[test]
    fn profile_only_span_does_not_log() {
        let _guard = profile_lock();
        clean();
        // Logging stays off; profiling on. The span must aggregate but
        // report inactive (so callers skip expensive field computation).
        set_enabled(true);
        {
            let mut s = crate::log::span_at(Level::Debug, "test.profile", "quiet");
            assert!(!s.active(), "profile-only span is not a log emitter");
            s.record("ignored", 1u64);
        }
        let snap = snapshot_and_reset();
        clean();
        assert_eq!(find(&snap.roots, "quiet").unwrap().count, 1);
    }
}
