//! Rate-limited progress reporting for long-running CLI work.
//!
//! A [`Progress`] emits at most one status line per interval (200 ms).
//! When structured logging is configured the line goes through the
//! event pipeline as an `info`-level `progress` event — so
//! `RSMEM_LOG=json` keeps stderr pure JSON-lines — and otherwise it is
//! a plain human-readable stderr line. Short runs that finish inside
//! the first interval stay completely silent.

use crate::clock::{system_clock, Clock};
use crate::log::{self, FieldValue, Level};
use std::time::{Duration, Instant};

/// Minimum spacing between emitted status lines.
const INTERVAL: Duration = Duration::from_millis(200);

/// A rate-limited progress reporter for one unit of long-running work.
pub struct Progress {
    target: &'static str,
    label: &'static str,
    clock: Clock,
    started: Instant,
    last: Instant,
    emitted: bool,
}

impl Progress {
    /// Starts tracking. Nothing is emitted until the first interval
    /// elapses, so fast runs produce no output at all.
    pub fn new(target: &'static str, label: &'static str) -> Progress {
        Progress::with_clock(target, label, system_clock())
    }

    /// Like [`Progress::new`] with an injected [`Clock`] (see
    /// [`crate::clock`]) — the test seam that makes the rate-limit
    /// behaviour assertable deterministically instead of by sleeping.
    pub fn with_clock(target: &'static str, label: &'static str, mut clock: Clock) -> Progress {
        let now = clock();
        Progress {
            target,
            label,
            clock,
            started: now,
            last: now,
            emitted: false,
        }
    }

    /// Reports `done` of `total` work items plus extra fields; emits
    /// only when the rate-limit interval has elapsed.
    pub fn tick(&mut self, done: u64, total: u64, fields: &[(&'static str, u64)]) {
        let now = (self.clock)();
        if now.duration_since(self.last) < INTERVAL {
            return;
        }
        self.last = now;
        self.emitted = true;
        self.emit(now, done, total, fields);
    }

    /// Reports the final state. Emits only if a tick was emitted before
    /// or the run outlived one interval — keeping short runs silent
    /// while long runs always end on a 100% line.
    pub fn finish(&mut self, done: u64, total: u64, fields: &[(&'static str, u64)]) {
        let now = (self.clock)();
        if self.emitted || now.duration_since(self.started) >= INTERVAL {
            self.emitted = true;
            self.last = now;
            self.emit(now, done, total, fields);
        }
    }

    fn emit(&self, now: Instant, done: u64, total: u64, fields: &[(&'static str, u64)]) {
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        if log::is_configured() {
            let mut event = log::event(Level::Info, self.target, "progress")
                .field("label", self.label)
                .field("done", done)
                .field("total", total)
                .field("rate_per_sec", (rate * 10.0).round() / 10.0);
            for &(key, value) in fields {
                event = event.field(key, FieldValue::U64(value));
            }
            event.emit();
        } else {
            let mut extra = String::new();
            for &(key, value) in fields {
                extra.push_str(&format!(" {key}={value}"));
            }
            let percent = if total > 0 {
                format!("{:.0}%", done as f64 / total as f64 * 100.0)
            } else {
                "?".to_owned()
            };
            eprintln!(
                "{}: {done}/{total} ({percent}, {rate:.1}/s{extra})",
                self.label
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::log::{init, set_sink, LogConfig, Sink};
    use std::sync::{Arc, Mutex};

    /// Captures emitted progress events; returns the `done` field of
    /// each, in order — the deterministic observable for throttling.
    fn emitted_done_values(buffer: &Arc<Mutex<Vec<u8>>>) -> Vec<u64> {
        let raw = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        raw.lines()
            .filter_map(|line| crate::json::parse(line).ok())
            .filter(|v| v.get("name").and_then(|n| n.as_str()) == Some("progress"))
            .filter_map(|v| v.get("fields")?.get("done")?.as_f64())
            .map(|d| d as u64)
            .collect()
    }

    #[test]
    fn injected_clock_first_and_last_emitted_intermediates_throttled() {
        let _guard = crate::log::test_env_lock();
        init(LogConfig::parse("json:info").unwrap());
        let buffer = Arc::new(Mutex::new(Vec::new()));
        set_sink(Sink::Buffer(Arc::clone(&buffer)));

        let (clock, boxed) = ManualClock::new();
        let mut p = Progress::with_clock("test.progress", "clocked", boxed);

        p.tick(0, 10, &[]); // inside the first interval: silent
        clock.advance(INTERVAL);
        p.tick(1, 10, &[]); // first event past the interval: emitted
        p.tick(2, 10, &[]); // same instant: throttled
        clock.advance(INTERVAL / 2);
        p.tick(3, 10, &[]); // half an interval later: still throttled
        clock.advance(INTERVAL / 2);
        p.tick(4, 10, &[]); // a full interval since the last emit
        p.finish(10, 10, &[]); // final state always lands once emitting began

        init(None);
        set_sink(Sink::Stderr);
        assert_eq!(emitted_done_values(&buffer), vec![1, 4, 10]);
    }

    #[test]
    fn injected_clock_fast_run_emits_nothing() {
        let _guard = crate::log::test_env_lock();
        init(LogConfig::parse("json:info").unwrap());
        let buffer = Arc::new(Mutex::new(Vec::new()));
        set_sink(Sink::Buffer(Arc::clone(&buffer)));

        let (_clock, boxed) = ManualClock::new();
        let mut p = Progress::with_clock("test.progress", "instant", boxed);
        p.tick(3, 10, &[]);
        p.tick(7, 10, &[]);
        p.finish(10, 10, &[]);

        init(None);
        set_sink(Sink::Stderr);
        assert!(emitted_done_values(&buffer).is_empty());
    }

    #[test]
    fn injected_clock_long_run_without_ticks_gets_final_line() {
        let _guard = crate::log::test_env_lock();
        init(LogConfig::parse("json:info").unwrap());
        let buffer = Arc::new(Mutex::new(Vec::new()));
        set_sink(Sink::Buffer(Arc::clone(&buffer)));

        let (clock, boxed) = ManualClock::new();
        let mut p = Progress::with_clock("test.progress", "no_ticks", boxed);
        clock.advance(INTERVAL * 2);
        p.finish(5, 5, &[]);

        init(None);
        set_sink(Sink::Stderr);
        assert_eq!(emitted_done_values(&buffer), vec![5]);
    }

    #[test]
    fn fast_runs_stay_silent() {
        // With logging off this would print to stderr; assert via the
        // rate-limit invariants instead of capturing the stream.
        let _guard = crate::log::test_env_lock();
        let mut p = Progress::new("test", "quick");
        p.tick(1, 10, &[]);
        p.tick(5, 10, &[]);
        p.finish(10, 10, &[]);
        assert!(!p.emitted, "sub-interval run must not emit");
    }

    #[test]
    fn tick_emits_after_interval() {
        let _guard = crate::log::test_env_lock();
        let mut p = Progress::new("test", "slow");
        // Simulate elapsed time by back-dating the limiter state.
        p.last = Instant::now() - INTERVAL * 2;
        p.started = Instant::now() - INTERVAL * 2;
        p.tick(3, 10, &[("extra", 7)]);
        assert!(p.emitted);
        // Immediately after an emission the limiter suppresses again.
        let before = p.last;
        p.tick(4, 10, &[]);
        assert_eq!(p.last, before);
    }

    #[test]
    fn finish_emits_for_long_runs_even_without_ticks() {
        let _guard = crate::log::test_env_lock();
        let mut p = Progress::new("test", "long");
        p.started = Instant::now() - INTERVAL * 2;
        p.finish(10, 10, &[]);
        assert!(p.emitted, "long run must end with a final line");
    }
}
