//! Rate-limited progress reporting for long-running CLI work.
//!
//! A [`Progress`] emits at most one status line per interval (200 ms).
//! When structured logging is configured the line goes through the
//! event pipeline as an `info`-level `progress` event — so
//! `RSMEM_LOG=json` keeps stderr pure JSON-lines — and otherwise it is
//! a plain human-readable stderr line. Short runs that finish inside
//! the first interval stay completely silent.

use crate::log::{self, FieldValue, Level};
use std::time::{Duration, Instant};

/// Minimum spacing between emitted status lines.
const INTERVAL: Duration = Duration::from_millis(200);

/// A rate-limited progress reporter for one unit of long-running work.
pub struct Progress {
    target: &'static str,
    label: &'static str,
    started: Instant,
    last: Instant,
    emitted: bool,
}

impl Progress {
    /// Starts tracking. Nothing is emitted until the first interval
    /// elapses, so fast runs produce no output at all.
    pub fn new(target: &'static str, label: &'static str) -> Progress {
        let now = Instant::now();
        Progress {
            target,
            label,
            started: now,
            last: now,
            emitted: false,
        }
    }

    /// Reports `done` of `total` work items plus extra fields; emits
    /// only when the rate-limit interval has elapsed.
    pub fn tick(&mut self, done: u64, total: u64, fields: &[(&'static str, u64)]) {
        if self.last.elapsed() < INTERVAL {
            return;
        }
        self.last = Instant::now();
        self.emitted = true;
        self.emit(done, total, fields);
    }

    /// Reports the final state. Emits only if a tick was emitted before
    /// or the run outlived one interval — keeping short runs silent
    /// while long runs always end on a 100% line.
    pub fn finish(&mut self, done: u64, total: u64, fields: &[(&'static str, u64)]) {
        if self.emitted || self.started.elapsed() >= INTERVAL {
            self.emitted = true;
            self.last = Instant::now();
            self.emit(done, total, fields);
        }
    }

    fn emit(&self, done: u64, total: u64, fields: &[(&'static str, u64)]) {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        if log::is_configured() {
            let mut event = log::event(Level::Info, self.target, "progress")
                .field("label", self.label)
                .field("done", done)
                .field("total", total)
                .field("rate_per_sec", (rate * 10.0).round() / 10.0);
            for &(key, value) in fields {
                event = event.field(key, FieldValue::U64(value));
            }
            event.emit();
        } else {
            let mut extra = String::new();
            for &(key, value) in fields {
                extra.push_str(&format!(" {key}={value}"));
            }
            let percent = if total > 0 {
                format!("{:.0}%", done as f64 / total as f64 * 100.0)
            } else {
                "?".to_owned()
            };
            eprintln!(
                "{}: {done}/{total} ({percent}, {rate:.1}/s{extra})",
                self.label
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_runs_stay_silent() {
        // With logging off this would print to stderr; assert via the
        // rate-limit invariants instead of capturing the stream.
        let mut p = Progress::new("test", "quick");
        p.tick(1, 10, &[]);
        p.tick(5, 10, &[]);
        p.finish(10, 10, &[]);
        assert!(!p.emitted, "sub-interval run must not emit");
    }

    #[test]
    fn tick_emits_after_interval() {
        let mut p = Progress::new("test", "slow");
        // Simulate elapsed time by back-dating the limiter state.
        p.last = Instant::now() - INTERVAL * 2;
        p.started = Instant::now() - INTERVAL * 2;
        p.tick(3, 10, &[("extra", 7)]);
        assert!(p.emitted);
        // Immediately after an emission the limiter suppresses again.
        let before = p.last;
        p.tick(4, 10, &[]);
        assert_eq!(p.last, before);
    }

    #[test]
    fn finish_emits_for_long_runs_even_without_ticks() {
        let mut p = Progress::new("test", "long");
        p.started = Instant::now() - INTERVAL * 2;
        p.finish(10, 10, &[]);
        assert!(p.emitted, "long run must end with a final line");
    }
}
