//! Time-series telemetry: a fixed-capacity ring of periodic metric
//! samples, with windowed rates and quantiles derived from the deltas.
//!
//! The aggregates in [`crate::metrics`] are cumulative-since-startup;
//! the paper's questions are about *rates over time* (fault arrival vs.
//! scrub/decode recovery), and an operator watching a server needs
//! "requests per second now" and "p99 over the last minute", not
//! totals. A [`Sampler`] closes that gap: it tracks a fixed set of
//! named sources (counter/gauge/histogram handles or closures), copies
//! their values into a ring of frames at a configurable interval, and
//! serves windows of that ring as rates, quantiles, and canonical-JSON
//! `rsmem-metrics/1` frames (the service's `/debug/metrics/history`
//! and `/v1/stream/metrics` payloads, and `rsmem top`'s input).
//!
//! Cost discipline matches the rest of the crate:
//!
//! * **disabled**: [`Sampler::maybe_sample`] is one relaxed atomic load
//!   and zero heap allocations (gated by the counting-allocator test,
//!   like spans and the flight recorder);
//! * **enabled, off-interval**: a `try_lock` + one clock read — callers
//!   never block, contending tickers simply skip;
//! * **enabled, sampling**: values are written *in place* over the
//!   oldest ring slot, so once the ring has filled and the source list
//!   is stable, steady-state sampling performs **zero allocations**
//!   (histogram snapshots reuse their bucket vectors). Serialization
//!   to JSON allocates, but only on demand (a scrape or a stream), not
//!   per sample.
//!
//! Timestamps are monotonic microseconds since the sampler's creation,
//! taken from an injectable [`Clock`] — the same seam
//! [`crate::Progress`] uses, so throttling is deterministically
//! testable.

use crate::clock::{system_clock, Clock};
use crate::json::Value;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Schema tag of every serialized frame and history document.
pub const SCHEMA: &str = "rsmem-metrics/1";

/// Default ring capacity (frames) of the [`global`] sampler.
pub const DEFAULT_CAPACITY: usize = 256;

/// Default sampling interval of the [`global`] sampler.
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);

/// Where a tracked series reads its value from.
pub enum Source {
    /// A counter handle; serialized as a scalar, rates derived.
    Counter(Counter),
    /// A gauge handle; serialized as a scalar, no rate.
    Gauge(Gauge),
    /// A histogram handle; serialized as count/sum/quantiles.
    Histogram(Histogram),
    /// An arbitrary read — e.g. cache statistics owned by another
    /// subsystem. Treated like a counter (monotone, rates derived);
    /// the closure must not allocate if the zero-allocation
    /// steady-state contract is to hold.
    Fn(Box<dyn Fn() -> f64 + Send>),
}

/// One sampled value inside a ring slot.
#[derive(Debug, Clone, PartialEq)]
enum SlotValue {
    Scalar(f64),
    Histogram(HistogramSnapshot),
}

/// One ring slot: everything sampled at a single instant.
struct Frame {
    seq: u64,
    ts_us: u64,
    values: Vec<SlotValue>,
}

/// A read-only copy of one frame, for rendering and serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSnapshot {
    /// Monotone frame number (1-based; never reused within a sampler).
    pub seq: u64,
    /// Microseconds since the sampler was created.
    pub ts_us: u64,
    /// `(series name, value)` in tracking order.
    pub values: Vec<(String, FrameValue)>,
}

/// A sampled value in a [`FrameSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum FrameValue {
    /// A monotone reading (counter or closure); rates are derived.
    Scalar(f64),
    /// A gauge reading; level-valued, so no rate is derived.
    Gauge(f64),
    /// Full histogram state at the sample instant.
    Histogram(HistogramSnapshot),
}

impl FrameSnapshot {
    /// The scalar value of `name`, if tracked and scalar.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.values.iter().find_map(|(n, v)| match v {
            FrameValue::Scalar(s) | FrameValue::Gauge(s) if n == name => Some(*s),
            _ => None,
        })
    }

    /// The histogram snapshot of `name`, if tracked and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.values.iter().find_map(|(n, v)| match v {
            FrameValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }
}

struct Inner {
    clock: Clock,
    epoch: Instant,
    sources: Vec<(String, Source)>,
    /// Whether each source derives a rate (counters and closures do,
    /// gauges do not); parallel to `sources`.
    monotone: Vec<bool>,
    ring: Vec<Frame>,
    capacity: usize,
    /// Next ring slot to (over)write.
    head: usize,
    /// Frames currently held (`<= capacity`).
    len: usize,
    seq: u64,
    last_sample: Option<Instant>,
}

impl Inner {
    /// Oldest-to-newest iteration order over the ring.
    fn ordered(&self) -> impl Iterator<Item = &Frame> {
        let start = (self.head + self.capacity - self.len) % self.capacity;
        (0..self.len).map(move |i| &self.ring[(start + i) % self.capacity])
    }
}

/// A fixed-capacity time-series sampler. See the module docs for the
/// cost contract; see [`global`] for the process-wide instance the
/// service, bench harness and `rsmem top` share.
pub struct Sampler {
    enabled: AtomicBool,
    interval_us: AtomicU64,
    inner: Mutex<Inner>,
}

impl Sampler {
    /// A sampler holding up to `capacity` frames, sampling at most once
    /// per `interval`, reading the system clock.
    pub fn new(capacity: usize, interval: Duration) -> Sampler {
        Sampler::with_clock(capacity, interval, system_clock())
    }

    /// Like [`Sampler::new`] with an injected [`Clock`] — the
    /// deterministic-test seam shared with [`crate::Progress`].
    pub fn with_clock(capacity: usize, interval: Duration, mut clock: Clock) -> Sampler {
        let capacity = capacity.max(2);
        let epoch = clock();
        Sampler {
            enabled: AtomicBool::new(false),
            interval_us: AtomicU64::new(duration_us(interval)),
            inner: Mutex::new(Inner {
                clock,
                epoch,
                sources: Vec::new(),
                monotone: Vec::new(),
                ring: Vec::new(),
                capacity,
                head: 0,
                len: 0,
                seq: 0,
                last_sample: None,
            }),
        }
    }

    /// Turns sampling on or off. Off is the default; while off,
    /// [`Sampler::maybe_sample`] is one relaxed atomic load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether sampling is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Changes the sampling interval (takes effect on the next tick).
    pub fn set_interval(&self, interval: Duration) {
        self.interval_us
            .store(duration_us(interval), Ordering::Relaxed);
    }

    /// The current sampling interval.
    pub fn interval(&self) -> Duration {
        Duration::from_micros(self.interval_us.load(Ordering::Relaxed))
    }

    /// Tracks a counter under `name` (replacing any same-named source).
    pub fn track_counter(&self, name: &str, counter: Counter) {
        self.track(name, Source::Counter(counter));
    }

    /// Tracks a gauge under `name`.
    pub fn track_gauge(&self, name: &str, gauge: Gauge) {
        self.track(name, Source::Gauge(gauge));
    }

    /// Tracks a histogram under `name`.
    pub fn track_histogram(&self, name: &str, histogram: Histogram) {
        self.track(name, Source::Histogram(histogram));
    }

    /// Tracks a closure under `name`; see [`Source::Fn`].
    pub fn track_fn(&self, name: &str, read: impl Fn() -> f64 + Send + 'static) {
        self.track(name, Source::Fn(Box::new(read)));
    }

    /// Registers (or replaces) a source. Changing the source list mid
    /// run is allowed; existing frames keep their old shape and the
    /// next overwrite of each slot re-allocates it once.
    pub fn track(&self, name: &str, source: Source) {
        let monotone = matches!(source, Source::Counter(_) | Source::Fn(_));
        let mut inner = self.inner.lock().expect("sampler lock");
        if let Some(i) = inner.sources.iter().position(|(n, _)| n == name) {
            inner.sources[i].1 = source;
            inner.monotone[i] = monotone;
        } else {
            inner.sources.push((name.to_owned(), source));
            inner.monotone.push(monotone);
        }
    }

    /// The histogram handle tracked under `name`, if any — so the
    /// watchdog can link a latency breach to that histogram's
    /// trace-carrying exemplar.
    pub fn histogram_handle(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().expect("sampler lock");
        inner.sources.iter().find_map(|(n, s)| match s {
            Source::Histogram(h) if n == name => Some(h.clone()),
            _ => None,
        })
    }

    /// Samples a frame if enabled and the interval has elapsed; returns
    /// whether a frame was recorded. This is the hook hot loops call
    /// (via [`tick`]): disabled it is a single relaxed atomic load, and
    /// it never blocks — if another thread holds the sampler it skips.
    pub fn maybe_sample(&self) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let Ok(mut inner) = self.inner.try_lock() else {
            return false;
        };
        let now = (inner.clock)();
        let interval = Duration::from_micros(self.interval_us.load(Ordering::Relaxed));
        if let Some(last) = inner.last_sample {
            if now.duration_since(last) < interval {
                return false;
            }
        }
        sample_locked(&mut inner, now);
        true
    }

    /// Samples a frame right now regardless of interval or the enabled
    /// flag (the streaming endpoint drives its own cadence); returns
    /// the new frame's sequence number.
    pub fn sample_now(&self) -> u64 {
        let mut inner = self.inner.lock().expect("sampler lock");
        let now = (inner.clock)();
        sample_locked(&mut inner, now);
        inner.seq
    }

    /// Discards all frames (sources and configuration stay).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("sampler lock");
        inner.ring.clear();
        inner.head = 0;
        inner.len = 0;
        inner.last_sample = None;
    }

    /// All held frames, oldest first.
    pub fn history(&self) -> Vec<FrameSnapshot> {
        let inner = self.inner.lock().expect("sampler lock");
        inner.ordered().map(|f| snapshot_frame(&inner, f)).collect()
    }

    /// The most recent frame, if any.
    pub fn latest(&self) -> Option<FrameSnapshot> {
        let inner = self.inner.lock().expect("sampler lock");
        let mut last = None;
        for frame in inner.ordered() {
            last = Some(frame);
        }
        last.map(|f| snapshot_frame(&inner, f))
    }

    /// The last up-to-`window` frames, oldest first.
    pub fn window(&self, window: usize) -> Vec<FrameSnapshot> {
        let inner = self.inner.lock().expect("sampler lock");
        let skip = inner.len.saturating_sub(window);
        inner
            .ordered()
            .skip(skip)
            .map(|f| snapshot_frame(&inner, f))
            .collect()
    }

    /// Per-second rate of scalar series `name` over the last `window`
    /// frames (newest minus oldest, divided by the elapsed time).
    /// `None` without at least two frames or a matching scalar series.
    pub fn window_rate(&self, name: &str, window: usize) -> Option<f64> {
        let frames = self.window(window.max(2));
        let first = frames.first()?;
        let last = frames.last()?;
        if last.ts_us <= first.ts_us {
            return None;
        }
        let elapsed_s = (last.ts_us - first.ts_us) as f64 / 1e6;
        Some((last.scalar(name)? - first.scalar(name)?) / elapsed_s)
    }

    /// The distribution histogram `name` observed *within* the last
    /// `window` frames (newest snapshot minus oldest). With a single
    /// frame, the cumulative distribution up to that frame.
    pub fn window_histogram(&self, name: &str, window: usize) -> Option<HistogramSnapshot> {
        let frames = self.window(window.max(1));
        let last = frames.last()?.histogram(name)?;
        if frames.len() < 2 {
            return Some(last.clone());
        }
        let first = frames.first()?.histogram(name)?;
        Some(last.delta(first))
    }

    /// `q`-quantile of histogram `name` over the last `window` frames;
    /// see [`Sampler::window_histogram`] and
    /// [`HistogramSnapshot::quantile`].
    pub fn window_quantile(&self, name: &str, q: f64, window: usize) -> Option<f64> {
        self.window_histogram(name, window)?.quantile(q)
    }

    /// The full ring as one canonical-JSON `rsmem-metrics/1` document:
    /// `{"schema":…,"frames":[…]}` with per-frame rates derived from
    /// consecutive frames.
    pub fn history_json(&self) -> Value {
        let frames = self.history();
        let mut out = Vec::with_capacity(frames.len());
        let mut previous: Option<&FrameSnapshot> = None;
        for frame in &frames {
            out.push(frame_to_json(frame, previous));
            previous = Some(frame);
        }
        Value::object(vec![
            ("schema", Value::String(SCHEMA.into())),
            ("frames", Value::Array(out)),
        ])
    }

    /// The newest frame as one canonical-JSON `rsmem-metrics/1` frame,
    /// with rates derived against the frame before it.
    pub fn latest_json(&self) -> Option<Value> {
        let frames = self.window(2);
        let frame = frames.last()?;
        let previous = if frames.len() == 2 {
            frames.first()
        } else {
            None
        };
        Some(frame_to_json(frame, previous))
    }
}

/// Records one frame into the ring, reusing the overwritten slot's
/// allocations (the steady-state zero-allocation path).
fn sample_locked(inner: &mut Inner, now: Instant) {
    inner.seq += 1;
    inner.last_sample = Some(now);
    let seq = inner.seq;
    let ts_us = duration_us(now.duration_since(inner.epoch));
    if inner.len < inner.capacity {
        // Ring still filling: allocate a fresh frame.
        let values = inner
            .sources
            .iter()
            .map(|(_, source)| read_source(source))
            .collect();
        let head = inner.head;
        inner.ring.insert(head, Frame { seq, ts_us, values });
        inner.head = (inner.head + 1) % inner.capacity;
        inner.len += 1;
        return;
    }
    // Steady state: overwrite the oldest slot in place. Split the
    // borrow so sources (read) and the slot (written) can coexist.
    let head = inner.head;
    inner.head = (inner.head + 1) % inner.capacity;
    let Inner { sources, ring, .. } = inner;
    let slot = &mut ring[head];
    slot.seq = seq;
    slot.ts_us = ts_us;
    slot.values.truncate(sources.len());
    for (i, (_, source)) in sources.iter().enumerate() {
        match (slot.values.get_mut(i), source) {
            (Some(SlotValue::Histogram(snapshot)), Source::Histogram(h)) => {
                h.snapshot_into(snapshot);
            }
            (Some(SlotValue::Scalar(s)), src) if !matches!(src, Source::Histogram(_)) => {
                *s = read_scalar(src);
            }
            (Some(slot_value), src) => *slot_value = read_source(src),
            (None, src) => slot.values.push(read_source(src)),
        }
    }
}

fn read_source(source: &Source) -> SlotValue {
    match source {
        Source::Histogram(h) => SlotValue::Histogram(h.snapshot()),
        other => SlotValue::Scalar(read_scalar(other)),
    }
}

fn read_scalar(source: &Source) -> f64 {
    match source {
        Source::Counter(c) => c.get() as f64,
        Source::Gauge(g) => g.get() as f64,
        Source::Fn(f) => f(),
        Source::Histogram(_) => unreachable!("histograms snapshot, not scalar-read"),
    }
}

fn snapshot_frame(inner: &Inner, frame: &Frame) -> FrameSnapshot {
    FrameSnapshot {
        seq: frame.seq,
        ts_us: frame.ts_us,
        values: inner
            .sources
            .iter()
            .zip(inner.monotone.iter())
            .zip(frame.values.iter())
            .map(|(((name, _), monotone), value)| {
                let value = match value {
                    SlotValue::Scalar(s) if *monotone => FrameValue::Scalar(*s),
                    SlotValue::Scalar(s) => FrameValue::Gauge(*s),
                    SlotValue::Histogram(h) => FrameValue::Histogram(h.clone()),
                };
                (name.clone(), value)
            })
            .collect(),
    }
}

/// Serializes one frame as a canonical-JSON `rsmem-metrics/1` object.
/// Scalars land under `"scalars"`, per-second rates (vs. `previous`,
/// when given) under `"rates"`, histogram count/sum/p50/p90/p99 under
/// `"quantiles"`.
pub fn frame_to_json(frame: &FrameSnapshot, previous: Option<&FrameSnapshot>) -> Value {
    let mut scalars = Vec::new();
    let mut rates = Vec::new();
    let mut quantiles = Vec::new();
    let elapsed_s = previous
        .filter(|p| frame.ts_us > p.ts_us)
        .map(|p| (frame.ts_us - p.ts_us) as f64 / 1e6);
    for (name, value) in &frame.values {
        match value {
            FrameValue::Scalar(s) => {
                scalars.push((name.as_str(), Value::Number(*s)));
                if let (Some(elapsed_s), Some(previous)) = (elapsed_s, previous) {
                    if let Some(before) = previous.scalar(name) {
                        rates.push((name.as_str(), Value::Number((*s - before) / elapsed_s)));
                    }
                }
            }
            FrameValue::Gauge(s) => scalars.push((name.as_str(), Value::Number(*s))),
            FrameValue::Histogram(h) => {
                let current = match previous.and_then(|p| p.histogram(name)) {
                    Some(before) => h.delta(before),
                    None => h.clone(),
                };
                let q = |q: f64| Value::Number(current.quantile(q).unwrap_or(0.0));
                quantiles.push((
                    name.as_str(),
                    Value::object(vec![
                        ("count", Value::Number(current.count as f64)),
                        ("sum", Value::Number(current.sum)),
                        ("p50", q(0.5)),
                        ("p90", q(0.9)),
                        ("p99", q(0.99)),
                    ]),
                ));
            }
        }
    }
    Value::object(vec![
        ("schema", Value::String(SCHEMA.into())),
        ("seq", Value::Number(frame.seq as f64)),
        ("ts_us", Value::Number(frame.ts_us as f64)),
        ("scalars", Value::object(scalars)),
        ("rates", Value::object(rates)),
        ("quantiles", Value::object(quantiles)),
    ])
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The process-wide sampler shared by the bench harness and
/// `rsmem top`'s in-process mode (the service builds its own, with its
/// per-instance series). Created disabled with the default capacity
/// and interval.
pub fn global() -> &'static Sampler {
    static GLOBAL: OnceLock<Sampler> = OnceLock::new();
    GLOBAL.get_or_init(|| Sampler::new(DEFAULT_CAPACITY, DEFAULT_INTERVAL))
}

/// The hot-loop hook: `global().maybe_sample()`. Solver loops (sim
/// shards, stress iterations, experiment sweeps, service requests)
/// call this; when the global sampler is disabled — the default — it
/// costs one relaxed atomic load and performs no allocation.
pub fn tick() {
    global().maybe_sample();
}

/// Tracks the solver-level series most runs care about on `sampler`:
/// decode failures (summed over the `rs`/`rm`/`irs` families), Monte
/// Carlo silent corruptions and trials, and arbiter mismatches. Handles
/// are resolved eagerly in the [`crate::metrics::global`] registry
/// (creating zero-valued series if absent) so per-sample reads are
/// plain atomic loads.
pub fn track_solver_defaults(sampler: &Sampler) {
    let registry = crate::metrics::global();
    let failure = |family: &str| {
        registry.counter(
            "rsmem_decode_outcomes_total",
            &[("family", family), ("outcome", "failure")],
        )
    };
    let (rs, rm, irs) = (failure("rs"), failure("rm"), failure("irs"));
    sampler.track_fn("decode_failures", move || {
        (rs.get() + rm.get() + irs.get()) as f64
    });
    sampler.track_counter(
        "mc_silent",
        registry.counter("rsmem_solver_mc_outcomes_total", &[("outcome", "silent")]),
    );
    sampler.track_counter(
        "mc_trials",
        registry.counter("rsmem_solver_mc_trials_total", &[]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_sampler(capacity: usize, interval: Duration) -> (ManualClock, Sampler) {
        let (control, clock) = ManualClock::new();
        (control, Sampler::with_clock(capacity, interval, clock))
    }

    #[test]
    fn disabled_sampler_records_nothing() {
        let (_clock, sampler) = manual_sampler(8, Duration::from_secs(1));
        sampler.track_counter("c", Counter::standalone());
        assert!(!sampler.maybe_sample());
        assert!(sampler.history().is_empty());
        assert!(sampler.latest().is_none());
    }

    /// The deterministic throttling test the shared clock abstraction
    /// exists for: sampling obeys the interval exactly, with no sleeps.
    #[test]
    fn sampling_is_throttled_by_the_injected_clock() {
        let (clock, sampler) = manual_sampler(8, Duration::from_secs(1));
        let c = Counter::standalone();
        sampler.track_counter("jobs", c.clone());
        sampler.set_enabled(true);

        assert!(sampler.maybe_sample(), "first tick samples immediately");
        c.add(10);
        assert!(!sampler.maybe_sample(), "same instant: throttled");
        clock.advance(Duration::from_millis(999));
        assert!(!sampler.maybe_sample(), "inside the interval: throttled");
        clock.advance(Duration::from_millis(1));
        assert!(sampler.maybe_sample(), "interval elapsed: sampled");
        c.add(20);
        clock.advance(Duration::from_secs(2));
        assert!(sampler.maybe_sample());

        let history = sampler.history();
        assert_eq!(history.len(), 3);
        assert_eq!(
            history.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(history[0].scalar("jobs"), Some(0.0));
        assert_eq!(history[1].scalar("jobs"), Some(10.0));
        assert_eq!(history[2].scalar("jobs"), Some(30.0));
        // 20 more jobs over exactly 2 seconds.
        assert_eq!(sampler.window_rate("jobs", 2), Some(10.0));
        // Over the whole window: 30 jobs in 3 seconds.
        assert_eq!(sampler.window_rate("jobs", 3), Some(10.0));
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let (clock, sampler) = manual_sampler(3, Duration::from_secs(1));
        sampler.track_counter("c", Counter::standalone());
        sampler.set_enabled(true);
        for _ in 0..5 {
            assert!(sampler.maybe_sample());
            clock.advance(Duration::from_secs(1));
        }
        let seqs: Vec<u64> = sampler.history().iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(sampler.latest().unwrap().seq, 5);
        sampler.clear();
        assert!(sampler.history().is_empty());
    }

    #[test]
    fn window_quantiles_use_the_delta_distribution() {
        let (clock, sampler) = manual_sampler(8, Duration::from_secs(1));
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        sampler.track_histogram("lat", h.clone());
        sampler.set_enabled(true);
        // Frame 1: all mass small.
        for _ in 0..100 {
            h.observe(5.0);
        }
        sampler.maybe_sample();
        clock.advance(Duration::from_secs(1));
        // Between frames: a burst of slow observations.
        for _ in 0..100 {
            h.observe(500.0);
        }
        sampler.maybe_sample();
        // Cumulative p99 mixes both; the windowed delta isolates the burst.
        let windowed = sampler.window_quantile("lat", 0.5, 2).unwrap();
        assert!(
            (100.0..=1000.0).contains(&windowed),
            "window median {windowed} should sit in the burst bucket"
        );
        let cumulative = h.snapshot().quantile(0.5).unwrap();
        assert!(cumulative <= 100.0, "cumulative median {cumulative}");
    }

    #[test]
    fn frame_json_is_canonical_and_carries_rates_and_quantiles() {
        let (clock, sampler) = manual_sampler(8, Duration::from_secs(1));
        let c = Counter::standalone();
        let g = Gauge::standalone();
        let h = Histogram::with_bounds(&[10, 100]);
        sampler.track_counter("reqs", c.clone());
        sampler.track_gauge("inflight", g.clone());
        sampler.track_histogram("lat", h.clone());
        sampler.set_enabled(true);
        sampler.maybe_sample();
        c.add(30);
        g.set(2);
        h.observe(50.0);
        clock.advance(Duration::from_secs(2));
        sampler.maybe_sample();

        let frame = sampler.latest_json().unwrap();
        let encoded = frame.encode();
        // Canonical: parse → encode is a fixed point.
        assert_eq!(crate::json::parse(&encoded).unwrap().encode(), encoded);
        assert_eq!(frame.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            frame.get("scalars").unwrap().get("reqs").unwrap().as_f64(),
            Some(30.0)
        );
        assert_eq!(
            frame.get("rates").unwrap().get("reqs").unwrap().as_f64(),
            Some(15.0),
            "30 requests over 2 seconds"
        );
        // Gauges carry no rate.
        assert!(frame.get("rates").unwrap().get("inflight").is_none());
        let lat = frame.get("quantiles").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(1.0));
        let p99 = lat.get("p99").unwrap().as_f64().unwrap();
        assert!((10.0..=100.0).contains(&p99), "p99 {p99}");

        let history = sampler.history_json();
        assert_eq!(history.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(history.get("frames").unwrap().as_array().unwrap().len(), 2);
        let doc = history.encode();
        assert_eq!(crate::json::parse(&doc).unwrap().encode(), doc);
    }

    #[test]
    fn global_sampler_tick_is_a_no_op_while_disabled() {
        // Other tests may enable the global sampler; this one only
        // asserts tick() does not panic and respects the flag shape.
        let sampler = global();
        let was = sampler.enabled();
        sampler.set_enabled(false);
        tick();
        sampler.set_enabled(was);
    }

    #[test]
    fn steady_state_overwrite_reuses_slot_shapes() {
        let (clock, sampler) = manual_sampler(2, Duration::from_secs(1));
        let h = Histogram::with_bounds(&[10]);
        sampler.track_histogram("lat", h.clone());
        sampler.track_counter("c", Counter::standalone());
        sampler.set_enabled(true);
        for i in 0..6 {
            h.observe((i * 7) as f64);
            assert!(sampler.maybe_sample());
            clock.advance(Duration::from_secs(1));
        }
        let history = sampler.history();
        assert_eq!(history.len(), 2);
        assert_eq!(history[1].histogram("lat").unwrap().count, 6);
        assert_eq!(history[0].histogram("lat").unwrap().count, 5);
    }
}
