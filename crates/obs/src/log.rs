//! Structured events and timed spans with trace IDs.
//!
//! The pipeline has one fast gate: a relaxed atomic holding the maximum
//! enabled level, `0` when logging is off. [`event`] and [`span`] check
//! it before touching anything else, so an instrumented hot path with
//! logging disabled pays one atomic load and performs **zero heap
//! allocations** (proven by the crate's `alloc_count` test).
//!
//! An enabled record is rendered as a single line — canonical JSON (see
//! [`crate::json`]) or human-readable text — and written to the sink in
//! one locked write, so concurrent emitters never interleave bytes.
//!
//! ## Configuration
//!
//! `RSMEM_LOG` (or an explicit [`init`]) selects `format[:level[:targets]]`:
//!
//! ```text
//! RSMEM_LOG=json              # JSON-lines, everything up to debug
//! RSMEM_LOG=text:info         # human-readable, info and up
//! RSMEM_LOG=json:debug:ctmc   # only targets starting with "ctmc"
//! RSMEM_LOG=off               # explicit off (same as unset)
//! ```
//!
//! ## Trace IDs
//!
//! A trace ID is a non-zero `u64` carried in a thread-local.
//! [`trace_scope`] sets it for the current scope (restoring the previous
//! value on drop), and the workspace's thread pools capture + re-establish
//! it inside their workers, so every event a request causes — across the
//! HTTP worker, the sweep fan-out, the Monte-Carlo shards — carries the
//! same `trace_id`.

use crate::json::Value;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// A failure the process cannot hide.
    Error = 1,
    /// Something suspicious but survivable.
    Warn = 2,
    /// High-level lifecycle events (one per request / campaign).
    Info = 3,
    /// Per-solve diagnostics (one per grid solve / decode campaign).
    Debug = 4,
    /// Very chatty internals.
    Trace = 5,
}

impl Level {
    /// The lowercase name used in rendered records and `RSMEM_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses the names printed by [`Level::as_str`].
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// How enabled records are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// One human-readable line per record.
    Text,
    /// One canonical-JSON object per line (see [`crate::json`]).
    Json,
}

/// A complete logging configuration; `None` in [`init`] means off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogConfig {
    /// Output rendering.
    pub format: LogFormat,
    /// Maximum enabled level.
    pub level: Level,
    /// Target prefixes to keep; empty keeps everything.
    pub targets: Vec<String>,
}

impl LogConfig {
    /// Parses an `RSMEM_LOG`-style spec: `format[:level[:targets]]`.
    ///
    /// `""`, `"off"` and `"0"` mean logging off (`Ok(None)`). The level
    /// defaults to `debug`; targets are comma-separated prefixes.
    ///
    /// # Errors
    ///
    /// A message naming the unknown format or level.
    pub fn parse(spec: &str) -> Result<Option<LogConfig>, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" || spec == "0" {
            return Ok(None);
        }
        let mut parts = spec.splitn(3, ':');
        let format = match parts.next().unwrap_or_default() {
            "json" => LogFormat::Json,
            "text" => LogFormat::Text,
            other => return Err(format!("unknown log format {other:?} (json, text or off)")),
        };
        let level = match parts.next() {
            None | Some("") => Level::Debug,
            Some(name) => Level::parse(name)
                .ok_or_else(|| format!("unknown log level {name:?} (error..trace)"))?,
        };
        let targets = parts
            .next()
            .map(|t| {
                t.split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default();
        Ok(Some(LogConfig {
            format,
            level,
            targets,
        }))
    }
}

/// Where rendered lines go.
#[derive(Debug, Clone)]
pub enum Sink {
    /// The process's standard error (the default).
    Stderr,
    /// An in-memory buffer — for tests asserting on emitted records.
    Buffer(Arc<Mutex<Vec<u8>>>),
}

/// `0` = off; otherwise the numeric value of the max enabled [`Level`].
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// The active format + target filter (level lives in [`MAX_LEVEL`]).
static CONFIG: Mutex<Option<LogConfig>> = Mutex::new(None);

/// The active output sink.
static SINK: Mutex<Sink> = Mutex::new(Sink::Stderr);

/// Applies a configuration (or switches logging off with `None`).
/// May be called again to reconfigure — the CLI's `--log-format` flag
/// overrides the environment this way.
pub fn init(config: Option<LogConfig>) {
    let level = config.as_ref().map_or(0, |c| c.level as u8);
    *CONFIG.lock().expect("log config lock") = config;
    MAX_LEVEL.store(level, Ordering::Relaxed);
}

/// Configures logging from the `RSMEM_LOG` environment variable. An
/// unset variable leaves the current configuration untouched.
///
/// # Errors
///
/// The [`LogConfig::parse`] message for a malformed spec (logging is
/// left unchanged so a typo never silences a run unexpectedly).
pub fn init_from_env() -> Result<(), String> {
    match std::env::var("RSMEM_LOG") {
        Ok(spec) => {
            init(LogConfig::parse(&spec)?);
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

/// Redirects rendered lines (tests use [`Sink::Buffer`]).
pub fn set_sink(sink: Sink) {
    *SINK.lock().expect("log sink lock") = sink;
}

/// True when any logging configuration is active.
pub fn is_configured() -> bool {
    MAX_LEVEL.load(Ordering::Relaxed) != 0
}

/// True when records at `level` for `target` would be emitted. The
/// disabled path is one relaxed atomic load.
pub fn enabled(level: Level, target: &str) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if level as u8 > max {
        return false;
    }
    let config = CONFIG.lock().expect("log config lock");
    match config.as_ref() {
        None => false,
        Some(c) => c.targets.is_empty() || c.targets.iter().any(|t| target.starts_with(t.as_str())),
    }
}

/// One typed field value of an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text (converted only when the record is enabled).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Shared payload of events and spans.
struct Record {
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

/// A structured event under construction; a no-op shell when its level
/// is disabled (no allocations happen through the builder then).
pub struct Event(Option<Record>);

/// Starts an event. Returns a disabled shell (free to build and emit)
/// unless `level`/`target` pass the active filter.
pub fn event(level: Level, target: &'static str, name: &'static str) -> Event {
    if enabled(level, target) {
        Event(Some(Record {
            level,
            target,
            name,
            fields: Vec::new(),
        }))
    } else {
        Event(None)
    }
}

impl Event {
    /// Attaches a field. The value conversion runs only when the event
    /// is enabled, so passing `&str` to a disabled event allocates
    /// nothing.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(record) = &mut self.0 {
            record.fields.push((key, value.into()));
        }
        self
    }

    /// Renders and writes the event (one line, one locked write).
    pub fn emit(self) {
        if let Some(record) = self.0 {
            write_record(&record, None);
        }
    }
}

/// A timed span: emits one record on drop carrying `elapsed_us`.
pub struct Span(Option<SpanData>);

struct SpanData {
    record: Record,
    start: Instant,
    /// True when the span passes the *logging* filter (it will emit a
    /// record on drop). A span can exist for the profiler alone.
    log: bool,
    /// Open profiler frame, when profiling is enabled.
    prof: Option<crate::profile::Frame>,
    /// True when the flight recorder captured the open and must see the
    /// close.
    rec: bool,
}

/// Starts a [`Level::Debug`] span (the level solver instrumentation
/// uses: one record per solve, not per iteration).
pub fn span(target: &'static str, name: &'static str) -> Span {
    span_at(Level::Debug, target, name)
}

/// Starts a span at an explicit level. Every span doubles as a
/// [`crate::profile`] probe and a [`crate::recorder`] event pair: if
/// profiling or recording is enabled the span is timed even when
/// logging would drop it. With all three systems off the cost is three
/// relaxed atomic loads and zero allocations.
pub fn span_at(level: Level, target: &'static str, name: &'static str) -> Span {
    let log = enabled(level, target);
    let prof = crate::profile::enter(target, name);
    let rec = crate::recorder::enabled();
    if log || prof.is_some() || rec {
        if rec {
            crate::recorder::record_span_open(target, name);
        }
        Span(Some(SpanData {
            record: Record {
                level,
                target,
                name,
                fields: Vec::new(),
            },
            start: Instant::now(),
            log,
            prof,
            rec,
        }))
    } else {
        Span(None)
    }
}

impl Span {
    /// True when the span will emit a log record — callers use this to
    /// skip expensive field computation (e.g. a `format!`) when
    /// disabled. A profile-only span reports `false`: the profiler
    /// never reads fields, so computing them would be wasted work.
    pub fn active(&self) -> bool {
        self.0.as_ref().is_some_and(|d| d.log)
    }

    /// Attaches a field; a no-op (with no conversion) unless the span
    /// will emit a log record.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(data) = &mut self.0 {
            if data.log {
                data.record.fields.push((key, value.into()));
            }
        }
    }

    /// Monotonic time since the span started, `None` when disabled.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.0
            .as_ref()
            .map(|d| u64::try_from(d.start.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(data) = self.0.take() {
            let elapsed = u64::try_from(data.start.elapsed().as_micros()).unwrap_or(u64::MAX);
            if let Some(frame) = data.prof {
                crate::profile::exit(frame, elapsed);
            }
            if data.rec {
                crate::recorder::record_span_close(data.record.target, data.record.name, elapsed);
            }
            if data.log {
                write_record(&data.record, Some(elapsed));
            }
        }
    }
}

// ---------------------------------------------------------------- trace IDs

thread_local! {
    /// The current trace ID; `0` means none.
    static TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace ID active on this thread, if any.
pub fn current_trace_id() -> Option<u64> {
    let id = TRACE.with(Cell::get);
    (id != 0).then_some(id)
}

/// Restores the previous trace ID when dropped.
pub struct TraceGuard {
    previous: u64,
}

/// Sets the current thread's trace ID for the guard's lifetime.
/// Thread pools call this inside each worker with the ID captured from
/// the spawning thread, so a request's spans stay attributable across
/// fan-out.
pub fn trace_scope(id: u64) -> TraceGuard {
    let previous = TRACE.with(|t| t.replace(id));
    TraceGuard { previous }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE.with(|t| t.set(self.previous));
    }
}

/// A fresh, non-zero trace ID: wall-clock entropy mixed with a process
/// counter through SplitMix64, so concurrent generators cannot collide.
pub fn next_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut z = nanos ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z | 1 // never zero
}

/// Renders a trace ID the way records carry it: 16 lowercase hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a header-supplied trace ID: 1–16 hex digits, non-zero.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

// ----------------------------------------------------------------- emission

/// Monotonic origin for the `ts_us` field.
fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Microseconds since process start — the timestamp base shared by log
/// records and flight-recorder records, so the two streams line up.
pub(crate) fn ts_now_us() -> u64 {
    u64::try_from(process_start().elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn write_record(record: &Record, elapsed_us: Option<u64>) {
    let format = match CONFIG.lock().expect("log config lock").as_ref() {
        Some(c) => c.format,
        None => return, // reconfigured to off between creation and emit
    };
    let ts_us = u64::try_from(process_start().elapsed().as_micros()).unwrap_or(u64::MAX);
    let trace = current_trace_id();
    let line = match format {
        LogFormat::Json => render_json(record, elapsed_us, trace, ts_us),
        LogFormat::Text => render_text(record, elapsed_us, trace, ts_us),
    };
    let sink = SINK.lock().expect("log sink lock");
    match &*sink {
        Sink::Stderr => {
            let stderr = std::io::stderr();
            let mut handle = stderr.lock();
            let _ = handle.write_all(line.as_bytes());
        }
        Sink::Buffer(buffer) => {
            buffer
                .lock()
                .expect("log buffer lock")
                .extend_from_slice(line.as_bytes());
        }
    }
}

fn field_to_json(value: &FieldValue) -> Value {
    match value {
        FieldValue::U64(v) => Value::Number(*v as f64),
        FieldValue::I64(v) => Value::Number(*v as f64),
        FieldValue::F64(v) => Value::Number(*v),
        FieldValue::Bool(v) => Value::Bool(*v),
        FieldValue::Str(v) => Value::String(v.clone()),
    }
}

fn render_json(record: &Record, elapsed_us: Option<u64>, trace: Option<u64>, ts_us: u64) -> String {
    let mut map = BTreeMap::new();
    map.insert("ts_us".to_owned(), Value::Number(ts_us as f64));
    map.insert(
        "level".to_owned(),
        Value::String(record.level.as_str().to_owned()),
    );
    map.insert("target".to_owned(), Value::String(record.target.to_owned()));
    map.insert("name".to_owned(), Value::String(record.name.to_owned()));
    if let Some(id) = trace {
        map.insert("trace_id".to_owned(), Value::String(format_trace_id(id)));
    }
    if let Some(us) = elapsed_us {
        map.insert("elapsed_us".to_owned(), Value::Number(us as f64));
    }
    if !record.fields.is_empty() {
        let fields: BTreeMap<String, Value> = record
            .fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), field_to_json(v)))
            .collect();
        map.insert("fields".to_owned(), Value::Object(fields));
    }
    let mut line = Value::Object(map).encode();
    line.push('\n');
    line
}

/// Appends a field value with newlines and control characters escaped,
/// preserving the text sink's one-event-per-line invariant even for
/// adversarial strings (the JSON sink gets this for free from the
/// canonical codec's string escaping).
fn push_escaped_text(line: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            c if c.is_control() => {
                let _ = write!(line, "\\u{{{:04x}}}", c as u32);
            }
            c => line.push(c),
        }
    }
}

fn render_text(record: &Record, elapsed_us: Option<u64>, trace: Option<u64>, ts_us: u64) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "[{:>11.6}] {:<5} {} {}",
        ts_us as f64 / 1e6,
        record.level.as_str(),
        record.target,
        record.name
    );
    for (key, value) in &record.fields {
        let _ = match value {
            FieldValue::U64(v) => write!(line, " {key}={v}"),
            FieldValue::I64(v) => write!(line, " {key}={v}"),
            FieldValue::F64(v) => write!(line, " {key}={v}"),
            FieldValue::Bool(v) => write!(line, " {key}={v}"),
            FieldValue::Str(v) => {
                let _ = write!(line, " {key}=");
                push_escaped_text(&mut line, v);
                Ok(())
            }
        };
    }
    if let Some(us) = elapsed_us {
        let _ = write!(line, " elapsed_us={us}");
    }
    if let Some(id) = trace {
        let _ = write!(line, " trace={}", format_trace_id(id));
    }
    line.push('\n');
    line
}

/// Serializes unit tests (across this crate's modules) that touch the
/// global logging or profiling state.
#[cfg(test)]
pub(crate) fn test_env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// Serializes tests that touch the global logging configuration.
    fn config_lock() -> std::sync::MutexGuard<'static, ()> {
        test_env_lock()
    }

    fn capture() -> Arc<Mutex<Vec<u8>>> {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        set_sink(Sink::Buffer(Arc::clone(&buffer)));
        buffer
    }

    fn drain(buffer: &Arc<Mutex<Vec<u8>>>) -> String {
        String::from_utf8(std::mem::take(&mut *buffer.lock().unwrap())).unwrap()
    }

    fn reset() {
        init(None);
        set_sink(Sink::Stderr);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(LogConfig::parse("off").unwrap(), None);
        assert_eq!(LogConfig::parse("").unwrap(), None);
        let c = LogConfig::parse("json").unwrap().unwrap();
        assert_eq!(c.format, LogFormat::Json);
        assert_eq!(c.level, Level::Debug);
        assert!(c.targets.is_empty());
        let c = LogConfig::parse("text:info:ctmc,sim").unwrap().unwrap();
        assert_eq!(c.format, LogFormat::Text);
        assert_eq!(c.level, Level::Info);
        assert_eq!(c.targets, vec!["ctmc".to_owned(), "sim".to_owned()]);
        assert!(LogConfig::parse("xml").is_err());
        assert!(LogConfig::parse("json:loud").is_err());
    }

    #[test]
    fn disabled_by_default_and_level_filtered() {
        let _guard = config_lock();
        reset();
        assert!(!enabled(Level::Error, "x"));
        init(LogConfig::parse("json:info").unwrap());
        assert!(enabled(Level::Info, "x"));
        assert!(!enabled(Level::Debug, "x"));
        reset();
    }

    #[test]
    fn target_prefix_filter() {
        let _guard = config_lock();
        init(LogConfig::parse("json:debug:ctmc,service.cache").unwrap());
        assert!(enabled(Level::Debug, "ctmc.uniformization"));
        assert!(enabled(Level::Debug, "service.cache"));
        assert!(!enabled(Level::Debug, "service.request"));
        reset();
    }

    #[test]
    fn json_events_are_canonical_and_carry_fields() {
        let _guard = config_lock();
        init(LogConfig::parse("json").unwrap());
        let buffer = capture();
        event(Level::Info, "test.target", "hello")
            .field("count", 3u64)
            .field("ratio", 0.5f64)
            .field("label", "x y")
            .emit();
        let out = drain(&buffer);
        reset();
        let line = out.trim_end();
        let value = json::parse(line).expect("valid JSON");
        assert_eq!(value.encode(), line, "canonical");
        assert_eq!(value.get("level").unwrap().as_str(), Some("info"));
        assert_eq!(value.get("name").unwrap().as_str(), Some("hello"));
        let fields = value.get("fields").unwrap();
        assert_eq!(fields.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(fields.get("label").unwrap().as_str(), Some("x y"));
        assert!(value.get("trace_id").is_none(), "no trace set");
    }

    #[test]
    fn spans_emit_elapsed_and_trace() {
        let _guard = config_lock();
        init(LogConfig::parse("json").unwrap());
        let buffer = capture();
        {
            let _trace = trace_scope(0xDEAD_BEEF);
            let mut s = span("test.span", "work");
            assert!(s.active());
            s.record("items", 7u64);
            assert!(s.elapsed_us().is_some());
        }
        let out = drain(&buffer);
        reset();
        let value = json::parse(out.trim_end()).unwrap();
        assert_eq!(
            value.get("trace_id").unwrap().as_str(),
            Some("00000000deadbeef")
        );
        assert!(value.get("elapsed_us").unwrap().as_f64().is_some());
        assert_eq!(
            value.get("fields").unwrap().get("items").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn text_format_renders_one_line() {
        let _guard = config_lock();
        init(LogConfig::parse("text:info").unwrap());
        let buffer = capture();
        event(Level::Info, "test.text", "ping")
            .field("n", 1u64)
            .emit();
        let out = drain(&buffer);
        reset();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("info"), "{out}");
        assert!(out.contains("test.text ping n=1"), "{out}");
    }

    #[test]
    fn text_format_escapes_control_characters() {
        // Mirrors the JSON sink's label-escaping tests: adversarial
        // field values must not break the one-event-per-line invariant.
        let _guard = config_lock();
        init(LogConfig::parse("text:info").unwrap());
        let buffer = capture();
        event(Level::Info, "test.text", "adversarial")
            .field("msg", "a\nfake=line\r\tend")
            .field("nul", "x\u{0}y")
            .field("slash", "a\\b")
            .emit();
        let out = drain(&buffer);
        reset();
        assert_eq!(out.lines().count(), 1, "must stay one line: {out:?}");
        assert!(out.contains("msg=a\\nfake=line\\r\\tend"), "{out}");
        assert!(out.contains("nul=x\\u{0000}y"), "{out}");
        assert!(out.contains("slash=a\\\\b"), "{out}");
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        assert_eq!(current_trace_id(), None);
        {
            let _a = trace_scope(1);
            assert_eq!(current_trace_id(), Some(1));
            {
                let _b = trace_scope(2);
                assert_eq!(current_trace_id(), Some(2));
            }
            assert_eq!(current_trace_id(), Some(1));
        }
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn trace_id_parse_and_format_roundtrip() {
        assert_eq!(parse_trace_id("00000000deadbeef"), Some(0xDEAD_BEEF));
        assert_eq!(parse_trace_id("ff"), Some(0xFF));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("0"), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("11112222333344445"), None); // 17 digits
        let id = next_trace_id();
        assert_ne!(id, 0);
        assert_eq!(parse_trace_id(&format_trace_id(id)), Some(id));
    }

    #[test]
    fn fresh_trace_ids_do_not_collide() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
    }
}
