//! Counters, gauges and histograms with Prometheus text rendering.
//!
//! A [`Registry`] owns an insertion-ordered list of metric *families*
//! (one `# TYPE` line each); each family holds metrics keyed by their
//! encoded label string, kept sorted so rendering is deterministic.
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-wrapped
//! atomics: updating one never touches the registry lock, so hot solver
//! loops pay a single atomic RMW per observation and nothing more.
//!
//! The [`global`] registry collects solver-level series
//! (`rsmem_solver_*`, `rsmem_arbiter_*`); `rsmem-service` renders it
//! after its own per-instance HTTP registry so `GET /metrics` exposes
//! both side by side.
//!
//! Label values are escaped per the Prometheus text exposition format:
//! `\` → `\\`, `"` → `\"`, newline → `\n`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter (also usable as a bridge for
/// externally maintained totals via [`Counter::set`]).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter owned by no registry. The time-series sampler tracks
    /// aggregate series (e.g. "all requests" across endpoints) that
    /// deliberately stay out of the `/metrics` exposition; standalone
    /// handles keep those updates identical to registry handles.
    pub fn standalone() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` — hot loops batch locally and add once per shard.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrites the value. For mirroring a total maintained elsewhere
    /// (e.g. cache statistics) into the exposition; not for hot paths.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge owned by no registry; see [`Counter::standalone`].
    pub fn standalone() -> Gauge {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Buckets are non-cumulative internally and
/// rendered cumulatively (`le="..."` + `+Inf`) per Prometheus.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

struct HistogramCore {
    /// Upper bounds, strictly increasing; the overflow bucket is implicit.
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum as `f64` bits, updated by compare-exchange.
    sum_bits: AtomicU64,
    /// OpenMetrics-style exemplar of the most recent observation that
    /// landed in the highest bucket seen so far: bucket index **plus
    /// one** (0 = none yet), the trace ID active when it was observed,
    /// and the observed value's bits. The three stores are independent
    /// relaxed atomics — a concurrent reader can see a torn triple. The
    /// exemplar is a forensic hint linking a slow request to its trace,
    /// not an invariant, so that race is accepted.
    exemplar_bucket: AtomicU64,
    exemplar_trace: AtomicU64,
    exemplar_value_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> HistogramCore {
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            exemplar_bucket: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
            exemplar_value_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// The trace-linked exemplar a [`Histogram`] carries: its most recent
/// observation in the highest bucket seen so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketExemplar {
    /// Non-cumulative bucket index (`bounds.len()` = the `+Inf` bucket).
    pub bucket: usize,
    /// The trace ID active when the observation was recorded.
    pub trace_id: u64,
    /// The observed value.
    pub value: f64,
}

/// A point-in-time copy of a histogram's state, cheap to diff and to
/// estimate quantiles from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds (the overflow bucket is implicit).
    pub bounds: Vec<u64>,
    /// Non-cumulative counts, one per bound plus the overflow slot.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank — the
    /// same estimate `histogram_quantile` would produce from the
    /// rendered exposition.
    ///
    /// The open-ended `+Inf` bucket has no upper edge to interpolate
    /// toward, so a rank landing there clamps to the largest finite
    /// bound instead of extrapolating. Returns `None` for an empty
    /// histogram (or one with no finite buckets).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.buckets.iter().enumerate() {
            let before = cumulative;
            cumulative += bucket_count;
            if cumulative as f64 >= rank && bucket_count > 0 {
                if i >= self.bounds.len() {
                    return Some(*self.bounds.last()? as f64);
                }
                let upper = self.bounds[i] as f64;
                let lower = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                let fraction = ((rank - before as f64) / bucket_count as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * fraction);
            }
        }
        // Torn concurrent snapshot (count ahead of bucket stores): fall
        // back to the largest finite bound.
        self.bounds.last().map(|&b| b as f64)
    }

    /// The distribution observed *since* `earlier` — per-bucket
    /// saturating differences. Both snapshots must come from the same
    /// histogram (identical bounds).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        debug_assert_eq!(
            self.bounds, earlier.bounds,
            "snapshots of the same histogram"
        );
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
        }
    }
}

impl Histogram {
    /// A histogram owned by no registry; see [`Counter::standalone`].
    /// `bounds` must be strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram(Arc::new(HistogramCore::new(bounds)))
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &*self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b as f64)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut current = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        // Keep the exemplar pointing at the most recent observation in
        // the highest bucket seen so far, but only when a trace is
        // active — an exemplar exists to link back to trace output.
        if let Some(trace) = crate::log::current_trace_id() {
            let tag = idx as u64 + 1;
            if tag >= core.exemplar_bucket.load(Ordering::Relaxed) {
                core.exemplar_trace.store(trace, Ordering::Relaxed);
                core.exemplar_value_bits
                    .store(value.to_bits(), Ordering::Relaxed);
                core.exemplar_bucket.store(tag, Ordering::Relaxed);
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// A point-in-time copy of bounds, bucket counts, count and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        self.snapshot_into(&mut out);
        out
    }

    /// Like [`Histogram::snapshot`] but reusing `out`'s allocations —
    /// after the first call with a given histogram, refreshing the same
    /// snapshot performs no heap allocation (the sampler's steady-state
    /// contract).
    pub fn snapshot_into(&self, out: &mut HistogramSnapshot) {
        let core = &*self.0;
        if out.bounds != core.bounds {
            out.bounds.clear();
            out.bounds.extend_from_slice(&core.bounds);
        }
        out.buckets.clear();
        out.buckets
            .extend(core.buckets.iter().map(|b| b.load(Ordering::Relaxed)));
        out.count = core.count.load(Ordering::Relaxed);
        out.sum = f64::from_bits(core.sum_bits.load(Ordering::Relaxed));
    }

    /// The current exemplar, if any observation was made under an
    /// active trace. See [`BucketExemplar`] for the (accepted) torn-read
    /// caveat.
    pub fn exemplar(&self) -> Option<BucketExemplar> {
        let tag = self.0.exemplar_bucket.load(Ordering::Relaxed);
        if tag == 0 {
            return None;
        }
        Some(BucketExemplar {
            bucket: (tag - 1) as usize,
            trace_id: self.0.exemplar_trace.load(Ordering::Relaxed),
            value: f64::from_bits(self.0.exemplar_value_bits.load(Ordering::Relaxed)),
        })
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Kind tag used for the `# TYPE` line and registration checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

struct Family {
    name: String,
    kind: Kind,
    /// `(encoded_label_string, metric)`, sorted by the label string.
    metrics: Vec<(String, Metric)>,
}

/// An insertion-ordered collection of metric families.
///
/// The service holds a per-instance registry for its HTTP series (so
/// snapshot tests stay deterministic); solver crates publish to the
/// process-wide [`global`] registry.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Declares a family without creating any metric, so it renders its
    /// `# TYPE` line even while empty (stable exposition from startup).
    pub fn declare_counter(&self, name: &str) {
        self.declare(name, Kind::Counter);
    }

    /// See [`Registry::declare_counter`].
    pub fn declare_gauge(&self, name: &str) {
        self.declare(name, Kind::Gauge);
    }

    /// See [`Registry::declare_counter`].
    pub fn declare_histogram(&self, name: &str) {
        self.declare(name, Kind::Histogram);
    }

    fn declare(&self, name: &str, kind: Kind) {
        let mut families = self.families.lock().expect("metrics registry lock");
        if let Some(family) = families.iter().find(|f| f.name == name) {
            assert_eq!(
                family.kind, kind,
                "metric family {name:?} re-declared with a different type"
            );
            return;
        }
        families.push(Family {
            name: name.to_owned(),
            kind,
            metrics: Vec::new(),
        });
    }

    /// Returns the counter for `name` + `labels`, creating both the
    /// family and the metric on first use. The handle is cheap to clone
    /// and callers should cache it outside hot loops.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, Kind::Counter, labels, || {
            Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Returns the gauge for `name` + `labels`; see [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, Kind::Gauge, labels, || {
            Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0))))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Returns the histogram for `name` + `labels` with the given
    /// strictly increasing integer bucket bounds. Bounds are fixed at
    /// first creation; later calls reuse the existing buckets.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        match self.get_or_insert(name, Kind::Histogram, labels, || {
            Metric::Histogram(Histogram(Arc::new(HistogramCore::new(bounds))))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Returns the counter for `name` + `labels` only if it already
    /// exists — unlike [`Registry::counter`] this never creates the
    /// metric, so read-side queries cannot grow the exposition.
    pub fn find_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<Counter> {
        let encoded = encode_labels(labels);
        let families = self.families.lock().expect("metrics registry lock");
        let family = families.iter().find(|f| f.name == name)?;
        let i = family
            .metrics
            .binary_search_by(|(k, _)| k.cmp(&encoded))
            .ok()?;
        match &family.metrics[i].1 {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        }
    }

    /// Returns the histogram for `name` + `labels` only if it already
    /// exists; the histogram sibling of [`Registry::find_counter`].
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        let encoded = encode_labels(labels);
        let families = self.families.lock().expect("metrics registry lock");
        let family = families.iter().find(|f| f.name == name)?;
        let i = family
            .metrics
            .binary_search_by(|(k, _)| k.cmp(&encoded))
            .ok()?;
        match &family.metrics[i].1 {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let encoded = encode_labels(labels);
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    kind,
                    metrics: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        assert_eq!(
            family.kind, kind,
            "metric family {name:?} used with a different type"
        );
        match family.metrics.binary_search_by(|(k, _)| k.cmp(&encoded)) {
            Ok(i) => clone_metric(&family.metrics[i].1),
            Err(i) => {
                let metric = make();
                let handle = clone_metric(&metric);
                family.metrics.insert(i, (encoded, metric));
                handle
            }
        }
    }

    /// Renders every family in the Prometheus text exposition format:
    /// families in declaration order, metrics within a family sorted by
    /// label string, histograms with cumulative `le` buckets.
    pub fn render(&self) -> String {
        self.render_opts(false)
    }

    /// Like [`Registry::render`] but additionally annotating histogram
    /// bucket lines with their [`BucketExemplar`] in OpenMetrics style
    /// (`… # {trace_id="…"} value`). Off by default — appending the
    /// annotation changes bucket lines, and the plain exposition is
    /// byte-stable for existing scrapers.
    pub fn render_with_exemplars(&self) -> String {
        self.render_opts(true)
    }

    fn render_opts(&self, exemplars: bool) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("metrics registry lock");
        for family in families.iter() {
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for (labels, metric) in &family.metrics {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", family.name, labels, c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", family.name, labels, g.get());
                    }
                    Metric::Histogram(h) => {
                        render_histogram(&mut out, &family.name, labels, h, exemplars);
                    }
                }
            }
        }
        out
    }
}

fn clone_metric(metric: &Metric) -> Metric {
    match metric {
        Metric::Counter(c) => Metric::Counter(c.clone()),
        Metric::Gauge(g) => Metric::Gauge(g.clone()),
        Metric::Histogram(h) => Metric::Histogram(h.clone()),
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram, exemplars: bool) {
    let core = &*h.0;
    let exemplar = if exemplars { h.exemplar() } else { None };
    let annotate = |out: &mut String, bucket: usize| {
        if let Some(e) = &exemplar {
            if e.bucket == bucket {
                let _ = write!(
                    out,
                    " # {{trace_id=\"{}\"}} {}",
                    crate::log::format_trace_id(e.trace_id),
                    format_float(e.value)
                );
            }
        }
    };
    let mut cumulative = 0u64;
    for (i, bound) in core.bounds.iter().enumerate() {
        cumulative += core.buckets[i].load(Ordering::Relaxed);
        let _ = write!(
            out,
            "{name}_bucket{} {cumulative}",
            with_label(labels, "le", &bound.to_string())
        );
        annotate(out, i);
        out.push('\n');
    }
    cumulative += core.buckets[core.bounds.len()].load(Ordering::Relaxed);
    let _ = write!(
        out,
        "{name}_bucket{} {cumulative}",
        with_label(labels, "le", "+Inf")
    );
    annotate(out, core.bounds.len());
    out.push('\n');
    let _ = writeln!(out, "{name}_sum{labels} {}", format_float(h.sum()));
    let _ = writeln!(out, "{name}_count{labels} {}", h.count());
}

/// Formats a histogram sum: integral values print without a fraction so
/// integer-valued observations render as Prometheus integers.
fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Encodes a label set as `{k1="v1",k2="v2"}` (empty string for no
/// labels), escaping values per the Prometheus text format.
fn encode_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    out.push('}');
    out
}

/// Inserts one more label into an already-encoded label string —
/// `""` + `le`/`5` → `{le="5"}`, `{a="b"}` + `le`/`5` → `{a="b",le="5"}`.
fn with_label(encoded: &str, key: &str, value: &str) -> String {
    let escaped = escape_label_value(value);
    if encoded.is_empty() {
        format!("{{{key}=\"{escaped}\"}}")
    } else {
        let inner = &encoded[..encoded.len() - 1]; // drop trailing '}'
        format!("{inner},{key}=\"{escaped}\"}}")
    }
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// The process-wide registry solver crates publish to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The build identity baked in at compile time: `(version, git_hash)`.
/// The hash comes from `git rev-parse --short=12 HEAD` in the crate's
/// build script; `"unknown"` when building outside a git checkout.
pub fn build_info() -> (&'static str, &'static str) {
    (env!("CARGO_PKG_VERSION"), env!("RSMEM_GIT_HASH"))
}

/// Registers the conventional `rsmem_build_info` gauge — constant `1`
/// with the build identity as labels — so any `/metrics` scrape (and
/// the bench harness, which reads [`build_info`] directly) can tell
/// which build produced the numbers.
pub fn register_build_info(registry: &Registry) {
    let (version, git_hash) = build_info();
    registry
        .gauge(
            "rsmem_build_info",
            &[("git_hash", git_hash), ("version", version)],
        )
        .set(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_gauge_identifies_the_build() {
        let (version, git_hash) = build_info();
        assert!(!version.is_empty());
        assert!(!git_hash.is_empty());
        let r = Registry::new();
        register_build_info(&r);
        let text = r.render();
        assert!(text.contains("# TYPE rsmem_build_info gauge"), "{text}");
        assert!(
            text.contains(&format!(
                "rsmem_build_info{{git_hash=\"{git_hash}\",version=\"{version}\"}} 1"
            )),
            "{text}"
        );
    }

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("jobs_total", &[]);
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        let g = r.gauge("depth", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
        let text = r.render();
        assert!(text.contains("# TYPE jobs_total counter\njobs_total 5\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -3\n"));
    }

    #[test]
    fn handles_are_shared_per_label_set() {
        let r = Registry::new();
        let a = r.counter("hits", &[("kind", "x")]);
        let b = r.counter("hits", &[("kind", "x")]);
        let other = r.counter("hits", &[("kind", "y")]);
        a.inc();
        b.inc();
        other.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn families_render_in_declaration_order_metrics_sorted() {
        let r = Registry::new();
        r.declare_counter("zeta_total");
        r.declare_counter("alpha_total");
        r.counter("zeta_total", &[("s", "200")]).inc();
        r.counter("zeta_total", &[("s", "104")]).add(2);
        let text = r.render();
        let zeta = text.find("# TYPE zeta_total").unwrap();
        let alpha = text.find("# TYPE alpha_total").unwrap();
        assert!(zeta < alpha, "declaration order, not alphabetical");
        let l104 = text.find("zeta_total{s=\"104\"} 2").unwrap();
        let l200 = text.find("zeta_total{s=\"200\"} 1").unwrap();
        assert!(l104 < l200, "label-sorted within family");
    }

    #[test]
    fn declared_empty_family_still_renders_type_line() {
        let r = Registry::new();
        r.declare_histogram("latency_us");
        assert_eq!(r.render(), "# TYPE latency_us histogram\n");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("terms", &[], &[10, 100, 1000]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(50.0);
        h.observe(5000.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5105.0);
        let text = r.render();
        assert!(text.contains("terms_bucket{le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("terms_bucket{le=\"100\"} 3\n"), "{text}");
        assert!(text.contains("terms_bucket{le=\"1000\"} 3\n"), "{text}");
        assert!(text.contains("terms_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("terms_sum 5105\n"), "{text}");
        assert!(text.contains("terms_count 4\n"), "{text}");
    }

    #[test]
    fn histogram_le_label_appends_to_existing_labels() {
        let r = Registry::new();
        let h = r.histogram("dur", &[("op", "solve")], &[1]);
        h.observe(0.5);
        let text = r.render();
        assert!(
            text.contains("dur_bucket{op=\"solve\",le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("dur_sum{op=\"solve\"} 0.5\n"), "{text}");
        assert!(text.contains("dur_count{op=\"solve\"} 1\n"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("evil_total", &[("path", "a\\b\"c\nd")]).inc();
        let text = r.render();
        assert!(
            text.contains("evil_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn escape_label_value_covers_all_specials() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("back\\slash"), "back\\\\slash");
        assert_eq!(escape_label_value("qu\"ote"), "qu\\\"ote");
        assert_eq!(escape_label_value("new\nline"), "new\\nline");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("thing", &[]);
        r.gauge("thing", &[]);
    }

    #[test]
    fn registry_is_thread_safe_under_contention() {
        let r = Registry::new();
        let threads = 8;
        let per_thread = 1000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let r = &r;
                scope.spawn(move || {
                    let c = r.counter("contended_total", &[]);
                    let h = r.histogram("contended_hist", &[], &[10, 100]);
                    let label = if t % 2 == 0 { "even" } else { "odd" };
                    let labelled = r.counter("split_total", &[("side", label)]);
                    for i in 0..per_thread {
                        c.inc();
                        labelled.inc();
                        h.observe((i % 150) as f64);
                    }
                });
            }
        });
        let c = r.counter("contended_total", &[]);
        assert_eq!(c.get(), threads as u64 * per_thread);
        let h = r.histogram("contended_hist", &[], &[10, 100]);
        assert_eq!(h.count(), threads as u64 * per_thread);
        let even = r.counter("split_total", &[("side", "even")]);
        let odd = r.counter("split_total", &[("side", "odd")]);
        assert_eq!(even.get() + odd.get(), threads as u64 * per_thread);
        // Sum must equal the exact sum of observations (CAS loop is lossless).
        let expected: f64 = (0..per_thread).map(|i| (i % 150) as f64).sum::<f64>() * threads as f64;
        assert_eq!(h.sum(), expected);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("obs_selftest_total", &[]);
        let b = global().counter("obs_selftest_total", &[]);
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn find_histogram_is_read_only_and_kind_checked() {
        let r = Registry::new();
        assert!(r.find_histogram("lat_us", &[]).is_none());
        let h = r.histogram("lat_us", &[("op", "x")], &[10, 100]);
        h.observe(5.0);
        let found = r.find_histogram("lat_us", &[("op", "x")]).unwrap();
        assert_eq!(found.count(), 1);
        assert!(r.find_histogram("lat_us", &[("op", "y")]).is_none());
        r.counter("a_counter", &[]);
        assert!(r.find_histogram("a_counter", &[]).is_none());
    }

    /// Quantile estimates never decrease as `q` increases — for an
    /// assortment of mass placements including the overflow bucket.
    #[test]
    fn quantile_is_monotonic_in_q() {
        let bounds = [10u64, 100, 1_000, 10_000];
        let distributions: &[&[f64]] = &[
            &[1.0, 5.0, 50.0, 500.0, 5_000.0, 50_000.0],
            &[7.0; 10],
            &[50_000.0, 60_000.0, 1.0],
            &[9.0, 11.0, 99.0, 101.0, 999.0, 1_001.0, 9_999.0, 10_001.0],
        ];
        for observations in distributions {
            let h = Histogram::with_bounds(&bounds);
            for &v in *observations {
                h.observe(v);
            }
            let snap = h.snapshot();
            let mut previous = f64::NEG_INFINITY;
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                let estimate = snap.quantile(q).unwrap();
                assert!(
                    estimate >= previous,
                    "quantile({q}) = {estimate} < quantile at previous q = {previous} \
                     for {observations:?}"
                );
                previous = estimate;
            }
        }
    }

    /// With every observation in one bucket, each quantile stays inside
    /// that bucket's edges, and the extremes hit them exactly.
    #[test]
    fn quantile_is_exact_on_single_bucket_mass() {
        let bounds = [10u64, 100, 1_000];
        let h = Histogram::with_bounds(&bounds);
        for _ in 0..25 {
            h.observe(40.0); // all mass in (10, 100]
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), Some(10.0), "q=0 is the lower edge");
        assert_eq!(snap.quantile(1.0), Some(100.0), "q=1 is the upper edge");
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let estimate = snap.quantile(q).unwrap();
            assert!(
                (10.0..=100.0).contains(&estimate),
                "quantile({q}) = {estimate}"
            );
        }
        // Interpolation is linear in rank within the bucket.
        assert_eq!(snap.quantile(0.5), Some(55.0));
    }

    /// Every estimate is bounded by the histogram's finite bucket edges
    /// regardless of where the mass sits.
    #[test]
    fn quantile_is_bounded_by_bucket_edges() {
        let bounds = [5u64, 50, 500];
        let h = Histogram::with_bounds(&bounds);
        for v in [1.0, 2.0, 30.0, 400.0, 1_000.0, 100_000.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let estimate = snap.quantile(q).unwrap();
            assert!(
                (0.0..=500.0).contains(&estimate),
                "quantile({q}) = {estimate} escaped the bucket edges"
            );
        }
    }

    /// The open-ended `+Inf` bucket clamps to the largest finite bound
    /// instead of extrapolating past it (the interpolation fix).
    #[test]
    fn quantile_in_overflow_bucket_clamps_to_last_finite_bound() {
        let bounds = [10u64, 100];
        let h = Histogram::with_bounds(&bounds);
        h.observe(1e9);
        h.observe(2e9); // all mass in +Inf
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), Some(100.0), "q={q}");
        }
        // Empty histogram: no estimate at all.
        assert_eq!(
            Histogram::with_bounds(&bounds).snapshot().quantile(0.5),
            None
        );
    }

    #[test]
    fn snapshot_delta_subtracts_per_bucket() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.observe(5.0);
        let earlier = h.snapshot();
        h.observe(50.0);
        h.observe(500.0);
        let delta = h.snapshot().delta(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.buckets, vec![0, 1, 1]);
        assert_eq!(delta.sum, 550.0);
        // Refreshing into an existing snapshot reuses its buffers.
        let mut reused = earlier;
        h.snapshot_into(&mut reused);
        assert_eq!(reused, h.snapshot());
    }

    #[test]
    fn exemplar_tracks_most_recent_max_bucket_observation_under_trace() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.observe(5.0);
        assert!(h.exemplar().is_none(), "no trace active: no exemplar");
        {
            let _t = crate::log::trace_scope(0xABCD);
            h.observe(50.0);
        }
        let e = h.exemplar().unwrap();
        assert_eq!((e.bucket, e.trace_id, e.value), (1, 0xABCD, 50.0));
        {
            let _t = crate::log::trace_scope(0xBEEF);
            h.observe(60.0); // same bucket, more recent: replaces
        }
        let e = h.exemplar().unwrap();
        assert_eq!((e.bucket, e.trace_id, e.value), (1, 0xBEEF, 60.0));
        {
            let _t = crate::log::trace_scope(0xF00D);
            h.observe(7.0); // lower bucket: kept out
        }
        assert_eq!(h.exemplar().unwrap().trace_id, 0xBEEF);
    }

    #[test]
    fn render_with_exemplars_annotates_only_the_exemplar_bucket() {
        let r = Registry::new();
        let h = r.histogram("lat_us", &[], &[10, 100]);
        h.observe(5.0);
        {
            let _t = crate::log::trace_scope(1);
            h.observe(40.0);
        }
        let plain = r.render();
        assert!(
            !plain.contains('#') || !plain.contains("trace_id"),
            "{plain}"
        );
        let annotated = r.render_with_exemplars();
        assert!(
            annotated.contains(&format!(
                "lat_us_bucket{{le=\"100\"}} 2 # {{trace_id=\"{}\"}} 40",
                crate::log::format_trace_id(1)
            )),
            "{annotated}"
        );
        assert!(
            annotated.contains("lat_us_bucket{le=\"10\"} 1\n"),
            "{annotated}"
        );
    }
}
