//! Bakes the git commit hash into the crate so `rsmem_build_info`
//! (and bench reports) can identify the build under measurement.
//! Builds from a tarball (no `.git`) fall back to "unknown".

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=RSMEM_GIT_HASH={hash}");
    // Re-run when HEAD moves so the hash cannot go stale in incremental
    // builds. A missing path just means "always re-run", which is fine.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
