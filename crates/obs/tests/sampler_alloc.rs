//! Proves the time-series sampler's steady-state cost contract with a
//! counting global allocator: once the ring is full, `sample_now`
//! overwrites the oldest slot in place — counters, gauges, closures and
//! histograms all land in reused buffers, so sampling performs **zero
//! heap allocations** no matter how long the process runs.
//!
//! (The fill phase legitimately allocates one fresh frame per slot;
//! only the steady state is gated.)

use rsmem_obs::timeseries::Sampler;
use rsmem_obs::{Counter, Gauge, Histogram};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_sampling_allocates_nothing() {
    let capacity = 4;
    let sampler = Sampler::new(capacity, Duration::from_millis(1));
    let ops = Counter::standalone();
    let inflight = Gauge::standalone();
    let latency = Histogram::with_bounds(&[10, 100, 1_000, 10_000]);
    sampler.track_counter("ops", ops.clone());
    sampler.track_gauge("inflight", inflight.clone());
    sampler.track_histogram("latency_us", latency.clone());
    sampler.track_fn("load", || 0.5);
    sampler.set_enabled(true);

    // Fill the ring (plus one overwrite, so the in-place path has run
    // once and any lazily-grown slot buffer is at final size).
    for i in 0..=capacity as u64 {
        ops.inc();
        inflight.set(i as i64);
        latency.observe((i * 37 % 2_000) as f64);
        sampler.sample_now();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut last_seq = 0;
    for i in 0..512u64 {
        ops.add(3);
        inflight.set((i % 7) as i64);
        latency.observe((i * 97 % 20_000) as f64);
        let seq = sampler.sample_now();
        assert!(seq > last_seq, "every forced sample must land a frame");
        last_seq = seq;
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state sampling must reuse ring-slot allocations"
    );

    // The ring really did rotate: only the newest `capacity` frames
    // remain, ending at the last sequence number.
    let history = sampler.history();
    assert_eq!(history.len(), capacity);
    assert_eq!(history.last().unwrap().seq, last_seq);
}

#[test]
fn disabled_tick_does_not_allocate() {
    // `tick()` is compiled into solver hot paths (ber_curve, MC shards,
    // stress sweeps); with the global sampler disabled it must cost one
    // relaxed load and nothing else. Warm the lazy global first.
    rsmem_obs::timeseries::tick();
    assert!(!rsmem_obs::timeseries::global().enabled());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        rsmem_obs::timeseries::tick();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled tick must not allocate");
}
