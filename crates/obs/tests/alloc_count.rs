//! Proves the "zero overhead when disabled" contract with a counting
//! global allocator: building and emitting events and spans while
//! logging is off performs **zero heap allocations** — even when field
//! values would require conversion (e.g. `&str` → `String`), because
//! the builder defers `Into<FieldValue>` until the record is known to
//! be enabled.

use rsmem_obs::log::{event, span, trace_scope, Level};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_events_and_spans_allocate_nothing() {
    // Logging is never initialised in this test binary, so the fast
    // gate (one relaxed atomic load) must reject everything. Exercise
    // the trace machinery too: a disabled hot path may still run inside
    // a trace scope.
    let _trace = trace_scope(0x1234_5678);

    // Spans also double as profiler probes (PR 5) and flight-recorder
    // event pairs (PR 8). Neither is ever enabled in this binary, so
    // their gates — two more relaxed atomic loads inside `span_at` —
    // must not allocate either; the span loop below covers the combined
    // disabled path.
    assert!(!rsmem_obs::profile::is_enabled());
    assert!(!rsmem_obs::recorder::enabled());

    // Warm up thread-locals and lazy statics outside the measured region
    // (including the global time-series sampler's lazy cell).
    event(Level::Error, "warmup", "warmup")
        .field("k", 1u64)
        .emit();
    {
        let mut s = span("warmup", "warmup");
        s.record("k", 1u64);
    }
    rsmem_obs::timeseries::tick();
    assert!(!rsmem_obs::timeseries::global().enabled());

    let owned = String::from("pre-built so the &str path is the test");
    let before = ALLOCATIONS.load(Ordering::Relaxed);

    for i in 0..1000u64 {
        event(Level::Error, "hot.path", "solve")
            .field("iteration", i)
            .field("ratio", 0.25f64)
            .field("flag", true)
            .field("label", owned.as_str())
            .emit();

        let mut s = span("hot.path", "solve");
        assert!(!s.active());
        s.record("items", i);
        s.record("name", owned.as_str());
        assert_eq!(s.elapsed_us(), None);

        // Profiler-side scope reads are thread-local Cell ops.
        let _ = rsmem_obs::profile::current_node();

        // Disabled recorder hooks must bail on the gate before touching
        // rings, interning or reservoirs — including the exemplar path,
        // whose builder closure must never run.
        rsmem_obs::recorder::record_event(
            rsmem_obs::recorder::RecordKind::Decode,
            "hot.path",
            "solve",
            i,
            0,
        );
        let kept = rsmem_obs::recorder::record_exemplar_with("decode-failure", || {
            panic!("exemplar builder must not run while disabled")
        });
        assert!(!kept);

        // The solver hot paths also carry time-series sampling points
        // (PR 10); with the global sampler disabled each is one relaxed
        // atomic load.
        rsmem_obs::timeseries::tick();
    }

    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled events/spans must not allocate");
}
