//! Property-based tests for GF(2^m) field axioms and polynomial algebra.

use proptest::prelude::*;
use rsmem_gf::{interp, GfField, Poly, Symbol};

fn field_m() -> impl Strategy<Value = u32> {
    // Keep the exhaustive-ish properties cheap: small-to-medium widths.
    prop_oneof![Just(3u32), Just(4), Just(5), Just(8)]
}

fn sym(size: u32) -> impl Strategy<Value = Symbol> {
    (0..size).prop_map(|v| v as Symbol)
}

fn poly(size: u32, max_len: usize) -> impl Strategy<Value = Poly> {
    prop::collection::vec(sym(size), 0..max_len).prop_map(Poly::from_coeffs)
}

proptest! {
    #[test]
    fn mul_matches_reference((m, seed) in field_m().prop_flat_map(|m| {
        (Just(m), prop::collection::vec(0u32..(1 << m), 16))
    })) {
        let f = GfField::new(m).unwrap();
        for pair in seed.chunks(2) {
            if let [a, b] = pair {
                let (a, b) = (*a as Symbol, *b as Symbol);
                prop_assert_eq!(f.mul(a, b), f.mul_reference(a, b));
            }
        }
    }

    #[test]
    fn mul_associative_and_commutative(m in field_m(), raw in prop::collection::vec(0u32..65536, 3)) {
        let f = GfField::new(m).unwrap();
        let a = (raw[0] % f.size()) as Symbol;
        let b = (raw[1] % f.size()) as Symbol;
        let c = (raw[2] % f.size()) as Symbol;
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    }

    #[test]
    fn distributivity(m in field_m(), raw in prop::collection::vec(0u32..65536, 3)) {
        let f = GfField::new(m).unwrap();
        let a = (raw[0] % f.size()) as Symbol;
        let b = (raw[1] % f.size()) as Symbol;
        let c = (raw[2] % f.size()) as Symbol;
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    }

    #[test]
    fn division_inverts_multiplication(m in field_m(), raw in prop::collection::vec(1u32..65536, 2)) {
        let f = GfField::new(m).unwrap();
        let a = (raw[0] % f.size()) as Symbol;
        let b = (1 + raw[1] % (f.size() - 1)) as Symbol; // nonzero
        let p = f.mul(a, b);
        prop_assert_eq!(f.div(p, b).unwrap(), a);
    }

    #[test]
    fn poly_mul_commutes(m in Just(4u32), a_raw in prop::collection::vec(0u32..16, 0..8), b_raw in prop::collection::vec(0u32..16, 0..8)) {
        let f = GfField::new(m).unwrap();
        let a = Poly::from_coeffs(a_raw.iter().map(|&v| v as Symbol));
        let b = Poly::from_coeffs(b_raw.iter().map(|&v| v as Symbol));
        prop_assert_eq!(a.mul(&b, &f), b.mul(&a, &f));
    }

    #[test]
    fn poly_mul_associative_and_distributive(
        m in field_m(),
        a_raw in prop::collection::vec(0u32..65536, 0..7),
        b_raw in prop::collection::vec(0u32..65536, 0..7),
        c_raw in prop::collection::vec(0u32..65536, 0..7),
    ) {
        let f = GfField::new(m).unwrap();
        let reduce = |raw: &[u32]| Poly::from_coeffs(raw.iter().map(|&v| (v % f.size()) as Symbol));
        let a = reduce(&a_raw);
        let b = reduce(&b_raw);
        let c = reduce(&c_raw);
        prop_assert_eq!(a.mul(&b, &f).mul(&c, &f), a.mul(&b.mul(&c, &f), &f));
        prop_assert_eq!(
            a.mul(&b.add(&c, &f), &f),
            a.mul(&b, &f).add(&a.mul(&c, &f), &f)
        );
    }

    #[test]
    fn poly_div_rem_roundtrip(a_raw in prop::collection::vec(0u32..16, 0..12), b_raw in prop::collection::vec(0u32..16, 1..6)) {
        let f = GfField::new(4).unwrap();
        let a = Poly::from_coeffs(a_raw.iter().map(|&v| v as Symbol));
        let b = Poly::from_coeffs(b_raw.iter().map(|&v| v as Symbol));
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b, &f).unwrap();
        prop_assert_eq!(q.mul(&b, &f).add(&r, &f), a);
        if let Some(rd) = r.degree() {
            prop_assert!(rd < b.degree().unwrap());
        }
    }

    #[test]
    fn eval_is_ring_homomorphism(x in 0u32..16, a_raw in prop::collection::vec(0u32..16, 0..8), b_raw in prop::collection::vec(0u32..16, 0..8)) {
        let f = GfField::new(4).unwrap();
        let x = x as Symbol;
        let a = Poly::from_coeffs(a_raw.iter().map(|&v| v as Symbol));
        let b = Poly::from_coeffs(b_raw.iter().map(|&v| v as Symbol));
        prop_assert_eq!(a.add(&b, &f).eval(&f, x), f.add(a.eval(&f, x), b.eval(&f, x)));
        prop_assert_eq!(a.mul(&b, &f).eval(&f, x), f.mul(a.eval(&f, x), b.eval(&f, x)));
    }

    #[test]
    fn interpolation_roundtrip(coeffs_raw in prop::collection::vec(0u32..256, 1..8)) {
        let f = GfField::new(8).unwrap();
        let p = Poly::from_coeffs(coeffs_raw.iter().map(|&v| v as Symbol));
        let npts = coeffs_raw.len();
        let pts: Vec<(Symbol, Symbol)> = (1..=npts as Symbol).map(|x| (x, p.eval(&f, x))).collect();
        let q = interp::lagrange(&pts, &f).unwrap();
        // q agrees with p on enough points to pin it down.
        prop_assert_eq!(q, p);
    }
}

#[test]
fn poly_strategy_sanity() {
    // Non-proptest guard that the helper strategies build.
    let f = GfField::new(4).unwrap();
    let p = Poly::from_coeffs([1, 2, 3]);
    assert_eq!(p.eval(&f, 0), 1);
    // Silence dead-code warning for the unused generic helper.
    let _ = poly(16, 4);
}
