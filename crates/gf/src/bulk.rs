//! Bulk GF(2^m) data plane: per-constant multiply tables and slice
//! primitives.
//!
//! The scalar [`GfField::mul`] is three dependent table lookups per
//! product — fine for the polynomial algebra of a single decode, but the
//! Monte-Carlo and stress hot loops evaluate the *same* constant (a
//! generator root) against long runs of symbols. A [`MulTable`] bakes a
//! constant `c` into a pair of 256-entry split-byte tables so that
//! `c·x = lo[x & 0xff] ^ hi[x >> 8]` — one branchless expression for every
//! supported width (for `m ≤ 8` the `hi` half is identically zero and the
//! expression degenerates to a single lookup).
//!
//! Two execution strategies implement the slice primitives, selected once
//! at field construction ([`GfField::bulk_kind`]):
//!
//! * [`BulkKind::Swar64`] (`m ≤ 8`) — eight 8-bit lanes packed into one
//!   `u64`, multiplied branchlessly: for each bit `k` of the operand,
//!   extract that bit of every lane (`(v >> k) & 0x0101…`), then
//!   broadcast the **pre-reduced** partial product `c·α^k` into exactly
//!   the lanes that had the bit set with one integer multiply. Every
//!   partial product is already `< 2^m ≤ 2^8`, so lane fields never
//!   carry into each other and no in-loop polynomial reduction is
//!   needed — `m` shift/and/mul/xor rounds multiply eight symbols.
//! * [`BulkKind::Scalar`] (`m > 8`) — the split-byte tables, one symbol
//!   at a time.
//!
//! Both paths compute the *same field product* as [`GfField::mul`] (and
//! the carry-less [`GfField::mul_reference`] oracle); the exhaustive and
//! property tests at the bottom of this module pin that equivalence, which
//! is what lets `rsmem-code`'s batched syndrome plane promise bit-identical
//! decode outcomes.

use crate::{GfField, Symbol};

/// Execution strategy for the bulk slice primitives, chosen once at field
/// construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BulkKind {
    /// Eight 8-bit lanes per `u64`, branchless partial-product broadcast.
    /// Selected for `m ≤ 8`, where a symbol always fits a byte lane.
    Swar64,
    /// Per-symbol split-byte table lookups. Selected for `m > 8`.
    Scalar,
}

/// Mask with bit 0 of every 8-bit lane set.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// Symbols per SWAR word.
const LANES: usize = 8;

/// A per-constant multiply table over one field: the partially evaluated
/// function `x ↦ c·x`, applied to whole slices.
///
/// Building one costs 512 scalar multiplies; using one is a single
/// branchless split-byte lookup per symbol (or an 8-lane SWAR broadcast
/// per `u64` on `m ≤ 8` fields). Callers that evaluate the same constant
/// against many symbols — Horner syndrome ladders, locator sweeps —
/// should build the table once and reuse it.
///
/// # Examples
///
/// ```
/// use rsmem_gf::{bulk::MulTable, GfField};
///
/// # fn main() -> Result<(), rsmem_gf::GfError> {
/// let f = GfField::new(8)?;
/// let t = MulTable::new(&f, 0x53);
/// let mut xs = vec![0x01, 0xca, 0xff];
/// t.mul_slice(&mut xs);
/// assert_eq!(xs[0], 0x53);
/// assert_eq!(xs[1], f.mul(0x53, 0xca));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct MulTable {
    /// The constant this table multiplies by.
    constant: Symbol,
    /// Field width in bits (`m`); bounds the SWAR partial-product rounds.
    m: u32,
    /// Pre-reduced partial products `steps[k] = c · α^k` (i.e. `c · 2^k`
    /// reduced mod the primitive polynomial) for `k < m`. Populated only
    /// on `m ≤ 8` fields, where every entry fits a byte lane.
    steps: [u64; 8],
    /// Strategy inherited from the field at construction.
    kind: BulkKind,
    /// `lo[b] = c · b` for every low-byte value `b` that is a field
    /// element; entries above the field size are zero (never indexed).
    lo: Box<[Symbol; 256]>,
    /// `hi[b] = c · (b << 8)` for every high-byte value of a field
    /// element; identically zero when `m ≤ 8`.
    hi: Box<[Symbol; 256]>,
}

impl std::fmt::Debug for MulTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulTable")
            .field("constant", &self.constant)
            .field("m", &self.m)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl MulTable {
    /// Builds the multiply-by-`c` table for `field`.
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert`) if `c` is not a symbol of `field`.
    pub fn new(field: &GfField, c: Symbol) -> Self {
        debug_assert!(field.contains(c));
        let size = field.size() as usize;
        let mut lo = Box::new([0 as Symbol; 256]);
        let mut hi = Box::new([0 as Symbol; 256]);
        for b in 0..256usize.min(size) {
            lo[b] = field.mul(c, b as Symbol);
        }
        // High-byte partial products only exist for fields wider than a
        // byte; `b << 8` is a valid symbol exactly when `b < 2^(m-8)`.
        if size > 256 {
            for b in 0..(size >> 8) {
                hi[b] = field.mul(c, (b << 8) as Symbol);
            }
        }
        let mut steps = [0u64; 8];
        if field.bulk_kind() == BulkKind::Swar64 {
            for (k, step) in steps.iter_mut().enumerate().take(field.bits() as usize) {
                *step = field.mul(c, 1 << k) as u64;
            }
        }
        MulTable {
            constant: c,
            m: field.bits(),
            steps,
            kind: field.bulk_kind(),
            lo,
            hi,
        }
    }

    /// The constant `c` this table was built for.
    pub fn constant(&self) -> Symbol {
        self.constant
    }

    /// Single-symbol product `c·x` via the split-byte tables.
    #[inline]
    pub fn mul(&self, x: Symbol) -> Symbol {
        self.lo[(x & 0xff) as usize] ^ self.hi[(x >> 8) as usize]
    }

    /// In-place slice multiply: `xs[i] ← c · xs[i]`.
    pub fn mul_slice(&self, xs: &mut [Symbol]) {
        match self.kind {
            BulkKind::Swar64 => self.mul_slice_swar(xs),
            BulkKind::Scalar => self.mul_slice_scalar(xs),
        }
    }

    /// Fused multiply-accumulate: `acc[i] ^= c · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_add_slice(&self, src: &[Symbol], acc: &mut [Symbol]) {
        assert_eq!(src.len(), acc.len(), "mul_add_slice length mismatch");
        match self.kind {
            BulkKind::Swar64 => {
                let mut src_chunks = src.chunks_exact(LANES);
                let mut acc_chunks = acc.chunks_exact_mut(LANES);
                for (s, a) in src_chunks.by_ref().zip(acc_chunks.by_ref()) {
                    let r = self.swar_mul(pack8(s));
                    for (i, ai) in a.iter_mut().enumerate() {
                        *ai ^= ((r >> (8 * i)) & 0xff) as Symbol;
                    }
                }
                for (s, a) in src_chunks
                    .remainder()
                    .iter()
                    .zip(acc_chunks.into_remainder())
                {
                    *a ^= self.mul(*s);
                }
            }
            BulkKind::Scalar => {
                for (s, a) in src.iter().zip(acc.iter_mut()) {
                    *a ^= self.mul(*s);
                }
            }
        }
    }

    /// The Horner ladder step `acc[i] ← c · acc[i] ^ coeff[i]`, the inner
    /// loop of batched syndrome evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn horner_step(&self, acc: &mut [Symbol], coeff: &[Symbol]) {
        assert_eq!(acc.len(), coeff.len(), "horner_step length mismatch");
        match self.kind {
            BulkKind::Swar64 => {
                let mut acc_chunks = acc.chunks_exact_mut(LANES);
                let mut coeff_chunks = coeff.chunks_exact(LANES);
                for (a, c) in acc_chunks.by_ref().zip(coeff_chunks.by_ref()) {
                    let r = self.swar_mul(pack8(a));
                    for (i, ai) in a.iter_mut().enumerate() {
                        *ai = ((r >> (8 * i)) & 0xff) as Symbol ^ c[i];
                    }
                }
                for (a, c) in acc_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(coeff_chunks.remainder())
                {
                    *a = self.mul(*a) ^ c;
                }
            }
            BulkKind::Scalar => {
                for (a, c) in acc.iter_mut().zip(coeff.iter()) {
                    *a = self.mul(*a) ^ c;
                }
            }
        }
    }

    /// The Horner ladder step on **byte-lane packed** `u64` words: every
    /// byte lane of `acc` becomes `c · lane ⊕ coeff-lane`.
    ///
    /// This is the zero-unpack inner loop for structure-of-arrays
    /// syndrome evaluation: callers that keep eight symbols packed per
    /// `u64` across the whole ladder skip the per-step pack/unpack that
    /// [`MulTable::horner_step`] pays. Each byte lane must hold a field
    /// symbol; the products are the same field products as
    /// [`MulTable::mul`], so results stay bit-identical to the scalar
    /// ladder.
    ///
    /// Only meaningful on `m ≤ 8` fields ([`BulkKind::Swar64`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths; debug-asserts that
    /// the table belongs to a byte-wide field.
    pub fn horner_step_packed(&self, acc: &mut [u64], coeff: &[u64]) {
        assert_eq!(acc.len(), coeff.len(), "horner_step_packed length mismatch");
        for (a, &c) in acc.iter_mut().zip(coeff.iter()) {
            *a = self.horner_fold_packed(*a, c);
        }
    }

    /// Single-`u64` form of [`MulTable::horner_step_packed`]: returns
    /// `c · acc ⊕ coeff` on all eight byte lanes. Callers that keep the
    /// accumulator in a register across a whole Horner ladder (one root,
    /// one group of eight words) want this form.
    ///
    /// Only meaningful on `m ≤ 8` fields ([`BulkKind::Swar64`]);
    /// debug-asserts that the table belongs to one.
    #[inline]
    pub fn horner_fold_packed(&self, acc: u64, coeff: u64) -> u64 {
        debug_assert_eq!(
            self.kind,
            BulkKind::Swar64,
            "packed Horner requires an m ≤ 8 field"
        );
        self.swar_mul(acc) ^ coeff
    }

    /// Table-driven scalar loop (also the remainder path of SWAR).
    fn mul_slice_scalar(&self, xs: &mut [Symbol]) {
        for x in xs.iter_mut() {
            *x = self.mul(*x);
        }
    }

    /// SWAR loop: 8 symbols per `u64`, remainder through the tables.
    fn mul_slice_swar(&self, xs: &mut [Symbol]) {
        let mut chunks = xs.chunks_exact_mut(LANES);
        for chunk in chunks.by_ref() {
            let r = self.swar_mul(pack8(chunk));
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = ((r >> (8 * i)) & 0xff) as Symbol;
            }
        }
        self.mul_slice_scalar(chunks.into_remainder());
    }

    /// Multiplies all eight byte lanes of `v` by the table's constant.
    ///
    /// Round `k` isolates bit `k` of every lane (`(v >> k) & LANE_LSB`
    /// leaves a 0/1 at each lane's LSB) and multiplies by the pre-reduced
    /// partial product `steps[k] = c·α^k`. The integer multiply broadcasts
    /// `steps[k]` into exactly the lanes whose bit was set; because every
    /// partial product is `< 2^8`, the per-lane products occupy disjoint
    /// byte fields and the additions inside `wrapping_mul` never carry
    /// across lanes. XOR-accumulating the rounds yields `c·x` in every
    /// lane with no branches and no in-loop reduction.
    /// The round count is a fixed 8 rather than `m` so the loop fully
    /// unrolls; rounds `k ≥ m` have `steps[k] = 0` and contribute
    /// nothing.
    #[inline(always)]
    fn swar_mul(&self, v: u64) -> u64 {
        let mut acc = 0u64;
        for (k, &step) in self.steps.iter().enumerate() {
            acc ^= ((v >> k) & LANE_LSB).wrapping_mul(step);
        }
        acc
    }
}

/// Packs eight symbols into the eight byte lanes of a `u64`.
#[inline]
fn pack8(s: &[Symbol]) -> u64 {
    let mut v = 0u64;
    for (i, &x) in s.iter().enumerate() {
        v |= (x as u64) << (8 * i);
    }
    v
}

/// Dot product `Σ_i a[i] · b[i]` over the field.
///
/// Both operands vary, so no per-constant table applies; the sum runs on
/// the field's log/exp tables with a zero-operand skip. Used by the
/// batched decode plane for evaluator folds and as the test oracle for
/// the slice primitives.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_product(field: &GfField, a: &[Symbol], b: &[Symbol]) -> Symbol {
    assert_eq!(a.len(), b.len(), "dot_product length mismatch");
    let mut acc: Symbol = 0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x != 0 && y != 0 {
            acc ^= field.mul(x, y);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random symbol stream (SplitMix64-style).
    struct Stream(u64);
    impl Stream {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn symbol(&mut self, field: &GfField) -> Symbol {
            (self.next() % field.size() as u64) as Symbol
        }
    }

    #[test]
    fn kind_selection_matches_width() {
        for m in 2..=16u32 {
            let f = GfField::new(m).unwrap();
            let expect = if m <= 8 {
                BulkKind::Swar64
            } else {
                BulkKind::Scalar
            };
            assert_eq!(f.bulk_kind(), expect, "m={m}");
        }
    }

    #[test]
    fn table_matches_reference_exhaustively_gf16() {
        let f = GfField::new(4).unwrap();
        for c in f.elements() {
            let t = MulTable::new(&f, c);
            for x in f.elements() {
                assert_eq!(t.mul(x), f.mul_reference(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn table_matches_reference_exhaustively_gf256() {
        let f = GfField::new(8).unwrap();
        for c in f.elements() {
            let t = MulTable::new(&f, c);
            for x in f.elements() {
                assert_eq!(t.mul(x), f.mul_reference(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn mul_slice_matches_reference_exhaustively_gf256() {
        // Every constant against the full element range through the
        // public slice API (exercises the SWAR path and its remainder).
        let f = GfField::new(8).unwrap();
        let all: Vec<Symbol> = f.elements().collect();
        for c in f.elements() {
            let t = MulTable::new(&f, c);
            let mut xs = all.clone();
            t.mul_slice(&mut xs);
            for (x, got) in all.iter().zip(xs.iter()) {
                assert_eq!(*got, f.mul_reference(c, *x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn swar_and_scalar_paths_agree_on_every_width_up_to_8() {
        // The SWAR chain must be indistinguishable from the split-byte
        // tables — same field product, any slice length (remainders!).
        let mut rng = Stream(0xB01D_FACE);
        for m in 2..=8u32 {
            let f = GfField::new(m).unwrap();
            for _ in 0..64 {
                let c = rng.symbol(&f);
                let t = MulTable::new(&f, c);
                let len = 1 + (rng.next() % 23) as usize;
                let src: Vec<Symbol> = (0..len).map(|_| rng.symbol(&f)).collect();
                let mut via_swar = src.clone();
                t.mul_slice_swar(&mut via_swar);
                let mut via_tables = src.clone();
                t.mul_slice_scalar(&mut via_tables);
                assert_eq!(via_swar, via_tables, "m={m} c={c} len={len}");
            }
        }
    }

    #[test]
    fn mul_slice_matches_field_mul_on_wide_fields() {
        let mut rng = Stream(0xFEED);
        for m in [9u32, 10, 12, 16] {
            let f = GfField::new(m).unwrap();
            for _ in 0..32 {
                let c = rng.symbol(&f);
                let t = MulTable::new(&f, c);
                let src: Vec<Symbol> = (0..17).map(|_| rng.symbol(&f)).collect();
                let mut xs = src.clone();
                t.mul_slice(&mut xs);
                for (x, got) in src.iter().zip(xs.iter()) {
                    assert_eq!(*got, f.mul(c, *x), "m={m} c={c} x={x}");
                }
            }
        }
    }

    #[test]
    fn mul_add_slice_is_fused_multiply_xor() {
        let mut rng = Stream(0xACC0);
        for m in [4u32, 8, 12] {
            let f = GfField::new(m).unwrap();
            for _ in 0..32 {
                let c = rng.symbol(&f);
                let t = MulTable::new(&f, c);
                let len = 1 + (rng.next() % 19) as usize;
                let src: Vec<Symbol> = (0..len).map(|_| rng.symbol(&f)).collect();
                let base: Vec<Symbol> = (0..len).map(|_| rng.symbol(&f)).collect();
                let mut acc = base.clone();
                t.mul_add_slice(&src, &mut acc);
                for i in 0..len {
                    assert_eq!(acc[i], base[i] ^ f.mul(c, src[i]), "m={m} i={i}");
                }
            }
        }
    }

    #[test]
    fn horner_step_matches_scalar_ladder() {
        let mut rng = Stream(0x4042);
        for m in [4u32, 8, 10] {
            let f = GfField::new(m).unwrap();
            for _ in 0..32 {
                let c = rng.symbol(&f);
                let t = MulTable::new(&f, c);
                let len = 1 + (rng.next() % 13) as usize;
                let base: Vec<Symbol> = (0..len).map(|_| rng.symbol(&f)).collect();
                let coeff: Vec<Symbol> = (0..len).map(|_| rng.symbol(&f)).collect();
                let mut acc = base.clone();
                t.horner_step(&mut acc, &coeff);
                for i in 0..len {
                    assert_eq!(acc[i], f.mul(c, base[i]) ^ coeff[i], "m={m} i={i}");
                }
            }
        }
    }

    #[test]
    fn packed_horner_step_matches_symbol_horner_step() {
        let mut rng = Stream(0x9ACD);
        for m in 2..=8u32 {
            let f = GfField::new(m).unwrap();
            for _ in 0..32 {
                let c = rng.symbol(&f);
                let t = MulTable::new(&f, c);
                let words = 1 + (rng.next() % 5) as usize;
                let base: Vec<Symbol> = (0..words * LANES).map(|_| rng.symbol(&f)).collect();
                let coeff: Vec<Symbol> = (0..words * LANES).map(|_| rng.symbol(&f)).collect();
                let mut expect = base.clone();
                t.horner_step(&mut expect, &coeff);
                let mut acc_p: Vec<u64> = base.chunks_exact(LANES).map(pack8).collect();
                let coeff_p: Vec<u64> = coeff.chunks_exact(LANES).map(pack8).collect();
                t.horner_step_packed(&mut acc_p, &coeff_p);
                let got: Vec<Symbol> = acc_p
                    .iter()
                    .flat_map(|&r| (0..LANES).map(move |i| ((r >> (8 * i)) & 0xff) as Symbol))
                    .collect();
                assert_eq!(got, expect, "m={m} c={c} words={words}");
            }
        }
    }

    #[test]
    fn dot_product_matches_naive_fold() {
        let mut rng = Stream(0xD07);
        for m in [4u32, 8, 16] {
            let f = GfField::new(m).unwrap();
            for _ in 0..32 {
                let len = (rng.next() % 16) as usize;
                let a: Vec<Symbol> = (0..len).map(|_| rng.symbol(&f)).collect();
                let b: Vec<Symbol> = (0..len).map(|_| rng.symbol(&f)).collect();
                let naive = a
                    .iter()
                    .zip(b.iter())
                    .fold(0 as Symbol, |s, (&x, &y)| s ^ f.mul(x, y));
                assert_eq!(dot_product(&f, &a, &b), naive, "m={m} len={len}");
            }
        }
    }

    #[test]
    fn zero_and_one_constants_behave() {
        let f = GfField::new(8).unwrap();
        let zero = MulTable::new(&f, 0);
        let one = MulTable::new(&f, 1);
        let src: Vec<Symbol> = f.elements().collect();
        let mut xs = src.clone();
        zero.mul_slice(&mut xs);
        assert!(xs.iter().all(|&x| x == 0));
        let mut ys = src.clone();
        one.mul_slice(&mut ys);
        assert_eq!(ys, src);
    }
}
