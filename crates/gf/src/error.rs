use std::error::Error;
use std::fmt;

/// Errors produced by Galois-field construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GfError {
    /// The requested symbol width `m` is outside the supported `2..=16`.
    UnsupportedWidth {
        /// The requested width.
        m: u32,
    },
    /// The supplied polynomial is not primitive over GF(2) for the given
    /// width (it fails to generate the full multiplicative group).
    NotPrimitive {
        /// The offending polynomial (including the leading `x^m` term).
        poly: u32,
        /// The field width it was supposed to generate.
        m: u32,
    },
    /// A symbol value is outside the field (`>= 2^m`).
    SymbolOutOfRange {
        /// The offending value.
        value: u32,
        /// The field size.
        size: u32,
    },
    /// Division by the zero element.
    DivisionByZero,
    /// Logarithm of the zero element requested.
    LogOfZero,
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedWidth { m } => {
                write!(f, "unsupported field width m={m}, expected 2..=16")
            }
            GfError::NotPrimitive { poly, m } => {
                write!(f, "polynomial {poly:#x} is not primitive for GF(2^{m})")
            }
            GfError::SymbolOutOfRange { value, size } => {
                write!(f, "symbol {value} out of range for field of size {size}")
            }
            GfError::DivisionByZero => write!(f, "division by zero field element"),
            GfError::LogOfZero => write!(f, "logarithm of zero field element"),
        }
    }
}

impl Error for GfError {}
