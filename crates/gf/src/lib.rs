//! Galois-field arithmetic for the `rsmem` workspace.
//!
//! This crate implements the finite fields GF(2^m) for `2 <= m <= 16`
//! together with the polynomial algebra over them that a Reed–Solomon
//! codec needs:
//!
//! * [`GfField`] — a field instance with precomputed log/antilog tables,
//!   built from a primitive polynomial (a default table of primitive
//!   polynomials is provided in [`primitive`]).
//! * [`Poly`] — dense univariate polynomials over GF(2^m) with addition,
//!   multiplication, Euclidean division, evaluation, formal derivatives
//!   and the partial extended Euclidean algorithm used by the Sugiyama
//!   decoder.
//! * [`interp`] — Lagrange interpolation, used for erasure-only recovery
//!   and as an independent oracle in tests.
//!
//! # Examples
//!
//! ```
//! use rsmem_gf::GfField;
//!
//! # fn main() -> Result<(), rsmem_gf::GfError> {
//! let field = GfField::new(8)?; // GF(256) with the standard 0x11d polynomial
//! let a = 0x53;
//! let b = 0xca;
//! let p = field.mul(a, b);
//! assert_eq!(field.div(p, b)?, a);
//! # Ok(())
//! # }
//! ```
//!
//! All symbols are represented as `u16` values in `0..field.size()`;
//! the crate never allocates per-operation, and a [`GfField`] is cheap to
//! share behind a reference (it is `Send + Sync`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
mod error;
mod field;
pub mod gf2;
pub mod interp;
mod poly;
pub mod primitive;

pub use error::GfError;
pub use field::GfField;
pub use poly::Poly;

/// The symbol type used throughout the workspace.
///
/// Symbols of every supported field (m ≤ 16) fit in a `u16`.
pub type Symbol = u16;
