//! Lagrange interpolation over GF(2^m).
//!
//! Interpolation is used by the workspace in two roles:
//!
//! * as an *erasure-only* Reed–Solomon recovery primitive (a codeword with
//!   at most `n − k` erasures is uniquely determined by any `k` intact
//!   evaluation points), and
//! * as an independent oracle against which the algebraic decoders are
//!   property-tested.

use crate::{GfError, GfField, Poly, Symbol};

/// Interpolates the unique polynomial of degree `< points.len()` through the
/// given `(x, y)` pairs.
///
/// # Errors
///
/// Returns [`GfError::DivisionByZero`] if two points share an `x`
/// coordinate (the interpolation problem is then ill-posed).
///
/// # Examples
///
/// ```
/// use rsmem_gf::{GfField, interp};
///
/// # fn main() -> Result<(), rsmem_gf::GfError> {
/// let f = GfField::new(4)?;
/// let pts = [(1, 4), (2, 7), (3, 1)];
/// let p = interp::lagrange(&pts, &f)?;
/// for (x, y) in pts {
///     assert_eq!(p.eval(&f, x), y);
/// }
/// # Ok(())
/// # }
/// ```
pub fn lagrange(points: &[(Symbol, Symbol)], field: &GfField) -> Result<Poly, GfError> {
    let mut acc = Poly::zero();
    for (i, &(xi, yi)) in points.iter().enumerate() {
        if yi == 0 {
            continue;
        }
        // Basis polynomial L_i(x) = ∏_{j≠i} (x − x_j)/(x_i − x_j).
        let mut numer = Poly::one();
        let mut denom: Symbol = 1;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            numer = numer.mul(&Poly::from_coeffs([xj, 1]), field);
            let diff = field.sub(xi, xj);
            if diff == 0 {
                return Err(GfError::DivisionByZero);
            }
            denom = field.mul(denom, diff);
        }
        let scale = field.div(yi, denom)?;
        acc = acc.add(&numer.scale(scale, field), field);
    }
    Ok(acc)
}

/// Re-evaluates an interpolated polynomial on a new set of abscissae.
///
/// Convenience for erasure recovery: interpolate on the surviving points,
/// evaluate on the erased positions.
pub fn extend(
    known: &[(Symbol, Symbol)],
    targets: &[Symbol],
    field: &GfField,
) -> Result<Vec<Symbol>, GfError> {
    let p = lagrange(known, field)?;
    Ok(targets.iter().map(|&x| p.eval(field, x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_reproduces_polynomial() {
        let f = GfField::new(4).unwrap();
        let p = Poly::from_coeffs([3, 1, 4, 1]);
        let pts: Vec<(Symbol, Symbol)> = (1..5).map(|x| (x, p.eval(&f, x))).collect();
        let q = lagrange(&pts, &f).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn duplicate_x_rejected() {
        let f = GfField::new(4).unwrap();
        let pts = [(1, 2), (1, 3)];
        assert_eq!(lagrange(&pts, &f), Err(GfError::DivisionByZero));
    }

    #[test]
    fn degree_bound_respected() {
        let f = GfField::new(5).unwrap();
        let pts = [(1, 9), (2, 8), (3, 7), (4, 6)];
        let p = lagrange(&pts, &f).unwrap();
        assert!(p.degree().is_none_or(|d| d < 4));
    }

    #[test]
    fn extend_recovers_erased_evaluations() {
        let f = GfField::new(4).unwrap();
        let p = Poly::from_coeffs([7, 2, 5]);
        let known: Vec<(Symbol, Symbol)> = [1, 3, 6].iter().map(|&x| (x, p.eval(&f, x))).collect();
        let targets = [2 as Symbol, 9];
        let got = extend(&known, &targets, &f).unwrap();
        let want: Vec<Symbol> = targets.iter().map(|&x| p.eval(&f, x)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn all_zero_points_give_zero_poly() {
        let f = GfField::new(4).unwrap();
        let pts = [(1, 0), (2, 0), (3, 0)];
        assert_eq!(lagrange(&pts, &f).unwrap(), Poly::zero());
    }
}
