//! Table-driven GF(2^m) field arithmetic.

use crate::bulk::BulkKind;
use crate::primitive::{self, clmul_mod};
use crate::{GfError, Symbol};

/// A concrete finite field GF(2^m), `2 <= m <= 16`.
///
/// The field precomputes logarithm and antilogarithm tables with respect to
/// the primitive element `α = x`, so multiplication, division, inversion and
/// exponentiation are O(1) table lookups. Addition is bitwise XOR
/// (characteristic 2).
///
/// # Examples
///
/// ```
/// use rsmem_gf::GfField;
///
/// # fn main() -> Result<(), rsmem_gf::GfError> {
/// let f = GfField::new(4)?;
/// assert_eq!(f.size(), 16);
/// assert_eq!(f.add(0b1010, 0b0110), 0b1100);
/// assert_eq!(f.mul(f.alpha(), f.alpha()), f.alpha_pow(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfField {
    m: u32,
    size: u32,
    prim_poly: u32,
    /// `exp[i] = α^i` for `i in 0..2*(size-1)` (doubled to skip a modulo).
    exp: Vec<Symbol>,
    /// `log[a] = i` such that `α^i = a`; `log[0]` is a sentinel (unused).
    log: Vec<u32>,
    /// Strategy the bulk slice primitives use for this width.
    bulk_kind: BulkKind,
}

impl GfField {
    /// Constructs GF(2^m) with the conventional primitive polynomial from
    /// [`crate::primitive::default_polynomial`].
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] if `m` is outside `2..=16`.
    pub fn new(m: u32) -> Result<Self, GfError> {
        let poly = primitive::default_polynomial(m)?;
        Self::with_polynomial(m, poly)
    }

    /// Constructs GF(2^m) from a caller-supplied primitive polynomial
    /// (including its leading `x^m` term).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] for bad `m`, or
    /// [`GfError::NotPrimitive`] if `poly` does not generate the field.
    pub fn with_polynomial(m: u32, poly: u32) -> Result<Self, GfError> {
        if !(2..=16).contains(&m) {
            return Err(GfError::UnsupportedWidth { m });
        }
        if !primitive::is_primitive(poly, m) {
            return Err(GfError::NotPrimitive { poly, m });
        }
        let size: u32 = 1 << m;
        let order = size - 1;
        let mut exp = vec![0 as Symbol; (2 * order) as usize];
        let mut log = vec![0u32; size as usize];
        let mut value: u32 = 1;
        for i in 0..order {
            exp[i as usize] = value as Symbol;
            exp[(i + order) as usize] = value as Symbol;
            log[value as usize] = i;
            value <<= 1;
            if value & size != 0 {
                value ^= poly;
            }
        }
        Ok(GfField {
            m,
            size,
            prim_poly: poly,
            exp,
            log,
            // SWAR lanes need carry headroom above bit m; byte-or-narrower
            // symbols always have it, wider fields fall back to tables.
            bulk_kind: if m <= 8 {
                BulkKind::Swar64
            } else {
                BulkKind::Scalar
            },
        })
    }

    /// Symbol width `m` in bits.
    pub fn bits(&self) -> u32 {
        self.m
    }

    /// Number of field elements, `2^m`.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Order of the multiplicative group, `2^m − 1`.
    pub fn order(&self) -> u32 {
        self.size - 1
    }

    /// The primitive polynomial this field was built from.
    pub fn primitive_polynomial(&self) -> u32 {
        self.prim_poly
    }

    /// The primitive element `α` (the residue of `x`).
    pub fn alpha(&self) -> Symbol {
        2
    }

    /// `α^i`, with `i` reduced modulo the group order. Negative powers are
    /// expressed by [`GfField::alpha_pow_signed`].
    pub fn alpha_pow(&self, i: u32) -> Symbol {
        self.exp[(i % self.order()) as usize]
    }

    /// `α^i` for a possibly negative exponent.
    pub fn alpha_pow_signed(&self, i: i64) -> Symbol {
        let order = self.order() as i64;
        let r = i.rem_euclid(order);
        self.exp[r as usize]
    }

    /// True if `a` is a valid symbol of this field.
    pub fn contains(&self, a: Symbol) -> bool {
        (a as u32) < self.size
    }

    /// Validates a symbol, returning it unchanged.
    ///
    /// # Errors
    ///
    /// [`GfError::SymbolOutOfRange`] when `a >= 2^m`.
    pub fn check(&self, a: Symbol) -> Result<Symbol, GfError> {
        if self.contains(a) {
            Ok(a)
        } else {
            Err(GfError::SymbolOutOfRange {
                value: a as u32,
                size: self.size,
            })
        }
    }

    /// Field addition (bitwise XOR).
    #[inline]
    pub fn add(&self, a: Symbol, b: Symbol) -> Symbol {
        debug_assert!(self.contains(a) && self.contains(b));
        a ^ b
    }

    /// Field subtraction — identical to addition in characteristic 2.
    #[inline]
    pub fn sub(&self, a: Symbol, b: Symbol) -> Symbol {
        self.add(a, b)
    }

    /// Field multiplication via log/antilog tables.
    #[inline]
    pub fn mul(&self, a: Symbol, b: Symbol) -> Symbol {
        debug_assert!(self.contains(a) && self.contains(b));
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = self.log[a as usize] + self.log[b as usize];
        self.exp[idx as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Errors
    ///
    /// [`GfError::DivisionByZero`] when `b == 0`.
    #[inline]
    pub fn div(&self, a: Symbol, b: Symbol) -> Result<Symbol, GfError> {
        debug_assert!(self.contains(a) && self.contains(b));
        if b == 0 {
            return Err(GfError::DivisionByZero);
        }
        if a == 0 {
            return Ok(0);
        }
        let order = self.order();
        let idx = self.log[a as usize] + order - self.log[b as usize];
        Ok(self.exp[idx as usize])
    }

    /// Multiplicative inverse of `a`.
    ///
    /// # Errors
    ///
    /// [`GfError::DivisionByZero`] when `a == 0`.
    #[inline]
    pub fn inv(&self, a: Symbol) -> Result<Symbol, GfError> {
        self.div(1, a)
    }

    /// `a^e` by table exponent arithmetic (`0^0 == 1` by convention).
    pub fn pow(&self, a: Symbol, e: u64) -> Symbol {
        debug_assert!(self.contains(a));
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let order = self.order() as u64;
        let idx = (self.log[a as usize] as u64 * (e % order)) % order;
        self.exp[idx as usize]
    }

    /// Discrete logarithm of `a` base `α`.
    ///
    /// # Errors
    ///
    /// [`GfError::LogOfZero`] when `a == 0`.
    pub fn log(&self, a: Symbol) -> Result<u32, GfError> {
        debug_assert!(self.contains(a));
        if a == 0 {
            return Err(GfError::LogOfZero);
        }
        Ok(self.log[a as usize])
    }

    /// The execution strategy [`crate::bulk`] slice primitives use for
    /// this field, fixed at construction from the symbol width.
    pub fn bulk_kind(&self) -> BulkKind {
        self.bulk_kind
    }

    /// Reference multiply using carry-less multiplication and reduction,
    /// bypassing the tables. Used by the test-suite as an oracle.
    pub fn mul_reference(&self, a: Symbol, b: Symbol) -> Symbol {
        clmul_mod(a as u32, b as u32, self.prim_poly, self.m) as Symbol
    }

    /// Iterator over every element of the field, `0..2^m`.
    pub fn elements(&self) -> impl Iterator<Item = Symbol> + '_ {
        0..self.size as Symbol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf16() -> GfField {
        GfField::new(4).expect("GF(16)")
    }

    #[test]
    fn construction_rejects_bad_width() {
        assert!(matches!(
            GfField::new(1),
            Err(GfError::UnsupportedWidth { m: 1 })
        ));
        assert!(GfField::new(17).is_err());
    }

    #[test]
    fn construction_rejects_non_primitive_poly() {
        assert!(matches!(
            GfField::with_polynomial(4, 0x11),
            Err(GfError::NotPrimitive { .. })
        ));
    }

    #[test]
    fn table_multiply_matches_reference_exhaustively_gf16() {
        let f = gf16();
        for a in f.elements() {
            for b in f.elements() {
                assert_eq!(f.mul(a, b), f.mul_reference(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn table_multiply_matches_reference_sampled_gf256() {
        let f = GfField::new(8).unwrap();
        for a in (0..256).step_by(7) {
            for b in (0..256).step_by(11) {
                let (a, b) = (a as Symbol, b as Symbol);
                assert_eq!(f.mul(a, b), f.mul_reference(a, b));
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        let f = gf16();
        for a in 1..f.size() as Symbol {
            let inv = f.inv(a).expect("nonzero invertible");
            assert_eq!(f.mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn zero_has_no_inverse() {
        assert_eq!(gf16().inv(0), Err(GfError::DivisionByZero));
        assert_eq!(gf16().div(5, 0), Err(GfError::DivisionByZero));
    }

    #[test]
    fn log_exp_roundtrip() {
        let f = gf16();
        for a in 1..f.size() as Symbol {
            let l = f.log(a).unwrap();
            assert_eq!(f.alpha_pow(l), a);
        }
        assert_eq!(f.log(0), Err(GfError::LogOfZero));
    }

    #[test]
    fn pow_agrees_with_repeated_multiplication() {
        let f = GfField::new(5).unwrap();
        for a in f.elements() {
            let mut acc: Symbol = 1;
            for e in 0..10u64 {
                assert_eq!(f.pow(a, e), acc, "a={a} e={e}");
                acc = f.mul(acc, a);
            }
        }
    }

    #[test]
    fn pow_matches_naive_loop_for_large_and_wrapping_exponents() {
        // Property pin for the log-domain exponentiation: for every base,
        // `pow(a, e)` must equal the naive repeated product for exponents
        // spanning several multiples of the group order (the `e % order`
        // reduction is where an off-by-one would hide).
        let f = GfField::new(4).unwrap();
        let span = 3 * f.order() as u64 + 5;
        for a in f.elements() {
            let mut acc: Symbol = 1;
            for e in 0..span {
                assert_eq!(f.pow(a, e), acc, "a={a} e={e}");
                acc = f.mul(acc, a);
            }
        }
        // 0^0 == 1 by convention, 0^e == 0 otherwise.
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 7), 0);
    }

    #[test]
    fn alpha_pow_signed_handles_negatives() {
        let f = gf16();
        let order = f.order() as i64;
        for i in -40..40i64 {
            assert_eq!(
                f.alpha_pow_signed(i),
                f.alpha_pow(i.rem_euclid(order) as u32)
            );
        }
    }

    #[test]
    fn addition_is_self_inverse() {
        let f = gf16();
        for a in f.elements() {
            for b in f.elements() {
                assert_eq!(f.add(f.add(a, b), b), a);
            }
        }
    }

    #[test]
    fn field_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GfField>();
    }
}
