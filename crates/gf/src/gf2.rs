//! Polynomials over GF(2) as bit vectors: irreducibility and
//! primitivity search.
//!
//! [`crate::primitive`] carries one conventional primitive polynomial per
//! width; this module can *derive* them — enumerate candidates, test
//! irreducibility by trial division, and test primitivity by element
//! order — so the table is verifiable from first principles (and users
//! can build fields from any primitive polynomial they prefer, e.g. to
//! match existing hardware).

use crate::primitive::is_primitive;

/// Degree of a GF(2) polynomial given as a bit mask (`None` for zero).
pub fn degree(poly: u64) -> Option<u32> {
    if poly == 0 {
        None
    } else {
        Some(63 - poly.leading_zeros())
    }
}

/// Carry-less product of two GF(2) polynomials.
pub fn multiply(a: u64, b: u64) -> u64 {
    let mut acc = 0u64;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a <<= 1;
        b >>= 1;
    }
    acc
}

/// Remainder of `a` modulo `b` over GF(2).
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn remainder(a: u64, b: u64) -> u64 {
    let db = degree(b).expect("division by zero polynomial");
    let mut r = a;
    while let Some(dr) = degree(r) {
        if dr < db {
            break;
        }
        r ^= b << (dr - db);
    }
    r
}

/// True when `poly` (degree ≥ 1) is irreducible over GF(2), by trial
/// division with every polynomial of degree up to `deg/2`.
///
/// Intended for the code-parameter range (degree ≤ 16), where the scan
/// is instant.
pub fn is_irreducible(poly: u64) -> bool {
    let Some(d) = degree(poly) else {
        return false;
    };
    if d == 0 {
        return false; // constants are units, not irreducible
    }
    // Divisible by x ⇔ constant term 0.
    if poly & 1 == 0 {
        return poly == 0b10; // x itself is irreducible
    }
    for divisor in 2..=(1u64 << (d / 2 + 1)) {
        if degree(divisor).is_some_and(|dd| dd >= 1 && dd <= d / 2) && remainder(poly, divisor) == 0
        {
            return false;
        }
    }
    true
}

/// Enumerates every primitive polynomial of degree `m` (for GF(2^m)),
/// in increasing numeric order.
///
/// # Examples
///
/// ```
/// let all4 = rsmem_gf::gf2::primitive_polynomials(4);
/// assert_eq!(all4, vec![0x13, 0x19]); // x^4+x+1 and x^4+x^3+1
/// ```
pub fn primitive_polynomials(m: u32) -> Vec<u32> {
    if !(2..=16).contains(&m) {
        return Vec::new();
    }
    let lo = 1u32 << m;
    let hi = 1u32 << (m + 1);
    (lo..hi).filter(|&p| is_primitive(p, m)).collect()
}

/// The smallest primitive polynomial of degree `m`, found by search.
pub fn smallest_primitive(m: u32) -> Option<u32> {
    primitive_polynomials(m).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::DEFAULT_POLYNOMIALS;

    #[test]
    fn degree_of_bit_patterns() {
        assert_eq!(degree(0), None);
        assert_eq!(degree(1), Some(0));
        assert_eq!(degree(0b10), Some(1));
        assert_eq!(degree(0x11d), Some(8));
    }

    #[test]
    fn multiply_matches_hand_examples() {
        // (x + 1)(x + 1) = x² + 1 over GF(2).
        assert_eq!(multiply(0b11, 0b11), 0b101);
        // (x² + x + 1)(x + 1) = x³ + 1.
        assert_eq!(multiply(0b111, 0b11), 0b1001);
        assert_eq!(multiply(0, 0xff), 0);
    }

    #[test]
    fn remainder_matches_long_division() {
        // x³ + 1 mod x² + x + 1 = remainder of (x+1)(x²+x+1): 0.
        assert_eq!(remainder(0b1001, 0b111), 0);
        // x³ mod x² + 1 = x·(x²) → x·1 = x.
        assert_eq!(remainder(0b1000, 0b101), 0b10);
    }

    #[test]
    fn irreducibility_classifies_small_cases() {
        assert!(is_irreducible(0b10)); // x
        assert!(is_irreducible(0b11)); // x + 1
        assert!(is_irreducible(0b111)); // x² + x + 1
        assert!(!is_irreducible(0b101)); // x² + 1 = (x+1)²
        assert!(!is_irreducible(0b110)); // x² + x = x(x+1)
        assert!(is_irreducible(0b1011)); // x³ + x + 1
        assert!(is_irreducible(0x1f)); // x⁴+x³+x²+x+1 (irreducible, imprimitive)
        assert!(!is_irreducible(0x11)); // x⁴ + 1 = (x+1)⁴
        assert!(!is_irreducible(1)); // constants excluded
        assert!(!is_irreducible(0));
    }

    #[test]
    fn every_primitive_is_irreducible_but_not_conversely() {
        for &p in &primitive_polynomials(4) {
            assert!(is_irreducible(p as u64));
        }
        // x⁴+x³+x²+x+1 is irreducible with root order 5 — not primitive.
        assert!(is_irreducible(0x1f));
        assert!(!primitive_polynomials(4).contains(&0x1f));
    }

    #[test]
    fn search_recovers_the_default_table() {
        // Every table entry must appear in the search output.
        for m in 2..=12u32 {
            let found = primitive_polynomials(m);
            let table = DEFAULT_POLYNOMIALS[(m - 2) as usize];
            assert!(
                found.contains(&table),
                "table poly {table:#x} for m={m} not found by search"
            );
        }
    }

    #[test]
    fn primitive_counts_match_euler_totient() {
        // #primitive polynomials of degree m = φ(2^m − 1)/m.
        fn phi(mut n: u32) -> u32 {
            let mut result = n;
            let mut p = 2;
            while p * p <= n {
                if n.is_multiple_of(p) {
                    while n.is_multiple_of(p) {
                        n /= p;
                    }
                    result -= result / p;
                }
                p += 1;
            }
            if n > 1 {
                result -= result / n;
            }
            result
        }
        for m in 2..=10u32 {
            let expect = phi((1u32 << m) - 1) / m;
            let got = primitive_polynomials(m).len() as u32;
            assert_eq!(got, expect, "m={m}");
        }
    }

    #[test]
    fn smallest_primitive_builds_a_working_field() {
        use crate::GfField;
        for m in [3u32, 5, 8] {
            let poly = smallest_primitive(m).expect("exists");
            let field = GfField::with_polynomial(m, poly).expect("primitive by search");
            assert_eq!(field.size(), 1 << m);
            // α generates: α^(order) = 1 and α^k ≠ 1 before that is
            // exactly what primitivity verified; spot-check inverses.
            for a in 1..field.size() as u16 {
                assert_eq!(field.mul(a, field.inv(a).unwrap()), 1);
            }
        }
    }

    #[test]
    fn out_of_range_degrees_yield_empty() {
        assert!(primitive_polynomials(1).is_empty());
        assert!(primitive_polynomials(17).is_empty());
        assert!(smallest_primitive(0).is_none());
    }
}
