//! Dense univariate polynomials over GF(2^m).

use crate::{GfError, GfField, Symbol};
use std::fmt;

/// A polynomial over GF(2^m), stored dense with the constant term first.
///
/// The representation is kept *normalized*: the coefficient vector never
/// ends in a zero, and the zero polynomial is the empty vector. All
/// arithmetic takes the [`GfField`] explicitly; mixing polynomials from
/// different fields is a logic error that `debug_assert`s guard against
/// (coefficients out of range).
///
/// # Examples
///
/// ```
/// use rsmem_gf::{GfField, Poly};
///
/// # fn main() -> Result<(), rsmem_gf::GfError> {
/// let f = GfField::new(4)?;
/// let p = Poly::from_coeffs([1, 0, 1]);         // 1 + x^2
/// let q = Poly::from_coeffs([1, 1]);            // 1 + x
/// let prod = p.mul(&q, &f);
/// assert_eq!(prod.eval(&f, 1), 0);              // x=1 is a root of 1+x
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    coeffs: Vec<Symbol>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![1] }
    }

    /// A constant polynomial `c`.
    pub fn constant(c: Symbol) -> Self {
        if c == 0 {
            Poly::zero()
        } else {
            Poly { coeffs: vec![c] }
        }
    }

    /// The monomial `c · x^k`.
    pub fn monomial(c: Symbol, k: usize) -> Self {
        if c == 0 {
            return Poly::zero();
        }
        let mut coeffs = vec![0; k + 1];
        coeffs[k] = c;
        Poly { coeffs }
    }

    /// Builds a polynomial from coefficients, constant term first, trimming
    /// trailing zeros.
    pub fn from_coeffs<I: IntoIterator<Item = Symbol>>(coeffs: I) -> Self {
        let mut coeffs: Vec<Symbol> = coeffs.into_iter().collect();
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The coefficients, constant term first (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[Symbol] {
        &self.coeffs
    }

    /// Coefficient of `x^k` (zero beyond the stored degree).
    pub fn coeff(&self, k: usize) -> Symbol {
        self.coeffs.get(k).copied().unwrap_or(0)
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Degree treating the zero polynomial as degree 0 — convenient for
    /// bound computations in decoder loops.
    pub fn degree_or_zero(&self) -> usize {
        self.degree().unwrap_or(0)
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Leading coefficient (`None` for the zero polynomial).
    pub fn leading_coeff(&self) -> Option<Symbol> {
        self.coeffs.last().copied()
    }

    fn normalize(&mut self) {
        while self.coeffs.last() == Some(&0) {
            self.coeffs.pop();
        }
    }

    /// Polynomial addition (== subtraction in characteristic 2).
    pub fn add(&self, other: &Poly, _field: &GfField) -> Poly {
        let (longer, shorter) = if self.coeffs.len() >= other.coeffs.len() {
            (&self.coeffs, &other.coeffs)
        } else {
            (&other.coeffs, &self.coeffs)
        };
        let mut out = longer.clone();
        for (o, s) in out.iter_mut().zip(shorter.iter()) {
            *o ^= s;
        }
        let mut p = Poly { coeffs: out };
        p.normalize();
        p
    }

    /// Polynomial subtraction — identical to [`Poly::add`] over GF(2^m).
    pub fn sub(&self, other: &Poly, field: &GfField) -> Poly {
        self.add(other, field)
    }

    /// Schoolbook product.
    pub fn mul(&self, other: &Poly, field: &GfField) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0 as Symbol; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] ^= field.mul(a, b);
            }
        }
        let mut p = Poly { coeffs: out };
        p.normalize();
        p
    }

    /// Multiplies every coefficient by the scalar `c`.
    pub fn scale(&self, c: Symbol, field: &GfField) -> Poly {
        if c == 0 {
            return Poly::zero();
        }
        Poly {
            coeffs: self.coeffs.iter().map(|&a| field.mul(a, c)).collect(),
        }
    }

    /// Multiplies by `x^k` (shifts coefficients up).
    pub fn shift_up(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0 as Symbol; k];
        coeffs.extend_from_slice(&self.coeffs);
        Poly { coeffs }
    }

    /// The residue modulo `x^k` (truncates to the low `k` coefficients).
    pub fn truncate_mod_xk(&self, k: usize) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().copied().take(k))
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q·divisor + r` and `deg r < deg divisor`.
    ///
    /// # Errors
    ///
    /// [`GfError::DivisionByZero`] when `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly, field: &GfField) -> Result<(Poly, Poly), GfError> {
        let dlead = divisor.leading_coeff().ok_or(GfError::DivisionByZero)?;
        let ddeg = divisor.degree().expect("nonzero divisor has a degree");
        if self.degree().is_none_or(|d| d < ddeg) {
            return Ok((Poly::zero(), self.clone()));
        }
        let dlead_inv = field.inv(dlead)?;
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0 as Symbol; rem.len() - ddeg];
        for i in (ddeg..rem.len()).rev() {
            let c = rem[i];
            if c == 0 {
                continue;
            }
            let q = field.mul(c, dlead_inv);
            quot[i - ddeg] = q;
            for (j, &dcoef) in divisor.coeffs.iter().enumerate() {
                rem[i - ddeg + j] ^= field.mul(q, dcoef);
            }
        }
        let mut qp = Poly { coeffs: quot };
        qp.normalize();
        let mut rp = Poly { coeffs: rem };
        rp.normalize();
        Ok((qp, rp))
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, field: &GfField, x: Symbol) -> Symbol {
        let mut acc: Symbol = 0;
        for &c in self.coeffs.iter().rev() {
            acc = field.mul(acc, x) ^ c;
        }
        acc
    }

    /// Formal derivative. In characteristic 2 the derivative keeps exactly
    /// the odd-degree coefficients, shifted down one position.
    pub fn derivative(&self, _field: &GfField) -> Poly {
        let coeffs: Vec<Symbol> = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| if i % 2 == 1 { c } else { 0 })
            .collect();
        Poly::from_coeffs(coeffs)
    }

    /// Builds the monic polynomial `∏ (x − r)` over the given roots.
    /// (Over GF(2^m), `x − r == x + r`.)
    pub fn from_roots<I: IntoIterator<Item = Symbol>>(roots: I, field: &GfField) -> Poly {
        let mut acc = Poly::one();
        for r in roots {
            let factor = Poly::from_coeffs([r, 1]);
            acc = acc.mul(&factor, field);
        }
        acc
    }

    /// Finds all roots by exhaustive evaluation over the field.
    ///
    /// For decoder-sized fields (m ≤ 16) this is the classical Chien-search
    /// strategy; the RS codec restricts the scan to codeword positions.
    pub fn roots(&self, field: &GfField) -> Vec<Symbol> {
        if self.is_zero() {
            return Vec::new();
        }
        field
            .elements()
            .filter(|&x| self.eval(field, x) == 0)
            .collect()
    }

    /// Partial extended Euclidean algorithm, the core of the Sugiyama
    /// decoder.
    ///
    /// Starting from `r_{-1} = a`, `r_0 = b`, iterates the Euclidean
    /// remainder sequence until `deg r < stop_deg`, maintaining
    /// `v` with `r ≡ v·b (mod a)`. Returns `(r, v)` at the stopping point.
    ///
    /// # Errors
    ///
    /// Propagates [`GfError::DivisionByZero`] if `b` is zero while `a`
    /// still has degree `>= stop_deg` (no remainder sequence exists).
    pub fn partial_xgcd(
        a: &Poly,
        b: &Poly,
        stop_deg: usize,
        field: &GfField,
    ) -> Result<(Poly, Poly), GfError> {
        let mut r_prev = a.clone();
        let mut r = b.clone();
        let mut v_prev = Poly::zero();
        let mut v = Poly::one();
        while r.degree().is_some_and(|d| d >= stop_deg) {
            let (q, rem) = r_prev.div_rem(&r, field)?;
            let v_next = v_prev.add(&q.mul(&v, field), field);
            r_prev = std::mem::replace(&mut r, rem);
            v_prev = std::mem::replace(&mut v, v_next);
        }
        if r.is_zero() && stop_deg == 0 {
            return Ok((r, v));
        }
        Ok((r, v))
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{c:#x}")?,
                1 => write!(f, "{c:#x}·x")?,
                _ => write!(f, "{c:#x}·x^{i}")?,
            }
        }
        Ok(())
    }
}

impl FromIterator<Symbol> for Poly {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Self {
        Poly::from_coeffs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16() -> GfField {
        GfField::new(4).unwrap()
    }

    #[test]
    fn zero_and_one_shapes() {
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::one().degree(), Some(0));
        assert_eq!(Poly::constant(0), Poly::zero());
        assert_eq!(Poly::monomial(0, 5), Poly::zero());
        assert_eq!(Poly::monomial(3, 2).coeffs(), &[0, 0, 3]);
    }

    #[test]
    fn from_coeffs_trims_trailing_zeros() {
        let p = Poly::from_coeffs([1, 2, 0, 0]);
        assert_eq!(p.coeffs(), &[1, 2]);
        assert_eq!(p.degree(), Some(1));
    }

    #[test]
    fn add_is_xor_and_self_inverse() {
        let f = f16();
        let p = Poly::from_coeffs([1, 2, 3]);
        let q = Poly::from_coeffs([3, 2, 1, 7]);
        let s = p.add(&q, &f);
        assert_eq!(s.add(&q, &f), p);
        assert_eq!(p.add(&p, &f), Poly::zero());
    }

    #[test]
    fn mul_degree_adds() {
        let f = f16();
        let p = Poly::from_coeffs([1, 1]); // 1 + x
        let q = Poly::from_coeffs([2, 0, 5]); // 2 + 5x^2
        assert_eq!(p.mul(&q, &f).degree(), Some(3));
        assert_eq!(p.mul(&Poly::zero(), &f), Poly::zero());
    }

    #[test]
    fn div_rem_roundtrips() {
        let f = f16();
        let a = Poly::from_coeffs([7, 3, 0, 1, 9]);
        let b = Poly::from_coeffs([2, 1, 4]);
        let (q, r) = a.div_rem(&b, &f).unwrap();
        assert!(r.degree().is_none_or(|d| d < b.degree().unwrap()));
        let recombined = q.mul(&b, &f).add(&r, &f);
        assert_eq!(recombined, a);
    }

    #[test]
    fn div_by_zero_fails() {
        let f = f16();
        let a = Poly::from_coeffs([1, 2]);
        assert!(a.div_rem(&Poly::zero(), &f).is_err());
    }

    #[test]
    fn eval_constant_and_linear() {
        let f = f16();
        assert_eq!(Poly::constant(9).eval(&f, 5), 9);
        // p(x) = 3 + x at x=3 is 3 + 3 = 0.
        assert_eq!(Poly::from_coeffs([3, 1]).eval(&f, 3), 0);
    }

    #[test]
    fn from_roots_vanishes_exactly_on_roots() {
        let f = f16();
        let roots = [1 as Symbol, 5, 9];
        let p = Poly::from_roots(roots, &f);
        assert_eq!(p.degree(), Some(3));
        for x in f.elements() {
            let is_root = roots.contains(&x);
            assert_eq!(p.eval(&f, x) == 0, is_root, "x={x}");
        }
        assert_eq!(p.roots(&f).len(), 3);
    }

    #[test]
    fn derivative_drops_even_terms() {
        let f = f16();
        // p = c0 + c1 x + c2 x^2 + c3 x^3 → p' = c1 + c3 x^2 (char 2).
        let p = Poly::from_coeffs([4, 5, 6, 7]);
        let d = p.derivative(&f);
        assert_eq!(d.coeffs(), &[5, 0, 7]);
    }

    #[test]
    fn derivative_product_rule_on_squares() {
        // (p^2)' = 2 p p' = 0 in characteristic 2.
        let f = f16();
        let p = Poly::from_coeffs([3, 1, 7]);
        let sq = p.mul(&p, &f);
        assert_eq!(sq.derivative(&f), Poly::zero());
    }

    #[test]
    fn shift_and_truncate() {
        let p = Poly::from_coeffs([1, 2]);
        assert_eq!(p.shift_up(2).coeffs(), &[0, 0, 1, 2]);
        let t = Poly::from_coeffs([1, 2, 3, 4]).truncate_mod_xk(2);
        assert_eq!(t.coeffs(), &[1, 2]);
    }

    #[test]
    fn partial_xgcd_invariant_holds() {
        // r ≡ v·b (mod a) at every stopping degree.
        let f = f16();
        let a = Poly::monomial(1, 6); // x^6
        let b = Poly::from_coeffs([3, 1, 4, 1, 5, 9]);
        for stop in 0..6 {
            let (r, v) = Poly::partial_xgcd(&a, &b, stop, &f).unwrap();
            let lhs = r;
            let rhs = v.mul(&b, &f).div_rem(&a, &f).unwrap().1;
            assert_eq!(lhs, rhs, "stop={stop}");
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Poly::zero().to_string(), "0");
        let s = Poly::from_coeffs([1, 0, 2]).to_string();
        assert!(s.contains("x^2"), "{s}");
    }
}
