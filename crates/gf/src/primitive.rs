//! Primitive polynomials over GF(2) and primitivity checking.
//!
//! A field GF(2^m) is constructed from a degree-`m` polynomial that is
//! *primitive*: its root `α` generates the whole multiplicative group of
//! 2^m − 1 non-zero elements. This module carries one conventional
//! primitive polynomial per supported width and a brute-force checker used
//! both by [`crate::GfField`] construction and by the test-suite.

use crate::GfError;

/// Conventional primitive polynomials for GF(2^m), `m = 2..=16`.
///
/// Entry `i` corresponds to `m = i + 2`. Each value encodes the full
/// polynomial including the leading `x^m` term; e.g. `0x11d` is
/// `x^8 + x^4 + x^3 + x^2 + 1`, the polynomial used by CCSDS and most
/// storage RS codes.
pub const DEFAULT_POLYNOMIALS: [u32; 15] = [
    0x7,     // m=2:  x^2 + x + 1
    0xb,     // m=3:  x^3 + x + 1
    0x13,    // m=4:  x^4 + x + 1
    0x25,    // m=5:  x^5 + x^2 + 1
    0x43,    // m=6:  x^6 + x + 1
    0x89,    // m=7:  x^7 + x^3 + 1
    0x11d,   // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // m=9:  x^9 + x^4 + 1
    0x409,   // m=10: x^10 + x^3 + 1
    0x805,   // m=11: x^11 + x^2 + 1
    0x1053,  // m=12: x^12 + x^6 + x^4 + x + 1
    0x201b,  // m=13: x^13 + x^4 + x^3 + x + 1
    0x4443,  // m=14: x^14 + x^10 + x^6 + x + 1
    0x8003,  // m=15: x^15 + x + 1
    0x1100b, // m=16: x^16 + x^12 + x^3 + x + 1
];

/// Returns the conventional primitive polynomial for GF(2^m).
///
/// # Errors
///
/// Returns [`GfError::UnsupportedWidth`] when `m` is outside `2..=16`.
///
/// # Examples
///
/// ```
/// assert_eq!(rsmem_gf::primitive::default_polynomial(8).unwrap(), 0x11d);
/// ```
pub fn default_polynomial(m: u32) -> Result<u32, GfError> {
    if !(2..=16).contains(&m) {
        return Err(GfError::UnsupportedWidth { m });
    }
    Ok(DEFAULT_POLYNOMIALS[(m - 2) as usize])
}

/// Checks that `poly` (with its leading `x^m` bit set) is primitive for
/// GF(2^m): repeated multiplication of `α = x` must visit all `2^m − 1`
/// non-zero elements before returning to 1.
///
/// # Examples
///
/// ```
/// assert!(rsmem_gf::primitive::is_primitive(0x13, 4));
/// assert!(!rsmem_gf::primitive::is_primitive(0x1f, 4)); // x^4+x^3+x^2+x+1 has order 5
/// ```
pub fn is_primitive(poly: u32, m: u32) -> bool {
    if !(2..=16).contains(&m) {
        return false;
    }
    let size: u32 = 1 << m;
    if poly < size || poly >= size << 1 {
        // Leading term must be exactly x^m.
        return false;
    }
    // Walk α^i = x^i mod poly; primitive iff the orbit has length 2^m - 1.
    let mut value: u32 = 1;
    for _ in 0..(size - 2) {
        value <<= 1;
        if value & size != 0 {
            value ^= poly;
        }
        if value == 1 {
            return false; // returned to 1 too early: order < 2^m - 1
        }
    }
    value <<= 1;
    if value & size != 0 {
        value ^= poly;
    }
    value == 1
}

/// Multiplies two GF(2)\[x\] polynomials (carry-less product), reducing the
/// result modulo `poly` of degree `m`.
///
/// This is the slow reference implementation used to build tables and as an
/// independent oracle for the table-driven multiply in tests.
pub fn clmul_mod(a: u32, b: u32, poly: u32, m: u32) -> u32 {
    let mut acc: u64 = 0;
    let a = a as u64;
    for bit in 0..32 {
        if b & (1 << bit) != 0 {
            acc ^= a << bit;
        }
    }
    // Reduce modulo poly (degree m).
    let poly = poly as u64;
    for bit in (m..64).rev() {
        if acc & (1 << bit) != 0 {
            acc ^= poly << (bit - m);
        }
    }
    acc as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_polynomials_are_primitive() {
        for m in 2..=16 {
            let poly = default_polynomial(m).expect("supported width");
            assert!(
                is_primitive(poly, m),
                "default poly for m={m} not primitive"
            );
        }
    }

    #[test]
    fn default_polynomial_rejects_bad_widths() {
        assert!(default_polynomial(1).is_err());
        assert!(default_polynomial(17).is_err());
        assert!(default_polynomial(0).is_err());
    }

    #[test]
    fn reducible_polynomial_is_not_primitive() {
        // x^4 + 1 = (x+1)^4 over GF(2).
        assert!(!is_primitive(0x11, 4));
    }

    #[test]
    fn irreducible_but_imprimitive_rejected() {
        // x^4 + x^3 + x^2 + x + 1 is irreducible but its root has order 5.
        assert!(!is_primitive(0x1f, 4));
    }

    #[test]
    fn poly_with_wrong_degree_rejected() {
        assert!(!is_primitive(0x7, 4)); // degree 2 poly for m=4
        assert!(!is_primitive(0x113, 4)); // degree 8 poly for m=4
    }

    #[test]
    fn clmul_mod_matches_hand_computation() {
        // In GF(16) with x^4 + x + 1: x * x^3 = x^4 = x + 1 = 0b0011.
        assert_eq!(clmul_mod(0b0010, 0b1000, 0x13, 4), 0b0011);
        // 0 annihilates.
        assert_eq!(clmul_mod(0, 0xf, 0x13, 4), 0);
        // 1 is the identity.
        assert_eq!(clmul_mod(1, 0xa, 0x13, 4), 0xa);
    }

    #[test]
    fn clmul_is_commutative_in_gf256() {
        let poly = 0x11d;
        for a in [0u32, 1, 2, 0x53, 0xca, 0xff] {
            for b in [0u32, 1, 7, 0x80, 0xfe] {
                assert_eq!(clmul_mod(a, b, poly, 8), clmul_mod(b, a, poly, 8));
            }
        }
    }
}
