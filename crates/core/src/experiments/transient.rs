//! Figures 5–7: transient-fault (SEU) studies over a 48-hour storage
//! horizon.

use super::{
    ExperimentId, Figure, Series, SweepObserver, GRID_POINTS, SCRUB_PERIODS_S,
    SEU_RATES_PER_BIT_DAY, TRANSIENT_HORIZON_HOURS, WORST_CASE_SEU,
};
use crate::{Error, MemorySystem, Parallelism};
use rsmem_models::units::{SeuRate, Time, TimeGrid};
use rsmem_models::{CodeParams, Scrubbing};
use std::sync::atomic::{AtomicUsize, Ordering};

fn grid() -> TimeGrid {
    TimeGrid::linspace(
        Time::zero(),
        Time::from_hours(TRANSIENT_HORIZON_HOURS),
        GRID_POINTS,
    )
}

fn seu_sweep(
    make: impl Fn(f64) -> MemorySystem + Sync,
    id: ExperimentId,
    title: &str,
    par: &Parallelism,
    observer: SweepObserver<'_>,
) -> Result<Figure, Error> {
    let grid = grid();
    let done = AtomicUsize::new(0);
    let series = par
        .map(&SEU_RATES_PER_BIT_DAY, |&rate| {
            let mut curve_span = rsmem_obs::span("core.experiments", "seu_curve");
            if curve_span.active() {
                curve_span.record("rate_per_bit_day", rate);
            }
            let system = make(rate);
            let curve = system.ber_curve(grid.points())?;
            observer(
                done.fetch_add(1, Ordering::Relaxed) + 1,
                SEU_RATES_PER_BIT_DAY.len(),
            );
            Ok(Series {
                label: format!("{rate:.1E}"),
                points: curve.as_hours_series(),
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(Figure {
        id,
        title: title.to_owned(),
        x_label: "hours".to_owned(),
        y_label: "BER".to_owned(),
        series,
    })
}

/// Fig. 5 — BER of simplex RS(18,16) under different SEU rates, no
/// scrubbing, no permanent faults.
pub(super) fn fig5(par: &Parallelism, observer: SweepObserver<'_>) -> Result<Figure, Error> {
    seu_sweep(
        |rate| {
            MemorySystem::simplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(rate))
        },
        ExperimentId::Fig5,
        "BER of Simplex RS(18,16)",
        par,
        observer,
    )
}

/// Fig. 6 — BER of duplex RS(18,16) under different SEU rates.
pub(super) fn fig6(par: &Parallelism, observer: SweepObserver<'_>) -> Result<Figure, Error> {
    seu_sweep(
        |rate| {
            MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(rate))
        },
        ExperimentId::Fig6,
        "BER of duplex RS(18,16)",
        par,
        observer,
    )
}

/// Fig. 7 — BER of duplex RS(18,16) at the worst-case SEU rate for four
/// scrubbing periods.
pub(super) fn fig7(par: &Parallelism, observer: SweepObserver<'_>) -> Result<Figure, Error> {
    let grid = grid();
    let done = AtomicUsize::new(0);
    let series = par
        .map(&SCRUB_PERIODS_S, |&period_s| {
            let mut curve_span = rsmem_obs::span("core.experiments", "scrub_curve");
            if curve_span.active() {
                curve_span.record("scrub_period_s", period_s);
            }
            let system = MemorySystem::duplex(CodeParams::rs18_16())
                .with_seu_rate(SeuRate::per_bit_day(WORST_CASE_SEU))
                .with_scrubbing(Scrubbing::every_seconds(period_s));
            let curve = system.ber_curve(grid.points())?;
            observer(
                done.fetch_add(1, Ordering::Relaxed) + 1,
                SCRUB_PERIODS_S.len(),
            );
            Ok(Series {
                label: format!("{period_s:.0} s"),
                points: curve.as_hours_series(),
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(Figure {
        id: ExperimentId::Fig7,
        title: "BER of Duplex RS(18,16) with different Tsc".to_owned(),
        x_label: "hours".to_owned(),
        y_label: "BER".to_owned(),
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_curves_are_ordered_by_seu_rate() {
        let fig = fig5(&Parallelism::Auto, &|_, _| {}).unwrap();
        // At the final time point, a higher SEU rate must give a higher
        // BER; the series are in ascending-rate order.
        let finals: Vec<f64> = fig
            .series
            .iter()
            .map(|s| s.points[GRID_POINTS - 1].1)
            .collect();
        assert!(finals[0] < finals[1] && finals[1] < finals[2], "{finals:?}");
    }

    #[test]
    fn fig5_worst_case_magnitude_matches_paper_range() {
        // Paper Fig. 5: at λ = 1.7e-5 the 48 h BER sits around 1e-5..1e-4.
        let fig = fig5(&Parallelism::Auto, &|_, _| {}).unwrap();
        let worst = fig.series.last().unwrap().points[GRID_POINTS - 1].1;
        assert!((1e-6..1e-3).contains(&worst), "BER(48h) = {worst:e}");
    }

    #[test]
    fn fig6_duplex_is_same_range_as_simplex() {
        // The paper: "the values for the BER are in the same range for all
        // considered transient fault rates" (Figs. 5 vs 6).
        let s = fig5(&Parallelism::Auto, &|_, _| {}).unwrap();
        let d = fig6(&Parallelism::Auto, &|_, _| {}).unwrap();
        for (ss, ds) in s.series.iter().zip(&d.series) {
            let (sb, db) = (ss.points[GRID_POINTS - 1].1, ds.points[GRID_POINTS - 1].1);
            let ratio = db / sb;
            assert!(
                (0.5..=4.0).contains(&ratio),
                "duplex/simplex ratio {ratio} out of 'same range'"
            );
        }
    }

    #[test]
    fn fig7_sub_hour_scrubbing_keeps_ber_below_1e6() {
        // Paper: "a scrubbing frequency of lower than once per hour is
        // sufficient to maintain the BER below 1e-6".
        let fig = fig7(&Parallelism::Auto, &|_, _| {}).unwrap();
        for s in &fig.series {
            let maximum = s.points.iter().map(|&(_, b)| b).fold(0.0, f64::max);
            assert!(maximum < 1e-6, "Tsc={}: max BER {maximum:e}", s.label);
        }
    }

    #[test]
    fn fig7_longer_periods_are_worse() {
        let fig = fig7(&Parallelism::Auto, &|_, _| {}).unwrap();
        let finals: Vec<f64> = fig
            .series
            .iter()
            .map(|s| s.points[GRID_POINTS - 1].1)
            .collect();
        for w in finals.windows(2) {
            assert!(w[0] < w[1], "{finals:?}");
        }
    }
}
