//! The Section-6 decoder complexity comparison.

use rsmem_code::complexity::{section6_comparison, ComplexityRow};

/// The three-arrangement comparison table of the paper's Section 6.
pub(super) fn table() -> Vec<ComplexityRow> {
    section6_comparison()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reproduces_paper_numbers() {
        let rows = table();
        assert_eq!(rows[0].decode_cycles, 74); // simplex RS(18,16)
        assert_eq!(rows[1].decode_cycles, 74); // duplex RS(18,16)
        assert_eq!(rows[2].decode_cycles, 308); // simplex RS(36,16)
    }
}
