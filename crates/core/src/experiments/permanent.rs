//! Figures 8–10: permanent-fault studies over a 24-month storage horizon
//! (no scrubbing, no SEUs — scrubbing cannot repair permanent faults and
//! the paper's sweep isolates the erasure mechanism).

use super::{
    ExperimentId, Figure, Series, SweepObserver, GRID_POINTS, PERMANENT_HORIZON_MONTHS,
    PERMANENT_RATES_PER_SYMBOL_DAY,
};
use crate::{Error, MemorySystem, Parallelism};
use rsmem_models::units::{ErasureRate, Time, TimeGrid};
use rsmem_models::CodeParams;
use std::sync::atomic::{AtomicUsize, Ordering};

fn grid() -> TimeGrid {
    TimeGrid::linspace(
        Time::zero(),
        Time::from_months(PERMANENT_HORIZON_MONTHS),
        GRID_POINTS,
    )
}

fn permanent_sweep(
    make: impl Fn(f64) -> MemorySystem + Sync,
    id: ExperimentId,
    title: &str,
    par: &Parallelism,
    observer: SweepObserver<'_>,
) -> Result<Figure, Error> {
    let grid = grid();
    let done = AtomicUsize::new(0);
    let series = par
        .map(&PERMANENT_RATES_PER_SYMBOL_DAY, |&rate| {
            let mut curve_span = rsmem_obs::span("core.experiments", "permanent_curve");
            if curve_span.active() {
                curve_span.record("rate_per_symbol_day", rate);
            }
            let system = make(rate);
            let curve = system.ber_curve(grid.points())?;
            observer(
                done.fetch_add(1, Ordering::Relaxed) + 1,
                PERMANENT_RATES_PER_SYMBOL_DAY.len(),
            );
            Ok(Series {
                label: format!("{rate:.0E}"),
                points: curve.as_months_series(),
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(Figure {
        id,
        title: title.to_owned(),
        x_label: "months".to_owned(),
        y_label: "BER".to_owned(),
        series,
    })
}

/// Fig. 8 — simplex RS(18,16) under varying permanent-fault rates.
pub(super) fn fig8(par: &Parallelism, observer: SweepObserver<'_>) -> Result<Figure, Error> {
    permanent_sweep(
        |rate| {
            MemorySystem::simplex(CodeParams::rs18_16())
                .with_erasure_rate(ErasureRate::per_symbol_day(rate))
        },
        ExperimentId::Fig8,
        "BER of Simplex RS(18,16) varying permanent faults rate",
        par,
        observer,
    )
}

/// Fig. 9 — duplex RS(18,16) under varying permanent-fault rates.
pub(super) fn fig9(par: &Parallelism, observer: SweepObserver<'_>) -> Result<Figure, Error> {
    permanent_sweep(
        |rate| {
            MemorySystem::duplex(CodeParams::rs18_16())
                .with_erasure_rate(ErasureRate::per_symbol_day(rate))
        },
        ExperimentId::Fig9,
        "BER of Duplex RS(18,16) varying permanent faults rate",
        par,
        observer,
    )
}

/// Fig. 10 — simplex RS(36,16) under varying permanent-fault rates.
pub(super) fn fig10(par: &Parallelism, observer: SweepObserver<'_>) -> Result<Figure, Error> {
    permanent_sweep(
        |rate| {
            MemorySystem::simplex(CodeParams::rs36_16())
                .with_erasure_rate(ErasureRate::per_symbol_day(rate))
        },
        ExperimentId::Fig10,
        "BER of Simplex RS(36,16) varying the permanent faults rate",
        par,
        observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn final_ber(fig: &Figure, series_idx: usize) -> f64 {
        fig.series[series_idx].points[GRID_POINTS - 1].1
    }

    #[test]
    fn fig8_rates_order_the_curves() {
        let fig = fig8(&Parallelism::Auto, &|_, _| {}).unwrap();
        for i in 1..fig.series.len() {
            assert!(
                final_ber(&fig, i - 1) > final_ber(&fig, i),
                "higher λe must give higher BER"
            );
        }
    }

    #[test]
    fn fig9_duplex_dramatically_outperforms_simplex() {
        // Paper: duplex BER floor reaches ~1e-60 where simplex sits at
        // ~1e-30 — the exponent roughly doubles because failure needs
        // double-erasure pairs.
        let s = fig8(&Parallelism::Auto, &|_, _| {}).unwrap();
        let d = fig9(&Parallelism::Auto, &|_, _| {}).unwrap();
        // Compare at the lowest rate (last series).
        let last = PERMANENT_RATES_PER_SYMBOL_DAY.len() - 1;
        let (sb, db) = (final_ber(&s, last), final_ber(&d, last));
        assert!(sb > 0.0 && db > 0.0);
        let (ls, ld) = (sb.log10(), db.log10());
        assert!(
            ld < 1.5 * ls, // ld is "more negative" than ~1.5× ls
            "expected duplex exponent ≈ 2× simplex: simplex 1e{ls:.0}, duplex 1e{ld:.0}"
        );
    }

    #[test]
    fn fig10_wide_code_beats_everything_at_low_rates() {
        let s18 = fig8(&Parallelism::Auto, &|_, _| {}).unwrap();
        let s36 = fig10(&Parallelism::Auto, &|_, _| {}).unwrap();
        let last = PERMANENT_RATES_PER_SYMBOL_DAY.len() - 1;
        let (b18, b36) = (final_ber(&s18, last), final_ber(&s36, last));
        // RS(36,16) needs 21 erasures to die vs 3: astronomically better.
        assert!(
            b36 < b18 * 1e-20 || b36 == 0.0,
            "RS(36,16) {b36:e} vs RS(18,16) {b18:e}"
        );
    }

    #[test]
    fn fig9_beats_duplex_redundancy_equivalent_wide_simplex_is_false() {
        // Paper: "the RS(18,16) duplex ... shows a degradation in
        // performance compared with a simplex system employing a
        // RS(36,16) code" — i.e. wide simplex < duplex in BER.
        let d = fig9(&Parallelism::Auto, &|_, _| {}).unwrap();
        let w = fig10(&Parallelism::Auto, &|_, _| {}).unwrap();
        // Compare at the highest rate (first series), end of horizon.
        let (db, wb) = (final_ber(&d, 0), final_ber(&w, 0));
        assert!(wb < db, "RS(36,16) simplex {wb:e} must beat duplex {db:e}");
    }

    #[test]
    fn tiny_ber_values_are_resolved_not_flushed() {
        // The whole point of the uniformization solver: the low-rate
        // duplex curves live at ~1e-60 and below and must remain nonzero.
        let d = fig9(&Parallelism::Auto, &|_, _| {}).unwrap();
        let last = PERMANENT_RATES_PER_SYMBOL_DAY.len() - 1;
        let b = final_ber(&d, last);
        assert!(b > 0.0, "flushed to zero");
        assert!(b < 1e-30, "implausibly large: {b:e}");
    }
}
