//! Reproduction of every evaluation artifact in the paper.
//!
//! The DATE 2005 paper's Section 6 contains six figures and one
//! complexity comparison:
//!
//! | id | artifact |
//! |---|---|
//! | [`ExperimentId::Fig5`] | BER of simplex RS(18,16) vs time under three SEU rates |
//! | [`ExperimentId::Fig6`] | BER of duplex RS(18,16) vs time under three SEU rates |
//! | [`ExperimentId::Fig7`] | BER of duplex RS(18,16), worst-case SEU rate, four scrub periods |
//! | [`ExperimentId::Fig8`] | BER of simplex RS(18,16) over 24 months, seven permanent-fault rates |
//! | [`ExperimentId::Fig9`] | BER of duplex RS(18,16), same sweep |
//! | [`ExperimentId::Fig10`] | BER of simplex RS(36,16), same sweep |
//! | [`ExperimentId::Complexity`] | Section-6 decoder latency/area comparison |
//!
//! [`run`] produces the series data; the `rsmem-bench` crate wraps each
//! experiment in a Criterion bench and prints the regenerated rows, and
//! `EXPERIMENTS.md` records paper-vs-measured values.

mod complexity;
mod permanent;
mod transient;

use crate::{Error, Parallelism};
use std::fmt;

pub use rsmem_code::complexity::ComplexityRow;

/// The paper's SEU-rate sweep (errors/bit/day), Figs. 5–6.
pub const SEU_RATES_PER_BIT_DAY: [f64; 3] = [7.3e-7, 3.6e-6, 1.7e-5];

/// The paper's worst-case SEU rate (Fig. 7).
pub const WORST_CASE_SEU: f64 = 1.7e-5;

/// The paper's scrub-period sweep in seconds (Fig. 7).
pub const SCRUB_PERIODS_S: [f64; 4] = [900.0, 1200.0, 1800.0, 3600.0];

/// The paper's permanent-fault-rate sweep (per symbol/day), Figs. 8–10.
pub const PERMANENT_RATES_PER_SYMBOL_DAY: [f64; 7] = [1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10];

/// Storage horizon of the transient-fault studies (Figs. 5–7).
pub const TRANSIENT_HORIZON_HOURS: f64 = 48.0;

/// Storage horizon of the permanent-fault studies (Figs. 8–10).
pub const PERMANENT_HORIZON_MONTHS: f64 = 24.0;

/// Points per curve in the regenerated figures.
pub const GRID_POINTS: usize = 25;

/// Identifier of one paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExperimentId {
    /// Fig. 5 — simplex RS(18,16), SEU sweep.
    Fig5,
    /// Fig. 6 — duplex RS(18,16), SEU sweep.
    Fig6,
    /// Fig. 7 — duplex RS(18,16), scrub-period sweep.
    Fig7,
    /// Fig. 8 — simplex RS(18,16), permanent-fault sweep.
    Fig8,
    /// Fig. 9 — duplex RS(18,16), permanent-fault sweep.
    Fig9,
    /// Fig. 10 — simplex RS(36,16), permanent-fault sweep.
    Fig10,
    /// Section-6 decoder complexity comparison.
    Complexity,
}

impl ExperimentId {
    /// All artifacts, in paper order.
    pub const ALL: [ExperimentId; 7] = [
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig10,
        ExperimentId::Complexity,
    ];

    /// All artifacts, in paper order (alias for [`ExperimentId::ALL`]).
    pub fn all() -> [ExperimentId; 7] {
        Self::ALL
    }

    /// The `Display` name as a `&'static str` — span names must be
    /// static, so the profiler can key call-tree nodes by pointer-free
    /// `(target, name)` pairs.
    pub fn static_name(self) -> &'static str {
        match self {
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Complexity => "complexity",
        }
    }
}

/// Error returned when parsing an [`ExperimentId`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExperimentIdError {
    input: String,
}

impl fmt::Display for ParseExperimentIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown experiment {:?} (expected one of fig5..fig10, complexity)",
            self.input
        )
    }
}

impl std::error::Error for ParseExperimentIdError {}

impl std::str::FromStr for ExperimentId {
    type Err = ParseExperimentIdError;

    /// Parses the names printed by `Display`: `fig5`…`fig10`, `complexity`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExperimentId::ALL
            .into_iter()
            .find(|id| id.to_string() == s)
            .ok_or_else(|| ParseExperimentIdError {
                input: s.to_owned(),
            })
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentId::Fig5 => write!(f, "fig5"),
            ExperimentId::Fig6 => write!(f, "fig6"),
            ExperimentId::Fig7 => write!(f, "fig7"),
            ExperimentId::Fig8 => write!(f, "fig8"),
            ExperimentId::Fig9 => write!(f, "fig9"),
            ExperimentId::Fig10 => write!(f, "fig10"),
            ExperimentId::Complexity => write!(f, "complexity"),
        }
    }
}

/// One labelled curve of a figure.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Series {
    /// Legend label (e.g. the swept rate, as the paper prints it).
    pub label: String,
    /// `(x, y)` points; `x` in the figure's natural unit, `y` is BER.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure: axes plus one series per legend entry.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Figure {
    /// Which artifact this is.
    pub id: ExperimentId,
    /// Title, mirroring the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

/// Output of [`run`]: a figure or the complexity table.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentOutput {
    /// A BER-vs-time figure.
    Figure(Figure),
    /// The Section-6 complexity rows.
    Table(Vec<ComplexityRow>),
}

impl ExperimentOutput {
    /// The figure, if this output is one.
    pub fn figure(&self) -> Option<&Figure> {
        match self {
            ExperimentOutput::Figure(fig) => Some(fig),
            ExperimentOutput::Table(_) => None,
        }
    }

    /// The table, if this output is one.
    pub fn table(&self) -> Option<&[ComplexityRow]> {
        match self {
            ExperimentOutput::Table(rows) => Some(rows),
            ExperimentOutput::Figure(_) => None,
        }
    }
}

/// Regenerates one paper artifact with the default parallelism
/// ([`Parallelism::Auto`]: one worker per available core).
///
/// # Errors
///
/// Solver/configuration errors from the underlying crates (none occur for
/// the built-in parameterizations).
pub fn run(id: ExperimentId) -> Result<ExperimentOutput, Error> {
    run_with(id, &Parallelism::Auto)
}

/// Regenerates one paper artifact, fanning the sweep's rate curves
/// across `par` workers. Results are identical for every parallelism
/// degree — curves are solved independently and assembled in sweep
/// order.
///
/// # Errors
///
/// See [`run`].
pub fn run_with(id: ExperimentId, par: &Parallelism) -> Result<ExperimentOutput, Error> {
    run_with_observer(id, par, &|_, _| {})
}

/// A sweep progress callback: invoked with `(curves_done, curves_total)`
/// after each completed curve, from whichever worker finished it (so it
/// must be `Sync`).
pub type SweepObserver<'a> = &'a (dyn Fn(usize, usize) + Sync);

/// [`run_with`] plus a progress observer: `observer(done, total)` fires
/// once per completed curve. The CLI uses this for rate-limited status
/// lines on long sweeps; the observer has no effect on the results.
///
/// # Errors
///
/// See [`run`].
pub fn run_with_observer(
    id: ExperimentId,
    par: &Parallelism,
    observer: SweepObserver<'_>,
) -> Result<ExperimentOutput, Error> {
    let _figure_span =
        rsmem_obs::span_at(rsmem_obs::Level::Info, "core.experiments", id.static_name());
    match id {
        ExperimentId::Fig5 => transient::fig5(par, observer).map(ExperimentOutput::Figure),
        ExperimentId::Fig6 => transient::fig6(par, observer).map(ExperimentOutput::Figure),
        ExperimentId::Fig7 => transient::fig7(par, observer).map(ExperimentOutput::Figure),
        ExperimentId::Fig8 => permanent::fig8(par, observer).map(ExperimentOutput::Figure),
        ExperimentId::Fig9 => permanent::fig9(par, observer).map(ExperimentOutput::Figure),
        ExperimentId::Fig10 => permanent::fig10(par, observer).map(ExperimentOutput::Figure),
        ExperimentId::Complexity => {
            let rows = complexity::table();
            observer(1, 1);
            Ok(ExperimentOutput::Table(rows))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_display() {
        let names: Vec<String> = ExperimentId::all().iter().map(|i| i.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "complexity"
            ]
        );
    }

    #[test]
    fn static_name_matches_display() {
        for id in ExperimentId::ALL {
            assert_eq!(id.static_name(), id.to_string());
        }
    }

    #[test]
    fn ids_roundtrip_through_fromstr() {
        for id in ExperimentId::ALL {
            let parsed: ExperimentId = id.to_string().parse().unwrap();
            assert_eq!(parsed, id);
        }
        let err = "fig99".parse::<ExperimentId>().unwrap_err();
        assert!(err.to_string().contains("fig99"));
        assert!("FIG5".parse::<ExperimentId>().is_err()); // names are lowercase
    }

    #[test]
    fn complexity_output_is_a_table() {
        let out = run(ExperimentId::Complexity).unwrap();
        assert!(out.table().is_some());
        assert!(out.figure().is_none());
        assert_eq!(out.table().unwrap().len(), 3);
    }

    #[test]
    fn parallel_sweep_output_is_identical_to_serial() {
        // Curves are independent jobs slotted back by index: every
        // parallelism degree must reproduce the serial figure exactly.
        let serial = run_with(ExperimentId::Fig5, &Parallelism::Serial).unwrap();
        for par in [Parallelism::threads(2), Parallelism::threads(4)] {
            assert_eq!(serial, run_with(ExperimentId::Fig5, &par).unwrap());
        }
    }

    #[test]
    fn fig5_output_shape() {
        let out = run(ExperimentId::Fig5).unwrap();
        let fig = out.figure().expect("fig5 is a figure");
        assert_eq!(fig.series.len(), SEU_RATES_PER_BIT_DAY.len());
        for s in &fig.series {
            assert_eq!(s.points.len(), GRID_POINTS);
            // x axis in hours, ending at the 48 h horizon.
            assert!((s.points.last().unwrap().0 - 48.0).abs() < 1e-9);
        }
    }
}
