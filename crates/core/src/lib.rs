//! # rsmem — Reed–Solomon coded memory reliability analysis
//!
//! A from-scratch reproduction of *"On the Analysis of Reed Solomon
//! Coding for Resilience to Transient/Permanent Faults in Highly Reliable
//! Memories"* (Schiano, Ottavi, Lombardi, Pontarelli, Salsano —
//! DATE 2005), packaged as a reusable library.
//!
//! The paper studies two arrangements of an RS-coded memory for space
//! Solid State Mass Memories — a **simplex** (one module) and a **duplex**
//! (two modules behind a flag-comparing arbiter) — under transient faults
//! (SEUs → random errors, rate `λ`/bit/day), permanent faults (located
//! stuck-ats → erasures, rate `λe`/symbol/day) and periodic **scrubbing**.
//! It evaluates the Bit Error Rate `BER(t) = m·(n−k)/k·P_Fail(t)` with
//! continuous-time Markov models.
//!
//! ## What lives where
//!
//! | layer | crate |
//! |---|---|
//! | GF(2^m) arithmetic | `rsmem-gf` |
//! | RS(n,k) errors-and-erasures codec + complexity model | `rsmem-code` |
//! | CTMC engine (uniformization, ODE, SURE-style path bounds) | `rsmem-ctmc` |
//! | the paper's simplex/duplex Markov models + Eq. (1) | `rsmem-models` |
//! | Monte-Carlo fault-injection simulator + Section-3 arbiter | `rsmem-sim` |
//! | this façade + figure-reproduction experiments | `rsmem` |
//!
//! ## Quickstart
//!
//! ```
//! use rsmem::{MemorySystem, CodeParams, Scrubbing};
//! use rsmem::units::{SeuRate, Time, TimeGrid};
//!
//! # fn main() -> Result<(), rsmem::Error> {
//! // The paper's duplex RS(18,16) under the worst-case SEU rate,
//! // scrubbed every 15 minutes.
//! let system = MemorySystem::duplex(CodeParams::rs18_16())
//!     .with_seu_rate(SeuRate::per_bit_day(1.7e-5))
//!     .with_scrubbing(Scrubbing::every_seconds(900.0));
//!
//! let grid = TimeGrid::linspace(Time::zero(), Time::from_hours(48.0), 9);
//! let curve = system.ber_curve(grid.points())?;
//! assert!(curve.ber.iter().all(|&b| b < 1e-6)); // paper Fig. 7
//! # Ok(())
//! # }
//! ```
//!
//! ## Reproducing the paper
//!
//! Every figure and the Section-6 complexity table is an entry of
//! [`experiments::ExperimentId`]; [`experiments::run`] returns the series
//! data, and `cargo bench -p rsmem-bench` regenerates everything (see
//! EXPERIMENTS.md in the repository root for paper-vs-measured values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod experiments;
pub mod parallel;
pub mod plot;
pub mod report;
pub mod scrub;
mod system;

pub use error::Error;
pub use parallel::Parallelism;
pub use system::{Arrangement, MemorySystem};

// Curated re-exports so downstream users need only this crate.
pub use rsmem_code::{complexity, DecodeOutcome, DecoderBackend, RsCode};
pub use rsmem_codes::MemoryCode;
pub use rsmem_models::ber::{BerCurve, MemoryModel};
pub use rsmem_models::{
    CodeFamily, CodeParams, CorrectionCapability, DuplexFailCriterion, DuplexModel, DuplexOptions,
    FaultRates, ModelError, Scrubbing, SimplexModel,
};
pub use rsmem_sim::{MonteCarloReport, ScrubTiming, SimConfig, TrialOutcome};

/// Unit-safe time and rate types (re-export of `rsmem_models::units`).
pub mod units {
    pub use rsmem_models::units::*;
}

/// The code-family framework: the [`MemoryCode`] trait, its RS /
/// Reed–Muller / interleaved-RS implementations and the
/// [`codes::build`] factory (re-export of `rsmem_codes`).
pub mod codes {
    pub use rsmem_codes::*;
}

/// Whole-memory Monte-Carlo simulation with multi-bit upsets and
/// interleaving (re-export of `rsmem_sim::array`).
pub mod array {
    pub use rsmem_sim::array::*;
}

/// Analytic whole-memory composition of the per-word models
/// (re-export of `rsmem_models::memory_array`).
pub mod memory_array {
    pub use rsmem_models::memory_array::*;
}

/// Reliability metrics beyond BER (re-export of
/// `rsmem_models::metrics`).
pub mod metrics {
    pub use rsmem_models::metrics::*;
}

/// Piecewise-constant mission profiles, e.g. solar-flare phases
/// (re-export of `rsmem_models::mission`).
pub mod mission {
    pub use rsmem_models::mission::*;
}

/// Eagerly registers every solver-level metric family (uniformization,
/// decode back-ends, Monte-Carlo shards, arbiter decisions) in the
/// global `rsmem-obs` registry, so a metrics scrape sees the complete
/// zero-valued set before any solve has run. The service calls this at
/// bind time; long-running CLI commands call it at startup.
pub fn register_solver_metrics() {
    rsmem_obs::register_build_info(rsmem_obs::global());
    rsmem_ctmc::uniformization::register_metrics();
    rsmem_code::register_metrics();
    rsmem_sim::metrics::register_metrics();
}
