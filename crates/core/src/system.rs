//! The [`MemorySystem`] façade: one type that answers every question the
//! paper asks about an arrangement.

use crate::{Error, Parallelism};
use rsmem_code::complexity;
use rsmem_ctmc::paths::PathBound;
use rsmem_ctmc::StateSpace;
use rsmem_models::ber::{self, BerCurve};
use rsmem_models::units::Time;
use rsmem_models::{CodeParams, DuplexModel, DuplexOptions, FaultRates, Scrubbing, SimplexModel};
use rsmem_sim::{runner, MonteCarloReport, ScrubTiming, SimConfig};

/// Simplex or duplex module arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Arrangement {
    /// One memory module with an RS co-decoder.
    #[default]
    Simplex,
    /// Two replicated modules behind the Section-3 arbiter.
    Duplex(DuplexOptions),
}

/// A fully configured memory system — the paper's object of study.
///
/// Construct with [`MemorySystem::simplex`] or [`MemorySystem::duplex`]
/// and chain `with_*` builders; then evaluate analytically
/// ([`MemorySystem::ber_curve`]), bound ([`MemorySystem::fail_bounds`]),
/// or simulate ([`MemorySystem::monte_carlo`]).
///
/// # Examples
///
/// ```
/// use rsmem::{CodeParams, MemorySystem};
/// use rsmem::units::{ErasureRate, Time};
///
/// # fn main() -> Result<(), rsmem::Error> {
/// let system = MemorySystem::simplex(CodeParams::rs36_16())
///     .with_erasure_rate(ErasureRate::per_symbol_day(1e-6));
/// let curve = system.ber_curve(&[Time::from_months(24.0)])?;
/// assert!(curve.ber[0] > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySystem {
    code: CodeParams,
    rates: FaultRates,
    scrub: Scrubbing,
    arrangement: Arrangement,
}

impl MemorySystem {
    /// A fault-free simplex system around `code`.
    pub fn simplex(code: CodeParams) -> Self {
        MemorySystem {
            code,
            rates: FaultRates::default(),
            scrub: Scrubbing::None,
            arrangement: Arrangement::Simplex,
        }
    }

    /// A fault-free duplex system around `code` with default
    /// [`DuplexOptions`].
    pub fn duplex(code: CodeParams) -> Self {
        MemorySystem {
            code,
            rates: FaultRates::default(),
            scrub: Scrubbing::None,
            arrangement: Arrangement::Duplex(DuplexOptions::default()),
        }
    }

    /// Sets the SEU (transient-fault) rate.
    pub fn with_seu_rate(mut self, seu: rsmem_models::units::SeuRate) -> Self {
        self.rates.seu = seu;
        self
    }

    /// Sets the permanent-fault (erasure) rate.
    pub fn with_erasure_rate(mut self, erasure: rsmem_models::units::ErasureRate) -> Self {
        self.rates.erasure = erasure;
        self
    }

    /// Sets both fault rates at once.
    pub fn with_rates(mut self, rates: FaultRates) -> Self {
        self.rates = rates;
        self
    }

    /// Sets the scrubbing policy.
    pub fn with_scrubbing(mut self, scrub: Scrubbing) -> Self {
        self.scrub = scrub;
        self
    }

    /// Sets duplex modelling options (no-op for a simplex system).
    pub fn with_duplex_options(mut self, options: DuplexOptions) -> Self {
        if let Arrangement::Duplex(_) = self.arrangement {
            self.arrangement = Arrangement::Duplex(options);
        }
        self
    }

    /// The code parameters.
    pub fn code(&self) -> CodeParams {
        self.code
    }

    /// The fault environment.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// The scrubbing policy.
    pub fn scrubbing(&self) -> Scrubbing {
        self.scrub
    }

    /// The arrangement.
    pub fn arrangement(&self) -> Arrangement {
        self.arrangement
    }

    fn validate(&self) -> Result<(), Error> {
        self.rates.validate()?;
        self.scrub.validate()?;
        Ok(())
    }

    /// Evaluates `BER(t)` (paper Eq. (1)) on a time grid with the
    /// uniformization solver.
    ///
    /// # Errors
    ///
    /// Configuration errors, or solver errors wrapped in
    /// [`Error::Model`].
    pub fn ber_curve(&self, times: &[Time]) -> Result<BerCurve, Error> {
        // A sampling point on the solver hot path: when the global
        // time-series sampler is enabled, long sweeps frame here at its
        // configured interval; disabled it is one relaxed atomic load.
        rsmem_obs::timeseries::tick();
        let mut ber_span = rsmem_obs::span("core.system", "ber_curve");
        ber_span.record("points", times.len());
        self.validate()?;
        match self.arrangement {
            Arrangement::Simplex => {
                let model = SimplexModel::new(self.code, self.rates, self.scrub);
                Ok(ber::ber_curve(&model, times)?)
            }
            Arrangement::Duplex(options) => {
                let model = DuplexModel::with_options(self.code, self.rates, self.scrub, options);
                Ok(ber::ber_curve(&model, times)?)
            }
        }
    }

    /// SURE-style log-space bounds on `P_Fail(t)` — only for systems
    /// without scrubbing (acyclic chains).
    ///
    /// # Errors
    ///
    /// [`Error::Model`] wrapping `NotAcyclic` when scrubbing is enabled.
    pub fn fail_bounds(&self, t: Time) -> Result<PathBound, Error> {
        self.validate()?;
        match self.arrangement {
            Arrangement::Simplex => {
                let model = SimplexModel::new(self.code, self.rates, self.scrub);
                Ok(ber::fail_probability_bounds(&model, t)?)
            }
            Arrangement::Duplex(options) => {
                let model = DuplexModel::with_options(self.code, self.rates, self.scrub, options);
                Ok(ber::fail_probability_bounds(&model, t)?)
            }
        }
    }

    /// Number of states the Markov model of this system explores
    /// (including the lumped Fail state).
    ///
    /// # Errors
    ///
    /// [`Error::Model`] on state explosion (not reachable for the paper's
    /// configurations).
    pub fn state_count(&self) -> Result<usize, Error> {
        self.validate()?;
        let len = match self.arrangement {
            Arrangement::Simplex => {
                let model = SimplexModel::new(self.code, self.rates, self.scrub);
                StateSpace::explore(&model)
                    .map_err(rsmem_models::ModelError::from)?
                    .len()
            }
            Arrangement::Duplex(options) => {
                let model = DuplexModel::with_options(self.code, self.rates, self.scrub, options);
                StateSpace::explore(&model)
                    .map_err(rsmem_models::ModelError::from)?
                    .len()
            }
        };
        Ok(len)
    }

    /// Runs a Monte-Carlo campaign of the *real* system (actual codewords,
    /// real decoder, Section-3 arbiter) over `store` days per trial.
    ///
    /// `scrub_timing` selects deterministic scrub periods (the hardware
    /// behaviour) or exponential ones (the Markov approximation, for
    /// model validation).
    ///
    /// # Errors
    ///
    /// [`Error::Sim`] on invalid configuration or zero trials.
    pub fn monte_carlo(
        &self,
        store: Time,
        trials: usize,
        seed: u64,
        scrub_timing: ScrubTiming,
    ) -> Result<MonteCarloReport, Error> {
        self.monte_carlo_with(store, trials, seed, scrub_timing, &Parallelism::Serial)
    }

    /// Like [`MemorySystem::monte_carlo`], sharding the trials across
    /// `par` workers. The report depends only on `(system, store, trials,
    /// seed, scrub_timing)` — the worker count cannot change it, because
    /// trials are sharded with per-shard seeds derived from
    /// `(seed, shard_index)` and counts merge commutatively.
    ///
    /// # Errors
    ///
    /// See [`MemorySystem::monte_carlo`].
    pub fn monte_carlo_with(
        &self,
        store: Time,
        trials: usize,
        seed: u64,
        scrub_timing: ScrubTiming,
        par: &Parallelism,
    ) -> Result<MonteCarloReport, Error> {
        self.validate()?;
        let scrub = match self.scrub {
            Scrubbing::None => None,
            Scrubbing::Periodic { period } => Some((period.as_days(), scrub_timing)),
        };
        let config = SimConfig {
            n: self.code.n(),
            k: self.code.k(),
            m: self.code.m(),
            family: self.code.family(),
            depth: u8::try_from(self.code.depth()).expect("validated depth fits in u8"),
            seu_per_bit_day: self.rates.seu.as_per_bit_day(),
            erasure_per_symbol_day: self.rates.erasure.as_per_symbol_day(),
            scrub,
            store_days: store.as_days(),
        };
        let threads = par.worker_count(trials.div_ceil(rsmem_sim::runner::SHARD_TRIALS));
        let report = match self.arrangement {
            Arrangement::Simplex => runner::run_simplex_threaded(&config, trials, seed, threads)?,
            Arrangement::Duplex(_) => runner::run_duplex_threaded(&config, trials, seed, threads)?,
        };
        Ok(report)
    }

    /// Reliability `R(t) = 1 − P_Fail(t)` — the probability the stored
    /// word is still readable after `t`.
    ///
    /// # Errors
    ///
    /// See [`MemorySystem::ber_curve`].
    pub fn reliability(&self, t: Time) -> Result<f64, Error> {
        self.validate()?;
        let r = match self.arrangement {
            Arrangement::Simplex => {
                let model = SimplexModel::new(self.code, self.rates, self.scrub);
                rsmem_models::metrics::reliability(&model, t)?
            }
            Arrangement::Duplex(options) => {
                let model = DuplexModel::with_options(self.code, self.rates, self.scrub, options);
                rsmem_models::metrics::reliability(&model, t)?
            }
        };
        Ok(r)
    }

    /// Mean time to failure of the arrangement.
    ///
    /// # Errors
    ///
    /// [`Error::Model`] when no failure is reachable (all rates zero) —
    /// the MTTF diverges.
    pub fn mttf(&self) -> Result<Time, Error> {
        self.validate()?;
        let days = match self.arrangement {
            Arrangement::Simplex => {
                let model = SimplexModel::new(self.code, self.rates, self.scrub);
                rsmem_models::metrics::mttf_days(&model)?
            }
            Arrangement::Duplex(options) => {
                let model = DuplexModel::with_options(self.code, self.rates, self.scrub, options);
                rsmem_models::metrics::mttf_days(&model)?
            }
        };
        Ok(Time::from_days(days))
    }

    /// Expected operational time (outside the Fail state) during a store
    /// of length `t`.
    ///
    /// # Errors
    ///
    /// See [`MemorySystem::ber_curve`].
    pub fn expected_uptime(&self, t: Time) -> Result<Time, Error> {
        self.validate()?;
        let days = match self.arrangement {
            Arrangement::Simplex => {
                let model = SimplexModel::new(self.code, self.rates, self.scrub);
                rsmem_models::metrics::expected_uptime_days(&model, t)?
            }
            Arrangement::Duplex(options) => {
                let model = DuplexModel::with_options(self.code, self.rates, self.scrub, options);
                rsmem_models::metrics::expected_uptime_days(&model, t)?
            }
        };
        Ok(Time::from_days(days))
    }

    /// Modelled decode latency for one access, in clock cycles
    /// (paper Section 6: `Td ≈ 3n + 10(n−k)`; the duplex decoders run in
    /// parallel, so the arrangement does not change the figure).
    pub fn decode_cycles(&self) -> u64 {
        complexity::decode_cycles(self.code.n(), self.code.k())
    }

    /// Modelled total decoder area in `m·(n−k)` gate units; the duplex
    /// arrangement pays for two decoders.
    pub fn decoder_area_units(&self) -> u64 {
        let single = complexity::area_units(self.code.m(), self.code.n(), self.code.k());
        match self.arrangement {
            Arrangement::Simplex => single,
            Arrangement::Duplex(_) => 2 * single,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsmem_models::units::{ErasureRate, SeuRate};
    use rsmem_models::DuplexFailCriterion;

    #[test]
    fn builder_chain_sets_every_field() {
        let sys = MemorySystem::duplex(CodeParams::rs18_16())
            .with_seu_rate(SeuRate::per_bit_day(1e-5))
            .with_erasure_rate(ErasureRate::per_symbol_day(1e-7))
            .with_scrubbing(Scrubbing::every_seconds(1800.0));
        assert_eq!(sys.code().n(), 18);
        assert!((sys.rates().seu.as_per_bit_day() - 1e-5).abs() < 1e-20);
        assert!(matches!(sys.arrangement(), Arrangement::Duplex(_)));
        assert!(matches!(sys.scrubbing(), Scrubbing::Periodic { .. }));
    }

    #[test]
    fn duplex_options_ignored_on_simplex() {
        let sys = MemorySystem::simplex(CodeParams::rs18_16()).with_duplex_options(DuplexOptions {
            fail_criterion: DuplexFailCriterion::EitherWord,
            ..Default::default()
        });
        assert!(matches!(sys.arrangement(), Arrangement::Simplex));
    }

    #[test]
    fn state_counts_match_models() {
        let simplex = MemorySystem::simplex(CodeParams::rs18_16())
            .with_seu_rate(SeuRate::per_bit_day(1e-5))
            .with_erasure_rate(ErasureRate::per_symbol_day(1e-7));
        assert_eq!(simplex.state_count().unwrap(), 5);
        let wide = MemorySystem::simplex(CodeParams::rs36_16())
            .with_seu_rate(SeuRate::per_bit_day(1e-5))
            .with_erasure_rate(ErasureRate::per_symbol_day(1e-7));
        assert_eq!(wide.state_count().unwrap(), 122);
    }

    #[test]
    fn complexity_matches_paper_section6() {
        let narrow = MemorySystem::duplex(CodeParams::rs18_16());
        let wide = MemorySystem::simplex(CodeParams::rs36_16());
        assert_eq!(narrow.decode_cycles(), 74);
        assert_eq!(wide.decode_cycles(), 308);
        assert!(wide.decode_cycles() > 4 * narrow.decode_cycles());
        assert!(wide.decoder_area_units() > narrow.decoder_area_units());
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let sys = MemorySystem::simplex(CodeParams::rs18_16())
            .with_seu_rate(SeuRate::per_bit_day(f64::NAN));
        assert!(sys.ber_curve(&[Time::from_hours(1.0)]).is_err());
        let sys = MemorySystem::simplex(CodeParams::rs18_16())
            .with_scrubbing(Scrubbing::every_seconds(-3.0));
        assert!(sys.state_count().is_err());
    }

    #[test]
    fn monte_carlo_runs_through_facade() {
        let sys = MemorySystem::duplex(CodeParams::rs18_16());
        let report = sys
            .monte_carlo(Time::from_days(1.0), 10, 5, ScrubTiming::Periodic)
            .unwrap();
        assert_eq!(report.trials, 10);
        assert_eq!(report.correct, 10); // no faults configured
    }

    #[test]
    fn monte_carlo_parallelism_is_invisible_in_the_report() {
        // Sharded execution: the same (system, trials, seed) must yield a
        // bit-identical report for every parallelism degree.
        let sys =
            MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(2e-2));
        let store = Time::from_days(1.0);
        let serial = sys
            .monte_carlo_with(store, 600, 13, ScrubTiming::Periodic, &Parallelism::Serial)
            .unwrap();
        for par in [
            Parallelism::threads(2),
            Parallelism::threads(4),
            Parallelism::Auto,
        ] {
            let parallel = sys
                .monte_carlo_with(store, 600, 13, ScrubTiming::Periodic, &par)
                .unwrap();
            assert_eq!(serial, parallel);
        }
    }
}
