//! Terminal rendering of figures: log-scale ASCII plots.
//!
//! The paper's figures are log-y line charts; this module draws the
//! regenerated series the same way in plain text, so `cargo run
//! --example …` output can be eyeballed against the paper directly.

use crate::experiments::Figure;
use std::fmt::Write as _;

/// Options for the ASCII plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlotOptions {
    /// Plot width in characters (default 72).
    pub width: usize,
    /// Plot height in rows (default 20).
    pub height: usize,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 72,
            height: 20,
        }
    }
}

const MARKS: [char; 7] = ['*', '+', 'o', 'x', '#', '@', '%'];

/// Renders a figure as a log-y ASCII plot. Zero/negative values (e.g.
/// the `t = 0` point) are skipped, as on a real log axis.
///
/// # Examples
///
/// ```
/// use rsmem::experiments::{run, ExperimentId};
/// use rsmem::plot::{ascii_plot, PlotOptions};
///
/// # fn main() -> Result<(), rsmem::Error> {
/// let fig = run(ExperimentId::Fig7)?;
/// let art = ascii_plot(fig.figure().expect("figure"), &PlotOptions::default());
/// assert!(art.contains("BER"));
/// # Ok(())
/// # }
/// ```
pub fn ascii_plot(fig: &Figure, opts: &PlotOptions) -> String {
    let width = opts.width.max(16);
    let height = opts.height.max(6);

    // Collect the plottable (positive-y) points.
    let mut x_min = f64::INFINITY;
    let mut x_max = f64::NEG_INFINITY;
    let mut ly_min = f64::INFINITY;
    let mut ly_max = f64::NEG_INFINITY;
    for s in &fig.series {
        for &(x, y) in &s.points {
            if y > 0.0 {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                ly_min = ly_min.min(y.log10());
                ly_max = ly_max.max(y.log10());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {} vs {} (log scale)",
        fig.title, fig.y_label, fig.x_label
    );
    if !x_min.is_finite() {
        let _ = writeln!(out, "(no positive values to plot)");
        return out;
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (ly_max - ly_min).abs() < f64::EPSILON {
        ly_max = ly_min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in fig.series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            if y <= 0.0 {
                continue;
            }
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row_f = (y.log10() - ly_min) / (ly_max - ly_min);
            let row = height - 1 - (row_f * (height - 1) as f64).round() as usize;
            canvas[row][col.min(width - 1)] = mark;
        }
    }

    for (r, row) in canvas.iter().enumerate() {
        let label = if r == 0 {
            format!("1e{ly_max:>+4.0} ")
        } else if r == height - 1 {
            format!("1e{ly_min:>+4.0} ")
        } else {
            " ".repeat(7)
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label}|{line}");
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(7), "-".repeat(width));
    let _ = writeln!(
        out,
        "{}{:<10.1}{:>width$.1}",
        " ".repeat(8),
        x_min,
        x_max,
        width = width - 10
    );
    let legend: Vec<String> = fig
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", MARKS[i % MARKS.len()], s.label))
        .collect();
    let _ = writeln!(out, "        legend: {}", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentId, Series};

    fn figure(points: Vec<(f64, f64)>) -> Figure {
        Figure {
            id: ExperimentId::Fig5,
            title: "test figure".into(),
            x_label: "hours".into(),
            y_label: "BER".into(),
            series: vec![Series {
                label: "a".into(),
                points,
            }],
        }
    }

    #[test]
    fn plot_contains_marks_and_legend() {
        let fig = figure(vec![(0.0, 0.0), (1.0, 1e-9), (2.0, 1e-6), (3.0, 1e-3)]);
        let art = ascii_plot(&fig, &PlotOptions::default());
        assert!(art.contains('*'));
        assert!(art.contains("legend: * a"));
        assert!(art.contains("test figure"));
    }

    #[test]
    fn empty_series_render_gracefully() {
        let fig = figure(vec![(0.0, 0.0)]); // only a log-skipped point
        let art = ascii_plot(&fig, &PlotOptions::default());
        assert!(art.contains("no positive values"));
    }

    #[test]
    fn extremes_land_on_first_and_last_rows() {
        let fig = figure(vec![(0.0, 1e-12), (10.0, 1e0)]);
        let art = ascii_plot(
            &fig,
            &PlotOptions {
                width: 40,
                height: 10,
            },
        );
        let lines: Vec<&str> = art.lines().collect();
        // Row 1 (top of canvas) holds the max, the last canvas row the min.
        assert!(lines[1].contains('*'), "top row: {}", lines[1]);
        assert!(lines[10].contains('*'), "bottom row: {}", lines[10]);
        assert!(lines[1].starts_with("1e  +0"));
        assert!(lines[10].starts_with("1e -12"));
    }

    #[test]
    fn multiple_series_get_distinct_marks() {
        let mut fig = figure(vec![(0.0, 1e-3), (1.0, 1e-2)]);
        fig.series.push(Series {
            label: "b".into(),
            points: vec![(0.0, 1e-6), (1.0, 1e-5)],
        });
        let art = ascii_plot(&fig, &PlotOptions::default());
        assert!(art.contains('*') && art.contains('+'));
        assert!(art.contains("+ b"));
    }
}
