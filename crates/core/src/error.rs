use rsmem_code::CodeError;
use rsmem_models::ModelError;
use rsmem_sim::SimError;
use std::fmt;

/// The unified error type of the `rsmem` façade.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Analytic-model error (configuration or solver).
    Model(ModelError),
    /// Monte-Carlo simulator error.
    Sim(SimError),
    /// Codec error.
    Code(CodeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Model(e) => write!(f, "{e}"),
            Error::Sim(e) => write!(f, "{e}"),
            Error::Code(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Code(e) => Some(e),
        }
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Self {
        Error::Model(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<CodeError> for Error {
    fn from(e: CodeError) -> Self {
        Error::Code(e)
    }
}
