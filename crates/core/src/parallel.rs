//! Dependency-free parallelism for sweep-style workloads.
//!
//! The figure experiments and the Monte-Carlo runner fan independent
//! jobs (one per rate curve, one per trial shard) across
//! `std::thread::scope` workers — DESIGN §7 keeps the dependency set
//! closed, so no rayon. Results are written back by job index, which
//! makes the output **independent of the worker count**: `Serial`,
//! `Threads(4)` and `Auto` produce identical values, in identical order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// How many worker threads sweep-style work may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every job on the calling thread.
    Serial,
    /// Use exactly this many worker threads.
    Threads(NonZeroUsize),
    /// Use [`std::thread::available_parallelism`] workers (the default).
    #[default]
    Auto,
}

impl Parallelism {
    /// A degree from a plain count: `0` or `1` mean serial execution,
    /// anything larger that many workers.
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(nz) if nz.get() > 1 => Parallelism::Threads(nz),
            _ => Parallelism::Serial,
        }
    }

    /// The number of workers a batch of `jobs` independent jobs will
    /// actually use (never more workers than jobs, never zero).
    pub fn worker_count(&self, jobs: usize) -> usize {
        let base = match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.get(),
            Parallelism::Auto => thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        };
        base.min(jobs.max(1))
    }

    /// Maps `f` over `items`, preserving order. Jobs are pulled from a
    /// shared atomic cursor (cheap work stealing — sweep curves have
    /// very uneven solve times) and results are slotted back by index,
    /// so the output is identical for every parallelism degree. A panic
    /// in any job propagates to the caller.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let jobs = items.len();
        let workers = self.worker_count(jobs);
        if workers <= 1 || jobs <= 1 {
            return items.iter().map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, U)>();
        let mut slots: Vec<Option<U>> = (0..jobs).map(|_| None).collect();
        // Carry the caller's trace ID and profiler position into the
        // workers so events emitted inside jobs stay attributable to
        // the originating request and worker spans nest under the span
        // that fanned them out.
        let trace = rsmem_obs::log::current_trace_id();
        let profile_node = rsmem_obs::profile::current_node();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let _trace = trace.map(rsmem_obs::log::trace_scope);
                    let _profile = rsmem_obs::profile::attach_scope(profile_node);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        if tx.send((i, f(&items[i]))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for (i, value) in rx {
                slots[i] = Some(value);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every job sends exactly one result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_constructor_folds_degenerate_counts() {
        assert_eq!(Parallelism::threads(0), Parallelism::Serial);
        assert_eq!(Parallelism::threads(1), Parallelism::Serial);
        assert_eq!(
            Parallelism::threads(4),
            Parallelism::Threads(NonZeroUsize::new(4).unwrap())
        );
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        let p = Parallelism::threads(8);
        assert_eq!(p.worker_count(3), 3);
        assert_eq!(p.worker_count(100), 8);
        assert_eq!(p.worker_count(0), 1);
        assert_eq!(Parallelism::Serial.worker_count(10), 1);
        assert!(Parallelism::Auto.worker_count(64) >= 1);
    }

    #[test]
    fn map_preserves_order_for_every_degree() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::threads(2),
            Parallelism::threads(7),
            Parallelism::Auto,
        ] {
            assert_eq!(par.map(&items, |&x| x * x), expect, "{par:?}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_inputs() {
        let par = Parallelism::threads(4);
        assert_eq!(par.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par.map(&[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn map_propagates_errors_through_results() {
        let par = Parallelism::threads(3);
        let out = par.map(&[1i32, -2, 3], |&x| {
            if x < 0 {
                Err("negative")
            } else {
                Ok(x * 10)
            }
        });
        assert_eq!(out, vec![Ok(10), Err("negative"), Ok(30)]);
    }

    #[test]
    fn uneven_job_durations_still_slot_correctly() {
        let items: Vec<u64> = (0..16).collect();
        let par = Parallelism::threads(4);
        let out = par.map(&items, |&x| {
            // Earlier jobs sleep longer, inverting completion order.
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(out, items);
    }
}
