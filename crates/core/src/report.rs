//! Plain-text and CSV rendering of regenerated figures and tables.

use crate::experiments::{ComplexityRow, Figure};
use std::fmt::Write as _;

/// Renders a figure as an aligned plain-text table: one row per x value,
/// one column per series.
///
/// # Examples
///
/// ```
/// use rsmem::experiments::{run, ExperimentId};
/// use rsmem::report;
///
/// # fn main() -> Result<(), rsmem::Error> {
/// let out = run(ExperimentId::Fig5)?;
/// let text = report::render_figure(out.figure().expect("fig5 is a figure"));
/// assert!(text.contains("BER of Simplex RS(18,16)"));
/// # Ok(())
/// # }
/// ```
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} [{}]", fig.title, fig.id);
    let _ = write!(out, "{:>12}", fig.x_label);
    for s in &fig.series {
        let _ = write!(out, "  {:>12}", s.label);
    }
    out.push('\n');
    let npoints = fig.series.first().map_or(0, |s| s.points.len());
    for i in 0..npoints {
        let x = fig.series[0].points[i].0;
        let _ = write!(out, "{x:>12.3}");
        for s in &fig.series {
            let _ = write!(out, "  {:>12.4e}", s.points[i].1);
        }
        out.push('\n');
    }
    out
}

/// Escapes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in double quotes, with
/// embedded quotes doubled. Other fields pass through unchanged.
fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Renders a figure as CSV (`x,label1,label2,...`), RFC-4180 quoted.
pub fn figure_to_csv(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", csv_field(&fig.x_label));
    for s in &fig.series {
        let _ = write!(out, ",{}", csv_field(&s.label));
    }
    out.push('\n');
    let npoints = fig.series.first().map_or(0, |s| s.points.len());
    for i in 0..npoints {
        let _ = write!(out, "{}", fig.series[0].points[i].0);
        for s in &fig.series {
            let _ = write!(out, ",{:e}", s.points[i].1);
        }
        out.push('\n');
    }
    out
}

/// Renders a decoder complexity comparison as CSV, RFC-4180 quoted.
/// One schema for every code family (`family` is the short name:
/// `rs`, `rm`, `irs`).
pub fn complexity_to_csv(rows: &[ComplexityRow]) -> String {
    let mut out =
        String::from("arrangement,family,n,k,decode_cycles,area_units,redundant_symbols\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            csv_field(&r.label),
            csv_field(&r.family),
            r.n,
            r.k,
            r.decode_cycles,
            r.area_units,
            r.redundant_symbols
        );
    }
    out
}

/// Renders a decoder complexity comparison as aligned text.
pub fn render_complexity(rows: &[ComplexityRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>6} {:>6} {:>14} {:>12} {:>18}",
        "arrangement", "family", "n", "k", "decode cycles", "area units", "redundant symbols"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>6} {:>6} {:>14} {:>12} {:>18}",
            r.label, r.family, r.n, r.k, r.decode_cycles, r.area_units, r.redundant_symbols
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentId, Series};

    fn tiny_figure() -> Figure {
        Figure {
            id: ExperimentId::Fig5,
            title: "test".into(),
            x_label: "hours".into(),
            y_label: "BER".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(0.0, 0.0), (1.0, 1e-7)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(0.0, 0.0), (1.0, 2e-7)],
                },
            ],
        }
    }

    #[test]
    fn text_render_contains_all_series() {
        let text = render_figure(&tiny_figure());
        assert!(text.contains("hours"));
        assert!(text.contains('a') && text.contains('b'));
        assert!(text.contains("1.0000e-7") || text.contains("1e-7") || text.contains("1.0000e-07"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = figure_to_csv(&tiny_figure());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "hours,a,b");
        assert!(lines[2].starts_with('1'));
    }

    #[test]
    fn csv_labels_with_commas_are_rfc4180_quoted() {
        // Regression: labels used to be mangled via `replace(',', ";")`.
        let mut fig = tiny_figure();
        fig.series[0].label = "λ = 1.7e-5, scrubbed".into();
        fig.series[1].label = "say \"worst\"".into();
        let csv = figure_to_csv(&fig);
        let header = csv.lines().next().unwrap();
        assert_eq!(
            header,
            "hours,\"λ = 1.7e-5, scrubbed\",\"say \"\"worst\"\"\""
        );
        assert!(!csv.contains(';'));
    }

    #[test]
    fn complexity_csv_has_header_and_rows() {
        let rows = rsmem_code::complexity::section6_comparison();
        let csv = complexity_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + rows.len());
        assert!(lines[0].starts_with("arrangement,family,n,k"));
        // Labels like "simplex RS(18,16)" contain commas → quoted.
        assert!(lines[1].starts_with('"'), "{}", lines[1]);
        assert!(lines[1].contains(",rs,"), "{}", lines[1]);
    }

    #[test]
    fn complexity_render_lists_rows() {
        let rows = rsmem_code::complexity::section6_comparison();
        let text = render_complexity(&rows);
        assert!(text.contains("simplex RS(18,16)"));
        assert!(text.contains("308"));
    }
}
