//! Scrubbing policy advisor.
//!
//! The paper's Fig. 7 analysis culminates in a rule of thumb ("a
//! scrubbing frequency of lower than once per hour is sufficient to
//! maintain the BER below 1e-6") and Section 2 lists scrubbing's
//! drawbacks: control-circuitry overhead, reduced memory availability
//! during scrub operations, and extra power. This module automates both
//! sides of that trade-off:
//!
//! * [`minimum_scrub_period`] — the slowest (cheapest) scrub period that
//!   still meets a BER target at a given horizon, found by bisection on
//!   the Markov model;
//! * [`ScrubOverhead`] — the availability and energy cost of a chosen
//!   period.

use crate::{Error, MemorySystem};
use rsmem_models::units::Time;
use rsmem_models::Scrubbing;

/// Result of a scrub-period search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScrubRecommendation {
    /// The target BER is met even without scrubbing.
    NotNeeded,
    /// The slowest period (in seconds) meeting the target, within the
    /// search tolerance.
    Period {
        /// Recommended scrub period.
        period: Time,
        /// The BER achieved at that period.
        achieved_ber: f64,
    },
    /// Even the fastest searched period misses the target (e.g. the BER
    /// is dominated by permanent faults, which scrubbing cannot repair).
    Unachievable {
        /// BER at the fastest searched period.
        best_ber: f64,
    },
}

/// Finds the slowest scrub period whose BER at `horizon` stays below
/// `target_ber`, searching `[min_period, horizon]` by bisection
/// (~40 model solves).
///
/// # Errors
///
/// Propagates solver errors; [`Error::Model`] on invalid inputs.
///
/// # Examples
///
/// ```
/// use rsmem::{CodeParams, MemorySystem};
/// use rsmem::scrub::{minimum_scrub_period, ScrubRecommendation};
/// use rsmem::units::{SeuRate, Time};
///
/// # fn main() -> Result<(), rsmem::Error> {
/// let system = MemorySystem::duplex(CodeParams::rs18_16())
///     .with_seu_rate(SeuRate::per_bit_day(1.7e-5));
/// let rec = minimum_scrub_period(
///     &system, 1e-6, Time::from_hours(48.0), Time::from_seconds(60.0))?;
/// // The paper's guidance: roughly hourly scrubbing suffices for 1e-6.
/// match rec {
///     ScrubRecommendation::Period { period, .. } => {
///         assert!(period.as_seconds() > 1800.0 && period.as_seconds() < 7200.0);
///     }
///     other => panic!("unexpected recommendation {other:?}"),
/// }
/// # Ok(())
/// # }
/// ```
pub fn minimum_scrub_period(
    system: &MemorySystem,
    target_ber: f64,
    horizon: Time,
    min_period: Time,
) -> Result<ScrubRecommendation, Error> {
    let ber_at = |period_s: Option<f64>| -> Result<f64, Error> {
        let sys = match period_s {
            None => system.with_scrubbing(Scrubbing::None),
            Some(s) => system.with_scrubbing(Scrubbing::every_seconds(s)),
        };
        // A short scrub period over a long horizon makes the direct
        // transient solve arbitrarily expensive (Λt ∝ horizon/Tsc). The
        // scrubbed chain reaches its quasi-steady hazard within a few
        // periods, so evaluate over a window of ~100 periods and
        // extrapolate the hazard linearly — first-order exact while
        // BER ≪ 1 (error O(BER²)), and monotone in the period, which is
        // all the bisection needs.
        let horizon_d = horizon.as_days();
        let window_d = match period_s {
            Some(s) => horizon_d.min(100.0 * Time::from_seconds(s).as_days()),
            None => horizon_d,
        };
        let ber = sys.ber_curve(&[Time::from_days(window_d)])?.ber[0];
        if window_d < horizon_d {
            Ok((ber * horizon_d / window_d).min(1.0))
        } else {
            Ok(ber)
        }
    };

    if ber_at(None)? <= target_ber {
        return Ok(ScrubRecommendation::NotNeeded);
    }
    let lo_s = min_period.as_seconds().max(1e-3);
    let best_ber = ber_at(Some(lo_s))?;
    if best_ber > target_ber {
        return Ok(ScrubRecommendation::Unachievable { best_ber });
    }
    // Bisect on log-period between lo (meets target) and horizon (fails
    // target — equivalent to no scrubbing within the storage period).
    let mut lo = lo_s.ln();
    let mut hi = horizon.as_seconds().max(lo_s * 2.0).ln();
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ber_at(Some(mid.exp()))? <= target_ber {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let period = Time::from_seconds(lo.exp());
    let achieved_ber = ber_at(Some(period.as_seconds()))?;
    Ok(ScrubRecommendation::Period {
        period,
        achieved_ber,
    })
}

/// The operational cost of a scrub policy (paper Section 2's drawbacks,
/// quantified).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubOverhead {
    /// Scrub operations per day.
    pub scrubs_per_day: f64,
    /// Fraction of time the memory is busy scrubbing (unavailable).
    pub availability_loss: f64,
    /// Energy units per day (scrubs/day × energy per scrub).
    pub energy_per_day: f64,
}

impl ScrubOverhead {
    /// Computes the overhead of scrubbing every `period`, when one scrub
    /// pass of the protected region takes `scrub_duration` and consumes
    /// `energy_per_scrub` units.
    ///
    /// # Panics
    ///
    /// Panics if `period` is non-positive (validate with
    /// [`Scrubbing::validate`](rsmem_models::Scrubbing) upstream).
    pub fn of(period: Time, scrub_duration: Time, energy_per_scrub: f64) -> Self {
        assert!(period.as_days() > 0.0, "scrub period must be positive");
        let scrubs_per_day = 1.0 / period.as_days();
        ScrubOverhead {
            scrubs_per_day,
            availability_loss: (scrub_duration.as_days() / period.as_days()).min(1.0),
            energy_per_day: scrubs_per_day * energy_per_scrub,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as rsmem;
    use rsmem::units::SeuRate;
    use rsmem_models::units::ErasureRate;
    use rsmem_models::CodeParams;

    #[test]
    fn no_faults_needs_no_scrubbing() {
        let system = MemorySystem::simplex(CodeParams::rs18_16());
        let rec = minimum_scrub_period(
            &system,
            1e-9,
            Time::from_hours(48.0),
            Time::from_seconds(60.0),
        )
        .unwrap();
        assert_eq!(rec, ScrubRecommendation::NotNeeded);
    }

    #[test]
    fn paper_fig7_guidance_is_recovered() {
        // λ = 1.7e-5, target 1e-6 at 48 h → roughly hourly scrubbing.
        let system =
            MemorySystem::duplex(CodeParams::rs18_16()).with_seu_rate(SeuRate::per_bit_day(1.7e-5));
        match minimum_scrub_period(
            &system,
            1e-6,
            Time::from_hours(48.0),
            Time::from_seconds(60.0),
        )
        .unwrap()
        {
            ScrubRecommendation::Period {
                period,
                achieved_ber,
            } => {
                let s = period.as_seconds();
                assert!(
                    (1800.0..7200.0).contains(&s),
                    "expected ~hourly, got {s:.0} s"
                );
                assert!(achieved_ber <= 1e-6);
                // The recommendation is the *slowest* adequate period: a
                // 3x longer period must violate the target.
                let worse = system
                    .with_scrubbing(Scrubbing::every_seconds(3.0 * s))
                    .ber_curve(&[Time::from_hours(48.0)])
                    .unwrap()
                    .ber[0];
                assert!(worse > 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn permanent_fault_dominated_targets_are_unachievable() {
        // Scrubbing cannot repair permanent faults: an aggressive target
        // under a heavy erasure rate cannot be met.
        let system = MemorySystem::simplex(CodeParams::rs18_16())
            .with_erasure_rate(ErasureRate::per_symbol_day(1e-2));
        match minimum_scrub_period(
            &system,
            1e-12,
            Time::from_days(30.0),
            Time::from_seconds(60.0),
        )
        .unwrap()
        {
            ScrubRecommendation::Unachievable { best_ber } => assert!(best_ber > 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overhead_accounting() {
        let o = ScrubOverhead::of(Time::from_seconds(3600.0), Time::from_seconds(36.0), 2.5);
        assert!((o.scrubs_per_day - 24.0).abs() < 1e-9);
        assert!((o.availability_loss - 0.01).abs() < 1e-12);
        assert!((o.energy_per_day - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_overhead_panics() {
        let _ = ScrubOverhead::of(Time::zero(), Time::from_seconds(1.0), 1.0);
    }
}
