//! Maintainer tool: prints the mid-point and end-point of every series of
//! every figure experiment — the numbers EXPERIMENTS.md records.
//!
//! Run with `cargo run --release -p rsmem --example dump_experiments`.

use rsmem::experiments::{run, ExperimentId};

fn main() {
    for id in [
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig10,
    ] {
        let out = run(id).expect("experiment runs");
        let fig = out.figure().expect("figure experiment");
        println!("--- {id}: {}", fig.title);
        for s in &fig.series {
            let mid = s.points[s.points.len() / 2];
            let last = s.points.last().expect("points");
            println!(
                "  {:<10} mid({:.1}, {:.3e})  end({:.1}, {:.3e})",
                s.label, mid.0, mid.1, last.0, last.1
            );
        }
    }
}
