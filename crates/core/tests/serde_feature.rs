//! Compile-time contract for the `serde` feature: every data-structure
//! type of the public API implements `Serialize` and `Deserialize`
//! (guideline C-SERDE). Run with `cargo test -p rsmem --features serde`.

#![cfg(feature = "serde")]

use serde::de::DeserializeOwned;
use serde::Serialize;

fn assert_serde<T: Serialize + DeserializeOwned>() {}

#[test]
fn public_data_types_are_serde() {
    assert_serde::<rsmem::CodeParams>();
    assert_serde::<rsmem::FaultRates>();
    assert_serde::<rsmem::Scrubbing>();
    assert_serde::<rsmem::BerCurve>();
    assert_serde::<rsmem::MonteCarloReport>();
    assert_serde::<rsmem::TrialOutcome>();
    assert_serde::<rsmem::SimConfig>();
    assert_serde::<rsmem::ScrubTiming>();
    assert_serde::<rsmem::units::Time>();
    assert_serde::<rsmem::units::SeuRate>();
    assert_serde::<rsmem::units::ErasureRate>();
    assert_serde::<rsmem::experiments::ExperimentId>();
    assert_serde::<rsmem::experiments::Series>();
    assert_serde::<rsmem::experiments::Figure>();
    assert_serde::<rsmem::experiments::ComplexityRow>();
    assert_serde::<rsmem::array::ArrayConfig>();
    assert_serde::<rsmem::array::ArrayReport>();
}
