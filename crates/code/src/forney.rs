//! Forney's algorithm for error/erasure magnitudes.

use crate::RsCode;
use rsmem_gf::{GfError, Poly, Symbol};

/// Computes the correction magnitude at codeword position `pos` from the
/// combined locator `Ψ` and evaluator `Ω` satisfying
/// `Ψ(x)·S(x) ≡ Ω(x) (mod x^{2t})`:
///
/// ```text
/// e_pos = X^{1−b} · Ω(X^{−1}) / Ψ'(X^{−1}),     X = α^{pos}
/// ```
///
/// where `b` is the code's first consecutive root exponent.
pub(crate) fn magnitude_at(
    code: &RsCode,
    psi: &Poly,
    omega: &Poly,
    pos: usize,
) -> Result<Symbol, GfError> {
    let field = code.field();
    let x_inv = field.alpha_pow_signed(-(pos as i64));
    let num = omega.eval(field, x_inv);
    let den = psi.derivative(field).eval(field, x_inv);
    if den == 0 {
        // Ψ has a repeated root — uncorrectable pattern.
        return Err(GfError::DivisionByZero);
    }
    let ratio = field.div(num, den)?;
    let exp = (pos as i64) * (1 - code.first_root() as i64);
    Ok(field.mul(field.alpha_pow_signed(exp), ratio))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syndrome::syndrome_poly;

    /// Exhaustively verify Forney on every single-error pattern of a small
    /// code — this pins down the `X^{1−b}` convention.
    #[test]
    fn single_error_magnitudes_exact_for_fcr0() {
        single_error_check(RsCode::new(15, 9, 4).unwrap());
    }

    #[test]
    fn single_error_magnitudes_exact_for_fcr1() {
        single_error_check(RsCode::with_first_root(15, 9, 4, 1).unwrap());
    }

    fn single_error_check(code: RsCode) {
        let f = code.field().clone();
        let base = code.encode(&vec![0; code.k()]).unwrap();
        for pos in 0..code.n() {
            for val in 1..f.size() as Symbol {
                let mut word = base.clone();
                word[pos] ^= val;
                let s = syndrome_poly(&code, &word);
                // For a single error, Ψ = 1 + X x with X = α^pos, and
                // Ω = Ψ·S mod x^{2t}.
                let x = f.alpha_pow(pos as u32);
                let psi = Poly::from_coeffs([1, x]);
                let omega = psi.mul(&s, &f).truncate_mod_xk(code.parity_symbols());
                let got = magnitude_at(&code, &psi, &omega, pos).unwrap();
                assert_eq!(got, val, "pos={pos} val={val} fcr={}", code.first_root());
            }
        }
    }
}
