//! Berlekamp–Massey key-equation solver with erasure initialization.
//!
//! This is the second, independent decoder back-end. Initializing the
//! connection polynomial with the erasure locator `Γ(x)` and starting the
//! iteration at syndrome index `ρ = deg Γ` yields the *combined* locator
//! `Ψ(x) = Λ(x)·Γ(x)` directly (Blahut, ch. 7; Forney 1965). The
//! test-suite cross-checks this back-end against the Sugiyama back-end on
//! random patterns.

use crate::RsCode;
use rsmem_gf::{Poly, Symbol};

/// Runs Berlekamp–Massey over the raw syndromes `s` (0-indexed,
/// `s[j] = r(α^{b+j})`), starting from the erasure locator `gamma` of
/// degree `rho`. Returns the combined locator `Ψ(x)` **and the final
/// LFSR length `l`**.
///
/// The length is the algorithm's own claim about how many error+erasure
/// positions the locator accounts for; a correctable pattern always has
/// `deg Ψ = l`, so the decoder uses `l` both for the capability check
/// (`ν = l − ρ`) and as a structural validity gate — a shorter Ψ means
/// no LFSR of the claimed length generates the syndromes and the word is
/// uncorrectable.
///
/// Returns `None` if the field arithmetic degenerates (cannot happen for
/// well-formed inputs; kept for defensive symmetry with the Euclidean
/// back-end).
pub(crate) fn berlekamp_massey(
    code: &RsCode,
    s: &[Symbol],
    gamma: &Poly,
    rho: usize,
) -> Option<(Poly, usize)> {
    let field = code.field();
    let two_t = code.parity_symbols();
    debug_assert_eq!(s.len(), two_t);

    let mut c = gamma.clone(); // connection polynomial Ψ under construction
    let mut b = gamma.clone(); // last "best" polynomial before a length change
    let mut l: usize = rho; // current LFSR length
    let mut mm: usize = 1; // gap since the last length change
    let mut bb: Symbol = 1; // discrepancy at the last length change

    for nn in rho..two_t {
        // Discrepancy Δ = Σ_i C_i · S_{nn−i}.
        let mut delta: Symbol = 0;
        for (i, &ci) in c.coeffs().iter().enumerate() {
            if i > nn {
                break;
            }
            delta ^= field.mul(ci, s[nn - i]);
        }
        if delta == 0 {
            mm += 1;
        } else if 2 * l <= nn + rho {
            let t = c.clone();
            let coef = field.div(delta, bb).ok()?;
            c = c.add(&b.scale(coef, field).shift_up(mm), field);
            l = nn + 1 - l + rho;
            b = t;
            bb = delta;
            mm = 1;
        } else {
            let coef = field.div(delta, bb).ok()?;
            c = c.add(&b.scale(coef, field).shift_up(mm), field);
            mm += 1;
        }
    }
    Some((c, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locator::erasure_locator;
    use crate::syndrome::syndromes;

    #[test]
    fn errors_only_locator_has_expected_roots() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let f = code.field();
        let mut word = code.encode(&[0; 9]).unwrap();
        word[2] ^= 5;
        word[11] ^= 9;
        let s = syndromes(&code, &word);
        let (psi, l) = berlekamp_massey(&code, &s, &Poly::one(), 0).unwrap();
        assert_eq!(l, 2);
        assert_eq!(psi.degree(), Some(2));
        assert_eq!(psi.eval(f, f.alpha_pow_signed(-2)), 0);
        assert_eq!(psi.eval(f, f.alpha_pow_signed(-11)), 0);
    }

    #[test]
    fn erasure_initialized_locator_covers_both_kinds() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let f = code.field();
        let mut word = code.encode(&[3; 9]).unwrap();
        word[1] ^= 4; // erasure (located)
        word[8] ^= 2; // random error
        let erasures = [1usize];
        let s = syndromes(&code, &word);
        let gamma = erasure_locator(&code, &erasures);
        let (psi, l) = berlekamp_massey(&code, &s, &gamma, erasures.len()).unwrap();
        assert_eq!(l, 2, "one erasure + one error");
        assert_eq!(psi.eval(f, f.alpha_pow_signed(-1)), 0, "erasure root");
        assert_eq!(psi.eval(f, f.alpha_pow_signed(-8)), 0, "error root");
    }

    #[test]
    fn clean_word_keeps_gamma() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let word = code.encode(&[7; 9]).unwrap();
        let erasures = [4usize, 9];
        let s = syndromes(&code, &word);
        let gamma = erasure_locator(&code, &erasures);
        let (psi, l) = berlekamp_massey(&code, &s, &gamma, erasures.len()).unwrap();
        // Zero syndromes produce zero discrepancies; Ψ stays Γ at length ρ.
        assert_eq!(psi, gamma);
        assert_eq!(l, erasures.len());
    }
}
