//! The [`RsCode`] type: parameters, generator polynomial, and the public
//! encode/decode entry points.

use crate::batch::{BatchDecoder, DecodeOpts};
use crate::decode::{decode_word, DecodeOutcome, DecoderBackend};
use crate::encode;
use crate::error::CodeError;
use rsmem_gf::bulk::MulTable;
use rsmem_gf::{GfField, Poly, Symbol};

/// A systematic Reed–Solomon code RS(n,k) over GF(2^m).
///
/// `n` is the codeword length in symbols, `k` the dataword length; the code
/// corrects any pattern of `er` erasures and `re` random errors with
/// `er + 2·re ≤ n − k`. Codes with `n < 2^m − 1` are *shortened*: they
/// behave exactly like the parent code with the high message positions
/// pinned to zero.
///
/// Codeword layout: index `0..n−k` holds the parity symbols, `n−k..n` holds
/// the data symbols in order, i.e. `word[n−k + i] == data[i]`. Position `i`
/// of the codeword corresponds to the coefficient of `x^i` and to the
/// locator `α^i`.
///
/// # Examples
///
/// ```
/// use rsmem_code::RsCode;
///
/// # fn main() -> Result<(), rsmem_code::CodeError> {
/// let code = RsCode::new(36, 16, 8)?;
/// assert_eq!(code.parity_symbols(), 20);
/// assert_eq!(code.max_random_errors(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RsCode {
    field: GfField,
    n: usize,
    k: usize,
    fcr: u32,
    generator: Poly,
    /// One bulk multiply table per generator root `α^{b+j}`, shared by
    /// the scalar syndrome ladder and the batched syndrome plane.
    syndrome_tables: Vec<MulTable>,
}

impl RsCode {
    /// Constructs RS(n,k) over GF(2^m) with the conventional primitive
    /// polynomial and first consecutive root `α^0`.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] when `k == 0`, `k >= n`,
    /// `n > 2^m − 1`, or `m` is unsupported.
    pub fn new(n: usize, k: usize, m: u32) -> Result<Self, CodeError> {
        Self::with_first_root(n, k, m, 0)
    }

    /// Constructs RS(n,k) with an explicit first consecutive root exponent
    /// `b`, so the generator is `∏_{j=0}^{n−k−1} (x − α^{b+j})`.
    ///
    /// Some standards (e.g. CCSDS) use `b = 1` or `b = 112`; the choice does
    /// not affect the code's distance properties.
    ///
    /// # Errors
    ///
    /// See [`RsCode::new`].
    pub fn with_first_root(n: usize, k: usize, m: u32, b: u32) -> Result<Self, CodeError> {
        let field = GfField::new(m).map_err(|_| CodeError::InvalidParameters {
            n,
            k,
            m,
            reason: "unsupported symbol width (need 2..=16)",
        })?;
        if k == 0 {
            return Err(CodeError::InvalidParameters {
                n,
                k,
                m,
                reason: "dataword length k must be positive",
            });
        }
        if k >= n {
            return Err(CodeError::InvalidParameters {
                n,
                k,
                m,
                reason: "need k < n for a nontrivial code",
            });
        }
        if n > field.order() as usize {
            return Err(CodeError::InvalidParameters {
                n,
                k,
                m,
                reason: "codeword length exceeds 2^m - 1",
            });
        }
        let roots = (0..(n - k) as u32).map(|j| field.alpha_pow(b + j));
        let generator = Poly::from_roots(roots, &field);
        let syndrome_tables = (0..(n - k) as u32)
            .map(|j| MulTable::new(&field, field.alpha_pow(b + j)))
            .collect();
        Ok(RsCode {
            field,
            n,
            k,
            fcr: b,
            generator,
            syndrome_tables,
        })
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dataword length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Symbol width in bits (the `m` of GF(2^m)).
    pub fn symbol_bits(&self) -> u32 {
        self.field.bits()
    }

    /// Number of parity (check) symbols, `n − k`.
    pub fn parity_symbols(&self) -> usize {
        self.n - self.k
    }

    /// Maximum correctable random errors with no erasures,
    /// `t = ⌊(n−k)/2⌋`.
    pub fn max_random_errors(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Exponent of the first consecutive generator root.
    pub fn first_root(&self) -> u32 {
        self.fcr
    }

    /// The underlying field.
    pub fn field(&self) -> &GfField {
        &self.field
    }

    /// The generator polynomial `g(x)`.
    pub fn generator(&self) -> &Poly {
        &self.generator
    }

    /// The precomputed multiply-by-root tables, one per syndrome
    /// `α^{b+j}`, `j = 0..n−k`.
    pub(crate) fn syndrome_tables(&self) -> &[MulTable] {
        &self.syndrome_tables
    }

    /// True when the pattern `(erasures, random_errors)` is within the
    /// code's guaranteed correction capability, `er + 2·re ≤ n − k`.
    ///
    /// This is the boundary condition the paper's Markov models use for
    /// both the simplex word and each duplex word.
    pub fn within_capability(&self, erasures: usize, random_errors: usize) -> bool {
        erasures + 2 * random_errors <= self.n - self.k
    }

    /// Validates a slice of symbols against the field.
    pub(crate) fn check_symbols(&self, word: &[Symbol]) -> Result<(), CodeError> {
        // Field sizes are powers of two, so "every symbol in range" is an
        // OR-fold against the out-of-range mask — branchless (and
        // vectorizable) on the overwhelmingly common all-valid path.
        let mask = !(self.field.size() - 1);
        if word.iter().fold(0u32, |acc, &s| acc | u32::from(s)) & mask == 0 {
            return Ok(());
        }
        for (i, &s) in word.iter().enumerate() {
            if !self.field.contains(s) {
                return Err(CodeError::SymbolOutOfRange {
                    index: i,
                    value: s as u32,
                });
            }
        }
        unreachable!("OR-fold flagged a symbol but none is out of range")
    }

    /// Systematically encodes `data` (exactly `k` symbols) into an
    /// `n`-symbol codeword (parity first, then data).
    ///
    /// # Errors
    ///
    /// [`CodeError::DatawordLength`] or [`CodeError::SymbolOutOfRange`] on
    /// malformed input.
    pub fn encode(&self, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError> {
        encode::encode_systematic(self, data)
    }

    /// Extracts the data symbols from a (corrected) codeword.
    ///
    /// # Errors
    ///
    /// [`CodeError::CodewordLength`] when `word.len() != n`.
    pub fn data_of<'w>(&self, word: &'w [Symbol]) -> Result<&'w [Symbol], CodeError> {
        if word.len() != self.n {
            return Err(CodeError::CodewordLength {
                got: word.len(),
                expected: self.n,
            });
        }
        Ok(&word[self.n - self.k..])
    }

    /// True when `word` is a codeword (all syndromes zero).
    ///
    /// # Errors
    ///
    /// [`CodeError::CodewordLength`] / [`CodeError::SymbolOutOfRange`] on
    /// malformed input.
    pub fn is_codeword(&self, word: &[Symbol]) -> Result<bool, CodeError> {
        if word.len() != self.n {
            return Err(CodeError::CodewordLength {
                got: word.len(),
                expected: self.n,
            });
        }
        self.check_symbols(word)?;
        Ok(crate::syndrome::syndromes(self, word)
            .iter()
            .all(|&s| s == 0))
    }

    /// Decodes `word` given `erasures` (distinct positions in `0..n` known
    /// to be unreliable), using the default [`DecoderBackend::Sugiyama`].
    ///
    /// A detected-uncorrectable word is a *successful* call returning
    /// [`DecodeOutcome::Failure`]; see the type for the full contract.
    ///
    /// # Errors
    ///
    /// [`CodeError`] only for malformed inputs (wrong lengths, bad erasure
    /// positions, out-of-field symbols).
    pub fn decode(&self, word: &[Symbol], erasures: &[usize]) -> Result<DecodeOutcome, CodeError> {
        decode_word(self, word, erasures, DecoderBackend::Sugiyama)
    }

    /// Like [`RsCode::decode`] but with an explicit decoder back-end.
    ///
    /// # Errors
    ///
    /// See [`RsCode::decode`].
    pub fn decode_with(
        &self,
        word: &[Symbol],
        erasures: &[usize],
        backend: DecoderBackend,
    ) -> Result<DecodeOutcome, CodeError> {
        decode_word(self, word, erasures, backend)
    }

    /// Decodes a batch of words through the bulk syndrome plane,
    /// correcting each word **in place** and returning one full
    /// [`DecodeOutcome`] per word, classification-identical to calling
    /// [`RsCode::decode`] on each word individually.
    ///
    /// Syndromes for the whole batch are evaluated with the bulk GF
    /// primitives; only words with non-zero syndromes (or over-budget
    /// erasure sets) escalate to the scalar key-equation back-ends.
    /// `erasures` is either empty (no erasures anywhere) or exactly one
    /// entry per word. Allocation-sensitive callers should hold a
    /// [`BatchDecoder`] and use
    /// [`BatchDecoder::decode_batch`] instead, which reuses its
    /// workspaces and reports compact per-word outcomes.
    ///
    /// # Errors
    ///
    /// [`CodeError`] on the first malformed word or erasure set; the
    /// batch is left unmodified in that case.
    pub fn decode_many(
        &self,
        words: &mut [Vec<Symbol>],
        erasures: &[Vec<usize>],
        opts: &DecodeOpts,
    ) -> Result<Vec<DecodeOutcome>, CodeError> {
        BatchDecoder::new().decode_many(self, words, erasures, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(RsCode::new(18, 16, 8).is_ok());
        assert!(RsCode::new(36, 16, 8).is_ok());
        assert!(matches!(
            RsCode::new(16, 16, 8),
            Err(CodeError::InvalidParameters { .. })
        ));
        assert!(matches!(
            RsCode::new(10, 0, 8),
            Err(CodeError::InvalidParameters { .. })
        ));
        assert!(matches!(
            RsCode::new(300, 16, 8),
            Err(CodeError::InvalidParameters { .. })
        ));
        assert!(RsCode::new(15, 11, 4).is_ok());
        assert!(RsCode::new(16, 11, 4).is_err()); // n > 2^4 - 1
    }

    #[test]
    fn generator_has_expected_degree_and_roots() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let g = code.generator();
        assert_eq!(g.degree(), Some(6));
        let f = code.field();
        for j in 0..6 {
            assert_eq!(g.eval(f, f.alpha_pow(j)), 0, "alpha^{j} must be a root");
        }
        // alpha^6 must NOT be a root (generator has exactly n-k roots).
        assert_ne!(g.eval(f, f.alpha_pow(6)), 0);
    }

    #[test]
    fn generator_respects_first_root_offset() {
        let code = RsCode::with_first_root(15, 11, 4, 1).unwrap();
        let f = code.field();
        let g = code.generator();
        assert_ne!(g.eval(f, f.alpha_pow(0)), 0);
        for j in 1..=4 {
            assert_eq!(g.eval(f, f.alpha_pow(j)), 0);
        }
    }

    #[test]
    fn capability_predicate_matches_paper() {
        let code = RsCode::new(18, 16, 8).unwrap();
        assert!(code.within_capability(0, 1)); // one SEU
        assert!(code.within_capability(2, 0)); // two erasures
        assert!(!code.within_capability(1, 1)); // 1 + 2 > 2
        assert!(!code.within_capability(0, 2)); // 4 > 2
        let wide = RsCode::new(36, 16, 8).unwrap();
        assert!(wide.within_capability(10, 5)); // 10 + 10 = 20
        assert!(!wide.within_capability(11, 5));
    }

    #[test]
    fn data_of_extracts_systematic_part() {
        let code = RsCode::new(15, 11, 4).unwrap();
        let data: Vec<Symbol> = (1..=11).collect();
        let word = code.encode(&data).unwrap();
        assert_eq!(code.data_of(&word).unwrap(), &data[..]);
        assert!(code.data_of(&word[..10]).is_err());
    }

    #[test]
    fn encoded_words_are_codewords() {
        let code = RsCode::new(18, 16, 8).unwrap();
        let data: Vec<Symbol> = (0..16).map(|i| (i * 13 + 5) % 256).collect();
        let word = code.encode(&data).unwrap();
        assert!(code.is_codeword(&word).unwrap());
        let mut corrupted = word.clone();
        corrupted[0] ^= 1;
        assert!(!code.is_codeword(&corrupted).unwrap());
    }
}
