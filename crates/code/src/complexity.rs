//! Decoder latency and area complexity models (paper Section 6).
//!
//! The paper cites the Altera RS codec IP-core data \[5\] for two
//! closed-form hardware-complexity models:
//!
//! * **Latency**: the decode time for a non-time-continuous access profile
//!   (as applicable to a memory) is `Td ≈ 3n + 10(n − k)` clock cycles —
//!   74 cycles for RS(18,16) and 308 for RS(36,16), i.e. the wide simplex
//!   code pays **more than 4×** the access latency of the duplex
//!   arrangement built from two narrow decoders.
//! * **Area**: the gate count of a decoder grows almost linearly with the
//!   symbol width `m` and the number of check symbols `n − k`, so one
//!   RS(36,16) decoder exceeds the area of *two* RS(18,16) decoders.
//!
//! These models feed the `decoder_complexity` bench and example, which
//! also measure this crate's software decoder as an empirical analogue.

use crate::RsCode;

/// Decode latency in clock cycles, `Td ≈ 3n + 10(n − k)`.
///
/// # Examples
///
/// ```
/// use rsmem_code::complexity::decode_cycles;
/// assert_eq!(decode_cycles(18, 16), 74);   // paper: Td ≈ 54 + 20
/// assert_eq!(decode_cycles(36, 16), 308);  // paper: Td ≈ 108 + 200
/// ```
pub fn decode_cycles(n: usize, k: usize) -> u64 {
    debug_assert!(k < n);
    (3 * n + 10 * (n - k)) as u64
}

/// Relative decoder area in arbitrary gate units, `≈ c·m·(n − k)`.
///
/// Only *ratios* of this figure are meaningful; the constant is normalized
/// so that RS(18,16) with byte symbols scores `m·(n−k) = 16`.
pub fn area_units(m: u32, n: usize, k: usize) -> u64 {
    debug_assert!(k < n);
    m as u64 * (n - k) as u64
}

/// A summary row comparing arrangements, as printed by the complexity
/// experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ComplexityRow {
    /// Human-readable arrangement label.
    pub label: String,
    /// Short code-family name (`rs`, `rm`, `irs`) so per-family rows
    /// share one CSV/JSON schema.
    pub family: String,
    /// Codeword length.
    pub n: usize,
    /// Dataword length.
    pub k: usize,
    /// Decode latency in cycles for one access.
    pub decode_cycles: u64,
    /// Total decoder area units (duplex counts both decoders).
    pub area_units: u64,
    /// Total redundant symbols stored per dataword (duplex counts the
    /// full replica: `n + (n − k)` extra symbols vs. `k`).
    pub redundant_symbols: usize,
}

/// Builds the paper's Section 6 comparison: simplex RS(18,16), duplex
/// RS(18,16) and simplex RS(36,16) — the latter chosen because a duplex
/// RS(18,16) stores the same number of redundant symbols as a simplex
/// RS(36,16).
pub fn section6_comparison() -> Vec<ComplexityRow> {
    let _span = rsmem_obs::span("code.complexity", "section6_comparison");
    let narrow = (18usize, 16usize);
    let wide = (36usize, 16usize);
    let m = 8;
    vec![
        ComplexityRow {
            label: "simplex RS(18,16)".to_owned(),
            family: "rs".to_owned(),
            n: narrow.0,
            k: narrow.1,
            decode_cycles: decode_cycles(narrow.0, narrow.1),
            area_units: area_units(m, narrow.0, narrow.1),
            redundant_symbols: narrow.0 - narrow.1,
        },
        ComplexityRow {
            label: "duplex RS(18,16)".to_owned(),
            family: "rs".to_owned(),
            n: narrow.0,
            k: narrow.1,
            // The two decoders operate in parallel: latency is one decode.
            decode_cycles: decode_cycles(narrow.0, narrow.1),
            // ...but both decoders occupy area.
            area_units: 2 * area_units(m, narrow.0, narrow.1),
            // The replica module adds a full extra codeword.
            redundant_symbols: 2 * narrow.0 - narrow.1,
        },
        ComplexityRow {
            label: "simplex RS(36,16)".to_owned(),
            family: "rs".to_owned(),
            n: wide.0,
            k: wide.1,
            decode_cycles: decode_cycles(wide.0, wide.1),
            area_units: area_units(m, wide.0, wide.1),
            redundant_symbols: wide.0 - wide.1,
        },
    ]
}

/// Convenience accessor for an [`RsCode`]'s modelled latency.
pub fn cycles_for(code: &RsCode) -> u64 {
    decode_cycles(code.n(), code.k())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_figures_reproduced() {
        assert_eq!(decode_cycles(18, 16), 74);
        assert_eq!(decode_cycles(36, 16), 308);
        // "more than four times higher" (paper Section 6).
        assert!(decode_cycles(36, 16) as f64 / decode_cycles(18, 16) as f64 > 4.0);
    }

    #[test]
    fn wide_decoder_larger_than_two_narrow() {
        // One RS(36,16) decoder requires more area than two RS(18,16).
        assert!(area_units(8, 36, 16) > 2 * area_units(8, 18, 16));
    }

    #[test]
    fn section6_rows_are_consistent() {
        let rows = section6_comparison();
        assert_eq!(rows.len(), 3);
        // Duplex and wide simplex store a comparable amount of redundancy
        // relative to the dataword (paper: "same amount of redundant code
        // symbols"): duplex = 18+2 = 20 extra, RS(36,16) = 20 extra.
        assert_eq!(rows[1].redundant_symbols, rows[2].redundant_symbols);
        // Duplex decode latency beats the wide simplex by > 4x.
        assert!(rows[2].decode_cycles > 4 * rows[1].decode_cycles);
    }

    #[test]
    fn cycles_for_matches_free_function() {
        let code = RsCode::new(18, 16, 8).unwrap();
        assert_eq!(cycles_for(&code), decode_cycles(18, 16));
    }
}
