//! Hardware-model systematic encoder: the LFSR division circuit.
//!
//! Hardware RS encoders (like the Altera IP core the paper cites for its
//! complexity model) compute the parity remainder with a linear-feedback
//! shift register that consumes one data symbol per clock. This module
//! models that circuit symbol-by-symbol — `n − k` register stages,
//! feedback taps equal to the generator coefficients — so the workspace
//! has a cycle-accurate encoder to hold against the polynomial encoder
//! (they must agree bit-for-bit) and to ground the `3n`-cycle latency
//! intuition of [`crate::complexity`].

use crate::{CodeError, RsCode, Symbol};

/// The LFSR parity-generation circuit of a systematic RS encoder.
///
/// # Examples
///
/// ```
/// use rsmem_code::{RsCode, LfsrEncoder};
///
/// # fn main() -> Result<(), rsmem_code::CodeError> {
/// let code = RsCode::new(18, 16, 8)?;
/// let data: Vec<u16> = (0..16).collect();
/// let word = LfsrEncoder::new(&code).encode(&data)?;
/// assert_eq!(word, code.encode(&data)?); // agrees with the polynomial path
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LfsrEncoder<'c> {
    code: &'c RsCode,
    /// Feedback taps: generator coefficients g_0 .. g_{n−k−1}
    /// (the monic leading coefficient is implicit).
    taps: Vec<Symbol>,
    /// Register stages, index 0 = the stage feeding the output.
    stages: Vec<Symbol>,
    /// Clock cycles consumed since the last reset.
    cycles: u64,
}

impl<'c> LfsrEncoder<'c> {
    /// Builds the circuit for a code.
    pub fn new(code: &'c RsCode) -> Self {
        let redundancy = code.parity_symbols();
        let taps: Vec<Symbol> = (0..redundancy).map(|i| code.generator().coeff(i)).collect();
        LfsrEncoder {
            code,
            taps,
            stages: vec![0; redundancy],
            cycles: 0,
        }
    }

    /// Clears the register for a new word.
    pub fn reset(&mut self) {
        self.stages.fill(0);
        self.cycles = 0;
    }

    /// Clocks one data symbol into the circuit (data enters high-order
    /// first, exactly as a serial hardware encoder sees it).
    ///
    /// # Errors
    ///
    /// [`CodeError::SymbolOutOfRange`] for a symbol outside the field.
    pub fn clock(&mut self, symbol: Symbol) -> Result<(), CodeError> {
        let field = self.code.field();
        if !field.contains(symbol) {
            return Err(CodeError::SymbolOutOfRange {
                index: self.cycles as usize,
                value: symbol as u32,
            });
        }
        let redundancy = self.stages.len();
        // Feedback = incoming symbol + top register stage.
        let feedback = field.add(symbol, self.stages[redundancy - 1]);
        for i in (1..redundancy).rev() {
            self.stages[i] = field.add(self.stages[i - 1], field.mul(feedback, self.taps[i]));
        }
        self.stages[0] = field.mul(feedback, self.taps[0]);
        self.cycles += 1;
        Ok(())
    }

    /// The parity symbols currently held (valid after `k` clocks).
    pub fn parity(&self) -> &[Symbol] {
        &self.stages
    }

    /// Clock cycles consumed since the last reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Encodes a full dataword by clocking it through the circuit and
    /// assembling the systematic codeword (parity first, data after —
    /// the same layout as [`RsCode::encode`]).
    ///
    /// # Errors
    ///
    /// [`CodeError::DatawordLength`] / [`CodeError::SymbolOutOfRange`] on
    /// malformed input.
    pub fn encode(mut self, data: &[Symbol]) -> Result<Vec<Symbol>, CodeError> {
        if data.len() != self.code.k() {
            return Err(CodeError::DatawordLength {
                got: data.len(),
                expected: self.code.k(),
            });
        }
        self.reset();
        // The codeword polynomial stores data in its TOP coefficients, so
        // the highest-index data symbol is the first into the divider.
        for &s in data.iter().rev() {
            self.clock(s)?;
        }
        let mut word = self.stages.clone();
        word.extend_from_slice(data);
        Ok(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes() -> Vec<RsCode> {
        vec![
            RsCode::new(18, 16, 8).unwrap(),
            RsCode::new(36, 16, 8).unwrap(),
            RsCode::new(15, 9, 4).unwrap(),
            RsCode::with_first_root(15, 11, 4, 1).unwrap(),
        ]
    }

    #[test]
    fn lfsr_agrees_with_polynomial_encoder() {
        for code in codes() {
            let size = code.field().size() as u64;
            for seed in 0..8u64 {
                let data: Vec<Symbol> = (0..code.k() as u64)
                    .map(|i| {
                        ((seed
                            .wrapping_mul(0x9e3779b97f4a7c15)
                            .wrapping_add(i * 0x2545f491))
                            % size) as Symbol
                    })
                    .collect();
                let poly_word = code.encode(&data).unwrap();
                let lfsr_word = LfsrEncoder::new(&code).encode(&data).unwrap();
                assert_eq!(lfsr_word, poly_word, "{code:?} seed={seed}");
            }
        }
    }

    #[test]
    fn cycle_count_is_one_per_data_symbol() {
        let code = RsCode::new(18, 16, 8).unwrap();
        let mut enc = LfsrEncoder::new(&code);
        for s in 0..16 as Symbol {
            enc.clock(s).unwrap();
        }
        assert_eq!(enc.cycles(), 16);
        enc.reset();
        assert_eq!(enc.cycles(), 0);
        assert!(enc.parity().iter().all(|&p| p == 0));
    }

    #[test]
    fn zero_data_leaves_register_clear() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let word = LfsrEncoder::new(&code).encode(&[0; 9]).unwrap();
        assert!(word.iter().all(|&s| s == 0));
    }

    #[test]
    fn malformed_input_rejected() {
        let code = RsCode::new(15, 9, 4).unwrap();
        assert!(LfsrEncoder::new(&code).encode(&[1, 2]).is_err());
        let mut enc = LfsrEncoder::new(&code);
        assert!(enc.clock(16).is_err()); // outside GF(16)
    }

    #[test]
    fn incremental_and_batch_agree() {
        let code = RsCode::new(15, 11, 4).unwrap();
        let data: Vec<Symbol> = (1..=11).collect();
        let batch = LfsrEncoder::new(&code).encode(&data).unwrap();
        let mut enc = LfsrEncoder::new(&code);
        for &s in data.iter().rev() {
            enc.clock(s).unwrap();
        }
        assert_eq!(enc.parity(), &batch[..4]);
    }
}
