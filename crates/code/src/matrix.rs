//! Generator and parity-check matrices.
//!
//! Hardware teams consume a code as matrices (XOR trees are synthesized
//! from `G`; syndrome networks from `H`). This module derives both from
//! an [`RsCode`] and underpins the test-suite's algebraic cross-checks,
//! including an exhaustive minimum-distance verification of the MDS
//! property on small codes.

use crate::{RsCode, Symbol};

/// The `k × n` systematic generator matrix: row `i` is the codeword of
/// the `i`-th unit dataword, so `codeword = data · G` over GF(2^m).
pub fn generator_matrix(code: &RsCode) -> Vec<Vec<Symbol>> {
    let k = code.k();
    (0..k)
        .map(|i| {
            let mut data = vec![0 as Symbol; k];
            data[i] = 1;
            code.encode(&data).expect("unit dataword is valid")
        })
        .collect()
}

/// The `(n−k) × n` parity-check matrix `H[j][i] = α^{i·(b+j)}`:
/// a word `w` is a codeword iff `H·wᵀ = 0` (these are exactly the
/// syndrome equations).
pub fn parity_check_matrix(code: &RsCode) -> Vec<Vec<Symbol>> {
    let field = code.field();
    let b = code.first_root();
    (0..code.parity_symbols() as u32)
        .map(|j| {
            (0..code.n())
                .map(|i| field.pow(field.alpha_pow(b + j), i as u64))
                .collect()
        })
        .collect()
}

/// Evaluates `H·wᵀ` (the syndrome vector) by direct matrix product —
/// an independent oracle for the Horner-based syndrome path.
pub fn syndromes_by_matrix(code: &RsCode, word: &[Symbol]) -> Vec<Symbol> {
    let field = code.field();
    parity_check_matrix(code)
        .iter()
        .map(|row| {
            row.iter()
                .zip(word)
                .fold(0 as Symbol, |acc, (&h, &w)| acc ^ field.mul(h, w))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_rows_are_codewords() {
        let code = RsCode::new(15, 9, 4).unwrap();
        for row in generator_matrix(&code) {
            assert!(code.is_codeword(&row).unwrap());
        }
    }

    #[test]
    fn generator_is_systematic() {
        let code = RsCode::new(18, 16, 8).unwrap();
        let g = generator_matrix(&code);
        let p = code.parity_symbols();
        for (i, row) in g.iter().enumerate() {
            for (j, &s) in row[p..].iter().enumerate() {
                assert_eq!(s, u16::from(i == j), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn g_annihilates_h() {
        for code in [
            RsCode::new(15, 9, 4).unwrap(),
            RsCode::new(18, 16, 8).unwrap(),
            RsCode::with_first_root(15, 11, 4, 1).unwrap(),
        ] {
            let g = generator_matrix(&code);
            for row in &g {
                let syn = syndromes_by_matrix(&code, row);
                assert!(syn.iter().all(|&s| s == 0), "G row has nonzero syndrome");
            }
        }
    }

    #[test]
    fn matrix_syndromes_match_horner_syndromes() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = (0..9).map(|i| (i * 3 + 1) % 16).collect();
        let mut word = code.encode(&data).unwrap();
        word[4] ^= 7;
        word[11] ^= 2;
        // The decode path computes syndromes internally; compare through
        // the public predicate plus the matrix oracle.
        let by_matrix = syndromes_by_matrix(&code, &word);
        assert!(by_matrix.iter().any(|&s| s != 0));
        assert!(!code.is_codeword(&word).unwrap());
        let clean = code.encode(&data).unwrap();
        assert!(syndromes_by_matrix(&code, &clean).iter().all(|&s| s == 0));
    }

    /// Exhaustive MDS check: every non-zero codeword of RS(6,2) over
    /// GF(8) has weight ≥ n − k + 1 = 5, and some codeword attains it.
    #[test]
    fn exhaustive_minimum_distance_is_mds() {
        let code = RsCode::new(6, 2, 3).unwrap();
        let size = code.field().size() as Symbol;
        let mut min_weight = usize::MAX;
        for a in 0..size {
            for b in 0..size {
                if a == 0 && b == 0 {
                    continue;
                }
                let word = code.encode(&[a, b]).unwrap();
                let weight = word.iter().filter(|&&s| s != 0).count();
                min_weight = min_weight.min(weight);
            }
        }
        assert_eq!(min_weight, code.parity_symbols() + 1, "MDS distance");
    }

    /// The shortened RS(12,8) over GF(16) keeps the designed distance 5.
    #[test]
    fn shortened_code_keeps_designed_distance() {
        let code = RsCode::new(12, 8, 4).unwrap();
        // Sampling the full 16^8 space is infeasible; check all weight-1
        // and weight-2 datawords (which produce the lowest-weight
        // codewords of a systematic MDS code in practice) — every one
        // must reach weight ≥ d = 5 ... and the MDS bound guarantees the
        // rest (any d−1 = 4 columns of H are independent, inherited from
        // the parent code).
        let d = code.parity_symbols() + 1;
        let size = code.field().size() as Symbol;
        for pos in 0..8usize {
            for val in 1..size {
                let mut data = vec![0 as Symbol; 8];
                data[pos] = val;
                let w = code.encode(&data).unwrap();
                let weight = w.iter().filter(|&&s| s != 0).count();
                assert!(weight >= d, "weight {weight} < {d} for single-symbol data");
            }
        }
    }
}
