//! Symbol interleaving across codewords.
//!
//! The paper's Markov models assume SEUs corrupt a single symbol
//! ("random errors on the same symbol are not considered" — and no
//! multi-symbol events at all). Real SEUs in dense memories can flip
//! several *adjacent* bits (multi-bit upsets, MBUs); if those bits span a
//! symbol boundary they produce two erroneous symbols in one codeword and
//! break the model's single-symbol assumption.
//!
//! The standard hardware countermeasure is **interleaving**: store the
//! symbols of `depth` different codewords round-robin, so physically
//! adjacent symbols belong to different words and an MBU degrades into
//! independent single-symbol errors — restoring the model's assumption.
//! The `rsmem-sim` array simulator uses this module to quantify the
//! effect (see the `ablation_mbu` bench).

use crate::{CodeError, Symbol};

/// A symbol-level round-robin interleaver over `depth` codewords.
///
/// Physical position `p` holds symbol `p / depth` of word `p % depth`.
///
/// # Examples
///
/// ```
/// use rsmem_code::Interleaver;
///
/// # fn main() -> Result<(), rsmem_code::CodeError> {
/// let il = Interleaver::new(2)?;
/// let words = vec![vec![1u16, 2, 3], vec![9, 8, 7]];
/// let physical = il.interleave(&words)?;
/// assert_eq!(physical, vec![1, 9, 2, 8, 3, 7]);
/// assert_eq!(il.deinterleave(&physical, 3)?, words);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interleaver {
    depth: usize,
}

impl Interleaver {
    /// Creates an interleaver of the given depth (≥ 1; depth 1 is the
    /// identity layout).
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] for `depth == 0`.
    pub fn new(depth: usize) -> Result<Self, CodeError> {
        if depth == 0 {
            return Err(CodeError::InvalidParameters {
                n: 0,
                k: 0,
                m: 0,
                reason: "interleaver depth must be at least 1",
            });
        }
        Ok(Interleaver { depth })
    }

    /// The interleaving depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Interleaves exactly `depth` equal-length words into one physical
    /// symbol sequence.
    ///
    /// # Errors
    ///
    /// [`CodeError::CodewordLength`] when the word count differs from the
    /// depth or the words have unequal lengths.
    pub fn interleave(&self, words: &[Vec<Symbol>]) -> Result<Vec<Symbol>, CodeError> {
        if words.len() != self.depth {
            return Err(CodeError::CodewordLength {
                got: words.len(),
                expected: self.depth,
            });
        }
        let len = words.first().map_or(0, Vec::len);
        for w in words {
            if w.len() != len {
                return Err(CodeError::CodewordLength {
                    got: w.len(),
                    expected: len,
                });
            }
        }
        let mut out = Vec::with_capacity(len * self.depth);
        for i in 0..len {
            for w in words {
                out.push(w[i]);
            }
        }
        Ok(out)
    }

    /// Inverse of [`Interleaver::interleave`].
    ///
    /// # Errors
    ///
    /// [`CodeError::CodewordLength`] when `physical.len()` is not
    /// `depth × word_len`.
    pub fn deinterleave(
        &self,
        physical: &[Symbol],
        word_len: usize,
    ) -> Result<Vec<Vec<Symbol>>, CodeError> {
        if physical.len() != word_len * self.depth {
            return Err(CodeError::CodewordLength {
                got: physical.len(),
                expected: word_len * self.depth,
            });
        }
        let mut words = vec![Vec::with_capacity(word_len); self.depth];
        for (p, &s) in physical.iter().enumerate() {
            words[p % self.depth].push(s);
        }
        Ok(words)
    }

    /// Maps a physical symbol index to `(word, symbol)` coordinates.
    pub fn locate(&self, physical_index: usize) -> (usize, usize) {
        (physical_index % self.depth, physical_index / self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_rejected() {
        assert!(Interleaver::new(0).is_err());
    }

    #[test]
    fn identity_at_depth_one() {
        let il = Interleaver::new(1).unwrap();
        let w = vec![vec![5u16, 6, 7]];
        assert_eq!(il.interleave(&w).unwrap(), vec![5, 6, 7]);
        assert_eq!(il.deinterleave(&[5, 6, 7], 3).unwrap(), w);
    }

    #[test]
    fn roundtrip_depth_four() {
        let il = Interleaver::new(4).unwrap();
        let words: Vec<Vec<Symbol>> = (0..4)
            .map(|w| (0..6).map(|i| (w * 10 + i) as Symbol).collect())
            .collect();
        let phys = il.interleave(&words).unwrap();
        assert_eq!(phys.len(), 24);
        assert_eq!(il.deinterleave(&phys, 6).unwrap(), words);
    }

    #[test]
    fn adjacent_physical_symbols_hit_distinct_words() {
        let il = Interleaver::new(3).unwrap();
        for p in 0..30 {
            let (w1, _) = il.locate(p);
            let (w2, _) = il.locate(p + 1);
            assert_ne!(w1, w2, "adjacent physical symbols share word at {p}");
        }
    }

    #[test]
    fn locate_matches_interleave_layout() {
        let il = Interleaver::new(2).unwrap();
        let words = vec![vec![10u16, 11], vec![20, 21]];
        let phys = il.interleave(&words).unwrap();
        for (p, &s) in phys.iter().enumerate() {
            let (w, i) = il.locate(p);
            assert_eq!(words[w][i], s);
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let il = Interleaver::new(2).unwrap();
        assert!(il.interleave(&[vec![1]]).is_err());
        assert!(il.interleave(&[vec![1], vec![2, 3]]).is_err());
        assert!(il.deinterleave(&[1, 2, 3], 2).is_err());
    }
}
