//! Reed–Solomon coding for the `rsmem` workspace.
//!
//! Implements the RS(n,k) codes the DATE 2005 paper uses as EDAC for
//! highly-reliable memories, over GF(2^m) from [`rsmem_gf`]:
//!
//! * systematic encoding with a generator polynomial
//!   `g(x) = ∏_{j=0}^{n−k−1} (x − α^{b+j})`,
//! * full **errors-and-erasures** decoding — a received word with `er`
//!   erasures (located symbols, e.g. permanent faults found by on-line
//!   testing) and `re` random errors (e.g. SEU bit-flips) is corrected
//!   whenever `er + 2·re ≤ n − k`,
//! * two independent decoder back-ends, the Sugiyama (extended Euclidean)
//!   algorithm and Berlekamp–Massey, cross-checked in the test-suite,
//! * *shortened* codes (any `n ≤ 2^m − 1`), as needed by the paper's
//!   RS(18,16) and RS(36,16) with byte symbols, and
//! * the decoder latency/area complexity model of the paper's Section 6
//!   (`Td ≈ 3n + 10(n−k)` clock cycles) in [`complexity`].
//!
//! # Examples
//!
//! ```
//! use rsmem_code::{RsCode, DecodeOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = RsCode::new(18, 16, 8)?; // the paper's RS(18,16), byte symbols
//! let data: Vec<u16> = (0..16).collect();
//! let mut word = code.encode(&data)?;
//!
//! word[5] ^= 0x40;                     // one SEU bit-flip
//! let out = code.decode(&word, &[])?;  // no known erasures
//! match out {
//!     DecodeOutcome::Corrected { data: d, .. } => assert_eq!(d, data),
//!     _ => unreachable!("single error is always correctable"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod bm;
mod code;
pub mod complexity;
mod decode;
mod encode;
mod error;
mod euclid;
mod forney;
mod interleave;
mod lfsr;
mod locator;
pub mod matrix;
mod syndrome;

pub use batch::{BatchDecoder, BatchOutcome, DecodeOpts, SyndromeBatch};
pub use code::RsCode;
pub use decode::{register_metrics, Correction, DecodeFailure, DecodeOutcome, DecoderBackend};
pub use error::CodeError;
pub use interleave::Interleaver;
pub use lfsr::LfsrEncoder;
pub use syndrome::syndromes;

/// Re-export of the symbol type used for codeword entries.
pub use rsmem_gf::Symbol;
