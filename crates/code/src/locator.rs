//! Locator polynomials and root finding over codeword positions.

use crate::RsCode;
use rsmem_gf::Poly;

/// Builds the erasure locator `Γ(x) = ∏_l (1 − X_l x)` where
/// `X_l = α^{pos_l}` for each erased position.
pub(crate) fn erasure_locator(code: &RsCode, erasures: &[usize]) -> Poly {
    let field = code.field();
    let mut acc = Poly::one();
    for &pos in erasures {
        let x_l = field.alpha_pow(pos as u32);
        // (1 + X_l x) — minus is plus in characteristic 2.
        let factor = Poly::from_coeffs([1, x_l]);
        acc = acc.mul(&factor, field);
    }
    acc
}

/// Chien-style search: finds codeword positions `i` such that `α^{−i}` is a
/// root of `locator`, i.e. the positions the locator points at.
///
/// The scan is restricted to `0..n`, which for shortened codes skips the
/// virtual (always-zero) positions.
pub(crate) fn locator_positions(code: &RsCode, locator: &Poly) -> Vec<usize> {
    let field = code.field();
    let mut out = Vec::new();
    for i in 0..code.n() {
        let x_inv = field.alpha_pow_signed(-(i as i64));
        if locator.eval(field, x_inv) == 0 {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erasure_locator_degree_equals_count() {
        let code = RsCode::new(15, 9, 4).unwrap();
        assert_eq!(erasure_locator(&code, &[]).degree(), Some(0));
        assert_eq!(erasure_locator(&code, &[2, 5, 9]).degree(), Some(3));
    }

    #[test]
    fn erasure_locator_roots_are_inverse_locators() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let f = code.field();
        let positions = [0usize, 3, 14];
        let gamma = erasure_locator(&code, &positions);
        for &p in &positions {
            let x_inv = f.alpha_pow_signed(-(p as i64));
            assert_eq!(gamma.eval(f, x_inv), 0, "position {p}");
        }
        // A non-erased position must not be a root.
        let x_inv = f.alpha_pow_signed(-7);
        assert_ne!(gamma.eval(f, x_inv), 0);
    }

    #[test]
    fn locator_positions_roundtrip() {
        let code = RsCode::new(18, 16, 8).unwrap();
        let positions = vec![1usize, 4, 17];
        let gamma = erasure_locator(&code, &positions);
        assert_eq!(locator_positions(&code, &gamma), positions);
    }

    #[test]
    fn shortened_code_scan_stops_at_n() {
        // A locator pointing beyond n-1 yields no in-range position.
        let code = RsCode::new(12, 8, 4).unwrap();
        let f = code.field();
        let x14 = f.alpha_pow(14);
        let gamma = Poly::from_coeffs([1, x14]); // points at virtual position 14
        assert!(locator_positions(&code, &gamma).is_empty());
    }
}
