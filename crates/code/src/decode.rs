//! Decode orchestration: syndromes → key equation → Chien → Forney →
//! verification, with the flag semantics the duplex arbiter relies on.

use crate::bm::berlekamp_massey;
use crate::euclid::{modified_syndrome, solve_key_equation};
use crate::forney::magnitude_at;
use crate::locator::{erasure_locator, locator_positions};
use crate::syndrome::syndromes;
use crate::{CodeError, RsCode};
use rsmem_gf::{Poly, Symbol};
use rsmem_obs::metrics::{global, Counter};
use rsmem_obs::recorder;
use std::fmt;
use std::sync::OnceLock;

/// Cached handles into the global metrics registry, one per label
/// variant, resolved once so a decode's bookkeeping is a few relaxed
/// atomic adds. Eager resolution also makes every label variant visible
/// (zero-valued) to a `/metrics` scrape before the first decode.
struct DecodeMetrics {
    sugiyama: Counter,
    berlekamp_massey: Counter,
    clean: Counter,
    corrected: Counter,
    failure: Counter,
    erasure_corrections: Counter,
    error_corrections: Counter,
}

fn decode_metrics() -> &'static DecodeMetrics {
    static METRICS: OnceLock<DecodeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        let by_backend = |b: &str| r.counter("rsmem_solver_decode_total", &[("backend", b)]);
        let by_outcome =
            |o: &str| r.counter("rsmem_solver_decode_outcomes_total", &[("outcome", o)]);
        let by_kind = |k: &str| r.counter("rsmem_solver_decode_corrections_total", &[("kind", k)]);
        DecodeMetrics {
            sugiyama: by_backend("sugiyama"),
            berlekamp_massey: by_backend("berlekamp-massey"),
            clean: by_outcome("clean"),
            corrected: by_outcome("corrected"),
            failure: by_outcome("failure"),
            erasure_corrections: by_kind("erasure"),
            error_corrections: by_kind("error"),
        }
    })
}

/// Eagerly registers the decode metric families (all label variants) in
/// the global registry, including the bulk-plane counters.
pub fn register_metrics() {
    let _ = decode_metrics();
    crate::batch::register_metrics();
}

/// Records `count` clean decodes attributed to `backend` — the batch
/// plane's zero-syndrome fast path bypasses [`decode_word`], so it
/// settles the same counters here to keep `/metrics` identical to the
/// per-word path.
pub(crate) fn record_clean_many(backend: DecoderBackend, count: u64) {
    if count == 0 {
        return;
    }
    let metrics = decode_metrics();
    match backend {
        DecoderBackend::Sugiyama => metrics.sugiyama.add(count),
        DecoderBackend::BerlekampMassey => metrics.berlekamp_massey.add(count),
    }
    metrics.clean.add(count);
}

/// Selects the key-equation solver.
///
/// Both back-ends implement the same contract and are cross-checked in the
/// test-suite; [`DecoderBackend::Sugiyama`] is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecoderBackend {
    /// Extended-Euclidean (Sugiyama) solver.
    #[default]
    Sugiyama,
    /// Berlekamp–Massey with erasure initialization.
    BerlekampMassey,
}

impl fmt::Display for DecoderBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecoderBackend::Sugiyama => write!(f, "sugiyama"),
            DecoderBackend::BerlekampMassey => write!(f, "berlekamp-massey"),
        }
    }
}

/// One applied symbol correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Correction {
    /// Codeword position that was modified.
    pub position: usize,
    /// The XOR-magnitude applied to the stored symbol.
    pub magnitude: Symbol,
    /// True when the position was declared as an erasure by the caller.
    pub was_erasure: bool,
}

/// Why a decode attempt was *detected* as uncorrectable.
///
/// Note that an RS decoder can also *mis-correct* silently (produce a
/// wrong codeword without noticing) when the corruption exceeds the code's
/// capability; the duplex arbiter of the paper exists precisely to catch a
/// subset of those cases by comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DecodeFailure {
    /// More erasures than redundancy (`ρ > n − k`).
    TooManyErasures {
        /// Number of declared erasures.
        erasures: usize,
        /// The code's redundancy `n − k`.
        redundancy: usize,
    },
    /// The key-equation solver produced no valid locator.
    KeyEquation,
    /// The claimed number of random errors exceeds the remaining
    /// capability (`ρ + 2ν > n − k`).
    CapabilityExceeded {
        /// Declared erasures.
        erasures: usize,
        /// Locator-claimed random errors.
        errors: usize,
    },
    /// The locator's root count over valid positions does not match its
    /// degree (roots are repeated or fall outside the codeword).
    RootCountMismatch,
    /// The corrected word still has non-zero syndromes.
    Unverified,
}

impl fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeFailure::TooManyErasures {
                erasures,
                redundancy,
            } => {
                write!(f, "{erasures} erasures exceed redundancy {redundancy}")
            }
            DecodeFailure::KeyEquation => write!(f, "key equation has no valid solution"),
            DecodeFailure::CapabilityExceeded { erasures, errors } => {
                write!(
                    f,
                    "pattern ({erasures} erasures, {errors} errors) beyond capability"
                )
            }
            DecodeFailure::RootCountMismatch => {
                write!(f, "locator roots inconsistent with its degree")
            }
            DecodeFailure::Unverified => write!(f, "corrected word fails re-verification"),
        }
    }
}

/// The result of a decode attempt.
///
/// The *flag* terminology follows Section 3 of the paper: the duplex
/// arbiter sets a per-word flag iff a correction was performed, which is
/// exactly the [`DecodeOutcome::Corrected`] variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The word was already a codeword; no correction performed
    /// (flag **not** set).
    Clean {
        /// The decoded data symbols (`k` of them).
        data: Vec<Symbol>,
    },
    /// Corrections were applied (flag **set**). If the corruption exceeded
    /// the code's capability this may be a silent mis-correction — the
    /// codeword is valid but not the one originally stored.
    Corrected {
        /// The decoded data symbols (`k` of them).
        data: Vec<Symbol>,
        /// The full corrected codeword (`n` symbols).
        codeword: Vec<Symbol>,
        /// The corrections applied, sorted by position.
        corrections: Vec<Correction>,
    },
    /// Detected-uncorrectable word; no output produced.
    Failure(DecodeFailure),
}

impl DecodeOutcome {
    /// The arbiter flag: true iff a correction was performed.
    pub fn is_flagged(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }

    /// True for a detected decode failure.
    pub fn is_failure(&self) -> bool {
        matches!(self, DecodeOutcome::Failure(_))
    }

    /// The decoded data, if any output was produced.
    pub fn data(&self) -> Option<&[Symbol]> {
        match self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => Some(data),
            DecodeOutcome::Failure(_) => None,
        }
    }
}

fn validate_erasures(code: &RsCode, erasures: &[usize]) -> Result<(), CodeError> {
    let mut seen = vec![false; code.n()];
    validate_erasures_into(code, erasures, &mut seen)
}

/// [`validate_erasures`] against a caller-owned scratch buffer (resized
/// and cleared here), so the batch plane can validate without
/// allocating per word.
pub(crate) fn validate_erasures_into(
    code: &RsCode,
    erasures: &[usize],
    seen: &mut Vec<bool>,
) -> Result<(), CodeError> {
    seen.clear();
    seen.resize(code.n(), false);
    for &pos in erasures {
        if pos >= code.n() || seen[pos] {
            return Err(CodeError::BadErasure {
                position: pos,
                n: code.n(),
            });
        }
        seen[pos] = true;
    }
    Ok(())
}

pub(crate) fn decode_word(
    code: &RsCode,
    word: &[Symbol],
    erasures: &[usize],
    backend: DecoderBackend,
) -> Result<DecodeOutcome, CodeError> {
    let result = decode_word_inner(code, word, erasures, backend);
    if let Ok(outcome) = &result {
        let metrics = decode_metrics();
        match backend {
            DecoderBackend::Sugiyama => metrics.sugiyama.inc(),
            DecoderBackend::BerlekampMassey => metrics.berlekamp_massey.inc(),
        }
        match outcome {
            DecodeOutcome::Clean { .. } => metrics.clean.inc(),
            DecodeOutcome::Corrected { corrections, .. } => {
                metrics.corrected.inc();
                let erased = corrections.iter().filter(|c| c.was_erasure).count() as u64;
                metrics.erasure_corrections.add(erased);
                metrics
                    .error_corrections
                    .add(corrections.len() as u64 - erased);
            }
            DecodeOutcome::Failure(_) => metrics.failure.inc(),
        }
        if recorder::enabled() {
            record_decode_outcome(code, word, erasures, backend, outcome);
        }
    }
    result
}

/// A compact spec for the code, matching the stress repro convention
/// (`first_root` appended when it differs from the default 1).
pub(crate) fn code_spec(code: &RsCode) -> String {
    let base = format!("rs:{},{},{}", code.n(), code.k(), code.symbol_bits());
    if code.first_root() == 1 {
        base
    } else {
        format!("{base} b0={}", code.first_root())
    }
}

/// Outcome code carried in the flight-record `a` word.
fn outcome_code(outcome: &DecodeOutcome) -> u64 {
    match outcome {
        DecodeOutcome::Clean { .. } => 0,
        DecodeOutcome::Corrected { .. } => 1,
        DecodeOutcome::Failure(f) => {
            2 + match f {
                DecodeFailure::TooManyErasures { .. } => 0,
                DecodeFailure::KeyEquation => 1,
                DecodeFailure::CapabilityExceeded { .. } => 2,
                DecodeFailure::RootCountMismatch => 3,
                DecodeFailure::Unverified => 4,
            }
        }
    }
}

/// Flight-recorder tap on the per-word decode path (both back-ends and
/// the batch plane's escalations all funnel through [`decode_word`]).
/// Every outcome leaves a ring record (`a` = [`outcome_code`], `b` =
/// corrections applied); a detected failure additionally offers a
/// `decode-failure` exemplar carrying the exact word, erasure pattern
/// and recomputed syndromes — cheap because failures are the rare path.
fn record_decode_outcome(
    code: &RsCode,
    word: &[Symbol],
    erasures: &[usize],
    backend: DecoderBackend,
    outcome: &DecodeOutcome,
) {
    let name = match backend {
        DecoderBackend::Sugiyama => "sugiyama",
        DecoderBackend::BerlekampMassey => "berlekamp-massey",
    };
    let corrections = match outcome {
        DecodeOutcome::Corrected { corrections, .. } => corrections.len() as u64,
        _ => 0,
    };
    recorder::record_event(
        recorder::RecordKind::Decode,
        "code.decode",
        name,
        outcome_code(outcome),
        corrections,
    );
    if let DecodeOutcome::Failure(failure) = outcome {
        recorder::record_exemplar_with("decode-failure", || recorder::Exemplar {
            code: code_spec(code),
            word: word.iter().map(|&s| u32::from(s)).collect(),
            erasures: erasures.iter().map(|&p| p as u32).collect(),
            syndromes: syndromes(code, word)
                .iter()
                .map(|&s| u32::from(s))
                .collect(),
            verdicts: vec![format!("{backend}: Failure({failure})")],
            detail: failure.to_string(),
            ..recorder::Exemplar::default()
        });
    }
}

fn decode_word_inner(
    code: &RsCode,
    word: &[Symbol],
    erasures: &[usize],
    backend: DecoderBackend,
) -> Result<DecodeOutcome, CodeError> {
    if word.len() != code.n() {
        return Err(CodeError::CodewordLength {
            got: word.len(),
            expected: code.n(),
        });
    }
    code.check_symbols(word)?;
    validate_erasures(code, erasures)?;

    let rho = erasures.len();
    let redundancy = code.parity_symbols();
    if rho > redundancy {
        return Ok(DecodeOutcome::Failure(DecodeFailure::TooManyErasures {
            erasures: rho,
            redundancy,
        }));
    }

    let syn = syndromes(code, word);
    if syn.iter().all(|&s| s == 0) {
        // Already a codeword; erased positions evidently held valid data.
        return Ok(DecodeOutcome::Clean {
            data: code.data_of(word)?.to_vec(),
        });
    }

    let field = code.field();
    // Reuse the syndromes computed for the clean check above; the old
    // code paid a second full Horner pass here.
    let s_poly = Poly::from_coeffs(syn.clone());
    let gamma = erasure_locator(code, erasures);

    // Solve for the combined locator Ψ (errors × erasures).
    let psi = match backend {
        DecoderBackend::Sugiyama => {
            let xi = modified_syndrome(code, &s_poly, &gamma);
            let Some((lambda, _omega)) = solve_key_equation(code, &xi, rho) else {
                return Ok(DecodeOutcome::Failure(DecodeFailure::KeyEquation));
            };
            let nu = lambda.degree_or_zero();
            if rho + 2 * nu > redundancy {
                return Ok(DecodeOutcome::Failure(DecodeFailure::CapabilityExceeded {
                    erasures: rho,
                    errors: nu,
                }));
            }
            lambda.mul(&gamma, field)
        }
        DecoderBackend::BerlekampMassey => {
            let Some((psi, l)) = berlekamp_massey(code, &syn, &gamma, rho) else {
                return Ok(DecodeOutcome::Failure(DecodeFailure::KeyEquation));
            };
            // Capability from the LFSR length, not deg Ψ: a degenerate
            // locator can come out *shorter* than the length BM claims,
            // which would understate ν and let a beyond-capability
            // pattern masquerade as a light one. (The Chien/Forney/
            // syndrome gates below would still catch it, but the claim
            // must be rejected here, symmetrically with Sugiyama.)
            let nu = l.saturating_sub(rho);
            if rho + 2 * nu > redundancy {
                return Ok(DecodeOutcome::Failure(DecodeFailure::CapabilityExceeded {
                    erasures: rho,
                    errors: nu,
                }));
            }
            // Structural gate: a correctable pattern always satisfies
            // deg Ψ = l. Anything else is a detected failure.
            if psi.degree_or_zero() != l {
                return Ok(DecodeOutcome::Failure(DecodeFailure::RootCountMismatch));
            }
            psi
        }
    };

    // Evaluator for the combined key equation Ψ·S ≡ Ω (mod x^{2t}).
    let omega = psi.mul(&s_poly, field).truncate_mod_xk(redundancy);

    // Chien search over real codeword positions.
    let positions = locator_positions(code, &psi);
    if positions.len() != psi.degree_or_zero() {
        return Ok(DecodeOutcome::Failure(DecodeFailure::RootCountMismatch));
    }

    // Forney magnitudes and correction.
    let mut corrected = word.to_vec();
    let mut corrections = Vec::with_capacity(positions.len());
    for &pos in &positions {
        let Ok(mag) = magnitude_at(code, &psi, &omega, pos) else {
            return Ok(DecodeOutcome::Failure(DecodeFailure::RootCountMismatch));
        };
        if mag != 0 {
            corrected[pos] ^= mag;
            corrections.push(Correction {
                position: pos,
                magnitude: mag,
                was_erasure: erasures.contains(&pos),
            });
        }
    }

    // Defensive re-verification: the corrected word must be a codeword.
    if syndromes(code, &corrected).iter().any(|&s| s != 0) {
        return Ok(DecodeOutcome::Failure(DecodeFailure::Unverified));
    }
    if corrections.is_empty() {
        // Non-zero syndromes but zero net correction cannot verify; the
        // branch above catches it, so reaching here means word == codeword.
        return Ok(DecodeOutcome::Clean {
            data: code.data_of(word)?.to_vec(),
        });
    }

    let data = code.data_of(&corrected)?.to_vec();
    Ok(DecodeOutcome::Corrected {
        data,
        codeword: corrected,
        corrections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_15_9() -> RsCode {
        RsCode::new(15, 9, 4).unwrap()
    }

    #[test]
    fn clean_word_is_not_flagged() {
        let code = code_15_9();
        let data: Vec<Symbol> = (0..9).collect();
        let word = code.encode(&data).unwrap();
        let out = code.decode(&word, &[]).unwrap();
        assert_eq!(out, DecodeOutcome::Clean { data });
        assert!(!out.is_flagged());
    }

    #[test]
    fn corrects_up_to_t_random_errors() {
        let code = code_15_9(); // t = 3
        let data: Vec<Symbol> = (1..=9).collect();
        let clean = code.encode(&data).unwrap();
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            let mut word = clean.clone();
            word[0] ^= 3;
            word[7] ^= 9;
            word[14] ^= 1;
            let out = code.decode_with(&word, &[], backend).unwrap();
            match out {
                DecodeOutcome::Corrected {
                    data: d,
                    corrections,
                    ..
                } => {
                    assert_eq!(d, data, "{backend}");
                    assert_eq!(corrections.len(), 3);
                }
                other => panic!("{backend}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrects_full_erasure_budget() {
        let code = code_15_9(); // n-k = 6 erasures correctable
        let data: Vec<Symbol> = (2..=10).collect();
        let clean = code.encode(&data).unwrap();
        let erased = [0usize, 2, 4, 8, 11, 13];
        let mut word = clean.clone();
        for &p in &erased {
            word[p] ^= 0xf; // clobber
        }
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            let out = code.decode_with(&word, &erased, backend).unwrap();
            assert_eq!(out.data(), Some(&data[..]), "{backend}");
        }
    }

    #[test]
    fn corrects_mixed_patterns_on_capability_boundary() {
        let code = code_15_9();
        let data: Vec<Symbol> = vec![5; 9];
        let clean = code.encode(&data).unwrap();
        // er + 2·re = 2 + 2·2 = 6 = n−k: exactly at capability.
        let erased = [1usize, 6];
        let mut word = clean.clone();
        word[1] ^= 7;
        word[6] ^= 2;
        word[3] ^= 9; // random error
        word[12] ^= 4; // random error
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            let out = code.decode_with(&word, &erased, backend).unwrap();
            assert_eq!(out.data(), Some(&data[..]), "{backend}");
            assert!(out.is_flagged());
        }
    }

    #[test]
    fn erasure_with_correct_value_costs_nothing_extra() {
        let code = code_15_9();
        let data: Vec<Symbol> = vec![1; 9];
        let word = code.encode(&data).unwrap();
        // Declare erasures but leave the symbols intact.
        let out = code.decode(&word, &[3, 10]).unwrap();
        assert_eq!(out, DecodeOutcome::Clean { data });
    }

    #[test]
    fn too_many_erasures_is_detected() {
        let code = code_15_9();
        let word = code.encode(&[0; 9]).unwrap();
        let erased: Vec<usize> = (0..7).collect(); // 7 > n−k = 6
        let out = code.decode(&word, &erased).unwrap();
        assert!(matches!(
            out,
            DecodeOutcome::Failure(DecodeFailure::TooManyErasures {
                erasures: 7,
                redundancy: 6
            })
        ));
    }

    #[test]
    fn beyond_capability_fails_or_miscorrects_but_never_passes_silently() {
        // 4 random errors on a t=3 code: the decoder must either detect
        // failure or emit a flagged (possibly wrong) codeword.
        let code = code_15_9();
        let data: Vec<Symbol> = (0..9).collect();
        let clean = code.encode(&data).unwrap();
        let mut word = clean.clone();
        for (i, p) in [0usize, 4, 9, 13].iter().enumerate() {
            word[*p] ^= (i + 1) as Symbol;
        }
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            let out = code.decode_with(&word, &[], backend).unwrap();
            match out {
                DecodeOutcome::Failure(_) => {}
                DecodeOutcome::Corrected { codeword, .. } => {
                    // Miscorrection must at least be a valid codeword.
                    assert!(code.is_codeword(&codeword).unwrap(), "{backend}");
                }
                DecodeOutcome::Clean { .. } => panic!("{backend}: corrupt word passed clean"),
            }
        }
    }

    /// Shared assertions for a pattern strictly beyond the capability
    /// bound: the decoder must never accept the word as `Clean`, never
    /// return the original data (the true codeword is out of reach of a
    /// bounded-distance decoder), and any mis-correction it does emit
    /// must be a valid codeword whose claimed pattern is *within*
    /// capability. Both back-ends must also agree whenever both succeed
    /// (bounded-distance uniqueness).
    fn assert_beyond_bound_contract(
        code: &RsCode,
        data: &[Symbol],
        word: &[Symbol],
        erasures: &[usize],
    ) {
        let mut successes = Vec::new();
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            match code.decode_with(word, erasures, backend).unwrap() {
                DecodeOutcome::Clean { .. } => panic!("{backend}: corrupt word passed clean"),
                DecodeOutcome::Corrected {
                    data: d,
                    codeword,
                    corrections,
                } => {
                    assert_ne!(d, data, "{backend}: decoded the unreachable original");
                    assert!(code.is_codeword(&codeword).unwrap(), "{backend}");
                    let claimed = corrections.iter().filter(|c| !c.was_erasure).count();
                    assert!(
                        erasures.len() + 2 * claimed <= code.parity_symbols(),
                        "{backend}: accepted a beyond-capability claim"
                    );
                    successes.push(codeword);
                }
                DecodeOutcome::Failure(_) => {}
            }
        }
        if successes.len() == 2 {
            assert_eq!(successes[0], successes[1], "back-ends disagree");
        }
    }

    #[test]
    fn one_past_the_bound_is_never_silently_wrong() {
        // er + 2·re = n − k + 1 = 7 for RS(15,9): one declared erasure
        // (with a wrong stored value) plus three random errors.
        let code = code_15_9();
        let data: Vec<Symbol> = (3..12).collect();
        let clean = code.encode(&data).unwrap();
        for seed in 0..20u32 {
            let mut word = clean.clone();
            let e = (seed as usize) % 15;
            word[e] ^= 1 + (seed % 15) as Symbol;
            let mut placed = 0;
            for off in 1..15 {
                if placed == 3 {
                    break;
                }
                let p = (e + off * 4) % 15;
                if p != e {
                    word[p] ^= 1 + ((seed + off as u32) % 15) as Symbol;
                    placed += 1;
                }
            }
            assert_beyond_bound_contract(&code, &data, &word, &[e]);
        }
    }

    #[test]
    fn two_past_the_bound_is_never_silently_wrong() {
        // er + 2·re = n − k + 2 = 8 for RS(15,9): four random errors.
        let code = code_15_9();
        let data: Vec<Symbol> = (0..9).map(|i| (i * 2 + 1) % 16).collect();
        let clean = code.encode(&data).unwrap();
        for seed in 0..20u32 {
            let mut word = clean.clone();
            for j in 0..4usize {
                let p = ((seed as usize) + j * 4) % 15;
                word[p] ^= 1 + ((seed + j as u32) % 15) as Symbol;
            }
            assert_beyond_bound_contract(&code, &data, &word, &[]);
        }
    }

    #[test]
    fn clean_fast_path_preserves_outcome_classification() {
        // Regression pin for the zero-syndrome early-out: a codeword is
        // Clean whether or not erasures are declared (the erased
        // positions evidently held valid data), the erasure budget
        // check still fires *before* the fast path, and a corrupted
        // word can never ride the fast path to Clean.
        let code = code_15_9();
        let data: Vec<Symbol> = (4..13).collect();
        let word = code.encode(&data).unwrap();
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            let out = code.decode_with(&word, &[], backend).unwrap();
            assert_eq!(out, DecodeOutcome::Clean { data: data.clone() });
            let out = code.decode_with(&word, &[0, 5, 9], backend).unwrap();
            assert_eq!(out, DecodeOutcome::Clean { data: data.clone() });
            // 7 erasures > n−k = 6: rejected before the syndrome check,
            // even though every syndrome of this word is zero.
            let every: Vec<usize> = (0..7).collect();
            let out = code.decode_with(&word, &every, backend).unwrap();
            assert!(matches!(
                out,
                DecodeOutcome::Failure(DecodeFailure::TooManyErasures { .. })
            ));
            for pos in 0..code.n() {
                let mut corrupt = word.clone();
                corrupt[pos] ^= 1;
                let out = code.decode_with(&corrupt, &[], backend).unwrap();
                assert!(!matches!(out, DecodeOutcome::Clean { .. }), "pos={pos}");
            }
        }
    }

    #[test]
    fn malformed_inputs_are_api_errors_not_failures() {
        let code = code_15_9();
        let word = code.encode(&[0; 9]).unwrap();
        assert!(code.decode(&word[..14], &[]).is_err());
        assert!(code.decode(&word, &[15]).is_err()); // out of range
        assert!(code.decode(&word, &[3, 3]).is_err()); // duplicate
        let mut bad = word.clone();
        bad[2] = 99; // out of GF(16)
        assert!(code.decode(&bad, &[]).is_err());
    }

    #[test]
    fn paper_rs18_16_corrects_one_error_or_two_erasures() {
        let code = RsCode::new(18, 16, 8).unwrap();
        let data: Vec<Symbol> = (100..116).collect();
        let clean = code.encode(&data).unwrap();

        let mut one_err = clean.clone();
        one_err[9] ^= 0x55;
        assert_eq!(code.decode(&one_err, &[]).unwrap().data(), Some(&data[..]));

        let mut two_era = clean.clone();
        two_era[0] ^= 0xff;
        two_era[17] ^= 0x01;
        assert_eq!(
            code.decode(&two_era, &[0, 17]).unwrap().data(),
            Some(&data[..])
        );

        // Two random errors exceed capability (2·2 > 2).
        let mut two_err = clean.clone();
        two_err[2] ^= 0x10;
        two_err[5] ^= 0x20;
        let out = code.decode(&two_err, &[]).unwrap();
        assert!(out.is_failure() || out.is_flagged());
        assert_ne!(out.data(), Some(&data[..]));
    }

    #[test]
    fn paper_rs36_16_corrects_ten_errors() {
        let code = RsCode::new(36, 16, 8).unwrap();
        let data: Vec<Symbol> = (0..16).map(|i| i * 3 + 1).collect();
        let clean = code.encode(&data).unwrap();
        let mut word = clean.clone();
        for i in 0..10 {
            word[i * 3] ^= (i + 1) as Symbol;
        }
        let out = code.decode(&word, &[]).unwrap();
        assert_eq!(out.data(), Some(&data[..]));
    }
}
