//! Batched decoding: structure-of-arrays syndrome evaluation over many
//! codewords with the bulk GF primitives, escalating only dirty words to
//! the scalar key-equation back-ends.
//!
//! The memory-array workloads of this workspace (Monte-Carlo trials, the
//! stress lattice, whole-array scrub reads) decode thousands of words per
//! step, the overwhelming majority of which are still codewords. The
//! scalar [`crate::RsCode::decode`] pays per-word allocation and per-symbol
//! log/exp lookups just to discover that nothing happened. This module
//! inverts the loop:
//!
//! 1. **Transpose** the batch into column-major (structure-of-arrays)
//!    layout: one contiguous lane of `batch_len` symbols per codeword
//!    position.
//! 2. **Syndromes in bulk**: for each generator root `α^{b+j}` run the
//!    Horner ladder across the whole lane with a precomputed
//!    [`rsmem_gf::bulk::MulTable`] (SWAR on byte-wide fields) — the same
//!    products, so the results are bit-identical to the scalar ladder.
//! 3. **Early-out** every word whose `n−k` syndromes are all zero
//!    (clean), and **escalate** the rest one at a time through the
//!    unchanged BM/Euclid machinery.
//!
//! [`BatchDecoder`] owns every intermediate buffer and reuses it across
//! calls: after warm-up, a batch of clean words with no declared erasures
//! performs **zero heap allocations** (pinned by an allocation-counting
//! test). Escalated words run the scalar path and allocate exactly what
//! single-word decoding does.

use crate::decode::{
    decode_word, record_clean_many, validate_erasures_into, DecodeFailure, DecodeOutcome,
    DecoderBackend,
};
use crate::{CodeError, RsCode};
use rsmem_gf::bulk::BulkKind;
use rsmem_gf::Symbol;
use rsmem_obs::metrics::{global, Counter};
use std::sync::OnceLock;

/// Counters for the bulk plane, alongside the per-decode solver metrics.
struct BulkMetrics {
    batches: Counter,
    clean: Counter,
    escalated: Counter,
}

fn bulk_metrics() -> &'static BulkMetrics {
    static METRICS: OnceLock<BulkMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        let by_path = |p: &str| r.counter("rsmem_bulk_words_total", &[("path", p)]);
        BulkMetrics {
            batches: r.counter("rsmem_bulk_batches_total", &[]),
            clean: by_path("clean"),
            escalated: by_path("escalated"),
        }
    })
}

/// Eagerly registers the bulk metric families in the global registry.
pub(crate) fn register_metrics() {
    let _ = bulk_metrics();
}

/// Options for a batched decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DecodeOpts {
    /// Key-equation back-end used for escalated (non-clean) words.
    pub backend: DecoderBackend,
}

impl DecodeOpts {
    /// Options selecting an explicit back-end.
    pub fn with_backend(backend: DecoderBackend) -> Self {
        DecodeOpts { backend }
    }
}

/// Compact per-word outcome of a [`BatchDecoder::decode_batch`] call.
///
/// The corrected symbols live in the caller's word (corrected **in
/// place**), so the outcome only carries the classification — which is
/// exactly what the simulator and stress consumers aggregate. Use
/// [`RsCode::decode_many`] when the full [`DecodeOutcome`] (data copy,
/// correction list) is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The word was already a codeword; untouched (flag **not** set).
    Clean,
    /// Corrections were applied in place (flag **set**).
    Corrected {
        /// Corrections at positions *not* declared as erasures.
        errors: u32,
        /// Corrections at declared erasure positions.
        erasures: u32,
    },
    /// Detected-uncorrectable word; left untouched.
    Failure(DecodeFailure),
}

impl BatchOutcome {
    /// The arbiter flag: true iff a correction was performed.
    pub fn is_flagged(&self) -> bool {
        matches!(self, BatchOutcome::Corrected { .. })
    }

    /// True for a detected decode failure.
    pub fn is_failure(&self) -> bool {
        matches!(self, BatchOutcome::Failure(_))
    }
}

/// All `n−k` syndromes of many received words, evaluated in one
/// structure-of-arrays pass with the bulk GF primitives.
///
/// Layout is lane-major: syndrome `j` of word `w` lives at
/// `soa[j·words + w]`, so each syndrome index is contiguous across the
/// batch (the shape the bulk Horner ladder produces without a final
/// transpose).
///
/// # Examples
///
/// ```
/// use rsmem_code::{RsCode, SyndromeBatch};
///
/// # fn main() -> Result<(), rsmem_code::CodeError> {
/// let code = RsCode::new(18, 16, 8)?;
/// let clean = code.encode(&(0..16).collect::<Vec<_>>())?;
/// let mut dirty = clean.clone();
/// dirty[3] ^= 0x40;
/// let batch = SyndromeBatch::compute(&code, &[clean, dirty])?;
/// assert!(batch.is_clean(0));
/// assert!(!batch.is_clean(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyndromeBatch {
    words: usize,
    stride: usize,
    soa: Vec<Symbol>,
}

impl SyndromeBatch {
    /// Evaluates all `n−k` syndromes of every word in `words`.
    ///
    /// # Errors
    ///
    /// [`CodeError::CodewordLength`] / [`CodeError::SymbolOutOfRange`]
    /// on the first malformed word.
    pub fn compute<W: AsRef<[Symbol]>>(
        code: &RsCode,
        words: &[W],
    ) -> Result<SyndromeBatch, CodeError> {
        for word in words {
            check_word(code, word.as_ref())?;
        }
        let mut ws = SoaBuffers::default();
        syndromes_soa(code, words, &mut ws);
        Ok(SyndromeBatch {
            words: words.len(),
            stride: code.parity_symbols(),
            soa: ws.soa,
        })
    }

    /// Number of words in the batch.
    pub fn word_count(&self) -> usize {
        self.words
    }

    /// Number of syndromes per word, `n − k`.
    pub fn syndrome_count(&self) -> usize {
        self.stride
    }

    /// Syndrome `j` of word `w`.
    ///
    /// # Panics
    ///
    /// Panics when `w` or `j` is out of range.
    pub fn get(&self, w: usize, j: usize) -> Symbol {
        assert!(w < self.words && j < self.stride, "index out of range");
        self.soa[j * self.words + w]
    }

    /// True when every syndrome of word `w` is zero (the word is a
    /// codeword).
    ///
    /// # Panics
    ///
    /// Panics when `w` is out of range.
    pub fn is_clean(&self, w: usize) -> bool {
        assert!(w < self.words, "index out of range");
        word_is_clean(&self.soa, self.words, self.stride, w)
    }

    /// True when the whole batch is clean.
    pub fn all_clean(&self) -> bool {
        self.soa.iter().all(|&s| s == 0)
    }
}

/// Validates one word's length and symbol range (the same checks, in
/// the same order, as the scalar decode entry point).
fn check_word(code: &RsCode, word: &[Symbol]) -> Result<(), CodeError> {
    if word.len() != code.n() {
        return Err(CodeError::CodewordLength {
            got: word.len(),
            expected: code.n(),
        });
    }
    code.check_symbols(word)
}

/// The erasure set of word `w` under the "empty means none anywhere"
/// convention.
fn erasures_of(erasures: &[Vec<usize>], w: usize) -> &[usize] {
    if erasures.is_empty() {
        &[]
    } else {
        &erasures[w]
    }
}

fn word_is_clean(soa: &[Symbol], words: usize, stride: usize, w: usize) -> bool {
    (0..stride).all(|j| soa[j * words + w] == 0)
}

/// Symbols per packed `u64` on byte-wide fields.
const PACK: usize = 8;

/// Reusable buffers of the structure-of-arrays syndrome kernel. All four
/// vectors are resized in place, so a warm owner allocates nothing.
#[derive(Debug, Default)]
struct SoaBuffers {
    /// Column-major transpose (`n` lanes of `batch_len`), `m > 8` path.
    cols: Vec<Symbol>,
    /// Byte-lane packed transpose (`⌈batch_len/8⌉` word groups of `n`
    /// consecutive `u64`s), `m ≤ 8` path.
    cols_p: Vec<u64>,
    /// Structure-of-arrays syndromes (`n−k` lanes of `batch_len`).
    soa: Vec<Symbol>,
}

/// The structure-of-arrays syndrome kernel shared by [`SyndromeBatch`]
/// and [`BatchDecoder`]: transposes the batch into position lanes and
/// runs the bulk Horner ladder per generator root into `ws.soa`.
///
/// On byte-wide fields the transpose packs eight words per `u64` and the
/// whole ladder runs on [`rsmem_gf::bulk::MulTable::horner_step_packed`]
/// — symbols are packed once and unpacked once per root, not once per
/// Horner step. Wider fields fall back to the symbol-slice ladder. Both
/// ladders apply `acc ← root·acc ⊕ coeff` from the highest codeword
/// position down — the exact evaluation order of the scalar ladder, so
/// every syndrome is bit-identical.
fn syndromes_soa<W: AsRef<[Symbol]>>(code: &RsCode, words: &[W], ws: &mut SoaBuffers) {
    let mut span = rsmem_obs::span("code.bulk", "syndromes");
    let lanes = words.len();
    let n = code.n();
    let stride = code.parity_symbols();
    span.record("words", lanes as u64);
    ws.soa.clear();
    ws.soa.resize(stride * lanes, 0);
    if lanes == 0 {
        return;
    }
    if code.field().bulk_kind() == BulkKind::Swar64 {
        // Blocked layout: each group of eight words packs into `n`
        // consecutive `u64`s, so the pack writes, the ladder reads and
        // the syndrome unpack all stay inside one ~n·8-byte hot window
        // per group, and every root's accumulator lives in a register
        // for the whole ladder.
        let wu = lanes.div_ceil(PACK);
        let tables = code.syndrome_tables();
        ws.cols_p.clear();
        ws.cols_p.resize(wu * n, 0);
        for g in 0..wu {
            let base = g * PACK;
            let in_group = PACK.min(lanes - base);
            let packed = &mut ws.cols_p[g * n..(g + 1) * n];
            for (lane, word) in words[base..base + in_group].iter().enumerate() {
                let shift = 8 * lane;
                for (p, &c) in packed.iter_mut().zip(word.as_ref()) {
                    *p |= u64::from(c) << shift;
                }
            }
        }
        // Ladder four groups at a time: the Horner recurrence serializes
        // on its accumulator, so independent sibling chains hide the
        // multiply latency. Short batches fall back to narrower tiles.
        let mut g = 0;
        // The wide tile requires four *full* groups (the zero-padded
        // partial tail would unpack past the row).
        while (g + 4) * PACK <= lanes {
            let quad = &ws.cols_p[g * n..(g + 4) * n];
            let (p0, rest) = quad.split_at(n);
            let (p1, rest) = rest.split_at(n);
            let (p2, p3) = rest.split_at(n);
            for (j, table) in tables.iter().enumerate() {
                // Horner from the highest codeword position down — the
                // exact evaluation order of the scalar ladder, so every
                // syndrome is bit-identical.
                let mut acc = [0u64; 4];
                for i in (0..n).rev() {
                    acc[0] = table.horner_fold_packed(acc[0], p0[i]);
                    acc[1] = table.horner_fold_packed(acc[1], p1[i]);
                    acc[2] = table.horner_fold_packed(acc[2], p2[i]);
                    acc[3] = table.horner_fold_packed(acc[3], p3[i]);
                }
                for (q, &a) in acc.iter().enumerate() {
                    let row = j * lanes + (g + q) * PACK;
                    for (w, s) in ws.soa[row..row + PACK].iter_mut().enumerate() {
                        *s = ((a >> (8 * w)) & 0xff) as Symbol;
                    }
                }
            }
            g += 4;
        }
        while g < wu {
            // Remainder groups (including a zero-padded partial tail).
            let packed = &ws.cols_p[g * n..(g + 1) * n];
            let in_group = PACK.min(lanes - g * PACK);
            for (j, table) in tables.iter().enumerate() {
                let mut acc = 0u64;
                for &coeff in packed.iter().rev() {
                    acc = table.horner_fold_packed(acc, coeff);
                }
                let row = j * lanes + g * PACK;
                for (w, s) in ws.soa[row..row + in_group].iter_mut().enumerate() {
                    *s = ((acc >> (8 * w)) & 0xff) as Symbol;
                }
            }
            g += 1;
        }
    } else {
        ws.cols.clear();
        ws.cols.resize(n * lanes, 0);
        for (w, word) in words.iter().enumerate() {
            for (i, &c) in word.as_ref().iter().enumerate() {
                ws.cols[i * lanes + w] = c;
            }
        }
        for (j, table) in code.syndrome_tables().iter().enumerate() {
            let acc = &mut ws.soa[j * lanes..(j + 1) * lanes];
            for i in (0..n).rev() {
                table.horner_step(acc, &ws.cols[i * lanes..(i + 1) * lanes]);
            }
        }
    }
}

/// A reusable batched-decode workspace.
///
/// Holds the transpose, syndrome and validation buffers so that
/// steady-state batches (all words clean, no declared erasures) perform
/// **zero** heap allocations after the first call — the property the MC
/// shard loop relies on and the `alloc_count` test pins. The decoder is
/// cheap to construct but not `Sync`; give each worker thread its own.
///
/// # Examples
///
/// ```
/// use rsmem_code::{BatchDecoder, BatchOutcome, DecodeOpts, RsCode};
///
/// # fn main() -> Result<(), rsmem_code::CodeError> {
/// let code = RsCode::new(18, 16, 8)?;
/// let mut words = vec![code.encode(&(0..16).collect::<Vec<_>>())?; 8];
/// words[5][2] ^= 0x11; // one SEU in word 5
/// let mut decoder = BatchDecoder::new();
/// let mut outcomes = Vec::new();
/// decoder.decode_batch(&code, &mut words, &[], &DecodeOpts::default(), &mut outcomes)?;
/// assert_eq!(outcomes[0], BatchOutcome::Clean);
/// assert_eq!(outcomes[5], BatchOutcome::Corrected { errors: 1, erasures: 0 });
/// assert!(code.is_codeword(&words[5])?); // corrected in place
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct BatchDecoder {
    /// Transpose/syndrome buffers of the SoA kernel.
    ws: SoaBuffers,
    /// Scratch for duplicate-erasure validation.
    seen: Vec<bool>,
}

impl BatchDecoder {
    /// A fresh workspace; buffers grow on first use and are reused
    /// thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes `words` in place, appending one compact [`BatchOutcome`]
    /// per word to `out` (which is cleared first and reuses its
    /// capacity).
    ///
    /// Classification is identical to per-word [`RsCode::decode_with`]:
    /// over-budget erasure sets and non-zero-syndrome words take the
    /// unchanged scalar path (same back-end, same metrics), clean words
    /// short-circuit on the batched syndromes. `erasures` is either
    /// empty (no erasures anywhere) or one entry per word.
    ///
    /// # Errors
    ///
    /// [`CodeError`] on the first malformed word or erasure set, in
    /// which case no word has been modified.
    ///
    /// # Panics
    ///
    /// Panics when `erasures` is non-empty but its length differs from
    /// `words.len()`.
    pub fn decode_batch(
        &mut self,
        code: &RsCode,
        words: &mut [Vec<Symbol>],
        erasures: &[Vec<usize>],
        opts: &DecodeOpts,
        out: &mut Vec<BatchOutcome>,
    ) -> Result<(), CodeError> {
        let mut span = rsmem_obs::span("code.bulk", "decode_batch");
        span.record("words", words.len() as u64);
        self.validate(code, words, erasures)?;
        syndromes_soa(code, &*words, &mut self.ws);
        let lanes = words.len();
        let stride = code.parity_symbols();
        out.clear();
        out.reserve(lanes);
        let mut clean = 0u64;
        let mut escalated = 0u64;
        for (w, word) in words.iter_mut().enumerate() {
            let era = erasures_of(erasures, w);
            if era.len() <= stride && word_is_clean(&self.ws.soa, lanes, stride, w) {
                clean += 1;
                out.push(BatchOutcome::Clean);
                continue;
            }
            escalated += 1;
            match decode_word(code, word, era, opts.backend)? {
                DecodeOutcome::Clean { .. } => out.push(BatchOutcome::Clean),
                DecodeOutcome::Corrected {
                    codeword,
                    corrections,
                    ..
                } => {
                    word.copy_from_slice(&codeword);
                    let erased = corrections.iter().filter(|c| c.was_erasure).count() as u32;
                    out.push(BatchOutcome::Corrected {
                        errors: corrections.len() as u32 - erased,
                        erasures: erased,
                    });
                }
                DecodeOutcome::Failure(failure) => out.push(BatchOutcome::Failure(failure)),
            }
        }
        record_clean_many(opts.backend, clean);
        let metrics = bulk_metrics();
        metrics.batches.inc();
        metrics.clean.add(clean);
        metrics.escalated.add(escalated);
        span.record("clean", clean);
        span.record("escalated", escalated);
        Ok(())
    }

    /// Like [`BatchDecoder::decode_batch`] but returning the full
    /// per-word [`DecodeOutcome`]s of the scalar API (this is what
    /// [`RsCode::decode_many`] calls). Words are still corrected in
    /// place; the outcomes additionally carry the data/codeword copies
    /// and correction lists, so this path allocates per word and is for
    /// callers that need the rich result rather than throughput.
    ///
    /// # Errors
    ///
    /// See [`BatchDecoder::decode_batch`].
    ///
    /// # Panics
    ///
    /// See [`BatchDecoder::decode_batch`].
    pub fn decode_many(
        &mut self,
        code: &RsCode,
        words: &mut [Vec<Symbol>],
        erasures: &[Vec<usize>],
        opts: &DecodeOpts,
    ) -> Result<Vec<DecodeOutcome>, CodeError> {
        let mut span = rsmem_obs::span("code.bulk", "decode_many");
        span.record("words", words.len() as u64);
        self.validate(code, words, erasures)?;
        syndromes_soa(code, &*words, &mut self.ws);
        let lanes = words.len();
        let stride = code.parity_symbols();
        let mut out = Vec::with_capacity(lanes);
        let mut clean = 0u64;
        let mut escalated = 0u64;
        for (w, word) in words.iter_mut().enumerate() {
            let era = erasures_of(erasures, w);
            if era.len() <= stride && word_is_clean(&self.ws.soa, lanes, stride, w) {
                clean += 1;
                out.push(DecodeOutcome::Clean {
                    data: code.data_of(word)?.to_vec(),
                });
                continue;
            }
            escalated += 1;
            let outcome = decode_word(code, word, era, opts.backend)?;
            if let DecodeOutcome::Corrected { codeword, .. } = &outcome {
                word.copy_from_slice(codeword);
            }
            out.push(outcome);
        }
        record_clean_many(opts.backend, clean);
        let metrics = bulk_metrics();
        metrics.batches.inc();
        metrics.clean.add(clean);
        metrics.escalated.add(escalated);
        span.record("clean", clean);
        span.record("escalated", escalated);
        Ok(out)
    }

    /// Upfront validation of the whole batch, per word in the scalar
    /// order (length → symbols → erasures), so an error leaves every
    /// word untouched.
    fn validate(
        &mut self,
        code: &RsCode,
        words: &[Vec<Symbol>],
        erasures: &[Vec<usize>],
    ) -> Result<(), CodeError> {
        assert!(
            erasures.is_empty() || erasures.len() == words.len(),
            "erasures must be empty or one set per word ({} sets, {} words)",
            erasures.len(),
            words.len()
        );
        for (w, word) in words.iter().enumerate() {
            check_word(code, word)?;
            let era = erasures_of(erasures, w);
            if !era.is_empty() {
                validate_erasures_into(code, era, &mut self.seen)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Correction;

    fn rs18_16() -> RsCode {
        RsCode::new(18, 16, 8).unwrap()
    }

    fn words_with_patterns(code: &RsCode) -> (Vec<Vec<Symbol>>, Vec<Vec<usize>>) {
        let k = code.k();
        let size = code.field().size();
        let mut words = Vec::new();
        let mut erasures = Vec::new();
        for seed in 0..12u32 {
            let data: Vec<Symbol> = (0..k as u32)
                .map(|i| ((i * 29 + seed * 7 + 3) % size) as Symbol)
                .collect();
            let mut word = code.encode(&data).unwrap();
            let mut era = Vec::new();
            match seed % 4 {
                0 => {} // clean
                1 => {
                    let p = (seed as usize * 5) % word.len();
                    word[p] ^= 0x21; // one error
                }
                2 => {
                    // two erasures with clobbered values
                    let p1 = (seed as usize) % word.len();
                    let p2 = (p1 + 7) % word.len();
                    word[p1] ^= 0xff;
                    word[p2] ^= 0x0f;
                    era = vec![p1, p2];
                }
                _ => {
                    // beyond capability: two random errors on a t=1 code
                    word[1] ^= 0x10;
                    word[9] ^= 0x33;
                }
            }
            words.push(word);
            erasures.push(era);
        }
        (words, erasures)
    }

    #[test]
    fn syndrome_batch_matches_scalar_syndromes() {
        let code = rs18_16();
        let (words, _) = words_with_patterns(&code);
        let batch = SyndromeBatch::compute(&code, &words).unwrap();
        assert_eq!(batch.word_count(), words.len());
        assert_eq!(batch.syndrome_count(), code.parity_symbols());
        for (w, word) in words.iter().enumerate() {
            let scalar = crate::syndrome::syndromes(&code, word);
            for (j, &s) in scalar.iter().enumerate() {
                assert_eq!(batch.get(w, j), s, "word {w} syndrome {j}");
            }
            assert_eq!(batch.is_clean(w), scalar.iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn syndrome_batch_rejects_malformed_words() {
        let code = rs18_16();
        let short = vec![vec![0 as Symbol; 17]];
        assert!(SyndromeBatch::compute(&code, &short).is_err());
        let wide = vec![vec![0x1ff as Symbol; 18]];
        assert!(SyndromeBatch::compute(&code, &wide).is_err());
        assert!(SyndromeBatch::compute::<Vec<Symbol>>(&code, &[])
            .unwrap()
            .all_clean());
    }

    #[test]
    fn decode_many_matches_per_word_decode_exactly() {
        let code = rs18_16();
        for backend in [DecoderBackend::Sugiyama, DecoderBackend::BerlekampMassey] {
            let (mut words, erasures) = words_with_patterns(&code);
            let originals = words.clone();
            let expected: Vec<DecodeOutcome> = originals
                .iter()
                .zip(erasures.iter())
                .map(|(w, e)| code.decode_with(w, e, backend).unwrap())
                .collect();
            let opts = DecodeOpts::with_backend(backend);
            let got = code.decode_many(&mut words, &erasures, &opts).unwrap();
            assert_eq!(got, expected, "{backend}");
            // In-place contract: corrected words hold the outcome's
            // codeword, everything else is untouched.
            for (w, outcome) in got.iter().enumerate() {
                match outcome {
                    DecodeOutcome::Corrected { codeword, .. } => {
                        assert_eq!(&words[w], codeword, "{backend} word {w}")
                    }
                    _ => assert_eq!(words[w], originals[w], "{backend} word {w}"),
                }
            }
        }
    }

    #[test]
    fn decode_batch_compact_outcomes_match_full_outcomes() {
        let code = rs18_16();
        let (mut words, erasures) = words_with_patterns(&code);
        let mut full_words = words.clone();
        let opts = DecodeOpts::default();
        let full = code.decode_many(&mut full_words, &erasures, &opts).unwrap();
        let mut decoder = BatchDecoder::new();
        let mut compact = Vec::new();
        decoder
            .decode_batch(&code, &mut words, &erasures, &opts, &mut compact)
            .unwrap();
        assert_eq!(compact.len(), full.len());
        for (w, (c, f)) in compact.iter().zip(full.iter()).enumerate() {
            match f {
                DecodeOutcome::Clean { .. } => assert_eq!(*c, BatchOutcome::Clean, "word {w}"),
                DecodeOutcome::Corrected { corrections, .. } => {
                    let erased = corrections.iter().filter(|x| x.was_erasure).count() as u32;
                    assert_eq!(
                        *c,
                        BatchOutcome::Corrected {
                            errors: corrections.len() as u32 - erased,
                            erasures: erased,
                        },
                        "word {w}"
                    );
                }
                DecodeOutcome::Failure(fail) => {
                    assert_eq!(*c, BatchOutcome::Failure(*fail), "word {w}")
                }
            }
            assert_eq!(words[w], full_words[w], "word {w} in-place result");
        }
    }

    #[test]
    fn too_many_erasures_escalates_even_when_syndromes_are_zero() {
        let code = rs18_16();
        let data: Vec<Symbol> = (0..16).collect();
        let mut words = vec![code.encode(&data).unwrap()];
        let erasures = vec![vec![0usize, 1, 2]]; // 3 > n−k = 2
        let mut decoder = BatchDecoder::new();
        let mut out = Vec::new();
        decoder
            .decode_batch(
                &code,
                &mut words,
                &erasures,
                &DecodeOpts::default(),
                &mut out,
            )
            .unwrap();
        assert!(matches!(
            out[0],
            BatchOutcome::Failure(DecodeFailure::TooManyErasures { .. })
        ));
    }

    #[test]
    fn malformed_batch_leaves_words_untouched() {
        let code = rs18_16();
        let data: Vec<Symbol> = (0..16).collect();
        let mut good = code.encode(&data).unwrap();
        good[0] ^= 1; // would be corrected if the batch ran
        let mut words = vec![good.clone(), vec![0; 17]]; // second word malformed
        let mut decoder = BatchDecoder::new();
        let mut out = Vec::new();
        let err = decoder.decode_batch(&code, &mut words, &[], &DecodeOpts::default(), &mut out);
        assert!(err.is_err());
        assert_eq!(words[0], good, "no word may be modified on batch error");
        // Bad erasure sets are also pre-flight errors.
        let mut words = vec![good.clone()];
        let err = decoder.decode_batch(
            &code,
            &mut words,
            &[vec![99usize]],
            &DecodeOpts::default(),
            &mut out,
        );
        assert!(err.is_err());
        assert_eq!(words[0], good);
    }

    #[test]
    fn corrections_report_erasure_split() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = (1..=9).collect();
        let clean = code.encode(&data).unwrap();
        let mut word = clean.clone();
        word[2] ^= 0x3; // erased position, wrong value
        word[8] ^= 0x9; // random error
        let mut words = vec![word];
        let erasures = vec![vec![2usize, 4]]; // one real, one intact erasure
        let mut decoder = BatchDecoder::new();
        let mut out = Vec::new();
        decoder
            .decode_batch(
                &code,
                &mut words,
                &erasures,
                &DecodeOpts::default(),
                &mut out,
            )
            .unwrap();
        assert_eq!(
            out[0],
            BatchOutcome::Corrected {
                errors: 1,
                erasures: 1
            }
        );
        assert_eq!(words[0], clean);
        // Cross-check the split against the scalar correction list.
        let mut scalar_word = clean.clone();
        scalar_word[2] ^= 0x3;
        scalar_word[8] ^= 0x9;
        match code.decode(&scalar_word, &[2, 4]).unwrap() {
            DecodeOutcome::Corrected { corrections, .. } => {
                let expect: Vec<Correction> = corrections;
                assert_eq!(expect.iter().filter(|c| c.was_erasure).count(), 1);
                assert_eq!(expect.iter().filter(|c| !c.was_erasure).count(), 1);
            }
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn workspace_reuse_across_codes_is_safe() {
        // The same BatchDecoder may serve differently-shaped codes; the
        // buffers must resize correctly between calls.
        let mut decoder = BatchDecoder::new();
        let mut out = Vec::new();
        for (n, k, m) in [(36usize, 16usize, 8u32), (15, 9, 4), (18, 16, 8)] {
            let code = RsCode::new(n, k, m).unwrap();
            let data: Vec<Symbol> = (0..k as u32)
                .map(|i| (i % code.field().size()) as Symbol)
                .collect();
            let mut words = vec![code.encode(&data).unwrap(); 5];
            words[3][0] ^= 1;
            decoder
                .decode_batch(&code, &mut words, &[], &DecodeOpts::default(), &mut out)
                .unwrap();
            assert_eq!(out.len(), 5);
            assert!(out[3].is_flagged());
            assert_eq!(out[0], BatchOutcome::Clean);
            assert!(code.is_codeword(&words[3]).unwrap());
        }
    }
}
