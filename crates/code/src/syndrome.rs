//! Syndrome computation.

use crate::RsCode;
#[cfg(test)]
use rsmem_gf::Poly;
use rsmem_gf::Symbol;

/// Computes the `n − k` syndromes `S_j = r(α^{b+j})`, `j = 0..n−k`,
/// of the received word `r`.
///
/// All syndromes are zero iff `r` is a codeword.
pub fn syndromes(code: &RsCode, word: &[Symbol]) -> Vec<Symbol> {
    let mut out = Vec::with_capacity(code.parity_symbols());
    for table in code.syndrome_tables() {
        // Horner evaluation of the received polynomial at α^{b+j},
        // through the precomputed multiply-by-root table (identical
        // products to `field.mul`, one lookup instead of three).
        let mut acc: Symbol = 0;
        for &c in word.iter().rev() {
            acc = table.mul(acc) ^ c;
        }
        out.push(acc);
    }
    out
}

/// The syndrome polynomial `S(x) = Σ_j S_j x^j`. The decode path now
/// builds this directly from its own syndrome pass; this helper remains
/// as the test-suite oracle.
#[cfg(test)]
pub(crate) fn syndrome_poly(code: &RsCode, word: &[Symbol]) -> Poly {
    Poly::from_coeffs(syndromes(code, word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_syndromes_match_direct_field_horner() {
        // The cached multiply-by-root tables must reproduce the plain
        // log/exp Horner ladder bit for bit.
        for (n, k, m, b) in [
            (15usize, 9usize, 4u32, 0u32),
            (18, 16, 8, 0),
            (36, 16, 8, 112),
        ] {
            let code = RsCode::with_first_root(n, k, m, b).unwrap();
            let f = code.field();
            let mut word: Vec<Symbol> = (0..n as u32)
                .map(|i| ((i * 37 + 11) % f.size()) as Symbol)
                .collect();
            word[n / 2] ^= 1;
            let got = syndromes(&code, &word);
            for (j, &s) in got.iter().enumerate() {
                let x = f.alpha_pow(b + j as u32);
                let mut acc: Symbol = 0;
                for &c in word.iter().rev() {
                    acc = f.mul(acc, x) ^ c;
                }
                assert_eq!(s, acc, "n={n} k={k} j={j}");
            }
        }
    }

    #[test]
    fn syndromes_of_codeword_are_zero() {
        let code = RsCode::new(15, 9, 4).unwrap();
        let data: Vec<Symbol> = (0..9).map(|i| (i + 2) % 16).collect();
        let word = code.encode(&data).unwrap();
        assert!(syndromes(&code, &word).iter().all(|&s| s == 0));
    }

    #[test]
    fn single_error_syndromes_follow_locator_law() {
        // For e at position p with magnitude v: S_j = v · α^{p(b+j)}.
        let code = RsCode::new(15, 9, 4).unwrap();
        let f = code.field();
        let data = vec![0 as Symbol; 9];
        let mut word = code.encode(&data).unwrap();
        let (pos, val) = (7usize, 5 as Symbol);
        word[pos] ^= val;
        let syn = syndromes(&code, &word);
        for (j, &s) in syn.iter().enumerate() {
            let expect = f.mul(val, f.pow(f.alpha_pow(pos as u32), j as u64));
            assert_eq!(s, expect, "syndrome {j}");
        }
    }

    #[test]
    fn syndromes_are_linear_in_the_error() {
        let code = RsCode::new(18, 16, 8).unwrap();
        let data: Vec<Symbol> = (10..26).collect();
        let word = code.encode(&data).unwrap();
        let mut e1 = word.clone();
        e1[3] ^= 0x21;
        let mut e2 = word.clone();
        e2[11] ^= 0x7;
        let mut e12 = word.clone();
        e12[3] ^= 0x21;
        e12[11] ^= 0x7;
        let s1 = syndromes(&code, &e1);
        let s2 = syndromes(&code, &e2);
        let s12 = syndromes(&code, &e12);
        for j in 0..s1.len() {
            assert_eq!(s12[j], s1[j] ^ s2[j]);
        }
    }
}
